"""Exception hierarchy for the BatchZK reproduction library.

All library-raised errors derive from :class:`ReproError` so callers can
catch everything from this package with a single ``except`` clause while
still being able to discriminate by subsystem.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for every error raised by the ``repro`` package."""


class FieldError(ReproError):
    """Invalid field construction or cross-field operation."""


class FieldMismatchError(FieldError):
    """Two elements from different fields were combined."""

    def __init__(self, left: object, right: object) -> None:
        super().__init__(
            f"cannot combine elements of different fields: {left!r} vs {right!r}"
        )


class NonInvertibleError(FieldError):
    """Attempted to invert zero (or a non-unit)."""


class HashError(ReproError):
    """Malformed input to a hash primitive."""


class MerkleError(ReproError):
    """Invalid Merkle tree construction or proof."""


class SumcheckError(ReproError):
    """Sum-check proving/verification failure."""


class EncodingError(ReproError):
    """Linear-time encoder failure (bad parameters, wrong lengths)."""


class CommitmentError(ReproError):
    """Polynomial-commitment failure (commit/open/verify)."""


class CircuitError(ReproError):
    """Arithmetic-circuit construction or evaluation failure."""


class ProofError(ReproError):
    """Proof assembly or deserialization failure."""


class VerificationError(ReproError):
    """A proof failed verification.

    Verifiers in this library return ``bool`` on the happy path; this error
    is raised only for *structurally* invalid proofs (wrong shapes, missing
    parts), never for a well-formed proof of a false statement.
    """


class SimulationError(ReproError):
    """GPU-simulator misconfiguration or invariant violation."""


class PipelineError(ReproError):
    """Pipeline scheduler misconfiguration."""


class ZkmlError(ReproError):
    """Verifiable-ML application failure."""


class ExecutionError(ReproError):
    """Proving-backend misconfiguration (unknown selector, bad composition)."""


class ServiceError(ReproError):
    """Streaming proof-service failure (submission, lifecycle, tickets)."""


class AdmissionError(ServiceError):
    """A request was rejected at the service door, with a typed reason.

    Admission control turns overload into an immediate, explicit signal
    instead of unbounded queueing: callers inspect :attr:`reason`
    (``"queue_full"``, ``"bulk_shed"``, ``"service_closed"``) and decide
    whether to retry, downgrade, or shed load themselves.
    """

    def __init__(self, reason: str, detail: str = "") -> None:
        self.reason = reason
        message = f"request rejected: {reason}"
        if detail:
            message += f" ({detail})"
        super().__init__(message)
