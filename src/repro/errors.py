"""Exception hierarchy for the BatchZK reproduction library.

All library-raised errors derive from :class:`ReproError` so callers can
catch everything from this package with a single ``except`` clause while
still being able to discriminate by subsystem.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for every error raised by the ``repro`` package."""


class FieldError(ReproError):
    """Invalid field construction or cross-field operation."""


class FieldMismatchError(FieldError):
    """Two elements from different fields were combined."""

    def __init__(self, left: object, right: object) -> None:
        super().__init__(
            f"cannot combine elements of different fields: {left!r} vs {right!r}"
        )


class NonInvertibleError(FieldError):
    """Attempted to invert zero (or a non-unit)."""


class HashError(ReproError):
    """Malformed input to a hash primitive."""


class MerkleError(ReproError):
    """Invalid Merkle tree construction or proof."""


class SumcheckError(ReproError):
    """Sum-check proving/verification failure."""


class EncodingError(ReproError):
    """Linear-time encoder failure (bad parameters, wrong lengths)."""


class CommitmentError(ReproError):
    """Polynomial-commitment failure (commit/open/verify)."""


class CircuitError(ReproError):
    """Arithmetic-circuit construction or evaluation failure."""


class ProofError(ReproError):
    """Proof assembly or deserialization failure."""


class VerificationError(ReproError):
    """A proof failed verification.

    Verifiers in this library return ``bool`` on the happy path; this error
    is raised only for *structurally* invalid proofs (wrong shapes, missing
    parts), never for a well-formed proof of a false statement.
    """


class SimulationError(ReproError):
    """GPU-simulator misconfiguration or invariant violation."""


class PipelineError(ReproError):
    """Pipeline scheduler misconfiguration."""


class ZkmlError(ReproError):
    """Verifiable-ML application failure."""


class ExecutionError(ReproError):
    """Proving-backend misconfiguration (unknown selector, bad composition)."""


class ResilienceError(ReproError):
    """Resilience-layer failure (fault plan, breaker, journal misuse)."""


class InjectedFault(ResilienceError):
    """A deliberately injected failure from a :class:`FaultInjector`.

    Distinguishable from organic failures so chaos drills can assert that
    every observed failure was one the plan scheduled.  ``kind`` names the
    fault class (``"crash"``, ``"outage"``, …).
    """

    def __init__(self, kind: str, detail: str = "") -> None:
        self.kind = kind
        message = f"injected fault: {kind}"
        if detail:
            message += f" ({detail})"
        super().__init__(message)


class BackendUnavailableError(ResilienceError):
    """A child backend cannot take work right now (outage or breaker)."""


class CircuitOpenError(BackendUnavailableError):
    """A circuit breaker rejected the call without attempting it."""


class QuarantinedTaskError(ResilienceError):
    """A task failed across enough distinct children to be quarantined.

    Returned *in the task's result slot* by
    :class:`~repro.resilience.ResilientBackend` instead of failing the
    whole batch: callers inspect :attr:`task_id`, the child backends it
    was :attr:`tried_on`, and the :attr:`last_error` text.
    """

    def __init__(
        self, task_id: int, tried_on: list, last_error: str = ""
    ) -> None:
        self.task_id = task_id
        self.tried_on = list(tried_on)
        self.last_error = last_error
        super().__init__(
            f"task {task_id} quarantined after failing on "
            f"{len(self.tried_on)} children ({', '.join(self.tried_on)})"
            + (f": {last_error}" if last_error else "")
        )


class JournalError(ResilienceError):
    """Proof-journal corruption or spec mismatch on resume."""


class ClusterError(ReproError):
    """Distributed-cluster failure (protocol, node lifecycle, routing)."""


class ProtocolMismatchError(ClusterError):
    """Node and coordinator disagree on the wire format or library version.

    Raised *before* any payload is deserialized, so a version skew fails
    with a typed, actionable message instead of a pickle explosion deep
    inside the frame decoder.  ``ours``/``theirs`` carry the two sides'
    version spellings when known.
    """

    def __init__(
        self, detail: str, ours: str = "", theirs: str = ""
    ) -> None:
        self.ours = ours
        self.theirs = theirs
        message = f"protocol mismatch: {detail}"
        if ours or theirs:
            message += f" (ours {ours!r}, theirs {theirs!r})"
        super().__init__(message)


class NodeConnectionError(ClusterError):
    """A cluster peer hung up or the stream was cut mid-frame.

    The remote backend translates this into
    :class:`BackendUnavailableError` so the resilience layer treats a
    dead node as a blameless child-level outage.
    """


class ExperimentError(ReproError):
    """Experiment-runner failure (unknown experiment, malformed result,
    ledger misuse)."""


class ServiceError(ReproError):
    """Streaming proof-service failure (submission, lifecycle, tickets)."""


class AdmissionError(ServiceError):
    """A request was rejected at the service door, with a typed reason.

    Admission control turns overload into an immediate, explicit signal
    instead of unbounded queueing: callers inspect :attr:`reason`
    (``"queue_full"``, ``"bulk_shed"``, ``"service_closed"``) and decide
    whether to retry, downgrade, or shed load themselves.

    :attr:`retry_after_seconds` is the service's backoff hint, derived
    from its degradation-ladder state (``None`` when retrying is
    pointless, e.g. the service is closed): a *scaling* fleet suggests a
    short retry because capacity is already being added, while a
    *shedding* one pushes callers further out.
    """

    def __init__(
        self,
        reason: str,
        detail: str = "",
        *,
        retry_after_seconds: "float | None" = None,
    ) -> None:
        self.reason = reason
        self.retry_after_seconds = retry_after_seconds
        message = f"request rejected: {reason}"
        if detail:
            message += f" ({detail})"
        if retry_after_seconds is not None:
            message += f"; retry after {retry_after_seconds:.2f}s"
        super().__init__(message)
