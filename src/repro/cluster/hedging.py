"""Hedging primitives: tail-latency bookkeeping and a retry budget.

Hedged requests (the "tied requests" discipline from Dean & Barroso's
*The Tail at Scale*) re-issue a slow shard to a second node and take
whichever answer lands first.  Two pieces of state make that safe and
cheap enough to leave on by default:

* :class:`LatencyTracker` — a sliding window of observed shard
  latencies whose p95 sets the hedge delay.  Hedging only below the
  tail means the common case pays nothing: a hedge fires only when a
  shard has already taken longer than 95% of its recent peers.  The
  window records *client-observed* completion times (first success,
  hedged or not), so a working hedge keeps its own trigger calibrated
  instead of letting one slow node drag the delay up.

* :class:`TokenBucket` — a global budget on hedge issues.  During
  fleet-wide slowness (cold caches, host contention) every shard looks
  like a straggler; an unbudgeted hedger would double the fleet's load
  exactly when it can least afford it — the classic retry storm.  The
  bucket caps extra load at ``rate_per_second`` with a small burst
  allowance, and a denied hedge simply waits for the primary.

Both are thread-safe and clock-injectable for deterministic tests.
"""

from __future__ import annotations

import threading
import time
from collections import deque
from typing import Callable, Optional

from ..stats import percentile


class TokenBucket:
    """A thread-safe token bucket: ``try_acquire`` never blocks.

    Args:
        rate_per_second:  Sustained refill rate (tokens/second).
        burst:            Bucket capacity; starts full, so short bursts
                          up to this many acquisitions are admitted
                          even from cold.
        clock:            Monotonic seconds source (injectable).
    """

    def __init__(
        self,
        rate_per_second: float,
        burst: float,
        *,
        clock: Callable[[], float] = time.monotonic,
    ):
        self.rate_per_second = max(0.0, float(rate_per_second))
        self.burst = max(0.0, float(burst))
        self._clock = clock
        self._tokens = self.burst
        self._stamp = clock()
        self._lock = threading.Lock()
        self.granted = 0
        self.denied = 0

    def _refill_locked(self) -> None:
        now = self._clock()
        elapsed = max(0.0, now - self._stamp)
        self._stamp = now
        self._tokens = min(self.burst, self._tokens + elapsed * self.rate_per_second)

    def try_acquire(self, tokens: float = 1.0) -> bool:
        """Take ``tokens`` if available right now; never waits."""
        with self._lock:
            self._refill_locked()
            if self._tokens >= tokens:
                self._tokens -= tokens
                self.granted += 1
                return True
            self.denied += 1
            return False

    @property
    def available(self) -> float:
        """Current token count (after refill) — a gauge, not a reservation."""
        with self._lock:
            self._refill_locked()
            return self._tokens


class LatencyTracker:
    """Sliding-window shard latencies; p95 picks the hedge delay.

    ``percentile`` returns ``None`` until ``min_samples`` observations
    have arrived — hedging stays off while the estimate would be noise.
    """

    def __init__(self, window: int = 64, min_samples: int = 8):
        self.min_samples = max(1, int(min_samples))
        self._samples: deque = deque(maxlen=max(self.min_samples, int(window)))
        self._lock = threading.Lock()

    def record(self, seconds: float) -> None:
        with self._lock:
            self._samples.append(float(seconds))

    def __len__(self) -> int:
        with self._lock:
            return len(self._samples)

    def percentile(self, q: float) -> Optional[float]:
        """The q-th percentile of the window, or ``None`` if too few samples."""
        with self._lock:
            if len(self._samples) < self.min_samples:
                return None
            return percentile(list(self._samples), q)
