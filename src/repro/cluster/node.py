"""The proving node: a socket server wrapping any local backend.

``python -m repro node --listen HOST:PORT --backend pool:4`` turns one
host into a fleet member: the server speaks the framed protocol of
:mod:`repro.cluster.protocol`, executes each ``PROVE`` batch on the
wrapped :class:`~repro.execution.ProvingBackend`, and **streams**
results back — proofs leave the node in completed chunks while later
chunks are still proving, so the coordinator overlaps deserialization
and routing with remote proving (the paper's pipelining discipline,
applied across the wire).

Specs are canonicalized by value (:func:`~repro.kernels.spec_cache_key`)
before they reach the backend: every coordinator connection unpickles a
fresh :class:`~repro.runtime.ProverSpec` object, and without the memo
each request would build a new prover (and, for ``pool:N``, a new
process pool) behind the backend's identity-keyed caches.  With it, the
node pays one derivation per *circuit* per process — the cache-affinity
contract the coordinator's ring routing exists to exploit — and the
``STATS`` frame reports exactly how well that contract is holding:
per-task spec hits/misses plus the process-wide
:class:`~repro.kernels.SpecCache` / :class:`~repro.kernels.EncoderCache`
gauges.

``die_after`` is the chaos knob for failover drills: the node exits
hard (``os._exit``) after proving that many tasks, mid-batch and
without a goodbye frame — exactly what a kernel panic or an OOM kill
looks like from the coordinator's side.

The ``DRAIN`` frame is the opposite of ``die_after``: a peer (usually
the fleet supervisor about to scale in) asks the node to stop taking
work.  The node flips into draining mode — new ``PROVE`` batches are
refused with a typed *unavailable* error so the coordinator's breaker
routes around it — waits until every in-flight batch has streamed its
last ``RESULT``, then answers ``DRAIN_OK``.  Only after that
acknowledgement does the pool terminate the process, so a rolling
restart never loses a proof that was already being computed.
"""

from __future__ import annotations

import os
import socket
import socketserver
import threading
import time
from typing import Dict, Optional, Tuple

from ..core.serialize import serialize_proof
from ..errors import (
    BackendUnavailableError,
    ProtocolMismatchError,
    QuarantinedTaskError,
)
from ..execution.registry import BackendSelector, resolve_backend
from ..kernels.spec_cache import (
    default_encoder_cache,
    default_spec_cache,
    spec_cache_key,
)
from ..runtime.spec import ProverSpec
from ..runtime.stats import RuntimeStats, merge_runtime_stats
from . import protocol
from .protocol import LIBRARY_VERSION


def _record_dicts(stats: RuntimeStats) -> list:
    """Wire form of a run's task records (plain dicts, no classes)."""
    return [
        {
            "task_id": r.task_id,
            "attempts": r.attempts,
            "prove_seconds": r.prove_seconds,
            "latency_seconds": r.latency_seconds,
            "worker": r.worker,
            "stage_seconds": dict(r.stage_seconds) if r.stage_seconds else None,
        }
        for r in stats.records
    ]


class NodeServer:
    """One fleet member: a threaded TCP server over a local backend.

    Args:
        host/port:   Listen address; port 0 binds an ephemeral port
                     (read it back from :attr:`port` — the test and
                     :class:`~repro.cluster.NodePool` path).
        backend:     Selector string or backend instance to wrap.
        chunk_size:  Tasks proved per streamed ``RESULT`` frame; the
                     default (``None``) streams in chunks of the
                     backend's parallelism, so a serial node streams
                     per-task and a ``pool:4`` node keeps its pool full.
        die_after:   Chaos knob — hard-exit the process after this many
                     proofs (``None`` = never).
    """

    def __init__(
        self,
        host: str = "127.0.0.1",
        port: int = 0,
        backend: BackendSelector = "serial",
        *,
        chunk_size: Optional[int] = None,
        die_after: Optional[int] = None,
    ):
        self.backend = resolve_backend(backend)
        self.chunk_size = (
            max(1, chunk_size)
            if chunk_size
            else max(1, getattr(self.backend, "parallelism", 1))
        )
        self.die_after = die_after
        self.started_at = time.monotonic()
        self._lock = threading.Lock()
        #: Drain coordination: ``_in_flight`` counts PROVE batches being
        #: handled right now; ``_idle`` is notified as each one finishes
        #: so a DRAIN handler can wait for quiescence.
        self._idle = threading.Condition(self._lock)
        self._in_flight = 0
        self._draining = False
        #: Value-keyed canonical spec per circuit (bounds the backend's
        #: identity caches; one prover / pool runtime per circuit).
        self._specs: Dict[Tuple, ProverSpec] = {}
        #: Per-task affinity ledger: a task is a hit when its circuit
        #: was already resident when the batch arrived.
        self.spec_hits = 0
        self.spec_misses = 0
        self.proofs_total = 0
        self.batches_total = 0

        node = self

        class Handler(socketserver.BaseRequestHandler):
            def handle(self) -> None:  # pragma: no cover - thin shim
                node._serve_connection(self.request)

        class Server(socketserver.ThreadingTCPServer):
            allow_reuse_address = True
            daemon_threads = True

        self._server = Server((host, port), Handler)
        self.host, self.port = self._server.server_address[:2]

    # -- lifecycle -------------------------------------------------------------

    def start(self) -> "NodeServer":
        """Serve on a daemon thread (the in-process / test path)."""
        thread = threading.Thread(
            target=self._server.serve_forever,
            name=f"repro-node-{self.port}",
            daemon=True,
        )
        thread.start()
        return self

    def serve_forever(self) -> None:
        """Serve on the calling thread (the CLI path)."""
        self._server.serve_forever()

    def close(self) -> None:
        """Stop accepting and tear the listener down."""
        self._server.shutdown()
        self._server.server_close()

    # -- stats -----------------------------------------------------------------

    def stats(self) -> dict:
        """The ``STATS_OK`` payload: identity, throughput, cache gauges."""
        spec_cache = default_spec_cache()
        encoder_cache = default_encoder_cache()
        with self._lock:
            hits, misses = self.spec_hits, self.spec_misses
            proofs, batches = self.proofs_total, self.batches_total
            draining, in_flight = self._draining, self._in_flight
        looked_up = hits + misses
        return {
            "version": LIBRARY_VERSION,
            "backend": self.backend.name,
            "parallelism": getattr(self.backend, "parallelism", 1),
            "uptime_seconds": time.monotonic() - self.started_at,
            "draining": draining,
            "in_flight": in_flight,
            "proofs_total": proofs,
            "batches_total": batches,
            "circuits_resident": len(self._specs),
            "spec_affinity": {
                "hits": hits,
                "misses": misses,
                "hit_rate": (hits / looked_up) if looked_up else 0.0,
            },
            "spec_cache": {
                "hits": spec_cache.hits,
                "misses": spec_cache.misses,
                "size": len(spec_cache),
            },
            "encoder_cache": {
                "hits": encoder_cache.hits,
                "misses": encoder_cache.misses,
                "evictions": encoder_cache.evictions,
                "size": len(encoder_cache),
            },
        }

    # -- connection loop -------------------------------------------------------

    def _serve_connection(self, sock: socket.socket) -> None:
        try:
            kind, payload = protocol.recv_frame(sock)
            if kind != protocol.HELLO:
                protocol.send_frame(
                    sock,
                    protocol.ERROR,
                    protocol.error_payload(
                        f"expected HELLO, got {protocol.KIND_NAMES[kind]}",
                        mismatch=True,
                    ),
                )
                return
            try:
                protocol.check_version(payload, "HELLO")
            except ProtocolMismatchError as exc:
                protocol.send_frame(
                    sock,
                    protocol.ERROR,
                    protocol.error_payload(str(exc), mismatch=True),
                )
                return
            protocol.send_frame(
                sock,
                protocol.HELLO,
                protocol.hello_payload(
                    "node",
                    backend=self.backend.name,
                    parallelism=getattr(self.backend, "parallelism", 1),
                ),
            )
            while True:
                kind, payload = protocol.recv_frame(sock)
                if kind == protocol.BYE:
                    return
                if kind == protocol.PING:
                    protocol.send_frame(sock, protocol.PONG, {"t": time.time()})
                elif kind == protocol.STATS:
                    protocol.send_frame(sock, protocol.STATS_OK, self.stats())
                elif kind == protocol.DRAIN:
                    self._handle_drain(sock, payload)
                elif kind == protocol.PROVE:
                    self._handle_prove(sock, payload)
                else:
                    protocol.send_frame(
                        sock,
                        protocol.ERROR,
                        protocol.error_payload(
                            f"unexpected {protocol.KIND_NAMES[kind]} frame"
                        ),
                    )
        except ProtocolMismatchError as exc:
            # A peer from another build: answer typed, then hang up.
            try:
                protocol.send_frame(
                    sock,
                    protocol.ERROR,
                    protocol.error_payload(str(exc), mismatch=True),
                )
            except Exception:
                pass
        except Exception:
            # Connection torn down mid-frame; nothing to answer to.
            pass
        finally:
            try:
                sock.close()
            except OSError:
                pass

    # -- draining --------------------------------------------------------------

    def drain(self, timeout: Optional[float] = None) -> bool:
        """Stop accepting batches; wait for in-flight work to finish.

        Returns ``True`` once the node is quiescent, ``False`` if
        in-flight batches were still running when ``timeout`` expired
        (the node stays in draining mode either way — drain is one-way).
        """
        deadline = None if timeout is None else time.monotonic() + timeout
        with self._idle:
            self._draining = True
            while self._in_flight > 0:
                remaining = None if deadline is None else deadline - time.monotonic()
                if remaining is not None and remaining <= 0:
                    return False
                self._idle.wait(remaining)
            return True

    def _handle_drain(self, sock: socket.socket, payload: dict) -> None:
        timeout = payload.get("timeout")
        drained = self.drain(None if timeout is None else float(timeout))
        with self._lock:
            in_flight, proofs = self._in_flight, self.proofs_total
        protocol.send_frame(
            sock,
            protocol.DRAIN_OK,
            {
                "drained": drained,
                "in_flight": in_flight,
                "proofs_total": proofs,
                "version": LIBRARY_VERSION,
            },
        )

    # -- proving ---------------------------------------------------------------

    def _canonical_spec(self, spec: ProverSpec) -> Tuple[ProverSpec, bool]:
        """The node's one spec instance per circuit, plus residency."""
        key = spec_cache_key(spec)
        with self._lock:
            resident = key in self._specs
            if not resident:
                self._specs[key] = spec
            return self._specs[key], resident

    def _handle_prove(self, sock: socket.socket, payload: dict) -> None:
        try:
            protocol.check_version(payload, "PROVE")
        except ProtocolMismatchError as exc:
            protocol.send_frame(
                sock, protocol.ERROR,
                protocol.error_payload(str(exc), mismatch=True),
            )
            return
        with self._idle:
            if self._draining:
                protocol.send_frame(
                    sock, protocol.ERROR,
                    protocol.error_payload(
                        "node is draining — not accepting new batches",
                        unavailable=True,
                    ),
                )
                return
            self._in_flight += 1
        try:
            self._prove_batch(sock, payload)
        finally:
            with self._idle:
                self._in_flight -= 1
                self._idle.notify_all()

    def _prove_batch(self, sock: socket.socket, payload: dict) -> None:
        request = payload.get("request", 0)
        spec = payload["spec"]
        tasks = payload["tasks"]
        digest = spec.r1cs.digest().hex()
        if payload.get("digest") != digest:
            protocol.send_frame(
                sock, protocol.ERROR,
                protocol.error_payload(
                    f"routing digest {payload.get('digest')!r} does not "
                    f"match the shipped spec ({digest})",
                    mismatch=True,
                ),
            )
            return
        spec, resident = self._canonical_spec(spec)
        with self._lock:
            self.batches_total += 1
            if tasks:
                if resident:
                    self.spec_hits += len(tasks)
                else:
                    self.spec_misses += 1
                    self.spec_hits += len(tasks) - 1
        field = spec.r1cs.field
        chunk = max(1, int(payload.get("chunk") or self.chunk_size))
        part_stats = []
        start = time.perf_counter()
        try:
            for lo in range(0, len(tasks), chunk):
                batch = tasks[lo:lo + chunk]
                results, stats = self.backend.prove_tasks(spec, batch)
                part_stats.append(stats)
                entries = []
                for result in results:
                    if isinstance(result, QuarantinedTaskError):
                        entries.append({
                            "quarantined": {
                                "task_id": result.task_id,
                                "tried_on": list(result.tried_on),
                                "last_error": result.last_error,
                            }
                        })
                    else:
                        entries.append(
                            {"proof": serialize_proof(result, field)}
                        )
                with self._lock:
                    self.proofs_total += len(batch)
                    total = self.proofs_total
                if self.die_after is not None and total >= self.die_after:
                    # Crash drill: vanish mid-batch, no RESULT, no BYE.
                    os._exit(17)
                protocol.send_frame(
                    sock,
                    protocol.RESULT,
                    {
                        "request": request,
                        "start": lo,
                        "results": entries,
                        "records": _record_dicts(stats),
                    },
                )
        except BackendUnavailableError as exc:
            protocol.send_frame(
                sock, protocol.ERROR,
                protocol.error_payload(str(exc), unavailable=True),
            )
            return
        except Exception as exc:  # noqa: BLE001 - failure crosses the wire
            protocol.send_frame(
                sock, protocol.ERROR,
                protocol.error_payload(f"{type(exc).__name__}: {exc}"),
            )
            return
        merged = merge_runtime_stats(
            part_stats, total_seconds=time.perf_counter() - start
        )
        protocol.send_frame(
            sock,
            protocol.DONE,
            {
                "request": request,
                # Chunked dispatch would sum one worker per chunk; the
                # node's true concurrent capacity is its backend's.
                "workers": getattr(self.backend, "parallelism", 1),
                "retries": merged.retries,
                "timeouts": merged.timeouts,
                "busy_seconds": merged.busy_seconds,
                "total_seconds": merged.total_seconds,
                "fell_back_to_serial": merged.fell_back_to_serial,
            },
        )
