"""Distributed proving cluster (system S28 in DESIGN.md): scale out.

BatchZK scales *up* one machine with a pipelined GPU; a proving service
eventually scales *out* to many.  This package turns any local
:class:`~repro.execution.ProvingBackend` into a fleet member and any
client into a coordinator:

* :class:`NodeServer` — ``python -m repro node --listen HOST:PORT
  --backend pool:4`` serves the framed, versioned wire protocol of
  :mod:`repro.cluster.protocol` over TCP, streaming each batch's proofs
  back chunk by chunk and reporting its cache gauges in ``STATS``.
* :class:`RemoteBackend` / :class:`ClusterBackend` — ``remote:host:port``
  proxies one node; ``cluster:remote:a,remote:b,...`` routes batches by
  circuit digest over a consistent-hash :class:`HashRing`, so the same
  circuit always lands on the same nodes (their
  :class:`~repro.kernels.SpecCache` stays hot) and a dead node's arc
  fails over to its ring successors behind the S25 circuit breakers —
  ``resilient:cluster:...`` composes for task-level quarantine on top.
* :class:`LoadModel` / :class:`Autoscaler` / :class:`NodePool` — sizes
  the fleet from measured per-proof cost × live arrival rate (the same
  calibration discipline as :mod:`repro.gpu.costs`), actuating local
  node subprocesses and tracing every ``scale_decision``.

Proof bytes are invariant across all of it: a cluster proof is
byte-identical to a serial one, including after mid-batch node deaths.
"""

from .autoscale import Autoscaler, LoadModel, NodePool, drain_address, probe_node
from .coordinator import ClusterBackend
from .hedging import LatencyTracker, TokenBucket
from .node import NodeServer
from .protocol import PROTOCOL_VERSION
from .remote import RemoteBackend
from .ring import HashRing, key_point

__apidoc__ = """\
**The wire.** One frame = a 12-byte header (magic ``RPCL``, protocol
version, kind, payload length) + a pickled dict.  Every compatibility
check runs *before* unpickling: wrong magic, wrong frame revision, or a
`HELLO`/`PROVE` from a different `repro.__version__` raises a typed
`ProtocolMismatchError` naming both versions.  `PROVE` carries the
circuit digest next to the pickled spec and the node recomputes it, so
the routing key can never drift from the payload.  Nodes stream
`RESULT` frames per chunk — the coordinator deserializes early proofs
while late ones are still proving — then close the batch with `DONE`
(the run report).

**Routing.** `HashRing` places each node at 64 virtual SHA-256 points;
a batch's circuit digest hashes to a ring position and
`nodes_for(digest, k)` yields the clockwise succession: the owner, then
the failover order.  Affinity (same circuit → same nodes, hot caches)
and minimal remap (a join/leave moves ≈ 1/N of circuits) follow from
the construction; `ClusterBackend.cluster_stats()["cache_affinity"]`
measures the payoff as Σ hits / Σ lookups across the fleet's `STATS`.

**Hedged dispatch.** A node that is *slow* (not dead) never trips a
breaker; the coordinator covers that gap with hedging.  Every shard's
client-observed latency feeds a sliding `LatencyTracker`; once a shard
outlives `hedge_delay_factor` × the window's p95 (floored at
`min_hedge_delay_seconds`, default 50 ms), the same task indices are
re-issued to the shard's ring successor and the first successful result
wins — safe because both attempts produce byte-identical proofs.  A
global `TokenBucket` (`hedge_budget_per_second`/`hedge_budget_burst`)
caps hedge issues so fleet-wide slowness cannot amplify into a retry
storm; hedges are budget-gated, failover retries never are.  `hedge` /
`hedge_won` / `hedge_denied` trace events and
`cluster_stats()["hedging"]` expose the behavior.

**Graceful drain (protocol v2).** `DRAIN` flips a node into draining
mode: new `PROVE` batches are refused as *unavailable* (breakers route
around), in-flight batches stream their results to completion, then
`DRAIN_OK` acknowledges.  `RemoteBackend.drain(timeout)` /
`drain_address("host:port")` drive it client-side, and
`NodePool.retire(drain_timeout=…)` turns a scale-down into
unroute → drain → SIGTERM → (timeout) → SIGKILL.  `NodePool.close()`
terminates all children concurrently against one `terminate_timeout`
deadline and kills stragglers, so one wedged subprocess cannot hang
shutdown.

**Failure model.** Transport loss anywhere becomes
`BackendUnavailableError` — the same blameless-outage type the S25
layer speaks — so per-node `CircuitBreaker`s open on a dead peer, the
orphaned share re-runs on ring successors (`ring_rebalance` events),
and `resilient:cluster:...` adds task-level quarantine above.  Version
skew and digest disagreement are *not* retried: they are configuration
errors, and the fleet fails loudly.

**Autoscaling.** `LoadModel.from_stage_profile(stages,
node_parallelism=4)` calibrates per-proof busy-seconds from measured
stage timings; `target_nodes(rate)` is `ceil(rate × cost /
(parallelism × headroom))`.  `Autoscaler` grows immediately, shrinks
only after `shrink_patience` consecutive low readings (retiring a node
discards warm caches), and actuates a `NodePool` of local
`python -m repro node` subprocesses, emitting `scale_decision` /
`node_join` / `node_leave` on the shared span schema.
"""

__all__ = [
    "Autoscaler",
    "ClusterBackend",
    "HashRing",
    "LatencyTracker",
    "LoadModel",
    "NodePool",
    "NodeServer",
    "PROTOCOL_VERSION",
    "RemoteBackend",
    "TokenBucket",
    "drain_address",
    "key_point",
    "probe_node",
]
