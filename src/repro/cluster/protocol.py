"""The cluster wire format: length-prefixed, versioned frames over TCP.

One frame = a fixed header + a pickled payload dict::

    +-------+------------------+--------+--------------+  +---------+
    | MAGIC | protocol version |  kind  | payload len  |  | payload |
    | 4 B   | u16              |  u16   | u32          |  | pickle  |
    +-------+------------------+--------+--------------+  +---------+

The header is *not* pickled, so every compatibility check happens before
any payload byte is deserialized: a coordinator from a different build
fails with a typed :class:`~repro.errors.ProtocolMismatchError` naming
both versions, never a pickle explosion.  Two version gates apply:

* ``PROTOCOL_VERSION`` in the header pins the frame layout itself;
* the library version (``repro.__version__``) rides in every ``HELLO``
  and ``PROVE`` payload and is checked by the receiving side, because a
  pickled :class:`~repro.runtime.ProverSpec` is only portable between
  identical library builds.

``PROVE`` additionally carries the circuit digest alongside the pickled
spec; the node recomputes the digest from the spec it unpickled and
rejects any disagreement — the routing key and the payload can never
drift apart silently.

Frame kinds (client → node unless noted): ``HELLO`` (both directions,
handshake), ``PROVE`` (a task batch), ``RESULT`` (node → client, one
streamed chunk of finished proofs), ``DONE`` (node → client, end of a
batch with the run report), ``STATS``/``STATS_OK`` (cache and
throughput gauges), ``PING``/``PONG`` (liveness), ``ERROR`` (node →
client, typed failure), ``BYE`` (orderly close), ``DRAIN`` /
``DRAIN_OK`` (graceful shutdown: the node stops accepting new batches,
finishes what is in flight, then acknowledges — the handshake behind
the fleet's drain-then-terminate shrink path).
"""

from __future__ import annotations

import pickle
import socket
import struct
from typing import Any, Dict, Tuple

from .. import __version__ as LIBRARY_VERSION
from ..errors import ClusterError, NodeConnectionError, ProtocolMismatchError

MAGIC = b"RPCL"
#: v2 added the DRAIN/DRAIN_OK graceful-shutdown frames.
PROTOCOL_VERSION = 2

#: magic, protocol version, frame kind, payload length.
HEADER = struct.Struct("<4sHHI")

#: Refuse absurd frames before allocating for them (1 GiB).
MAX_PAYLOAD = 1 << 30

# -- frame kinds ---------------------------------------------------------------

HELLO = 1
PROVE = 2
RESULT = 3
DONE = 4
STATS = 5
STATS_OK = 6
PING = 7
PONG = 8
ERROR = 9
BYE = 10
DRAIN = 11
DRAIN_OK = 12

KIND_NAMES: Dict[int, str] = {
    HELLO: "HELLO",
    PROVE: "PROVE",
    RESULT: "RESULT",
    DONE: "DONE",
    STATS: "STATS",
    STATS_OK: "STATS_OK",
    PING: "PING",
    PONG: "PONG",
    ERROR: "ERROR",
    BYE: "BYE",
    DRAIN: "DRAIN",
    DRAIN_OK: "DRAIN_OK",
}


def recv_exact(sock: socket.socket, n: int) -> bytes:
    """Read exactly ``n`` bytes or raise :class:`NodeConnectionError`."""
    parts = []
    remaining = n
    while remaining > 0:
        try:
            chunk = sock.recv(min(remaining, 1 << 20))
        except OSError as exc:
            raise NodeConnectionError(f"socket error mid-frame: {exc}") from exc
        if not chunk:
            raise NodeConnectionError(
                f"peer closed the connection ({n - remaining}/{n} bytes read)"
            )
        parts.append(chunk)
        remaining -= len(chunk)
    return b"".join(parts)


def send_frame(sock: socket.socket, kind: int, payload: Dict[str, Any]) -> None:
    """Encode and transmit one frame."""
    if kind not in KIND_NAMES:
        raise ClusterError(f"unknown outbound frame kind {kind}")
    body = pickle.dumps(payload, protocol=4)
    if len(body) > MAX_PAYLOAD:
        raise ClusterError(f"frame payload too large: {len(body)} bytes")
    try:
        sock.sendall(HEADER.pack(MAGIC, PROTOCOL_VERSION, kind, len(body)) + body)
    except OSError as exc:
        raise NodeConnectionError(f"send failed: {exc}") from exc


def recv_frame(sock: socket.socket) -> Tuple[int, Dict[str, Any]]:
    """Receive one frame; every header check runs before unpickling.

    Raises :class:`ProtocolMismatchError` for a foreign magic, a frame
    layout from a different protocol revision, or an unknown frame kind;
    :class:`NodeConnectionError` when the peer hangs up mid-frame.
    """
    magic, version, kind, length = HEADER.unpack(recv_exact(sock, HEADER.size))
    if magic != MAGIC:
        raise ProtocolMismatchError(
            f"bad magic {magic!r} — peer is not a repro cluster endpoint"
        )
    if version != PROTOCOL_VERSION:
        raise ProtocolMismatchError(
            "frame protocol revision differs",
            ours=str(PROTOCOL_VERSION),
            theirs=str(version),
        )
    if kind not in KIND_NAMES:
        raise ProtocolMismatchError(f"unknown frame kind {kind}")
    if length > MAX_PAYLOAD:
        raise ClusterError(f"implausible frame length {length}")
    body = recv_exact(sock, length)
    try:
        payload = pickle.loads(body)
    except Exception as exc:  # corrupt body past a valid header
        raise ClusterError(f"undecodable {KIND_NAMES[kind]} payload: {exc}") from exc
    if not isinstance(payload, dict):
        raise ClusterError(
            f"{KIND_NAMES[kind]} payload must be a dict, "
            f"got {type(payload).__name__}"
        )
    return kind, payload


# -- handshake helpers ---------------------------------------------------------


def hello_payload(role: str, backend: str = "", parallelism: int = 0) -> dict:
    """The ``HELLO`` body each side sends: identity + library version."""
    return {
        "version": LIBRARY_VERSION,
        "role": role,
        "backend": backend,
        "parallelism": parallelism,
    }


def check_version(payload: Dict[str, Any], what: str) -> None:
    """Enforce the library-version gate on a ``HELLO``/``PROVE`` payload."""
    theirs = payload.get("version")
    if theirs != LIBRARY_VERSION:
        raise ProtocolMismatchError(
            f"{what} from a different library build",
            ours=LIBRARY_VERSION,
            theirs=str(theirs),
        )


def error_payload(message: str, *, unavailable: bool = False,
                  mismatch: bool = False) -> dict:
    """The ``ERROR`` body: message plus typed classification flags."""
    return {
        "message": message,
        "unavailable": bool(unavailable),
        "mismatch": bool(mismatch),
        "version": LIBRARY_VERSION,
    }
