"""The cluster coordinator: ring-routed dispatch across proving nodes.

``resolve_backend("cluster:remote:a:1,remote:b:2")`` builds a
:class:`ClusterBackend` whose children are (usually) remote nodes.  One
batch flows through three decisions:

1. **Affinity order** — the batch's circuit digest is looked up on a
   consistent-hash :class:`~repro.cluster.HashRing`; the resulting node
   order is deterministic per circuit, so the same circuit always lands
   on the same ordered subset of the fleet and every node's
   :class:`~repro.kernels.SpecCache` working set stays small and hot.
2. **Admission** — each candidate passes through its own
   :class:`~repro.resilience.CircuitBreaker` (the S25 state machine,
   reused verbatim): a node that just died is skipped without a connect
   attempt until its cooldown admits a probe.
3. **Sharding** — admitted nodes split the batch proportionally to
   their advertised ``parallelism`` with the same largest-remainder
   rounding every other composite backend uses, and shards run
   concurrently on threads.

A shard that fails with :class:`~repro.errors.BackendUnavailableError`
(the remote backend's translation of any transport loss) is *failed
over*: the coordinator emits a ``ring_rebalance`` event and re-runs the
orphaned tasks on the ring successors, round after round, until they
finish or no node is admissible.  Because every node proves
deterministically from the same canonical spec, a failover changes
*where* a proof is produced but never its bytes — the chaos drill in the
cluster tests pins that down.  Configuration errors
(:class:`~repro.errors.ProtocolMismatchError`, unknown selectors) are
never retried: a version-skewed fleet fails loudly, not slowly.

**Hedged dispatch** covers the failure mode breakers can't see: a node
that is *slow* rather than dead.  Each shard's client-observed latency
feeds a sliding :class:`~repro.cluster.hedging.LatencyTracker`; once a
shard has run longer than ``hedge_delay_factor`` × the window's p95
(floored at ``min_hedge_delay_seconds``), the coordinator re-issues the
same task indices to the shard's ring successor and takes whichever
attempt succeeds first.  Determinism makes this free of coordination:
both attempts produce byte-identical proofs, so "first result wins" is
safe by construction.  A global :class:`~repro.cluster.hedging.TokenBucket`
budget caps hedge issues per second — during fleet-wide slowness every
shard looks hedge-worthy, and doubling the load then is how retry
storms start.  Hedges are an *optimization* and are budget-gated;
failover retries are *correctness recovery* and never are.
"""

from __future__ import annotations

import threading
import time
from concurrent.futures import FIRST_COMPLETED, ThreadPoolExecutor, wait
from typing import Dict, List, Optional, Sequence, Set, Tuple

from ..core.batch import ProofTask
from ..core.proof import SnarkProof
from ..errors import (
    BackendUnavailableError,
    ClusterError,
    ExecutionError,
)
from ..execution.backend import ProvingBackend, _span_for
from ..execution.sharding import largest_remainder_shares
from ..resilience.health import OPEN, CLOSED, CircuitBreaker, HealthTracker
from ..runtime.spec import ProverSpec
from ..runtime.stats import RuntimeStats, merge_runtime_stats
from ..runtime.trace import JsonlTraceSink
from .hedging import LatencyTracker, TokenBucket
from .ring import HashRing


class _Member:
    """One fleet slot: a child backend plus its health machinery."""

    def __init__(
        self,
        member_id: str,
        backend: ProvingBackend,
        breaker: CircuitBreaker,
    ):
        self.id = member_id
        self.backend = backend
        self.breaker = breaker
        self.health = HealthTracker(member_id)

    @property
    def weight(self) -> float:
        return float(max(1, getattr(self.backend, "parallelism", 1)))


class _ShardRun:
    """In-flight state for one shard: primary attempt plus, maybe, a hedge.

    ``outcome`` stays ``None`` while any attempt for the shard is still
    outstanding; it becomes either a ``(results, stats)`` pair (first
    success wins) or the shard's :class:`BackendUnavailableError` once
    every attempt has failed.
    """

    __slots__ = (
        "member", "indices", "start", "outcome",
        "attempts_out", "hedge_state", "hedge_member",
    )

    def __init__(self, member: _Member, indices: List[int]):
        self.member = member
        self.indices = indices
        self.start = 0.0
        self.outcome = None
        self.attempts_out = 0
        self.hedge_state: Optional[str] = None  # None | issued | skipped
        self.hedge_member: Optional[_Member] = None


class ClusterBackend:
    """Composite backend routing batches over a node fleet by digest.

    Args:
        children:           Child backends (typically ``RemoteBackend``
                            instances; any ``ProvingBackend`` works, so
                            the tests can cluster in-process backends).
        replicas:           Virtual points per node on the hash ring.
        fanout:             Max nodes per batch (0 = use every admitted
                            node in affinity order — full throughput).
        failure_threshold:  Consecutive failures that open a node's
                            breaker (default 1: a dead TCP peer should
                            stop receiving work immediately).
        cooldown_seconds:   Open-breaker dwell before a probe.
        half_open_probes:   Probe budget while half-open.
        max_unavailable_seconds:  How long one batch keeps waiting for
                            *any* admissible node before giving up.
        hedge:              Enable hedged dispatch (tail-latency
                            mitigation; needs ≥ 2 ring members to act).
        hedge_delay_factor: Hedge once a shard exceeds this multiple of
                            the window's p95 latency.
        min_hedge_delay_seconds:  Floor on the hedge delay, so
                            microsecond-fast in-process fleets don't
                            hedge on scheduler jitter.
        hedge_min_samples / hedge_window:  Latency-window shape; hedging
                            stays off until ``hedge_min_samples`` shard
                            completions have been observed.
        hedge_budget_per_second / hedge_budget_burst:  Global token
                            bucket bounding hedge issues (the
                            anti-retry-storm valve).
    """

    def __init__(
        self,
        children: Sequence[ProvingBackend],
        *,
        replicas: int = 64,
        fanout: int = 0,
        failure_threshold: int = 1,
        cooldown_seconds: float = 0.25,
        half_open_probes: int = 1,
        max_unavailable_seconds: float = 5.0,
        hedge: bool = True,
        hedge_delay_factor: float = 1.5,
        min_hedge_delay_seconds: float = 0.05,
        hedge_min_samples: int = 8,
        hedge_window: int = 64,
        hedge_budget_per_second: float = 4.0,
        hedge_budget_burst: float = 8.0,
    ):
        children = list(children)
        if not children:
            raise ClusterError("ClusterBackend needs at least one node")
        if fanout < 0:
            raise ClusterError(f"fanout must be >= 0, got {fanout}")
        self.replicas = replicas
        self.fanout = fanout
        self.failure_threshold = failure_threshold
        self.cooldown_seconds = cooldown_seconds
        self.half_open_probes = half_open_probes
        self.max_unavailable_seconds = max_unavailable_seconds
        self.hedge = hedge
        self.hedge_delay_factor = hedge_delay_factor
        self.min_hedge_delay_seconds = min_hedge_delay_seconds
        self._latency = LatencyTracker(
            window=hedge_window, min_samples=hedge_min_samples
        )
        self._hedge_budget = TokenBucket(
            hedge_budget_per_second, hedge_budget_burst
        )
        self.hedges_issued = 0
        self.hedges_won = 0
        self.hedges_denied = 0
        self._lock = threading.Lock()
        self._members: Dict[str, _Member] = {}
        self._joined = 0
        self.ring = HashRing(replicas=replicas)
        #: (event, fields) pairs emitted by breaker transitions between
        #: runs; flushed onto the next run's span.
        self._pending_events: List[Tuple[str, dict]] = []
        for child in children:
            self._admit_member(child, announce=False)
        self.name = "cluster:" + ",".join(
            member.backend.name for member in self._members.values()
        )

    # -- membership ------------------------------------------------------------

    @property
    def parallelism(self) -> int:
        with self._lock:
            return max(
                1,
                sum(int(m.weight) for m in self._members.values()),
            )

    @property
    def members(self) -> List[_Member]:
        with self._lock:
            return list(self._members.values())

    def _admit_member(
        self, backend: ProvingBackend, *, announce: bool
    ) -> _Member:
        with self._lock:
            member_id = f"{self._joined}:{backend.name}"
            self._joined += 1

        def on_transition(
            from_state: str, to_state: str, member_id: str = member_id
        ) -> None:
            fields = {"node": member_id, "from": from_state, "to": to_state}
            with self._lock:
                self._pending_events.append(("breaker", dict(fields)))
                if to_state == OPEN:
                    self._pending_events.append(
                        ("node_leave", {"node": member_id,
                                        "reason": "breaker_open"})
                    )
                elif to_state == CLOSED and from_state != CLOSED:
                    self._pending_events.append(
                        ("node_join", {"node": member_id,
                                       "reason": "breaker_closed"})
                    )

        breaker = CircuitBreaker(
            failure_threshold=self.failure_threshold,
            cooldown_seconds=self.cooldown_seconds,
            half_open_probes=self.half_open_probes,
            on_transition=on_transition,
        )
        member = _Member(member_id, backend, breaker)
        with self._lock:
            self._members[member_id] = member
            if announce:
                self._pending_events.append(
                    ("node_join", {"node": member_id, "reason": "added"})
                )
                self._pending_events.append(
                    ("ring_rebalance",
                     {"node": member_id, "nodes": len(self._members)})
                )
        self.ring.add(member_id)
        return member

    def add_node(self, backend: ProvingBackend) -> str:
        """Join a node mid-flight; only ≈1/N of circuits re-home to it."""
        return self._admit_member(backend, announce=True).id

    def remove_node(self, member_id: str) -> None:
        """Retire a node; its ring arcs fall to the clockwise successors."""
        with self._lock:
            member = self._members.pop(member_id, None)
            if member is None:
                raise ClusterError(f"no cluster member {member_id!r}")
            self._pending_events.append(
                ("node_leave", {"node": member_id, "reason": "removed"})
            )
            self._pending_events.append(
                ("ring_rebalance",
                 {"node": member_id, "nodes": len(self._members)})
            )
        self.ring.remove(member_id)
        close = getattr(member.backend, "close", None)
        if callable(close):
            try:
                close()
            except Exception:
                pass

    def close(self) -> None:
        """Close every child that holds a connection."""
        for member in self.members:
            close = getattr(member.backend, "close", None)
            if callable(close):
                try:
                    close()
                except Exception:
                    pass

    # -- dispatch --------------------------------------------------------------

    def _flush_events(self, ctx) -> None:
        with self._lock:
            pending, self._pending_events = self._pending_events, []
        for event, fields in pending:
            ctx.emit(event, **fields)

    def _affinity_order(self, digest: bytes) -> List[str]:
        want = len(self.ring) if self.fanout == 0 else self.fanout
        return self.ring.nodes_for(digest, max(1, want))

    def prove_tasks(
        self,
        spec: ProverSpec,
        tasks: Sequence[ProofTask],
        *,
        trace: Optional[JsonlTraceSink] = None,
        parent: Optional[str] = None,
    ) -> Tuple[List[SnarkProof], RuntimeStats]:
        tasks = list(tasks)
        ctx = _span_for(trace, parent)
        digest = spec.r1cs.digest()
        start = time.perf_counter()
        ctx.emit(
            "cluster_start", backend=self.name, tasks=len(tasks),
            nodes=len(self.ring), circuit=digest.hex()[:16],
        )
        self._flush_events(ctx)
        results: List[Optional[SnarkProof]] = [None] * len(tasks)
        part_stats: List[RuntimeStats] = []
        pending: List[int] = list(range(len(tasks)))
        deadline = time.monotonic() + self.max_unavailable_seconds
        round_no = 0
        while pending:
            round_no += 1
            order = self._affinity_order(digest)
            admitted: List[_Member] = []
            with self._lock:
                members = dict(self._members)
            for member_id in order:
                member = members.get(member_id)
                if member is not None and member.breaker.acquire():
                    admitted.append(member)
            if not admitted:
                self._flush_events(ctx)
                waits = [
                    m.breaker.seconds_until_probe()
                    for m in members.values()
                ]
                wait = min((w for w in waits), default=0.0)
                if time.monotonic() + wait > deadline:
                    raise BackendUnavailableError(
                        f"{self.name}: no admissible node for "
                        f"{len(pending)} tasks after {round_no - 1} "
                        "failover rounds; health: "
                        + "; ".join(
                            m.health.summary() for m in members.values()
                        )
                    )
                time.sleep(max(wait, 0.01))
                continue
            shares = largest_remainder_shares(
                len(pending), [m.weight for m in admitted]
            )
            plan: List[Tuple[_Member, List[int]]] = []
            lo = 0
            for member, share in zip(admitted, shares):
                if share == 0:
                    # Admitted but unused: return the probe slot.
                    member.breaker.release()
                    continue
                plan.append((member, pending[lo:lo + share]))
                lo += share
            if round_no > 1:
                ctx.emit(
                    "ring_rebalance",
                    node=",".join(m.id for m, _ in plan),
                    reassigned=len(pending), round=round_no,
                )

            def run_shard(member: _Member, indices: List[int]):
                return member.backend.prove_tasks(
                    spec, [tasks[i] for i in indices],
                    trace=ctx.sink, parent=ctx.span,
                )

            outcomes = self._run_plan(plan, order, run_shard, ctx)
            still_pending: List[int] = []
            for (member, indices), outcome in zip(plan, outcomes):
                if isinstance(outcome, BackendUnavailableError):
                    still_pending.extend(indices)
                    ctx.emit(
                        "node_failure", node=member.id,
                        tasks=len(indices), error=str(outcome)[:160],
                    )
                    continue
                shard_results, shard_stats = outcome
                for index, result in zip(indices, shard_results):
                    results[index] = result
                part_stats.append(shard_stats)
            self._flush_events(ctx)
            pending = still_pending
        stats = merge_runtime_stats(
            part_stats, total_seconds=time.perf_counter() - start
        )
        ctx.emit(
            "cluster_end", proofs=len(tasks), rounds=round_no,
            seconds=stats.total_seconds,
        )
        if ctx.sink is not None:
            ctx.sink.flush()
        return results, stats  # type: ignore[return-value]

    # -- hedged execution ------------------------------------------------------

    def hedge_delay(self) -> Optional[float]:
        """Current hedge trigger in seconds, or ``None`` while disabled.

        ``None`` means either hedging is off or the latency window has
        fewer than ``hedge_min_samples`` completions to estimate a p95.
        """
        if not self.hedge:
            return None
        p95 = self._latency.percentile(95.0)
        if p95 is None:
            return None
        return max(self.min_hedge_delay_seconds, p95 * self.hedge_delay_factor)

    def _timed_attempt(self, member: _Member, run_shard, indices: List[int]):
        start = time.monotonic()
        outcome = self._attempt(member, run_shard, indices)
        if not isinstance(outcome, BackendUnavailableError):
            self._latency.record(time.monotonic() - start)
        return outcome

    def _hedge_successor(
        self, order: List[str], exclude: Set[str]
    ) -> Optional[_Member]:
        """First admissible ring successor not already working the shard."""
        with self._lock:
            members = dict(self._members)
        for member_id in order:
            if member_id in exclude:
                continue
            member = members.get(member_id)
            if member is not None and member.breaker.acquire():
                return member
        return None

    def _run_plan(self, plan, order: List[str], run_shard, ctx):
        """Execute every shard, hedging stragglers; outcomes in plan order.

        Each outcome is a ``(results, stats)`` pair or the shard's
        :class:`BackendUnavailableError` (handed to the failover loop).
        A hedge loser keeps running in the background — its attempt
        concludes its own breaker bookkeeping — but the batch returns as
        soon as every shard has a first result.
        """
        delay = self.hedge_delay()
        if len(plan) == 1 and (delay is None or len(self.ring) <= 1):
            member, indices = plan[0]
            return [self._timed_attempt(member, run_shard, indices)]
        shards = [_ShardRun(member, indices) for member, indices in plan]
        executor = ThreadPoolExecutor(max_workers=2 * len(plan))
        futures: Dict = {}
        outstanding: Set = set()
        try:
            for shard in shards:
                shard.start = time.monotonic()
                shard.attempts_out = 1
                future = executor.submit(
                    self._attempt, shard.member, run_shard, shard.indices
                )
                futures[future] = (shard, shard.member, False)
                outstanding.add(future)
            while any(shard.outcome is None for shard in shards):
                timeout = None
                if delay is not None:
                    deadlines = [
                        shard.start + delay
                        for shard in shards
                        if shard.outcome is None and shard.hedge_state is None
                    ]
                    if deadlines:
                        timeout = max(0.0, min(deadlines) - time.monotonic())
                done, _ = wait(
                    outstanding, timeout=timeout, return_when=FIRST_COMPLETED
                )
                for future in done:
                    outstanding.discard(future)
                    shard, member, is_hedge = futures.pop(future)
                    shard.attempts_out -= 1
                    outcome = future.result()
                    if isinstance(outcome, BackendUnavailableError):
                        # Dead nodes are the failover loop's job, not
                        # the hedger's: give up on the shard only once
                        # no attempt for it is still running.
                        if shard.outcome is None and shard.attempts_out == 0:
                            shard.outcome = outcome
                        continue
                    if shard.outcome is None:
                        shard.outcome = outcome
                        self._latency.record(time.monotonic() - shard.start)
                        if is_hedge:
                            with self._lock:
                                self.hedges_won += 1
                            ctx.emit(
                                "hedge_won", node=member.id,
                                primary=shard.member.id,
                                tasks=len(shard.indices),
                            )
                if delay is not None:
                    now = time.monotonic()
                    for shard in shards:
                        if (
                            shard.outcome is not None
                            or shard.hedge_state is not None
                            or now < shard.start + delay
                        ):
                            continue
                        self._issue_hedge(
                            shard, order, delay, run_shard, ctx,
                            executor, futures, outstanding,
                        )
        finally:
            # Never block the batch on hedge losers: leave them to
            # finish (bounded by the remote io timeout) and conclude
            # their breakers in the background.
            executor.shutdown(wait=False)
        return [shard.outcome for shard in shards]

    def _issue_hedge(
        self, shard: _ShardRun, order, delay, run_shard, ctx,
        executor, futures, outstanding,
    ) -> None:
        successor = self._hedge_successor(order, {shard.member.id})
        if successor is None:
            shard.hedge_state = "skipped"
            ctx.emit(
                "hedge_denied", primary=shard.member.id,
                reason="no_successor", tasks=len(shard.indices),
            )
            return
        if not self._hedge_budget.try_acquire():
            successor.breaker.release()
            shard.hedge_state = "skipped"
            with self._lock:
                self.hedges_denied += 1
            ctx.emit(
                "hedge_denied", primary=shard.member.id,
                reason="budget", tasks=len(shard.indices),
            )
            return
        shard.hedge_state = "issued"
        shard.hedge_member = successor
        shard.attempts_out += 1
        with self._lock:
            self.hedges_issued += 1
        ctx.emit(
            "hedge", node=successor.id, primary=shard.member.id,
            tasks=len(shard.indices),
            delay_ms=round(delay * 1000.0, 3),
        )
        future = executor.submit(
            self._attempt, successor, run_shard, shard.indices
        )
        futures[future] = (shard, successor, True)
        outstanding.add(future)

    @staticmethod
    def _attempt(member: _Member, run_shard, indices: List[int]):
        """Run one shard, concluding the breaker either way.

        Returns the (results, stats) pair, or the
        :class:`BackendUnavailableError` itself for the failover loop —
        any *other* exception (protocol mismatch, proving bug)
        propagates and fails the batch, because retrying it elsewhere
        would hide a real defect.
        """
        try:
            outcome = run_shard(member, indices)
        except BackendUnavailableError as exc:
            member.breaker.record_failure()
            member.health.record_failure(str(exc))
            return exc
        except Exception as exc:
            member.breaker.record_failure()
            member.health.record_failure(str(exc))
            raise
        member.breaker.record_success()
        member.health.record_success(tasks=len(indices))
        return outcome

    # -- observability ---------------------------------------------------------

    def cluster_stats(self) -> dict:
        """Fleet-wide gauges, including the aggregate cache affinity.

        ``cache_affinity`` is Σ spec-affinity hits / Σ lookups across
        every reachable node — the fraction of tasks that arrived at a
        node already holding their circuit.  Ring routing exists to keep
        this near 1.0; the affinity test asserts ≥ 0.9.
        """
        nodes = {}
        hits = misses = 0
        for member in self.members:
            fetch = getattr(member.backend, "fetch_stats", None)
            if not callable(fetch):
                nodes[member.id] = {"reachable": False, "local": True}
                continue
            try:
                payload = fetch()
            except (BackendUnavailableError, ExecutionError) as exc:
                nodes[member.id] = {"reachable": False,
                                    "error": str(exc)[:120]}
                continue
            payload["reachable"] = True
            nodes[member.id] = payload
            affinity = payload.get("spec_affinity") or {}
            hits += int(affinity.get("hits") or 0)
            misses += int(affinity.get("misses") or 0)
        looked_up = hits + misses
        with self._lock:
            hedging = {
                "enabled": self.hedge,
                "issued": self.hedges_issued,
                "won": self.hedges_won,
                "denied": self.hedges_denied,
                "samples": len(self._latency),
            }
        hedging["delay_seconds"] = self.hedge_delay()
        hedging["budget_available"] = self._hedge_budget.available
        return {
            "backend": self.name,
            "nodes": nodes,
            "ring_nodes": len(self.ring),
            "hedging": hedging,
            "cache_affinity": {
                "hits": hits,
                "misses": misses,
                "hit_rate": (hits / looked_up) if looked_up else 0.0,
            },
            "health": {
                member.id: member.health.summary()
                for member in self.members
            },
        }
