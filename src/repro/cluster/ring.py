"""Consistent-hash ring for cache-affinity task routing.

The coordinator routes every batch by its circuit digest: the digest
hashes to a point on a ring of 2^64 positions, and the batch's preferred
nodes are the ring's clockwise successors from that point.  Two
properties make this the right structure for a proving fleet:

* **Affinity** — the same circuit always maps to the same node order, so
  a node sees the same circuits batch after batch and its
  :class:`~repro.kernels.SpecCache` / :class:`~repro.kernels.EncoderCache`
  stay hot; different circuits start at different ring points, spreading
  load across the fleet.
* **Minimal remap** — each node owns ``replicas`` scattered virtual
  points, so adding or removing one node moves only the keys in that
  node's own arcs (≈ 1/N of the keyspace), never reshuffling the other
  nodes' cache working sets — the property the ring tests pin down.

The ring is deterministic (SHA-256 placement, no RNG) and thread-safe
for the coordinator's concurrent dispatch threads.
"""

from __future__ import annotations

import bisect
import hashlib
import threading
from typing import Iterable, List, Tuple

from ..errors import ClusterError


def _point(data: bytes) -> int:
    """A ring position in [0, 2^64) from arbitrary bytes."""
    return int.from_bytes(hashlib.sha256(data).digest()[:8], "big")


def key_point(key: bytes) -> int:
    """The ring position of a routing key (e.g. a circuit digest)."""
    return _point(b"key|" + key)


class HashRing:
    """A consistent-hash ring over opaque node identifiers.

    >>> ring = HashRing(["a", "b", "c"])
    >>> ring.node_for(b"circuit-digest") in ("a", "b", "c")
    True
    >>> ring.nodes_for(b"circuit-digest", 3)  # distinct, affinity order
    ['c', 'a', 'b']
    """

    def __init__(self, nodes: Iterable[str] = (), replicas: int = 64):
        if replicas < 1:
            raise ClusterError(f"replicas must be >= 1, got {replicas}")
        self.replicas = replicas
        self._lock = threading.Lock()
        self._nodes: List[str] = []
        #: Sorted (point, node) pairs — the ring itself.
        self._ring: List[Tuple[int, str]] = []
        for node in nodes:
            self.add(node)

    def __len__(self) -> int:
        return len(self._nodes)

    @property
    def nodes(self) -> List[str]:
        """Member identifiers in insertion order."""
        with self._lock:
            return list(self._nodes)

    def _points_of(self, node: str) -> List[int]:
        return [
            _point(f"node|{node}|{replica}".encode())
            for replica in range(self.replicas)
        ]

    def add(self, node: str) -> None:
        """Join one node (its virtual points enter the ring)."""
        with self._lock:
            if node in self._nodes:
                raise ClusterError(f"node {node!r} already on the ring")
            self._nodes.append(node)
            for point in self._points_of(node):
                bisect.insort(self._ring, (point, node))

    def remove(self, node: str) -> None:
        """Leave one node (only its own arcs are reassigned)."""
        with self._lock:
            if node not in self._nodes:
                raise ClusterError(f"node {node!r} is not on the ring")
            self._nodes.remove(node)
            self._ring = [entry for entry in self._ring if entry[1] != node]

    def node_for(self, key: bytes) -> str:
        """The key's owner: the first virtual point clockwise from it."""
        return self.nodes_for(key, 1)[0]

    def nodes_for(self, key: bytes, count: int) -> List[str]:
        """Up to ``count`` *distinct* nodes in clockwise (affinity) order.

        The first entry is the key's owner; the rest are the failover
        succession — the coordinator walks this list when a node's
        breaker is open or its dispatch fails.
        """
        if count < 1:
            raise ClusterError(f"count must be >= 1, got {count}")
        with self._lock:
            if not self._ring:
                raise ClusterError("the ring has no nodes")
            found: List[str] = []
            start = bisect.bisect_right(self._ring, (key_point(key),))
            for offset in range(len(self._ring)):
                _, node = self._ring[(start + offset) % len(self._ring)]
                if node not in found:
                    found.append(node)
                    if len(found) == count or len(found) == len(self._nodes):
                        break
            return found
