"""Load-model autoscaling: size the fleet from measured costs and demand.

The paper sizes its pipeline from measured per-module costs; the
autoscaler applies the same discipline to fleet capacity.  Demand is
``arrival_rate × per-proof cost`` busy-seconds per second — the arrival
rate comes from live :class:`~repro.service.ServiceStats` and the
per-proof cost from a measured stage profile via
:func:`~repro.gpu.costs.proof_cost_seconds` — and supply is
``nodes × parallelism × headroom``.  :class:`LoadModel` turns that
division into a target node count; :class:`Autoscaler` adds the control
discipline (scale-up immediately, scale-down only after
``shrink_patience`` consecutive low readings, both behind a cooldown) so
a bursty arrival process does not flap the fleet; :class:`NodePool`
supplies the actuator — local ``python -m repro node`` subprocesses,
spawned on ephemeral ports and retired LIFO.

Every decision is observable: ``scale_decision`` events (and the
``node_join`` / ``node_leave`` each spawn/retire implies) ride the same
span schema as the rest of the runtime, each stamped with a ``node``
field, so one JSONL trace shows a latency spike, the scale-up it
triggered, and the rebalance that followed.
"""

from __future__ import annotations

import os
import subprocess
import sys
import threading
import time
from dataclasses import dataclass
from typing import Callable, List, Mapping, Optional, Sequence

from ..errors import ClusterError
from ..gpu.costs import proof_cost_seconds, target_node_count
from ..runtime.trace import JsonlTraceSink, SpanContext
from . import protocol
from .remote import RemoteBackend


@dataclass(frozen=True)
class LoadModel:
    """Capacity arithmetic for one circuit's proving workload.

    Args:
        per_proof_seconds: Busy CPU-seconds one proof costs (from a
            measured stage profile, or a bench's throughput inverse).
        node_parallelism:  Concurrent proofs one node sustains (its
            backend's ``parallelism``).
        headroom:          Target utilization ceiling; the derate that
            keeps queueing latency finite.
    """

    per_proof_seconds: float
    node_parallelism: int = 1
    headroom: float = 0.8

    def __post_init__(self) -> None:
        if self.per_proof_seconds <= 0:
            raise ClusterError(
                f"per_proof_seconds must be > 0, got {self.per_proof_seconds}"
            )
        if self.node_parallelism < 1:
            raise ClusterError(
                f"node_parallelism must be >= 1, got {self.node_parallelism}"
            )
        if not 0.0 < self.headroom <= 1.0:
            raise ClusterError(
                f"headroom must be in (0, 1], got {self.headroom}"
            )

    @classmethod
    def from_stage_profile(
        cls,
        stage_seconds: Mapping[str, float],
        *,
        node_parallelism: int = 1,
        headroom: float = 0.8,
    ) -> "LoadModel":
        """Calibrate from a measured per-proof stage profile (the
        ``stages`` payload of a ``stage_timing`` trace event, or a
        :class:`~repro.kernels.StageProfile`'s totals)."""
        cost = proof_cost_seconds(stage_seconds)
        if cost <= 0:
            raise ClusterError(
                "stage profile has no measured time to calibrate from"
            )
        return cls(
            per_proof_seconds=cost,
            node_parallelism=node_parallelism,
            headroom=headroom,
        )

    def target_nodes(
        self, arrival_rate: float, *, min_nodes: int = 1, max_nodes: int = 16
    ) -> int:
        """Nodes needed for ``arrival_rate`` proofs/second (clamped)."""
        return target_node_count(
            arrival_rate,
            self.per_proof_seconds,
            self.node_parallelism,
            headroom=self.headroom,
            min_nodes=min_nodes,
            max_nodes=max_nodes,
        )

    def utilization(self, arrival_rate: float, nodes: int) -> float:
        """Fleet utilization ρ at ``nodes`` (1.0 = saturated, >1 = over)."""
        if nodes < 1:
            return float("inf") if arrival_rate > 0 else 0.0
        return (
            arrival_rate * self.per_proof_seconds
            / (nodes * self.node_parallelism)
        )


class NodePool:
    """Local node subprocesses: the autoscaler's actuator.

    Each :meth:`spawn` launches ``python -m repro node --listen
    host:0 --backend <selector>`` on an ephemeral port, waits for the
    child's ``READY host port`` line, and records its address; nodes
    retire LIFO so long-lived members (with the hottest caches) survive
    a scale-down.  The pool propagates ``PYTHONPATH`` so children import
    the same ``repro`` build that spawned them — the wire protocol's
    library-version gate would reject anything else.
    """

    def __init__(
        self,
        backend: str = "serial",
        *,
        host: str = "127.0.0.1",
        ready_timeout: float = 30.0,
        terminate_timeout: float = 5.0,
    ):
        self.backend = backend
        self.host = host
        self.ready_timeout = ready_timeout
        #: Seconds a child gets to exit after SIGTERM before SIGKILL.
        self.terminate_timeout = terminate_timeout
        self._procs: List[subprocess.Popen] = []
        self._addresses: List[str] = []
        self._lock = threading.Lock()

    # -- lifecycle -------------------------------------------------------------

    def _child_env(self) -> dict:
        env = dict(os.environ)
        src_dir = os.path.dirname(os.path.dirname(os.path.abspath(
            sys.modules["repro"].__file__)))
        existing = env.get("PYTHONPATH")
        env["PYTHONPATH"] = (
            src_dir + os.pathsep + existing if existing else src_dir
        )
        return env

    @staticmethod
    def _await_ready(proc: subprocess.Popen, timeout: float) -> str:
        """Block (bounded) for the child's ``READY host port`` line."""
        box: List[str] = []

        def read() -> None:
            line = proc.stdout.readline()
            box.append(line.decode("utf-8", "replace").strip())

        reader = threading.Thread(target=read, daemon=True)
        reader.start()
        reader.join(timeout)
        if not box or not box[0].startswith("READY "):
            proc.kill()
            got = box[0] if box else "<no output>"
            raise ClusterError(
                f"node did not come up within {timeout:.0f}s (got {got!r})"
            )
        _, host, port = box[0].split()
        return f"{host}:{port}"

    def spawn(self, extra_args: Sequence[str] = ()) -> str:
        """Launch one node; returns its ``host:port`` address."""
        cmd = [
            sys.executable, "-u", "-m", "repro", "node",
            "--listen", f"{self.host}:0",
            "--backend", self.backend,
            *extra_args,
        ]
        proc = subprocess.Popen(
            cmd,
            stdout=subprocess.PIPE,
            stderr=subprocess.DEVNULL,
            env=self._child_env(),
        )
        address = self._await_ready(proc, self.ready_timeout)
        with self._lock:
            self._procs.append(proc)
            self._addresses.append(address)
        return address

    def _stop(self, proc: subprocess.Popen) -> None:
        """SIGTERM, bounded wait, then SIGKILL — no child wedges a retire."""
        proc.terminate()
        try:
            proc.wait(timeout=self.terminate_timeout)
        except subprocess.TimeoutExpired:
            proc.kill()
            proc.wait()

    def retire(self, *, drain_timeout: Optional[float] = None) -> Optional[str]:
        """Stop the youngest node; returns its address (None if empty).

        With ``drain_timeout`` the node is first asked to ``DRAIN`` —
        stop accepting batches, finish in-flight work — over a dedicated
        connection, and only then terminated, so a scale-down never
        discards a proof that was already being computed.  Drain
        failures (the node is already dead, or too wedged to answer) are
        swallowed: the escalation path still guarantees termination.
        """
        with self._lock:
            if not self._procs:
                return None
            proc = self._procs.pop()
            address = self._addresses.pop()
        if drain_timeout is not None and proc.poll() is None:
            try:
                drain_address(address, timeout=drain_timeout)
            except Exception:
                pass
        self._stop(proc)
        return address

    def scale_to(self, count: int) -> List[str]:
        """Spawn or retire until ``count`` nodes run; returns addresses."""
        if count < 0:
            raise ClusterError(f"count must be >= 0, got {count}")
        while self.size < count:
            self.spawn()
        while self.size > count:
            self.retire()
        return self.addresses

    def reap(self) -> List[str]:
        """Drop nodes whose process already exited (e.g. a chaos drill
        ``--die-after`` exit); returns the dropped addresses."""
        dropped = []
        with self._lock:
            alive = [
                (proc, addr)
                for proc, addr in zip(self._procs, self._addresses)
                if proc.poll() is None
            ]
            dropped = [
                addr
                for proc, addr in zip(self._procs, self._addresses)
                if proc.poll() is not None
            ]
            self._procs = [proc for proc, _ in alive]
            self._addresses = [addr for _, addr in alive]
        return dropped

    def close(self) -> None:
        """Stop every node (idempotent), escalating to SIGKILL.

        All children are terminated *concurrently* against one shared
        ``terminate_timeout`` deadline; any child still alive at the
        deadline — a node ignoring SIGTERM mid-syscall, a wedged
        interpreter — is killed.  One hung subprocess can therefore
        delay shutdown by at most ``terminate_timeout`` seconds total,
        not per node.
        """
        with self._lock:
            procs, self._procs = self._procs, []
            self._addresses = []
        for proc in procs:
            if proc.poll() is None:
                proc.terminate()
        deadline = time.monotonic() + self.terminate_timeout
        for proc in procs:
            try:
                proc.wait(timeout=max(0.0, deadline - time.monotonic()))
            except subprocess.TimeoutExpired:
                proc.kill()
                proc.wait()

    def __enter__(self) -> "NodePool":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    # -- addressing ------------------------------------------------------------

    @property
    def size(self) -> int:
        with self._lock:
            return len(self._procs)

    @property
    def addresses(self) -> List[str]:
        with self._lock:
            return list(self._addresses)

    @property
    def selectors(self) -> List[str]:
        """``remote:host:port`` selector per live node."""
        return [f"remote:{address}" for address in self.addresses]

    def cluster_selector(self) -> str:
        """The ``cluster:...`` selector covering the whole pool."""
        selectors = self.selectors
        if not selectors:
            raise ClusterError("the pool has no nodes to route to")
        return "cluster:" + ",".join(selectors)

    def backends(self) -> List[RemoteBackend]:
        """Fresh :class:`RemoteBackend` clients, one per live node."""
        clients = []
        for address in self.addresses:
            host, port = address.rsplit(":", 1)
            clients.append(RemoteBackend(host, int(port)))
        return clients


class Autoscaler:
    """The control loop: observe demand, decide, actuate, trace.

    Scale-*up* reacts immediately (an under-provisioned fleet queues
    unboundedly); scale-*down* waits for ``shrink_patience`` consecutive
    low readings (a retired node throws its warm caches away, so the
    evidence bar is higher).  Both directions respect
    ``cooldown_seconds`` between actuations.

    Args:
        model:            The :class:`LoadModel` doing the arithmetic.
        pool:             Optional actuator.  A plain :class:`NodePool`
            is spawned/retired directly; any object exposing
            ``grow_to(target)`` / ``shrink_to(target)`` / ``size`` (the
            :class:`~repro.service.fleet.FleetActuator`, which also
            keeps the coordinator's ring in sync and drains before
            terminating) is delegated to instead.  Without one the
            autoscaler is a pure decision engine (dry-run mode —
            the CLI's ``autoscale`` verb and the planner tests).
        min_nodes/max_nodes: Fleet size clamp.
        cooldown_seconds: Minimum spacing between scale actions.
        shrink_patience:  Consecutive below-target readings required
            before the fleet shrinks.
        trace:            Optional JSONL sink for scale events.
        clock:            Injected monotonic clock (tests).
    """

    def __init__(
        self,
        model: LoadModel,
        pool: Optional[NodePool] = None,
        *,
        min_nodes: int = 1,
        max_nodes: int = 4,
        cooldown_seconds: float = 5.0,
        shrink_patience: int = 3,
        trace: Optional[JsonlTraceSink] = None,
        clock: Callable[[], float] = time.monotonic,
    ):
        if shrink_patience < 1:
            raise ClusterError(
                f"shrink_patience must be >= 1, got {shrink_patience}"
            )
        if min_nodes < 0 or max_nodes < max(1, min_nodes):
            raise ClusterError(
                f"bad bounds: min_nodes={min_nodes}, max_nodes={max_nodes}"
            )
        self.model = model
        self.pool = pool
        self.min_nodes = min_nodes
        self.max_nodes = max_nodes
        self.cooldown_seconds = cooldown_seconds
        self.shrink_patience = shrink_patience
        self._clock = clock
        self._ctx = SpanContext(trace, "autoscaler")
        self._last_action_at: Optional[float] = None
        self._low_streak = 0
        #: Dry-run fleet size when no pool is attached.
        self._virtual_size = min_nodes
        #: Every decision dict, in order (the planner tests read this).
        self.decisions: List[dict] = []

    @property
    def current_nodes(self) -> int:
        return self.pool.size if self.pool is not None else self._virtual_size

    def _in_cooldown(self, now: float) -> bool:
        return (
            self._last_action_at is not None
            and now - self._last_action_at < self.cooldown_seconds
        )

    def observe(self, arrival_rate: float) -> dict:
        """Feed one demand reading; decide, actuate, and report.

        Returns the decision record: ``target``/``current`` sizes, the
        ``action`` taken (``"grow"``, ``"shrink"``, ``"hold"``), and why
        a differing target was held (cooldown or patience).
        """
        if arrival_rate < 0:
            raise ClusterError(f"arrival_rate must be >= 0, got {arrival_rate}")
        now = self._clock()
        current = self.current_nodes
        target = self.model.target_nodes(
            arrival_rate, min_nodes=self.min_nodes, max_nodes=self.max_nodes
        )
        action = "hold"
        reason = "at_target"
        if target > current:
            self._low_streak = 0
            if self._in_cooldown(now):
                reason = "cooldown"
            else:
                action = "grow"
                reason = "demand"
        elif target < current:
            self._low_streak += 1
            if self._low_streak < self.shrink_patience:
                reason = f"patience {self._low_streak}/{self.shrink_patience}"
            elif self._in_cooldown(now):
                reason = "cooldown"
            else:
                action = "shrink"
                reason = "sustained_low_demand"
        else:
            self._low_streak = 0
        decision = {
            "arrival_rate": arrival_rate,
            "per_proof_seconds": self.model.per_proof_seconds,
            "utilization": self.model.utilization(arrival_rate, current),
            "current": current,
            "target": target,
            "action": action,
            "reason": reason,
        }
        self._ctx.emit("scale_decision", node="", **decision)
        if action != "hold":
            self._actuate(target, action)
            self._last_action_at = now
            self._low_streak = 0
        self.decisions.append(decision)
        if self._ctx.sink is not None:
            self._ctx.sink.flush()
        return decision

    def _actuate(self, target: int, action: str) -> None:
        if self.pool is None:
            self._virtual_size = target
            return
        # Duck-typed actuator seam: a FleetActuator grows the pool *and*
        # the coordinator's ring together, and shrinks through
        # drain-then-terminate; it emits its own node events.
        grow_to = getattr(self.pool, "grow_to", None)
        shrink_to = getattr(self.pool, "shrink_to", None)
        if callable(grow_to) and callable(shrink_to):
            if action == "grow":
                grow_to(target)
            else:
                shrink_to(target)
            return
        if action == "grow":
            while self.pool.size < target:
                address = self.pool.spawn()
                self._ctx.emit(
                    "node_join", node=f"remote:{address}", reason="scale_up"
                )
                self._ctx.emit(
                    "ring_rebalance", node=f"remote:{address}",
                    nodes=self.pool.size,
                )
        else:
            while self.pool.size > target:
                address = self.pool.retire()
                self._ctx.emit(
                    "node_leave", node=f"remote:{address}",
                    reason="scale_down",
                )
                self._ctx.emit(
                    "ring_rebalance", node=f"remote:{address}",
                    nodes=self.pool.size,
                )


def drain_address(address: str, timeout: float = 10.0) -> dict:
    """Drain the node at ``host:port`` over a dedicated connection.

    A fresh client matters: the coordinator's persistent connection may
    be mid-batch, and drain must not queue behind a long prove.  The
    socket timeout is the drain timeout plus margin, so a node that
    needs the full window to quiesce still gets to acknowledge.
    """
    host, port = address.rsplit(":", 1)
    client = RemoteBackend(
        host, int(port),
        connect_timeout=min(5.0, timeout + 1.0),
        io_timeout=timeout + 5.0,
    )
    try:
        return client.drain(timeout)
    finally:
        client.close()


def probe_node(address: str, timeout: float = 5.0) -> dict:
    """One-shot liveness + stats probe of ``host:port`` (CLI helper)."""
    host, port = address.rsplit(":", 1)
    client = RemoteBackend(
        host, int(port), connect_timeout=timeout, io_timeout=timeout
    )
    try:
        rtt = client.ping()
        stats = client.fetch_stats()
    finally:
        client.close()
    stats["ping_seconds"] = rtt
    stats["protocol_version"] = protocol.PROTOCOL_VERSION
    return stats
