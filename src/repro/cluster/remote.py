"""The client half of the wire: a `ProvingBackend` over a TCP node.

``resolve_backend("remote:host:port")`` yields a backend whose
``prove_tasks`` ships the spec and tasks to a
:class:`~repro.cluster.NodeServer` and consumes the streamed ``RESULT``
frames — so the first proofs are being deserialized on this side while
the node is still proving the tail of the batch.  Proof bytes cross the
wire in the canonical :func:`~repro.core.serialize_proof` encoding and
are decoded against the locally derived PCS parameters (via the
process-wide :class:`~repro.kernels.SpecCache`), which is why a remote
proof is *byte-identical* to a local serial one: the node never ships
parameters, only prover messages.

Failure translation is the seam the resilience layer composes on: any
transport-level loss (connection refused, reset, EOF mid-frame) raises
:class:`~repro.errors.BackendUnavailableError` — the blameless
child-level outage :class:`~repro.resilience.ResilientBackend` and
:class:`~repro.cluster.ClusterBackend` already know how to fail over —
while a version skew raises the typed
:class:`~repro.errors.ProtocolMismatchError` (an operator error no
amount of retrying fixes), and a node-side proving failure re-raises as
an ordinary execution failure attributable to the tasks.
"""

from __future__ import annotations

import socket
import threading
import time
from typing import List, Optional, Sequence, Tuple

from ..core.batch import ProofTask
from ..core.proof import SnarkProof
from ..core.serialize import deserialize_proof
from ..errors import (
    BackendUnavailableError,
    ExecutionError,
    NodeConnectionError,
    ProofError,
    ProtocolMismatchError,
    QuarantinedTaskError,
)
from ..execution.backend import _span_for
from ..kernels.spec_cache import default_spec_cache
from ..runtime.spec import ProverSpec
from ..runtime.stats import RuntimeStats, TaskRecord
from ..runtime.trace import JsonlTraceSink
from . import protocol


class RemoteBackend:
    """Execute batches on one remote proving node.

    The connection is persistent (one handshake per node lifetime, not
    per batch) and guarded by a lock: the backend protocol is not
    re-entrant, matching every other backend's contract.  ``parallelism``
    is learned from the node's ``HELLO`` and drives the coordinator's
    shard weights.

    Args:
        host/port:        The node's listen address.
        connect_timeout:  Seconds to wait for TCP connect + handshake.
        io_timeout:       Per-frame socket timeout while proving (a node
                          that stops answering counts as unavailable).
        chunk:            Override the node's streaming chunk size.
    """

    def __init__(
        self,
        host: str,
        port: int,
        *,
        connect_timeout: float = 5.0,
        io_timeout: float = 600.0,
        chunk: Optional[int] = None,
    ):
        self.host = host
        self.port = int(port)
        self.connect_timeout = connect_timeout
        self.io_timeout = io_timeout
        self.chunk = chunk
        self.name = f"remote:{host}:{port}"
        #: Updated from the node's HELLO on first contact.
        self.parallelism = 1
        self.node_backend: Optional[str] = None
        self._sock: Optional[socket.socket] = None
        self._lock = threading.Lock()
        self._requests = 0

    # -- connection ------------------------------------------------------------

    def _ensure_locked(self) -> socket.socket:
        if self._sock is not None:
            return self._sock
        try:
            sock = socket.create_connection(
                (self.host, self.port), timeout=self.connect_timeout
            )
        except OSError as exc:
            raise BackendUnavailableError(
                f"{self.name}: connect failed: {exc}"
            ) from exc
        try:
            sock.settimeout(self.io_timeout)
            protocol.send_frame(sock, protocol.HELLO,
                                protocol.hello_payload("coordinator"))
            kind, payload = protocol.recv_frame(sock)
            if kind == protocol.ERROR:
                self._raise_error(payload)
            if kind != protocol.HELLO:
                raise ProtocolMismatchError(
                    f"{self.name}: expected HELLO, "
                    f"got {protocol.KIND_NAMES.get(kind, kind)}"
                )
            protocol.check_version(payload, f"{self.name} HELLO")
        except (NodeConnectionError, OSError) as exc:
            sock.close()
            raise BackendUnavailableError(
                f"{self.name}: handshake failed: {exc}"
            ) from exc
        except Exception:
            sock.close()
            raise
        self.parallelism = max(1, int(payload.get("parallelism") or 1))
        self.node_backend = payload.get("backend")
        self._sock = sock
        return sock

    def _drop_locked(self) -> None:
        if self._sock is not None:
            try:
                self._sock.close()
            except OSError:
                pass
            self._sock = None

    def close(self) -> None:
        """Say goodbye and drop the connection (idempotent)."""
        with self._lock:
            if self._sock is not None:
                try:
                    protocol.send_frame(self._sock, protocol.BYE, {})
                except Exception:
                    pass
            self._drop_locked()

    @staticmethod
    def _raise_error(payload: dict) -> None:
        message = payload.get("message", "unspecified node error")
        if payload.get("mismatch"):
            raise ProtocolMismatchError(message)
        if payload.get("unavailable"):
            raise BackendUnavailableError(message)
        raise ExecutionError(f"node error: {message}")

    # -- liveness and gauges ---------------------------------------------------

    def _roundtrip(self, kind: int, payload: dict,
                   expect: int) -> dict:
        with self._lock:
            sock = self._ensure_locked()
            try:
                protocol.send_frame(sock, kind, payload)
                got, body = protocol.recv_frame(sock)
            except (NodeConnectionError, OSError) as exc:
                self._drop_locked()
                raise BackendUnavailableError(
                    f"{self.name}: {exc}"
                ) from exc
            if got == protocol.ERROR:
                self._raise_error(body)
            if got != expect:
                self._drop_locked()
                raise ProtocolMismatchError(
                    f"{self.name}: expected "
                    f"{protocol.KIND_NAMES[expect]}, "
                    f"got {protocol.KIND_NAMES.get(got, got)}"
                )
            return body

    def ping(self) -> float:
        """Round-trip seconds to the node (raises if unreachable)."""
        start = time.perf_counter()
        self._roundtrip(protocol.PING, {}, protocol.PONG)
        return time.perf_counter() - start

    def fetch_stats(self) -> dict:
        """The node's ``STATS`` payload (throughput + cache gauges)."""
        return self._roundtrip(protocol.STATS, {}, protocol.STATS_OK)

    def drain(self, timeout: Optional[float] = None) -> dict:
        """Ask the node to drain: refuse new batches, finish in-flight.

        Blocks until the node acknowledges with ``DRAIN_OK`` (its reply
        reports whether it reached quiescence within ``timeout``).  Use
        a *dedicated* client for this — the coordinator's persistent
        connection may be mid-batch, and drain should not queue behind
        a long prove.
        """
        return self._roundtrip(
            protocol.DRAIN, {"timeout": timeout}, protocol.DRAIN_OK
        )

    # -- proving ---------------------------------------------------------------

    def prove_tasks(
        self,
        spec: ProverSpec,
        tasks: Sequence[ProofTask],
        *,
        trace: Optional[JsonlTraceSink] = None,
        parent: Optional[str] = None,
    ) -> Tuple[List[SnarkProof], RuntimeStats]:
        tasks = list(tasks)
        ctx = _span_for(trace, parent)
        digest = spec.r1cs.digest()
        # Locally derived verification context: the PCS parameters the
        # proof blobs decode against (cached process-wide per circuit).
        params = default_spec_cache().get_pcs(spec).params
        field = spec.r1cs.field
        start = time.perf_counter()
        ctx.emit(
            "run_start", backend=self.name, node=self.name,
            tasks=len(tasks), workers=self.parallelism,
        )
        with self._lock:
            sock = self._ensure_locked()
            self._requests += 1
            request = self._requests
            results: List[Optional[SnarkProof]] = [None] * len(tasks)
            stats = RuntimeStats(workers=self.parallelism)
            try:
                protocol.send_frame(
                    sock,
                    protocol.PROVE,
                    {
                        "version": protocol.LIBRARY_VERSION,
                        "request": request,
                        "digest": digest.hex(),
                        "spec": spec,
                        "tasks": tasks,
                        "chunk": self.chunk,
                    },
                )
                while True:
                    kind, payload = protocol.recv_frame(sock)
                    if kind == protocol.ERROR:
                        self._raise_error(payload)
                    if kind == protocol.DONE:
                        stats.workers = max(
                            1, int(payload.get("workers") or 1)
                        )
                        stats.retries = int(payload.get("retries") or 0)
                        stats.timeouts = int(payload.get("timeouts") or 0)
                        stats.busy_seconds = float(
                            payload.get("busy_seconds") or 0.0
                        )
                        stats.fell_back_to_serial = bool(
                            payload.get("fell_back_to_serial")
                        )
                        break
                    if kind != protocol.RESULT:
                        raise ProtocolMismatchError(
                            f"{self.name}: unexpected "
                            f"{protocol.KIND_NAMES.get(kind, kind)} "
                            f"mid-batch"
                        )
                    lo = int(payload.get("start") or 0)
                    for offset, entry in enumerate(payload["results"]):
                        index = lo + offset
                        if index >= len(tasks):
                            raise ExecutionError(
                                f"{self.name}: result index {index} out "
                                f"of range for {len(tasks)} tasks"
                            )
                        quarantined = entry.get("quarantined")
                        if quarantined is not None:
                            results[index] = QuarantinedTaskError(
                                quarantined["task_id"],
                                quarantined["tried_on"],
                                quarantined.get("last_error", ""),
                            )
                        else:
                            results[index] = deserialize_proof(
                                entry["proof"], field, params
                            )
                    for record in payload.get("records", ()):
                        stats.records.append(TaskRecord(
                            task_id=record["task_id"],
                            attempts=record["attempts"],
                            prove_seconds=record["prove_seconds"],
                            latency_seconds=record["latency_seconds"],
                            worker=record.get("worker"),
                            stage_seconds=record.get("stage_seconds"),
                        ))
                        task_ctx = ctx.child(
                            "task", span=f"{ctx.span}/t{record['task_id']}"
                        )
                        task_ctx.emit(
                            "complete", task_id=record["task_id"],
                            attempt=record["attempts"],
                            seconds=record["prove_seconds"],
                            node=self.name,
                        )
                        if record.get("stage_seconds"):
                            task_ctx.emit(
                                "stage_timing",
                                task_id=record["task_id"],
                                seconds=record["prove_seconds"],
                                stages=record["stage_seconds"],
                                node=self.name,
                            )
            except (NodeConnectionError, OSError) as exc:
                # The stream died mid-batch: drop the socket so the next
                # call re-handshakes, and report a blameless outage.
                self._drop_locked()
                raise BackendUnavailableError(
                    f"{self.name}: connection lost mid-batch: {exc}"
                ) from exc
        missing = [i for i, r in enumerate(results) if r is None]
        if missing:
            raise ProofError(
                f"{self.name}: node completed without results for task "
                f"indices {missing[:8]}"
            )
        stats.total_seconds = time.perf_counter() - start
        ctx.emit(
            "run_end", proofs=len(results), retries=stats.retries,
            seconds=stats.total_seconds, node=self.name,
        )
        if ctx.sink is not None:
            ctx.sink.flush()
        return results, stats  # type: ignore[return-value]
