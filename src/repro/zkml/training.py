"""Training for the verifiable-ML models (float reference + quantization).

The paper trains its own VGG-16 ("can achieve an accuracy of 93.93%…
outperforming the models utilized in all other ZKP implementations",
§6.3).  We cannot retrain VGG-16 (no CIFAR-10 download, no GPU), but the
*workflow* — train in float, quantize into the verifiable model, measure
the accuracy the service commits to — is fully reproduced at small scale:

* :func:`synthetic_blobs` — a deterministic Gaussian-blob classification
  dataset (stands in for CIFAR-10's role; see DESIGN.md substitutions).
* :class:`FloatTrainer` — plain-numpy SGD on a float twin of a
  :class:`~repro.zkml.model.SequentialModel` (conv/square/sumpool/fc).
* :func:`load_weights` — pushes trained float weights into the quantized
  model, after which the MLaaS service commits and proves as usual.

The gradient math is hand-derived for exactly the layer set the circuit
path supports; tests assert training lifts accuracy far above chance and
that the quantized model preserves it.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Tuple

import numpy as np

from ..errors import ZkmlError
from .layers import Conv2d, Flatten, Linear, Square, SumPool2d
from .model import SequentialModel
from .tensor import QuantizedTensor


@dataclass
class Dataset:
    """A labelled image dataset: x (N, C, H, W) float64, y (N,) int."""

    x: np.ndarray
    y: np.ndarray
    num_classes: int

    def __len__(self) -> int:
        return len(self.y)

    def split(self, train_fraction: float = 0.8) -> Tuple["Dataset", "Dataset"]:
        cut = int(len(self) * train_fraction)
        return (
            Dataset(self.x[:cut], self.y[:cut], self.num_classes),
            Dataset(self.x[cut:], self.y[cut:], self.num_classes),
        )


def synthetic_blobs(
    num_samples: int = 200,
    image_size: int = 4,
    channels: int = 1,
    num_classes: int = 3,
    seed: int = 0,
    noise: float = 0.35,
) -> Dataset:
    """Gaussian-blob classes: each class is a fixed random template plus
    noise — linearly-ish separable, so tiny models can learn it."""
    rng = np.random.default_rng(seed)
    templates = rng.normal(0, 1, (num_classes, channels, image_size, image_size))
    ys = rng.integers(0, num_classes, num_samples)
    xs = templates[ys] + rng.normal(0, noise, (num_samples, channels, image_size, image_size))
    # Normalize into [0, 1) so quantization behaves like image data.
    xs = (xs - xs.min()) / (xs.max() - xs.min() + 1e-9)
    return Dataset(x=xs, y=ys, num_classes=num_classes)


class _FloatLayer:
    def forward(self, x: np.ndarray) -> np.ndarray:
        raise NotImplementedError

    def backward(self, grad: np.ndarray) -> np.ndarray:
        raise NotImplementedError

    def step(self, lr: float) -> None:
        pass


class _FloatConv(_FloatLayer):
    def __init__(self, layer: Conv2d, rng: np.random.Generator):
        k = layer.kernel_size
        fan_in = layer.in_channels * k * k
        self.spec = layer
        self.w = rng.normal(0, (2.0 / fan_in) ** 0.5, (layer.out_channels, layer.in_channels, k, k))
        self.b = np.zeros(layer.out_channels)
        self._x: Optional[np.ndarray] = None
        self.gw = np.zeros_like(self.w)
        self.gb = np.zeros_like(self.b)

    def forward(self, x: np.ndarray) -> np.ndarray:
        self._x = x
        c, h, w = x.shape
        k = self.spec.kernel_size
        pad = k // 2
        padded = np.pad(x, ((0, 0), (pad, pad), (pad, pad)))
        out = np.zeros((self.spec.out_channels, h, w))
        for oc in range(self.spec.out_channels):
            for ic in range(c):
                for di in range(k):
                    for dj in range(k):
                        out[oc] += self.w[oc, ic, di, dj] * padded[ic, di : di + h, dj : dj + w]
            out[oc] += self.b[oc]
        return out

    def backward(self, grad: np.ndarray) -> np.ndarray:
        x = self._x
        c, h, w = x.shape
        k = self.spec.kernel_size
        pad = k // 2
        padded = np.pad(x, ((0, 0), (pad, pad), (pad, pad)))
        gpad = np.zeros_like(padded)
        for oc in range(self.spec.out_channels):
            self.gb[oc] += grad[oc].sum()
            for ic in range(c):
                for di in range(k):
                    for dj in range(k):
                        self.gw[oc, ic, di, dj] += (
                            grad[oc] * padded[ic, di : di + h, dj : dj + w]
                        ).sum()
                        gpad[ic, di : di + h, dj : dj + w] += (
                            self.w[oc, ic, di, dj] * grad[oc]
                        )
        return gpad[:, pad : pad + h, pad : pad + w]

    def step(self, lr: float) -> None:
        self.w -= lr * self.gw
        self.b -= lr * self.gb
        self.gw[:] = 0
        self.gb[:] = 0


class _FloatLinear(_FloatLayer):
    def __init__(self, layer: Linear, rng: np.random.Generator):
        self.spec = layer
        self.w = rng.normal(0, (2.0 / layer.in_features) ** 0.5, (layer.out_features, layer.in_features))
        self.b = np.zeros(layer.out_features)
        self._x: Optional[np.ndarray] = None
        self.gw = np.zeros_like(self.w)
        self.gb = np.zeros_like(self.b)

    def forward(self, x: np.ndarray) -> np.ndarray:
        self._x = x.reshape(-1)
        return self.w @ self._x + self.b

    def backward(self, grad: np.ndarray) -> np.ndarray:
        self.gw += np.outer(grad, self._x)
        self.gb += grad
        return self.w.T @ grad

    def step(self, lr: float) -> None:
        self.w -= lr * self.gw
        self.b -= lr * self.gb
        self.gw[:] = 0
        self.gb[:] = 0


class _FloatSquare(_FloatLayer):
    def __init__(self) -> None:
        self._x: Optional[np.ndarray] = None

    def forward(self, x: np.ndarray) -> np.ndarray:
        self._x = x
        return x * x

    def backward(self, grad: np.ndarray) -> np.ndarray:
        return 2.0 * self._x * grad


class _FloatSumPool(_FloatLayer):
    def __init__(self, layer: SumPool2d):
        self.stride = layer.stride
        self._shape: Optional[Tuple[int, ...]] = None

    def forward(self, x: np.ndarray) -> np.ndarray:
        self._shape = x.shape
        c, h, w = x.shape
        s = self.stride
        return x[:, : h - h % s, : w - w % s].reshape(
            c, h // s, s, w // s, s
        ).sum(axis=(2, 4))

    def backward(self, grad: np.ndarray) -> np.ndarray:
        c, h, w = self._shape
        s = self.stride
        out = np.zeros(self._shape)
        expanded = np.repeat(np.repeat(grad, s, axis=1), s, axis=2)
        out[:, : expanded.shape[1], : expanded.shape[2]] = expanded
        return out


class _FloatFlatten(_FloatLayer):
    def __init__(self) -> None:
        self._shape: Optional[Tuple[int, ...]] = None

    def forward(self, x: np.ndarray) -> np.ndarray:
        self._shape = x.shape
        return x.reshape(-1)

    def backward(self, grad: np.ndarray) -> np.ndarray:
        return grad.reshape(self._shape)


def _float_twin(model: SequentialModel, rng: np.random.Generator) -> List[_FloatLayer]:
    twins: List[_FloatLayer] = []
    for layer in model.layers:
        if isinstance(layer, Conv2d):
            twins.append(_FloatConv(layer, rng))
        elif isinstance(layer, Linear):
            twins.append(_FloatLinear(layer, rng))
        elif isinstance(layer, Square):
            twins.append(_FloatSquare())
        elif isinstance(layer, SumPool2d):
            twins.append(_FloatSumPool(layer))
        elif isinstance(layer, Flatten):
            twins.append(_FloatFlatten())
        else:
            raise ZkmlError(
                f"no float twin for layer {layer.name!r} "
                f"({type(layer).__name__}); trainable models use "
                f"Conv2d/Linear/Square/SumPool2d/Flatten"
            )
    return twins


def _softmax_xent_grad(logits: np.ndarray, label: int) -> Tuple[float, np.ndarray]:
    shifted = logits - logits.max()
    exps = np.exp(shifted)
    probs = exps / exps.sum()
    loss = -float(np.log(probs[label] + 1e-12))
    grad = probs.copy()
    grad[label] -= 1.0
    return loss, grad


class FloatTrainer:
    """SGD on the float twin of a circuit-friendly model."""

    def __init__(self, model: SequentialModel, seed: int = 0):
        self.model = model
        self.twins = _float_twin(model, np.random.default_rng(seed))

    def predict_logits(self, x: np.ndarray) -> np.ndarray:
        out = x
        for layer in self.twins:
            out = layer.forward(out)
        return out

    def accuracy(self, data: Dataset) -> float:
        hits = sum(
            int(np.argmax(self.predict_logits(x)) == y)
            for x, y in zip(data.x, data.y)
        )
        return hits / len(data)

    def train(
        self, data: Dataset, epochs: int = 5, lr: float = 0.05
    ) -> List[float]:
        """Run SGD; returns the per-epoch mean loss trajectory."""
        losses: List[float] = []
        order = np.arange(len(data))
        rng = np.random.default_rng(1234)
        for _ in range(epochs):
            rng.shuffle(order)
            total = 0.0
            for idx in order:
                logits = self.predict_logits(data.x[idx])
                loss, grad = _softmax_xent_grad(logits, int(data.y[idx]))
                total += loss
                for layer in reversed(self.twins):
                    grad = layer.backward(grad)
                for layer in self.twins:
                    layer.step(lr)
            losses.append(total / len(data))
        return losses

    def export_weights(self) -> None:
        """Quantize trained weights back into the verifiable model."""
        for twin, layer in zip(self.twins, self.model.layers):
            if isinstance(twin, (_FloatConv, _FloatLinear)):
                layer.weights = QuantizedTensor.from_float(twin.w)
                layer.bias = QuantizedTensor.from_float(twin.b)


def quantized_accuracy(model: SequentialModel, data: Dataset, frac_bits: int = 8) -> float:
    """Accuracy of the quantized (provable) model on ``data``."""
    hits = 0
    for x, y in zip(data.x, data.y):
        q = QuantizedTensor.from_float(x, frac_bits)
        logits = model.forward(q).values
        hits += int(np.argmax(logits) == y)
    return hits / len(data)


def train_verifiable_model(
    model: SequentialModel,
    data: Dataset,
    epochs: int = 5,
    lr: float = 0.05,
    seed: int = 0,
) -> Tuple[FloatTrainer, float, float]:
    """End-to-end: train float, export quantized, report both accuracies."""
    trainer = FloatTrainer(model, seed=seed)
    trainer.train(data, epochs=epochs, lr=lr)
    float_acc = trainer.accuracy(data)
    trainer.export_weights()
    quant_acc = quantized_accuracy(model, data)
    return trainer, float_acc, quant_acc
