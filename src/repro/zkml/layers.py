"""Neural-network layers with quantized forward passes and ZKP gate counts.

Each layer implements:

* ``forward`` — real quantized integer inference (numpy).
* ``output_shape`` — shape propagation.
* ``gate_count`` — the number of multiplication gates the layer
  contributes to the verifiable-inference circuit.

Gate accounting follows the zkCNN/ZENO line of work the paper deploys on
top of (§5): convolutions are proved with sum-check protocols whose prover
cost is linear in the activation volumes rather than in the MAC count,
while every activation that passes through a non-linearity or a rescaling
step pays a bit-decomposition (range proof) of ``RESCALE_BITS`` gates.
The bit-decomposition term dominates — which is exactly why verifiable
CNNs are so much more expensive than plain inference.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Tuple

import numpy as np

from ..errors import ZkmlError
from .tensor import QuantizedTensor

#: Bits per activation rescaling/comparison range proof.
RESCALE_BITS = 32


class Layer:
    """Base class: shape propagation + gate accounting + forward."""

    name: str = "layer"

    def output_shape(self, input_shape: Tuple[int, ...]) -> Tuple[int, ...]:
        raise NotImplementedError

    def gate_count(self, input_shape: Tuple[int, ...]) -> int:
        raise NotImplementedError

    def parameter_count(self) -> int:
        return 0

    def forward(self, x: QuantizedTensor) -> QuantizedTensor:
        raise NotImplementedError


def _volume(shape: Tuple[int, ...]) -> int:
    out = 1
    for s in shape:
        out *= s
    return out


@dataclass
class Conv2d(Layer):
    """3×3 (or k×k) same-padding convolution, NCHW single-image layout."""

    in_channels: int
    out_channels: int
    kernel_size: int = 3
    name: str = "conv"
    weights: QuantizedTensor = None  # type: ignore[assignment]
    bias: QuantizedTensor = None  # type: ignore[assignment]

    def init_params(self, rng: np.random.Generator) -> None:
        k = self.kernel_size
        fan_in = self.in_channels * k * k
        w = rng.normal(0, (2.0 / fan_in) ** 0.5, (self.out_channels, self.in_channels, k, k))
        self.weights = QuantizedTensor.from_float(w)
        self.bias = QuantizedTensor.from_float(np.zeros(self.out_channels))

    def output_shape(self, input_shape: Tuple[int, ...]) -> Tuple[int, ...]:
        c, h, w = input_shape
        if c != self.in_channels:
            raise ZkmlError(
                f"{self.name}: expected {self.in_channels} channels, got {c}"
            )
        return (self.out_channels, h, w)

    def gate_count(self, input_shape: Tuple[int, ...]) -> int:
        # Sum-check-based convolution proof: linear in in+out activation
        # volumes (zkCNN's FFT/sum-check trick), plus one rescale range
        # proof per output activation.
        out_shape = self.output_shape(input_shape)
        sumcheck_gates = _volume(input_shape) + _volume(out_shape)
        rescale_gates = _volume(out_shape) * RESCALE_BITS
        return sumcheck_gates + rescale_gates

    def parameter_count(self) -> int:
        k = self.kernel_size
        return self.out_channels * self.in_channels * k * k + self.out_channels

    def forward(self, x: QuantizedTensor) -> QuantizedTensor:
        if self.weights is None:
            raise ZkmlError(f"{self.name}: parameters not initialized")
        c, h, w = x.shape
        k = self.kernel_size
        pad = k // 2
        padded = np.zeros((c, h + 2 * pad, w + 2 * pad), dtype=np.int64)
        padded[:, pad : pad + h, pad : pad + w] = x.values
        out = np.zeros((self.out_channels, h, w), dtype=np.int64)
        wv = self.weights.values
        for oc in range(self.out_channels):
            acc = np.zeros((h, w), dtype=np.int64)
            for ic in range(c):
                for di in range(k):
                    for dj in range(k):
                        coeff = int(wv[oc, ic, di, dj])
                        if coeff:
                            acc += coeff * padded[ic, di : di + h, dj : dj + w]
            out[oc] = acc + (int(self.bias.values[oc]) << x.frac_bits)
        return QuantizedTensor(values=out, frac_bits=x.frac_bits).rescale()


@dataclass
class Linear(Layer):
    """Fully connected layer on a flat vector."""

    in_features: int
    out_features: int
    name: str = "fc"
    weights: QuantizedTensor = None  # type: ignore[assignment]
    bias: QuantizedTensor = None  # type: ignore[assignment]

    def init_params(self, rng: np.random.Generator) -> None:
        w = rng.normal(0, (2.0 / self.in_features) ** 0.5, (self.out_features, self.in_features))
        self.weights = QuantizedTensor.from_float(w)
        self.bias = QuantizedTensor.from_float(np.zeros(self.out_features))

    def output_shape(self, input_shape: Tuple[int, ...]) -> Tuple[int, ...]:
        if _volume(input_shape) != self.in_features:
            raise ZkmlError(
                f"{self.name}: expected {self.in_features} inputs, got "
                f"{_volume(input_shape)}"
            )
        return (self.out_features,)

    def gate_count(self, input_shape: Tuple[int, ...]) -> int:
        # Matrix-vector proof via one sum-check: gates linear in the MAC
        # count is avoided; cost is in+out plus per-output rescaling.
        return (
            self.in_features
            + self.out_features
            + self.out_features * RESCALE_BITS
        )

    def parameter_count(self) -> int:
        return self.out_features * self.in_features + self.out_features

    def forward(self, x: QuantizedTensor) -> QuantizedTensor:
        if self.weights is None:
            raise ZkmlError(f"{self.name}: parameters not initialized")
        flat = x.values.reshape(-1)
        out = self.weights.values @ flat + (
            self.bias.values.astype(np.int64) << x.frac_bits
        )
        return QuantizedTensor(values=out, frac_bits=x.frac_bits).rescale()


@dataclass
class ReLU(Layer):
    name: str = "relu"

    def output_shape(self, input_shape: Tuple[int, ...]) -> Tuple[int, ...]:
        return input_shape

    def gate_count(self, input_shape: Tuple[int, ...]) -> int:
        # Sign extraction needs a bit decomposition per activation.
        return _volume(input_shape) * RESCALE_BITS

    def forward(self, x: QuantizedTensor) -> QuantizedTensor:
        return QuantizedTensor(
            values=np.maximum(x.values, 0), frac_bits=x.frac_bits
        )


@dataclass
class Square(Layer):
    """x → x² activation (circuit-friendly; used by the tiny real-SNARK
    demo model, à la CryptoNets)."""

    name: str = "square"

    def output_shape(self, input_shape: Tuple[int, ...]) -> Tuple[int, ...]:
        return input_shape

    def gate_count(self, input_shape: Tuple[int, ...]) -> int:
        return _volume(input_shape)  # one multiplication per activation

    def forward(self, x: QuantizedTensor) -> QuantizedTensor:
        # The product carries a 2^{2·fb} scale; one rescale restores fb.
        return QuantizedTensor(
            values=x.values * x.values, frac_bits=x.frac_bits
        ).rescale()


@dataclass
class SumPool2d(Layer):
    """2×2 sum pooling — the circuit-friendly pooling choice.

    Summing a window is a pure linear operation (zero multiplication
    gates), unlike max pooling's comparisons; verifiable-CNN systems
    routinely swap avg/sum pooling in for exactly this reason.  The
    output carries a 4x magnitude (no division — field-exact).
    """

    name: str = "sumpool"
    stride: int = 2

    def output_shape(self, input_shape: Tuple[int, ...]) -> Tuple[int, ...]:
        c, h, w = input_shape
        return (c, h // self.stride, w // self.stride)

    def gate_count(self, input_shape: Tuple[int, ...]) -> int:
        return 0  # additions are free in R1CS

    def forward(self, x: QuantizedTensor) -> QuantizedTensor:
        c, h, w = x.shape
        s = self.stride
        v = x.values[:, : h - h % s, : w - w % s]
        v = v.reshape(c, h // s, s, w // s, s).sum(axis=(2, 4))
        return QuantizedTensor(values=v, frac_bits=x.frac_bits)


@dataclass
class MaxPool2d(Layer):
    """2×2 max pooling."""

    name: str = "maxpool"
    stride: int = 2

    def output_shape(self, input_shape: Tuple[int, ...]) -> Tuple[int, ...]:
        c, h, w = input_shape
        return (c, h // self.stride, w // self.stride)

    def gate_count(self, input_shape: Tuple[int, ...]) -> int:
        # Each max over a 2×2 window needs 3 comparisons (range proofs).
        out = _volume(self.output_shape(input_shape))
        return out * 3 * RESCALE_BITS

    def forward(self, x: QuantizedTensor) -> QuantizedTensor:
        c, h, w = x.shape
        s = self.stride
        v = x.values[:, : h - h % s, : w - w % s]
        v = v.reshape(c, h // s, s, w // s, s).max(axis=(2, 4))
        return QuantizedTensor(values=v, frac_bits=x.frac_bits)


@dataclass
class Flatten(Layer):
    name: str = "flatten"

    def output_shape(self, input_shape: Tuple[int, ...]) -> Tuple[int, ...]:
        return (_volume(input_shape),)

    def gate_count(self, input_shape: Tuple[int, ...]) -> int:
        return 0  # pure rewiring

    def forward(self, x: QuantizedTensor) -> QuantizedTensor:
        return QuantizedTensor(values=x.values.reshape(-1), frac_bits=x.frac_bits)
