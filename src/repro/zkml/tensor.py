"""Fixed-point quantized tensors for verifiable inference.

ZKP circuits work over finite fields, so the machine-learning engine
quantizes activations and weights to integers with a global power-of-two
scale (the approach of zkCNN/ZENO).  A :class:`QuantizedTensor` carries
``values ≈ real · 2^frac_bits`` as ``int64`` and converts losslessly into
field elements (negatives map to ``p − |v|``).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Tuple

import numpy as np

from ..errors import ZkmlError
from ..field.prime_field import PrimeField

DEFAULT_FRAC_BITS = 8


@dataclass
class QuantizedTensor:
    """An integer tensor with an implicit 2^-frac_bits scale."""

    values: np.ndarray  # int64
    frac_bits: int = DEFAULT_FRAC_BITS

    def __post_init__(self) -> None:
        self.values = np.asarray(self.values, dtype=np.int64)
        if self.frac_bits < 0:
            raise ZkmlError("frac_bits must be non-negative")

    # -- constructors -------------------------------------------------------

    @classmethod
    def from_float(
        cls, values: np.ndarray, frac_bits: int = DEFAULT_FRAC_BITS
    ) -> "QuantizedTensor":
        scaled = np.rint(np.asarray(values, dtype=np.float64) * (1 << frac_bits))
        return cls(values=scaled.astype(np.int64), frac_bits=frac_bits)

    @classmethod
    def zeros(
        cls, shape: Tuple[int, ...], frac_bits: int = DEFAULT_FRAC_BITS
    ) -> "QuantizedTensor":
        return cls(values=np.zeros(shape, dtype=np.int64), frac_bits=frac_bits)

    # -- views ---------------------------------------------------------------

    @property
    def shape(self) -> Tuple[int, ...]:
        return tuple(self.values.shape)

    @property
    def size(self) -> int:
        return int(self.values.size)

    def to_float(self) -> np.ndarray:
        return self.values.astype(np.float64) / (1 << self.frac_bits)

    def to_field(self, field: PrimeField) -> List[int]:
        """Map signed integers into GF(p) canonically."""
        p = field.modulus
        return [int(v) % p for v in self.values.reshape(-1)]

    # -- arithmetic helpers -----------------------------------------------------

    def rescale(self) -> "QuantizedTensor":
        """Divide by 2^frac_bits (after a multiply doubled the scale).

        Uses round-half-away truncation toward zero, matching what the
        rescaling gates in the circuit implement.
        """
        shift = self.frac_bits
        vals = self.values
        rescaled = np.where(
            vals >= 0, vals >> shift, -((-vals) >> shift)
        )
        return QuantizedTensor(values=rescaled, frac_bits=self.frac_bits)

    def __repr__(self) -> str:
        return f"QuantizedTensor(shape={self.shape}, frac_bits={self.frac_bits})"


def quantization_error(x: np.ndarray, frac_bits: int = DEFAULT_FRAC_BITS) -> float:
    """Max abs error of one quantize/dequantize roundtrip."""
    q = QuantizedTensor.from_float(x, frac_bits)
    return float(np.max(np.abs(q.to_float() - x)))
