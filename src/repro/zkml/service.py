"""The MLaaS verifiable-inference service (paper §5, Figure 8).

Three components, exactly as the paper draws them:

* an **interface** — :class:`PredictionResponse` carries everything the
  customer sees (prediction, proof, model commitment);
* the **ML engine** — quantized inference with intermediate-activation
  traces;
* the **ZKP system** — the real SNARK for circuit-scale models, and the
  calibrated pipeline simulation for the VGG-16 workload of Table 11.

The preprocessing stage Merkle-commits the model parameters; the root is
the customer's anchor that the committed model — and not a substitute —
produced every prediction.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, List, Optional, Sequence, Tuple

from ..core.batch import ProofTask
from ..core.prover import SnarkProver, make_pcs
from ..core.verifier import SnarkVerifier
from ..core.proof import SnarkProof
from ..errors import ZkmlError
from ..field.prime_field import DEFAULT_FIELD, PrimeField
from ..hashing.hashers import Hasher, get_hasher
from ..merkle.tree import MerkleTree
from ..pipeline.system import BatchZkpSystem, SystemResult
from .circuitize import ZkmlCircuit, circuitize
from .model import SequentialModel
from .tensor import QuantizedTensor

if TYPE_CHECKING:  # pragma: no cover - typing only
    from ..runtime import ParallelProvingRuntime, RuntimeStats

#: Stage caps for the deep VGG pipeline: uncapped — the verifiable-CNN
#: pipeline dedicates kernels to every layer of its much deeper module
#: chain, which is why Table 11's latency (15.2 s) is ~145 beats while the
#: S = 2^20 system of Table 8 sits at ~28.
VGG_STAGE_CAPS = {"encoder": 10_000, "merkle": 10_000, "sumcheck": 10_000}


@dataclass
class PredictionResponse:
    """What the service returns to a customer for one input."""

    prediction: List[int]  # output logits (signed ints, quantized scale)
    proof: Optional[SnarkProof]
    model_root: bytes


class MlaasService:
    """A verifiable prediction service over a circuit-friendly model.

    >>> # See examples/verifiable_ml.py for an end-to-end run.
    """

    def __init__(
        self,
        model: SequentialModel,
        field: PrimeField = DEFAULT_FIELD,
        hasher: Optional[Hasher] = None,
        num_col_checks: int = 10,
    ):
        self.model = model
        self.field = field
        self.hasher = hasher or get_hasher("sha256-hw")
        self.num_col_checks = num_col_checks
        # Preprocessing (Figure 8): commit the model parameters once.
        self._param_tree = MerkleTree.from_blocks(
            model.parameter_blocks(), self.hasher
        )
        #: :class:`~repro.runtime.RuntimeStats` of the most recent
        #: :meth:`prove_predictions` batch (None before the first batch).
        self.last_runtime_stats: Optional["RuntimeStats"] = None

    @property
    def model_root(self) -> bytes:
        """The Merkle commitment customers pin the model to."""
        return self._param_tree.root

    # -- plain prediction (the "ML engine") -----------------------------------

    def predict(self, x: QuantizedTensor) -> QuantizedTensor:
        return self.model.forward(x)

    # -- verifiable prediction --------------------------------------------------

    def prove_prediction(self, x: QuantizedTensor) -> PredictionResponse:
        """Predict and produce a real SNARK proof of the inference."""
        zk = circuitize(self.model, x, self.field)
        compiled = zk.compiled
        pcs = make_pcs(self.field, compiled.r1cs, num_col_checks=self.num_col_checks)
        prover = SnarkProver(
            compiled.r1cs, pcs, public_indices=compiled.public_indices
        )
        proof = prover.prove(compiled.witness, compiled.public_values)
        return PredictionResponse(
            prediction=zk.outputs, proof=proof, model_root=self.model_root
        )

    def prove_predictions(
        self,
        inputs: Sequence[QuantizedTensor],
        workers: int = 1,
        runtime: Optional["ParallelProvingRuntime"] = None,
    ) -> List[PredictionResponse]:
        """Prove a *batch* of predictions, optionally across worker processes.

        Same-shaped inputs to one model compile to the same circuit
        structure, so the batch shares a single prover setup; with
        ``workers > 1`` (or an explicit ``runtime``) the witnesses are
        sharded across the process-pool runtime, which is the MLaaS
        "flowing stream" setting of the paper's §5.  Should an input ever
        compile to a structurally different circuit, the batch degrades to
        per-input serial proving rather than producing invalid proofs.
        The runtime's report lands in :attr:`last_runtime_stats`.
        """
        from ..runtime import ParallelProvingRuntime, ProverSpec

        circuits = [circuitize(self.model, x, self.field) for x in inputs]
        if not circuits:
            return []
        first = circuits[0].compiled
        reference_digest = first.r1cs.digest()
        uniform = all(
            zk.compiled.r1cs.digest() == reference_digest for zk in circuits[1:]
        )
        if not uniform:
            return [self.prove_prediction(x) for x in inputs]
        if runtime is None:
            spec = ProverSpec(
                r1cs=first.r1cs,
                public_indices=tuple(first.public_indices),
                num_col_checks=self.num_col_checks,
            )
            runtime = ParallelProvingRuntime(spec, workers=workers)
        tasks = [
            ProofTask(
                task_id=i,
                witness=zk.compiled.witness,
                public_values=zk.compiled.public_values,
            )
            for i, zk in enumerate(circuits)
        ]
        proofs, stats = runtime.prove_tasks(tasks)
        self.last_runtime_stats = stats
        return [
            PredictionResponse(
                prediction=zk.outputs, proof=proof, model_root=self.model_root
            )
            for zk, proof in zip(circuits, proofs)
        ]

    def verify_prediction(
        self, x: QuantizedTensor, response: PredictionResponse
    ) -> bool:
        """Customer-side check: commitment matches, proof verifies.

        Re-deriving the circuit requires the model *structure* (public) but
        not its parameters in a real deployment; this reproduction's
        circuit carries the parameters as witness, so the customer check
        here recompiles with the service's model object and verifies the
        proof against the claimed public outputs.
        """
        if response.model_root != self.model_root:
            return False
        if response.proof is None:
            return False
        zk = circuitize(self.model, x, self.field)
        compiled = zk.compiled
        pcs = make_pcs(self.field, compiled.r1cs, num_col_checks=self.num_col_checks)
        verifier = SnarkVerifier(
            compiled.r1cs, pcs, public_indices=compiled.public_indices
        )
        p = self.field.modulus
        claimed = [v % p for v in response.prediction]
        return verifier.verify(response.proof, claimed)


def simulate_vgg16_service(
    model: SequentialModel,
    device: str = "GH200",
    batch_size: int = 256,
) -> SystemResult:
    """Table 11: simulate batch proof generation for the VGG-16 circuit.

    The model's gate count (from the zkCNN-style per-layer accounting)
    drives the calibrated pipeline; the returned result carries the
    throughput (proofs/second) and latency the table reports.
    """
    gates = model.gate_count()
    if gates < 1 << 20:
        raise ZkmlError(
            f"simulate_vgg16_service expects a large model, got {gates} gates"
        )
    system = BatchZkpSystem(device, scale=gates, stage_caps=VGG_STAGE_CAPS)
    return system.simulate(batch_size=batch_size)
