"""The MLaaS verifiable-inference service (paper §5, Figure 8).

Three components, exactly as the paper draws them:

* an **interface** — :class:`PredictionResponse` carries everything the
  customer sees (prediction, proof, model commitment);
* the **ML engine** — quantized inference with intermediate-activation
  traces;
* the **ZKP system** — the real SNARK for circuit-scale models, and the
  calibrated pipeline simulation for the VGG-16 workload of Table 11.

The preprocessing stage Merkle-commits the model parameters; the root is
the customer's anchor that the committed model — and not a substitute —
produced every prediction.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, Dict, List, Optional, Sequence, Tuple, Union

from ..core.batch import ProofTask
from ..core.prover import SnarkProver, make_pcs
from ..core.verifier import SnarkVerifier
from ..core.proof import SnarkProof
from ..errors import ZkmlError
from ..field.prime_field import DEFAULT_FIELD, PrimeField
from ..hashing.hashers import Hasher, get_hasher
from ..merkle.tree import MerkleTree
from ..pipeline.system import BatchZkpSystem, SystemResult
from .circuitize import circuitize
from .model import SequentialModel
from .tensor import QuantizedTensor

if TYPE_CHECKING:  # pragma: no cover - typing only
    from ..execution import ProvingBackend
    from ..runtime import ProverSpec, RuntimeStats
    from ..service import ProofService

    BackendLike = Union[str, ProvingBackend]

#: Stage caps for the deep VGG pipeline: uncapped — the verifiable-CNN
#: pipeline dedicates kernels to every layer of its much deeper module
#: chain, which is why Table 11's latency (15.2 s) is ~145 beats while the
#: S = 2^20 system of Table 8 sits at ~28.
VGG_STAGE_CAPS = {"encoder": 10_000, "merkle": 10_000, "sumcheck": 10_000}


@dataclass
class PredictionResponse:
    """What the service returns to a customer for one input."""

    prediction: List[int]  # output logits (signed ints, quantized scale)
    proof: Optional[SnarkProof]
    model_root: bytes


class MlaasService:
    """A verifiable prediction service over a circuit-friendly model.

    >>> # See examples/verifiable_ml.py for an end-to-end run.
    """

    def __init__(
        self,
        model: SequentialModel,
        field: PrimeField = DEFAULT_FIELD,
        hasher: Optional[Hasher] = None,
        num_col_checks: int = 10,
    ):
        self.model = model
        self.field = field
        self.hasher = hasher or get_hasher("sha256-hw")
        self.num_col_checks = num_col_checks
        # Preprocessing (Figure 8): commit the model parameters once.
        self._param_tree = MerkleTree.from_blocks(
            model.parameter_blocks(), self.hasher
        )
        #: :class:`~repro.runtime.RuntimeStats` of the most recent
        #: :meth:`prove_predictions` batch (None before the first batch).
        self.last_runtime_stats: Optional["RuntimeStats"] = None
        # Per-circuit specs and per-(workers, lanes) execution backends,
        # both cached so repeated batches of one shape reuse prover
        # setups.
        self._specs: Dict[bytes, "ProverSpec"] = {}
        self._backends: Dict[tuple, "ProvingBackend"] = {}

    @property
    def model_root(self) -> bytes:
        """The Merkle commitment customers pin the model to."""
        return self._param_tree.root

    # -- plain prediction (the "ML engine") -----------------------------------

    def predict(self, x: QuantizedTensor) -> QuantizedTensor:
        return self.model.forward(x)

    # -- verifiable prediction --------------------------------------------------

    def prove_prediction(self, x: QuantizedTensor) -> PredictionResponse:
        """Predict and produce a real SNARK proof of the inference."""
        zk = circuitize(self.model, x, self.field)
        compiled = zk.compiled
        pcs = make_pcs(self.field, compiled.r1cs, num_col_checks=self.num_col_checks)
        prover = SnarkProver(
            compiled.r1cs, pcs, public_indices=compiled.public_indices
        )
        proof = prover.prove(compiled.witness, compiled.public_values)
        return PredictionResponse(
            prediction=zk.outputs, proof=proof, model_root=self.model_root
        )

    def _execution_backend(self, workers: int, lanes=None) -> "ProvingBackend":
        """The cached per-(workers, lanes) execution backend for batches."""
        from ..execution import (
            PoolBackend,
            SerialBackend,
            lane_selector,
            resolve_backend,
        )

        key = (workers, lanes)
        backend = self._backends.get(key)
        if backend is None:
            if lanes is not None:
                backend = resolve_backend(lane_selector(lanes, workers))
            elif workers == 1:
                backend = SerialBackend()
            else:
                backend = PoolBackend(workers)
            self._backends[key] = backend
        return backend

    def prove_predictions(
        self,
        inputs: Sequence[QuantizedTensor],
        workers: int = 1,
        backend: Optional["BackendLike"] = None,
        lanes=None,
    ) -> List[PredictionResponse]:
        """Prove a *batch* of predictions, optionally across worker processes.

        Same-shaped inputs to one model compile to the same circuit
        structure, so the batch shares a single prover setup; execution
        routes through the unified backend layer (:mod:`repro.execution`):
        ``workers > 1`` selects a process-pool backend, and ``backend``
        accepts any selector string or backend instance — which is the
        MLaaS "flowing stream" setting of the paper's §5.  Should an
        input ever compile to a structurally different circuit, the batch
        degrades to per-input serial proving rather than producing
        invalid proofs.  The backend's report lands in
        :attr:`last_runtime_stats`; calls that never reach a backend (an
        empty batch, or the non-uniform serial fallback) reset it to None
        so it always describes *this* call, never a previous one.

        ``lanes`` (an integer width or ``"auto"``) routes a
        digest-uniform batch through the lane-vectorized S31 path —
        ``lanes:<L>`` (or ``lanes:<L>:pool:<workers>``) proving
        same-circuit instances in fused numpy dispatches.  A non-uniform
        batch ignores it (the serial fallback has no lanes to fuse), and
        an explicit ``backend`` wins over ``lanes``.
        """
        from ..execution import resolve_backend
        from ..runtime import ProverSpec

        self.last_runtime_stats = None
        circuits = [circuitize(self.model, x, self.field) for x in inputs]
        if not circuits:
            return []
        first = circuits[0].compiled
        reference_digest = first.r1cs.digest()
        uniform = all(
            zk.compiled.r1cs.digest() == reference_digest for zk in circuits[1:]
        )
        if not uniform:
            return [self.prove_prediction(x) for x in inputs]
        spec = self._specs.get(reference_digest)
        if spec is None:
            spec = ProverSpec(
                r1cs=first.r1cs,
                public_indices=tuple(first.public_indices),
                num_col_checks=self.num_col_checks,
            )
            self._specs[reference_digest] = spec
        resolved = (
            self._execution_backend(workers, lanes)
            if backend is None
            else resolve_backend(backend)
        )
        tasks = [
            ProofTask(
                task_id=i,
                witness=zk.compiled.witness,
                public_values=zk.compiled.public_values,
            )
            for i, zk in enumerate(circuits)
        ]
        proofs, stats = resolved.prove_tasks(spec, tasks)
        self.last_runtime_stats = stats
        return [
            PredictionResponse(
                prediction=zk.outputs, proof=proof, model_root=self.model_root
            )
            for zk, proof in zip(circuits, proofs)
        ]

    def verify_prediction(
        self, x: QuantizedTensor, response: PredictionResponse
    ) -> bool:
        """Customer-side check: commitment matches, proof verifies.

        Re-deriving the circuit requires the model *structure* (public) but
        not its parameters in a real deployment; this reproduction's
        circuit carries the parameters as witness, so the customer check
        here recompiles with the service's model object and verifies the
        proof against the claimed public outputs.
        """
        if response.model_root != self.model_root:
            return False
        if response.proof is None:
            return False
        zk = circuitize(self.model, x, self.field)
        compiled = zk.compiled
        pcs = make_pcs(self.field, compiled.r1cs, num_col_checks=self.num_col_checks)
        verifier = SnarkVerifier(
            compiled.r1cs, pcs, public_indices=compiled.public_indices
        )
        p = self.field.modulus
        claimed = [v % p for v in response.prediction]
        return verifier.verify(response.proof, claimed)

    # -- streaming front door ---------------------------------------------------

    def request_keys(self, x: QuantizedTensor) -> Tuple[bytes, bytes]:
        """(circuit key, witness key) for one prediction request.

        Same-shaped inputs to one committed model compile to the same
        circuit structure, so the circuit key hashes (model root, input
        shape, scale); the witness key additionally hashes the input
        values, giving the cache identity "this exact question to this
        exact model".
        """
        import hashlib

        shape_tag = (
            f"{x.shape}|{x.frac_bits}".encode()
        )
        circuit_key = hashlib.sha256(
            b"mlaas|" + self.model_root + b"|" + shape_tag
        ).digest()
        witness_key = hashlib.sha256(
            circuit_key + b"|" + str(x.values.tolist()).encode()
        ).digest()
        return circuit_key, witness_key

    def serve(
        self,
        *,
        workers: int = 1,
        backend: Optional["BackendLike"] = None,
        lanes=None,
        policy=None,
        **service_kwargs,
    ) -> "ProofService":
        """Open a streaming front door over this model (Figure 8, online).

        Returns a started :class:`~repro.service.ProofService` whose
        payloads are input tensors and whose results are
        :class:`PredictionResponse` objects.  The service's keyer is
        :meth:`request_keys`, so callers submit bare tensors::

            with svc.serve(policy=BatchPolicy(max_batch_size=4)) as front:
                ticket = front.submit(x, priority=Priority.INTERACTIVE)
                response = ticket.result(timeout=60)

        Every dispatched batch is uniform by construction, so it rides
        the shared-:class:`~repro.runtime.ProverSpec` fast path of
        :meth:`prove_predictions` (with ``workers > 1`` across the
        process-pool backend, or any explicit ``backend`` selector —
        including ``cluster:…`` / ``resilient:cluster:…`` fleet
        selectors, which are resolved once so their node connections
        persist across the stream).  Extra keyword arguments
        (``max_queue``, ``cache_capacity``, ``trace``, …) pass through
        to :class:`~repro.service.ProofService`.
        """
        from ..service import ProofService

        return ProofService(
            _PredictionBackend(self, workers, backend, lanes),
            policy=policy,
            keyer=self.request_keys,
            **service_kwargs,
        )


class _PredictionBackend:
    """Service backend: uniform tensor batches → :class:`PredictionResponse`s.

    The batcher guarantees every batch shares a circuit key, i.e. a
    shape-uniform input set, so :meth:`MlaasService.prove_predictions`
    takes its one-prover-setup fast path on every dispatch.

    A string ``backend`` selector is resolved *once* here, not per batch:
    stateful backends (``remote:``/``cluster:`` connections, process
    pools) must persist across the stream, not reconnect every dispatch.
    """

    def __init__(
        self,
        service: MlaasService,
        workers: int = 1,
        backend: Optional["BackendLike"] = None,
        lanes=None,
    ):
        from ..execution import resolve_backend

        self.service = service
        self.workers = workers
        self.backend = None if backend is None else resolve_backend(backend)
        self.lanes = lanes

    def prove_batch(self, circuit_key, requests) -> List[PredictionResponse]:
        inputs = [request.payload for request in requests]
        return self.service.prove_predictions(
            inputs,
            workers=self.workers,
            backend=self.backend,
            lanes=self.lanes,
        )


def simulate_vgg16_service(
    model: SequentialModel,
    device: str = "GH200",
    batch_size: int = 256,
) -> SystemResult:
    """Table 11: simulate batch proof generation for the VGG-16 circuit.

    The model's gate count (from the zkCNN-style per-layer accounting)
    drives the calibrated pipeline; the returned result carries the
    throughput (proofs/second) and latency the table reports.
    """
    gates = model.gate_count()
    if gates < 1 << 20:
        raise ZkmlError(
            f"simulate_vgg16_service expects a large model, got {gates} gates"
        )
    system = BatchZkpSystem(device, scale=gates, stage_caps=VGG_STAGE_CAPS)
    return system.simulate(batch_size=batch_size)
