"""Sequential models, including the paper's VGG-16/CIFAR-10 workload.

:func:`vgg16_cifar10` builds the exact VGG-16 architecture the paper
evaluates (13 convolutions, 5 pools, 2 fully connected layers on 32×32×3
inputs) — the layer dimensions determine the verifiable-inference gate
count that drives Table 11.  :func:`tiny_cnn` is a scaled-down
circuit-friendly model whose inference is *actually proved* with the real
SNARK in the test suite and examples.
"""

from __future__ import annotations

from typing import List, Sequence, Tuple

import numpy as np

from ..errors import ZkmlError
from .layers import Conv2d, Flatten, Layer, Linear, MaxPool2d, ReLU, Square
from .tensor import QuantizedTensor


class SequentialModel:
    """A feed-forward stack of layers with gate accounting."""

    def __init__(self, layers: Sequence[Layer], input_shape: Tuple[int, ...], name: str = "model"):
        self.layers = list(layers)
        self.input_shape = tuple(input_shape)
        self.name = name
        # Validate shape propagation eagerly.
        shape = self.input_shape
        self._shapes: List[Tuple[int, ...]] = [shape]
        for layer in self.layers:
            shape = layer.output_shape(shape)
            self._shapes.append(shape)

    # -- parameters ----------------------------------------------------------

    def init_params(self, seed: int = 0) -> None:
        rng = np.random.default_rng(seed)
        for layer in self.layers:
            if hasattr(layer, "init_params"):
                layer.init_params(rng)

    def parameter_count(self) -> int:
        return sum(layer.parameter_count() for layer in self.layers)

    def parameter_blocks(self) -> List[bytes]:
        """Serialize parameters into 64-byte blocks for the Merkle
        commitment of the preprocessing stage (Figure 8)."""
        raw = bytearray()
        for layer in self.layers:
            for attr in ("weights", "bias"):
                tensor = getattr(layer, attr, None)
                if isinstance(tensor, QuantizedTensor):
                    raw.extend(tensor.values.astype("<i8").tobytes())
        if not raw:
            raise ZkmlError("model has no parameters to commit")
        pad = (-len(raw)) % 64
        raw.extend(b"\x00" * pad)
        return [bytes(raw[i : i + 64]) for i in range(0, len(raw), 64)]

    # -- inference ------------------------------------------------------------

    def forward(self, x: QuantizedTensor) -> QuantizedTensor:
        if x.shape != self.input_shape:
            raise ZkmlError(
                f"{self.name}: input shape {x.shape} != {self.input_shape}"
            )
        for layer in self.layers:
            x = layer.forward(x)
        return x

    def forward_with_trace(
        self, x: QuantizedTensor
    ) -> Tuple[QuantizedTensor, List[QuantizedTensor]]:
        """Forward pass recording every intermediate activation (the
        'intermediate results from the proving function' of §4)."""
        trace = [x]
        for layer in self.layers:
            x = layer.forward(x)
            trace.append(x)
        return x, trace

    # -- ZKP accounting ---------------------------------------------------------

    def gate_count(self) -> int:
        """Total multiplication gates of the verifiable-inference circuit."""
        return sum(
            layer.gate_count(shape)
            for layer, shape in zip(self.layers, self._shapes[:-1])
        )

    def per_layer_gates(self) -> List[Tuple[str, int]]:
        return [
            (layer.name, layer.gate_count(shape))
            for layer, shape in zip(self.layers, self._shapes[:-1])
        ]

    def __repr__(self) -> str:
        return (
            f"SequentialModel({self.name}, layers={len(self.layers)}, "
            f"gates={self.gate_count()})"
        )


def _vgg_block(in_c: int, out_c: int, convs: int) -> List[Layer]:
    layers: List[Layer] = []
    c = in_c
    for i in range(convs):
        layers.append(Conv2d(c, out_c, 3, name=f"conv{out_c}_{i}"))
        layers.append(ReLU(name=f"relu{out_c}_{i}"))
        c = out_c
    layers.append(MaxPool2d(name=f"pool{out_c}"))
    return layers


def vgg16_cifar10() -> SequentialModel:
    """VGG-16 for CIFAR-10 (the §5/§6.3 application workload).

    The standard CIFAR adaptation: five conv blocks (64-64 / 128-128 /
    256×3 / 512×3 / 512×3) and a 512→512→10 classifier head.
    """
    layers: List[Layer] = []
    layers += _vgg_block(3, 64, 2)
    layers += _vgg_block(64, 128, 2)
    layers += _vgg_block(128, 256, 3)
    layers += _vgg_block(256, 512, 3)
    layers += _vgg_block(512, 512, 3)
    layers.append(Flatten())
    layers.append(Linear(512, 512, name="fc1"))
    layers.append(ReLU(name="relu_fc1"))
    layers.append(Linear(512, 10, name="fc2"))
    return SequentialModel(layers, input_shape=(3, 32, 32), name="vgg16-cifar10")


def tiny_cnn(input_size: int = 8, channels: int = 2, classes: int = 4) -> SequentialModel:
    """A circuit-friendly model small enough to prove with the real SNARK.

    Uses the Square activation (one gate per unit) instead of ReLU so the
    whole inference compiles to a clean arithmetic circuit.
    """
    hidden = channels * input_size * input_size
    layers: List[Layer] = [
        Conv2d(1, channels, 3, name="conv1"),
        Square(name="sq1"),
        Flatten(),
        Linear(hidden, classes, name="fc1"),
    ]
    return SequentialModel(layers, input_shape=(1, input_size, input_size), name="tiny-cnn")


def lenet_cifar10() -> SequentialModel:
    """A LeNet-style small CNN on 32×32×3 inputs (a second Table 11-class
    architecture for cross-checking gate accounting at a smaller scale)."""
    from .layers import SumPool2d

    layers: List[Layer] = [
        Conv2d(3, 6, 3, name="conv1"),
        ReLU(name="relu1"),
        SumPool2d(name="pool1"),
        Conv2d(6, 16, 3, name="conv2"),
        ReLU(name="relu2"),
        SumPool2d(name="pool2"),
        Flatten(),
        Linear(16 * 8 * 8, 120, name="fc1"),
        ReLU(name="relu_fc1"),
        Linear(120, 84, name="fc2"),
        ReLU(name="relu_fc2"),
        Linear(84, 10, name="fc3"),
    ]
    return SequentialModel(layers, input_shape=(3, 32, 32), name="lenet-cifar10")


def save_weights(model: SequentialModel, path: str) -> None:
    """Persist a model's quantized parameters to an ``.npz`` archive."""
    arrays = {}
    for i, layer in enumerate(model.layers):
        for attr in ("weights", "bias"):
            tensor = getattr(layer, attr, None)
            if isinstance(tensor, QuantizedTensor):
                arrays[f"{i}:{layer.name}:{attr}"] = tensor.values
                arrays[f"{i}:{layer.name}:{attr}:frac"] = np.array(
                    [tensor.frac_bits]
                )
    if not arrays:
        raise ZkmlError("model has no parameters to save")
    np.savez(path, **arrays)


def load_weights(model: SequentialModel, path: str) -> None:
    """Load parameters saved by :func:`save_weights` into ``model``.

    The layer schedule must match the one the weights were saved from.
    """
    with np.load(path) as data:
        for i, layer in enumerate(model.layers):
            for attr in ("weights", "bias"):
                if getattr(layer, attr, None) is None and not hasattr(
                    layer, attr
                ):
                    continue
                key = f"{i}:{layer.name}:{attr}"
                if key not in data:
                    if isinstance(getattr(layer, attr, None), QuantizedTensor):
                        raise ZkmlError(f"archive missing {key}")
                    continue
                frac = int(data[f"{key}:frac"][0])
                setattr(
                    layer,
                    attr,
                    QuantizedTensor(values=data[key], frac_bits=frac),
                )


def random_input(
    shape: Tuple[int, ...], seed: int = 0, frac_bits: int = 8
) -> QuantizedTensor:
    """A CIFAR-10-shaped (or arbitrary) synthetic input in [0, 1)."""
    rng = np.random.default_rng(seed)
    return QuantizedTensor.from_float(rng.random(shape), frac_bits)
