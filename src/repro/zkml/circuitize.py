"""Compile (small) model inference into a real R1CS circuit.

The paper's preprocessing stage "compiles the function for the model
inference into a circuit based on the technology proposed in many recent
works" (§5).  For models that fit a Python-scale prover we do that
compilation for real: every convolution MAC, squaring activation and
fully-connected MAC becomes a multiplication gate between *witness* wires
(both the model weights and the activations are secret), and the network
output is exposed as a public value.

The compiled circuit uses **exact integer arithmetic** (no in-circuit
rescaling): each layer's output carries a growing power-of-two scale, and
:func:`forward_exact` provides the matching plain-integer reference the
tests cross-check against.  In-circuit rescaling needs range proofs (the
``RESCALE_BITS``-per-activation cost the gate model charges for VGG-16);
for the runnable demo model the scales stay far below the field size, so
exactness is free.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List

import numpy as np

from ..core.circuit import CircuitBuilder, CompiledCircuit, compile_builder
from ..errors import ZkmlError
from ..field.prime_field import PrimeField
from .layers import Conv2d, Flatten, Linear, ReLU, Square, SumPool2d
from .model import SequentialModel
from .tensor import QuantizedTensor

CIRCUIT_LAYER_TYPES = (Conv2d, Linear, Square, Flatten, SumPool2d, ReLU)

#: Signed bit-width of the in-circuit ReLU range proofs.  Must cover the
#: largest activation magnitude of the exact (no-rescale) evaluation.
DEFAULT_RELU_BITS = 24


@dataclass
class ZkmlCircuit:
    """The compiled inference circuit plus its claimed outputs."""

    compiled: CompiledCircuit
    outputs: List[int]  # signed ints (pre-field), one per class logit
    gate_count: int


def _require_exactable(model: SequentialModel) -> None:
    for layer in model.layers:
        if not isinstance(layer, CIRCUIT_LAYER_TYPES):
            raise ZkmlError(
                f"layer {layer.name!r} ({type(layer).__name__}) has no exact "
                f"circuit form; use Conv2d/Linear/Square/SumPool2d/ReLU/"
                f"Flatten models"
            )


def forward_exact(model: SequentialModel, x: QuantizedTensor) -> np.ndarray:
    """Exact integer inference with NO rescaling (object-dtype numpy so
    intermediate magnitudes can exceed 64 bits safely)."""
    _require_exactable(model)
    vals = x.values.astype(object)
    for layer in model.layers:
        if isinstance(layer, Conv2d):
            c, h, w = vals.shape
            k = layer.kernel_size
            pad = k // 2
            padded = np.zeros((c, h + 2 * pad, w + 2 * pad), dtype=object)
            padded[:, pad : pad + h, pad : pad + w] = vals
            out = np.zeros((layer.out_channels, h, w), dtype=object)
            for oc in range(layer.out_channels):
                acc = np.zeros((h, w), dtype=object)
                for ic in range(c):
                    for di in range(k):
                        for dj in range(k):
                            coeff = int(layer.weights.values[oc, ic, di, dj])
                            if coeff:
                                acc = acc + coeff * padded[ic, di : di + h, dj : dj + w]
                out[oc] = acc
            vals = out
        elif isinstance(layer, Linear):
            flat = vals.reshape(-1)
            out = np.zeros(layer.out_features, dtype=object)
            for o in range(layer.out_features):
                out[o] = sum(
                    int(layer.weights.values[o, i]) * flat[i]
                    for i in range(layer.in_features)
                )
            vals = out
        elif isinstance(layer, Square):
            vals = vals * vals
        elif isinstance(layer, ReLU):
            flat = vals.reshape(-1)
            for i in range(flat.size):
                if flat[i] < 0:
                    flat[i] = 0
            vals = flat.reshape(vals.shape)
        elif isinstance(layer, SumPool2d):
            c, h, w = vals.shape
            s = layer.stride
            v = vals[:, : h - h % s, : w - w % s]
            vals = v.reshape(c, h // s, s, w // s, s).sum(axis=(2, 4))
        elif isinstance(layer, Flatten):
            vals = vals.reshape(-1)
    return vals


def circuitize(
    model: SequentialModel,
    x: QuantizedTensor,
    field: PrimeField,
    relu_bits: int = DEFAULT_RELU_BITS,
) -> ZkmlCircuit:
    """Compile one inference into an R1CS circuit with a live witness.

    Both the input image and the model parameters enter as private
    witness values (the model is the prover's IP, §5); the output logits
    are exposed as public values.
    """
    _require_exactable(model)
    cb = CircuitBuilder(field)

    # Activations as wires; weights as private-input wires per layer.
    act: np.ndarray = np.empty(x.shape, dtype=object)
    flat_in = x.values.reshape(-1)
    wires = cb.private_inputs([int(v) for v in flat_in])
    for idx, wire in enumerate(wires):
        act.reshape(-1)[idx] = wire
    act = act.reshape(x.shape)

    for layer in model.layers:
        if isinstance(layer, Conv2d):
            c, h, w = act.shape
            k = layer.kernel_size
            pad = k // 2
            zero = cb.constant(0)
            padded = np.full((c, h + 2 * pad, w + 2 * pad), zero, dtype=object)
            padded[:, pad : pad + h, pad : pad + w] = act
            w_wires = {}
            for oc in range(layer.out_channels):
                for ic in range(c):
                    for di in range(k):
                        for dj in range(k):
                            w_wires[(oc, ic, di, dj)] = cb.private_input(
                                int(layer.weights.values[oc, ic, di, dj])
                            )
            out = np.empty((layer.out_channels, h, w), dtype=object)
            for oc in range(layer.out_channels):
                for i in range(h):
                    for j in range(w):
                        terms = []
                        for ic in range(c):
                            for di in range(k):
                                for dj in range(k):
                                    xin = padded[ic, i + di, j + dj]
                                    if xin is zero:
                                        continue
                                    terms.append(
                                        cb.mul(w_wires[(oc, ic, di, dj)], xin)
                                    )
                        out[oc, i, j] = cb.sum_wires(terms) if terms else zero
            act = out
        elif isinstance(layer, Linear):
            flat = act.reshape(-1)
            out = np.empty(layer.out_features, dtype=object)
            for o in range(layer.out_features):
                terms = []
                for i in range(layer.in_features):
                    w_wire = cb.private_input(int(layer.weights.values[o, i]))
                    terms.append(cb.mul(w_wire, flat[i]))
                out[o] = cb.sum_wires(terms)
            act = out
        elif isinstance(layer, Square):
            flat = act.reshape(-1)
            for i in range(flat.size):
                flat[i] = cb.mul(flat[i], flat[i])
            act = flat.reshape(act.shape)
        elif isinstance(layer, ReLU):
            from ..core.gadgets import relu as relu_gadget

            flat = act.reshape(-1)
            for i in range(flat.size):
                flat[i] = relu_gadget(cb, flat[i], bits=relu_bits)
            act = flat.reshape(act.shape)
        elif isinstance(layer, SumPool2d):
            c, h, w = act.shape
            s = layer.stride
            out = np.empty((c, h // s, w // s), dtype=object)
            for ch in range(c):
                for i in range(h // s):
                    for j in range(w // s):
                        window = [
                            act[ch, s * i + di, s * j + dj]
                            for di in range(s)
                            for dj in range(s)
                        ]
                        out[ch, i, j] = cb.sum_wires(window)
            act = out
        elif isinstance(layer, Flatten):
            act = act.reshape(-1)

    for wire in act.reshape(-1):
        cb.expose_public(wire)
    gates = cb.num_multiplications
    compiled = compile_builder(cb)

    expected = forward_exact(model, x)
    outputs = [int(v) for v in expected.reshape(-1)]
    p = field.modulus
    got = [v % p for v in compiled.public_values]
    want = [v % p for v in outputs]
    if got != want:
        raise ZkmlError("circuit outputs disagree with exact inference")
    return ZkmlCircuit(compiled=compiled, outputs=outputs, gate_count=gates)
