"""Verifiable machine learning application (system S11 in DESIGN.md; §5).

* Quantized tensors and NN layers with ZKP gate accounting.
* :func:`vgg16_cifar10` — the paper's Table 11 workload.
* :func:`circuitize` — real R1CS compilation for circuit-scale models.
* :class:`MlaasService` — the Figure 8 service: commit, predict, prove,
  verify.
"""

from .circuitize import ZkmlCircuit, circuitize, forward_exact
from .layers import (
    Conv2d,
    Flatten,
    Layer,
    Linear,
    MaxPool2d,
    RESCALE_BITS,
    ReLU,
    Square,
    SumPool2d,
)
from .model import (
    SequentialModel,
    lenet_cifar10,
    load_weights,
    random_input,
    save_weights,
    tiny_cnn,
    vgg16_cifar10,
)
from .service import (
    MlaasService,
    PredictionResponse,
    VGG_STAGE_CAPS,
    simulate_vgg16_service,
)
from .tensor import DEFAULT_FRAC_BITS, QuantizedTensor, quantization_error
from .training import (
    Dataset,
    FloatTrainer,
    quantized_accuracy,
    synthetic_blobs,
    train_verifiable_model,
)

__all__ = [
    "QuantizedTensor",
    "DEFAULT_FRAC_BITS",
    "quantization_error",
    "Layer",
    "Conv2d",
    "Linear",
    "ReLU",
    "Square",
    "SumPool2d",
    "MaxPool2d",
    "Flatten",
    "RESCALE_BITS",
    "SequentialModel",
    "vgg16_cifar10",
    "lenet_cifar10",
    "tiny_cnn",
    "random_input",
    "save_weights",
    "load_weights",
    "circuitize",
    "forward_exact",
    "ZkmlCircuit",
    "Dataset",
    "FloatTrainer",
    "synthetic_blobs",
    "train_verifiable_model",
    "quantized_accuracy",
    "MlaasService",
    "PredictionResponse",
    "simulate_vgg16_service",
    "VGG_STAGE_CAPS",
]
