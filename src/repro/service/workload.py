"""Synthetic arrival traces: the shapes real proof traffic comes in.

Two canonical stream shapes for exercising the service:

* :func:`poisson_trace` — memoryless arrivals at a target rate, the
  standard open-loop model of independent customers.
* :func:`bursty_trace` — an ON/OFF process that alternates calm stretches
  with bursts several times the base rate; the shape that breaks naive
  fixed-size batching (queues starve, then flood).

Both tag each arrival with a priority class and mark a fraction as
*duplicates* of earlier arrivals, so a replay exercises the result
cache and single-flight paths, not just the batcher.  :func:`replay`
pushes a trace through a live :class:`~repro.service.ProofService`,
absorbing typed rejections (that is the point of admission control) and
returning every issued ticket.
"""

from __future__ import annotations

import random
import time
from dataclasses import dataclass
from typing import Callable, List, Optional, Tuple

from ..errors import AdmissionError, ServiceError
from .request import Priority, Ticket
from .service import ProofService


@dataclass(frozen=True)
class ArrivalEvent:
    """One synthetic arrival: when, how urgent, and what it duplicates."""

    #: Seconds after the trace starts at which this request arrives.
    offset_seconds: float
    priority: Priority
    #: Index of an earlier event this one repeats (None = fresh work).
    duplicate_of: Optional[int] = None
    #: Relative deadline for this request (None = unconstrained).
    deadline_seconds: Optional[float] = None


def _tag(
    index: int,
    offset: float,
    rng: random.Random,
    interactive_fraction: float,
    duplicate_fraction: float,
    deadline_seconds: Optional[float],
) -> ArrivalEvent:
    interactive = rng.random() < interactive_fraction
    duplicate = None
    if index > 0 and rng.random() < duplicate_fraction:
        duplicate = rng.randrange(index)
    return ArrivalEvent(
        offset_seconds=offset,
        priority=Priority.INTERACTIVE if interactive else Priority.BULK,
        duplicate_of=duplicate,
        deadline_seconds=deadline_seconds if interactive else None,
    )


def poisson_trace(
    n: int,
    rate_per_second: float,
    *,
    seed: int = 0,
    interactive_fraction: float = 0.3,
    duplicate_fraction: float = 0.1,
    deadline_seconds: Optional[float] = None,
) -> List[ArrivalEvent]:
    """``n`` Poisson arrivals at ``rate_per_second`` (exponential gaps)."""
    if rate_per_second <= 0:
        raise ServiceError(
            f"rate_per_second must be > 0, got {rate_per_second}"
        )
    rng = random.Random(seed)
    events: List[ArrivalEvent] = []
    t = 0.0
    for i in range(n):
        t += rng.expovariate(rate_per_second)
        events.append(
            _tag(i, t, rng, interactive_fraction, duplicate_fraction,
                 deadline_seconds)
        )
    return events


def bursty_trace(
    n: int,
    rate_per_second: float,
    *,
    burst_factor: float = 5.0,
    burst_fraction: float = 0.25,
    phase_length: int = 16,
    seed: int = 0,
    interactive_fraction: float = 0.3,
    duplicate_fraction: float = 0.1,
    deadline_seconds: Optional[float] = None,
) -> List[ArrivalEvent]:
    """ON/OFF arrivals: bursts at ``burst_factor ×`` the base rate.

    Phases of ``phase_length`` arrivals alternate between calm and burst;
    ``burst_fraction`` of phases are bursts.  The long-run mean rate
    stays near ``rate_per_second``.
    """
    if rate_per_second <= 0:
        raise ServiceError(
            f"rate_per_second must be > 0, got {rate_per_second}"
        )
    if burst_factor < 1:
        raise ServiceError(f"burst_factor must be >= 1, got {burst_factor}")
    rng = random.Random(seed)
    events: List[ArrivalEvent] = []
    t = 0.0
    in_burst = False
    for i in range(n):
        if i % phase_length == 0:
            in_burst = rng.random() < burst_fraction
        rate = rate_per_second * (burst_factor if in_burst else 1.0)
        t += rng.expovariate(rate)
        events.append(
            _tag(i, t, rng, interactive_fraction, duplicate_fraction,
                 deadline_seconds)
        )
    return events


#: Builds the submit() arguments for a fresh (non-duplicate) arrival:
#: ``index -> (payload, circuit_key, witness_key)``.
RequestFactory = Callable[[int], Tuple[object, bytes, Optional[bytes]]]


def replay(
    service: ProofService,
    events: List[ArrivalEvent],
    make_request: RequestFactory,
    *,
    time_scale: float = 1.0,
) -> Tuple[List[Optional[Ticket]], int]:
    """Replay a trace against a live service in (scaled) real time.

    Duplicate events resubmit the exact payload/keys of the event they
    repeat, which is what drives cache hits and single-flight joins.
    Rejected submissions yield ``None`` tickets (the rejection counts
    live in ``service.stats.rejections``).  Returns ``(tickets,
    rejected_count)``.
    """
    if time_scale <= 0:
        raise ServiceError(f"time_scale must be > 0, got {time_scale}")
    built: dict = {}

    def request_for(index: int):
        event = events[index]
        target = index if event.duplicate_of is None else event.duplicate_of
        if target not in built:
            built[target] = make_request(target)
        return built[target]

    start = time.monotonic()
    tickets: List[Optional[Ticket]] = []
    rejected = 0
    for i, event in enumerate(events):
        due = start + event.offset_seconds * time_scale
        delay = due - time.monotonic()
        if delay > 0:
            time.sleep(delay)
        payload, circuit_key, witness_key = request_for(i)
        try:
            tickets.append(
                service.submit(
                    payload,
                    circuit_key=circuit_key,
                    witness_key=witness_key,
                    priority=event.priority,
                    deadline_seconds=event.deadline_seconds,
                )
            )
        except AdmissionError:
            tickets.append(None)
            rejected += 1
    return tickets, rejected
