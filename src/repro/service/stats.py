"""Service-level observability: what the operator of a proving farm watches.

Where :class:`~repro.runtime.RuntimeStats` describes one batch run from
the inside (worker utilization, per-task proving time), this module
describes the *service* from the outside: how fast requests arrive, how
deep the queue runs, what batch sizes the scheduler actually forms, how
often the cache absorbs work, how many deadlines slip, and the
end-to-end latency distribution a customer experiences (queueing +
batching + proving, not proving alone).  Percentiles reuse the shared
:func:`repro.stats.percentile` so both layers report identically.

All record methods are thread-safe; submitters, the batcher thread, and
readers share one instance.
"""

from __future__ import annotations

import threading
from collections import Counter
from typing import Dict, List, Optional

from ..stats import percentile

#: The overload degradation ladder, mildest to most degraded.  The
#: service climbs it as pressure mounts — *scaling* (supervisor is
#: adding capacity), *brownout* (BULK traffic shed, INTERACTIVE still
#: admitted), *shedding* (queue full, everything rejected) — and
#: descends as the queue drains or the fleet catches up.
DEGRADATION_LADDER = ("healthy", "scaling", "brownout", "shedding")


class ServiceStats:
    """Aggregate counters and distributions for one service lifetime."""

    def __init__(self) -> None:
        self._lock = threading.Lock()
        #: Every submit() call, including rejected and cache-served ones.
        self.submitted = 0
        #: Requests that entered the batching queue (single-flight leaders).
        self.accepted = 0
        #: Typed rejections, keyed by :class:`AdmissionError` reason.
        self.rejections: Counter = Counter()
        #: Requests fulfilled (proved, cached, or coalesced).
        self.completed = 0
        #: Requests failed by a backend error.
        self.failed = 0
        self.cache_hits = 0
        self.cache_misses = 0
        #: Duplicates parked on an identical in-flight request.
        self.coalesced = 0
        #: Completions that landed after their request's deadline.
        self.deadline_misses = 0
        #: Unexpected exceptions that escaped a batch dispatch (the
        #: batcher guard caught them; the thread kept running).
        self.batcher_errors = 0
        #: Single-flight followers re-enqueued for an independent attempt
        #: after their leader's batch failed.
        self.follower_retries = 0
        #: One entry per dispatched batch.
        self.batch_sizes: List[int] = []
        #: Queue depth sampled at each submit and each batch formation.
        self.queue_depth_samples: List[int] = []
        #: End-to-end (submit → resolve) seconds per completed request.
        self.latencies: List[float] = []
        #: Current rung on :data:`DEGRADATION_LADDER`.
        self.degradation_state: str = "healthy"
        #: Every ladder transition, in order: ``(from, to)`` pairs.
        self.degradation_transitions: List[tuple] = []
        #: Latest retry-after hint handed out per rejection reason.
        self.retry_hints: Dict[str, float] = {}
        self._first_arrival: Optional[float] = None
        self._last_arrival: Optional[float] = None

    # -- recording (service-internal) -----------------------------------------

    def record_submit(self, now: float) -> None:
        with self._lock:
            self.submitted += 1
            if self._first_arrival is None:
                self._first_arrival = now
            self._last_arrival = now

    def record_accept(self) -> None:
        with self._lock:
            self.accepted += 1

    def record_rejection(
        self, reason: str, retry_after: Optional[float] = None
    ) -> None:
        with self._lock:
            self.rejections[reason] += 1
            if retry_after is not None:
                self.retry_hints[reason] = retry_after

    def record_degradation(self, state: str) -> Optional[str]:
        """Move to ``state``; returns the previous state on a transition,
        ``None`` when it was already current (so callers emit one trace
        event per actual ladder move, not per re-derivation)."""
        if state not in DEGRADATION_LADDER:
            raise ValueError(f"unknown degradation state {state!r}")
        with self._lock:
            previous = self.degradation_state
            if state == previous:
                return None
            self.degradation_state = state
            self.degradation_transitions.append((previous, state))
            return previous

    def record_cache_hit(self) -> None:
        with self._lock:
            self.cache_hits += 1

    def record_cache_miss(self) -> None:
        with self._lock:
            self.cache_misses += 1

    def record_coalesced(self) -> None:
        with self._lock:
            self.coalesced += 1

    def record_batch(self, size: int) -> None:
        with self._lock:
            self.batch_sizes.append(size)

    def record_completion(self, latency_seconds: float, missed_deadline: bool) -> None:
        with self._lock:
            self.completed += 1
            self.latencies.append(latency_seconds)
            if missed_deadline:
                self.deadline_misses += 1

    def record_failure(self, count: int = 1) -> None:
        with self._lock:
            self.failed += count

    def record_batcher_error(self) -> None:
        with self._lock:
            self.batcher_errors += 1

    def record_follower_retry(self, count: int = 1) -> None:
        with self._lock:
            self.follower_retries += count

    def sample_queue_depth(self, depth: int) -> None:
        with self._lock:
            self.queue_depth_samples.append(depth)

    # -- aggregates -----------------------------------------------------------

    @property
    def rejected(self) -> int:
        with self._lock:
            return sum(self.rejections.values())

    @property
    def arrival_rate_per_second(self) -> float:
        """Mean arrival rate over the observed submission window."""
        with self._lock:
            if (
                self._first_arrival is None
                or self._last_arrival is None
                or self.submitted < 2
            ):
                return 0.0
            window = self._last_arrival - self._first_arrival
            if window <= 0:
                return 0.0
            return (self.submitted - 1) / window

    @property
    def batch_size_histogram(self) -> Dict[int, int]:
        """``{batch size: count}`` over every dispatched batch."""
        with self._lock:
            return dict(Counter(self.batch_sizes))

    @property
    def mean_batch_size(self) -> float:
        with self._lock:
            if not self.batch_sizes:
                return 0.0
            return sum(self.batch_sizes) / len(self.batch_sizes)

    @property
    def cache_hit_rate(self) -> float:
        """Hits over cache lookups that could have been served (hits+misses)."""
        with self._lock:
            looked_up = self.cache_hits + self.cache_misses
            if not looked_up:
                return 0.0
            return self.cache_hits / looked_up

    @property
    def max_queue_depth(self) -> int:
        with self._lock:
            return max(self.queue_depth_samples, default=0)

    def latency_percentile(self, q: float) -> float:
        """The q-th percentile of end-to-end request latency (seconds)."""
        with self._lock:
            return percentile(self.latencies, q)

    @property
    def p50_latency_seconds(self) -> float:
        return self.latency_percentile(50)

    @property
    def p95_latency_seconds(self) -> float:
        return self.latency_percentile(95)

    @property
    def p99_latency_seconds(self) -> float:
        return self.latency_percentile(99)

    # -- presentation ---------------------------------------------------------

    def report(self) -> str:
        """A human-readable multi-line summary (the service dashboard)."""
        histogram = self.batch_size_histogram
        histo_text = (
            ", ".join(f"{s}×{n}" for s, n in sorted(histogram.items()))
            or "(none)"
        )
        rejections = (
            ", ".join(f"{r}={n}" for r, n in sorted(self.rejections.items()))
            or "0"
        )
        with self._lock:
            hints = dict(self.retry_hints)
            state = self.degradation_state
            transitions = len(self.degradation_transitions)
        if hints:
            rejections += " (retry after " + ", ".join(
                f"{r}≤{s:.2f}s" for r, s in sorted(hints.items())
            ) + ")"
        lines = [
            f"submitted       : {self.submitted} "
            f"({self.arrival_rate_per_second:.1f} req/s)",
            f"completed       : {self.completed} ({self.failed} failed, "
            f"{self.follower_retries} follower retries, "
            f"{self.batcher_errors} batcher errors)",
            f"rejected        : {rejections}",
            f"cache           : {self.cache_hits} hits, "
            f"{self.coalesced} coalesced "
            f"(hit rate {self.cache_hit_rate * 100:.0f}%)",
            f"batches         : {len(self.batch_sizes)} "
            f"(mean size {self.mean_batch_size:.1f}; sizes {histo_text})",
            f"queue depth     : max {self.max_queue_depth}",
            f"degradation     : {state} ({transitions} transitions)",
            f"deadline misses : {self.deadline_misses}",
            f"latency p50     : {self.p50_latency_seconds * 1e3:.1f} ms",
            f"latency p95     : {self.p95_latency_seconds * 1e3:.1f} ms",
            f"latency p99     : {self.p99_latency_seconds * 1e3:.1f} ms",
        ]
        return "\n".join(lines)
