"""Requests, priorities, and future-like tickets for the proof service.

The unit of the streaming front-end is a :class:`ProofRequest` — an
opaque payload tagged with the routing metadata the scheduler needs: a
*circuit key* (requests with the same key compile to the same R1CS, so a
batch of them shares one prover setup), a *witness key* (two requests
with the same circuit and witness keys are byte-identical work, which is
what the result cache dedupes on), a :class:`Priority` class, and an
optional deadline.

Submission returns a :class:`Ticket` immediately; the caller blocks on
:meth:`Ticket.result` only when it actually needs the proof, which is
what lets one client thread keep the arrival stream flowing while the
batcher forms batches behind it.
"""

from __future__ import annotations

import enum
import threading
from dataclasses import dataclass, field as dc_field
from typing import Any, Optional

from ..errors import ServiceError


class Priority(enum.IntEnum):
    """Request priority class; lower value schedules first.

    ``INTERACTIVE`` is the latency-sensitive class (a customer waiting on
    a prediction); ``BULK`` is throughput work (batch re-proving, backfill)
    that admission control sheds first under load.
    """

    INTERACTIVE = 0
    BULK = 1


class Ticket:
    """A future-like handle for one submitted request.

    The service resolves the ticket exactly once — with a result (proved,
    served from cache, or coalesced onto an identical in-flight request)
    or with an error.  ``source`` records which of those paths fulfilled
    it: ``"proved"``, ``"cache"``, or ``"coalesced"``.
    """

    def __init__(
        self,
        request_id: int,
        *,
        priority: Priority = Priority.BULK,
        submitted_at: float = 0.0,
        deadline: Optional[float] = None,
    ):
        self.request_id = request_id
        self.priority = priority
        #: Monotonic submission timestamp (set by the service).
        self.submitted_at = submitted_at
        #: Absolute monotonic deadline, or None for "no deadline".
        self.deadline = deadline
        #: How the ticket was fulfilled: "proved" | "cache" | "coalesced".
        self.source: Optional[str] = None
        self._event = threading.Event()
        self._result: Any = None
        self._error: Optional[BaseException] = None

    # -- caller side ----------------------------------------------------------

    def done(self) -> bool:
        """True once the ticket is resolved (result or error)."""
        return self._event.is_set()

    def wait(self, timeout: Optional[float] = None) -> bool:
        """Block until resolved; returns ``done()`` after the wait."""
        return self._event.wait(timeout)

    def result(self, timeout: Optional[float] = None) -> Any:
        """The request's result, blocking up to ``timeout`` seconds.

        Raises :class:`~repro.errors.ServiceError` on timeout, or the
        recorded failure if the request's batch failed.
        """
        if not self._event.wait(timeout):
            raise ServiceError(
                f"request {self.request_id} not done within {timeout} s"
            )
        if self._error is not None:
            raise self._error
        return self._result

    @property
    def state(self) -> str:
        """``"pending"``, ``"done"``, or ``"failed"``."""
        if not self._event.is_set():
            return "pending"
        return "failed" if self._error is not None else "done"

    # -- service side ---------------------------------------------------------

    def _resolve(self, value: Any, source: str) -> None:
        self._result = value
        self.source = source
        self._event.set()

    def _fail(self, error: BaseException) -> None:
        self._error = error
        self._event.set()


@dataclass
class ProofRequest:
    """One queued unit of work, as the batcher sees it."""

    request_id: int
    #: Opaque per-backend payload (a ProofTask, a QuantizedTensor, …).
    payload: Any
    #: Requests sharing this key compile to the same circuit and may batch.
    circuit_key: bytes
    #: Dedup key within a circuit (None = never cached or coalesced).
    witness_key: Optional[bytes]
    priority: Priority
    #: Monotonic arrival time.
    submitted_at: float
    #: Absolute monotonic deadline (None = unconstrained).
    deadline: Optional[float]
    ticket: Ticket = dc_field(repr=False, default=None)  # type: ignore[assignment]
    #: Dispatch attempt this request is on (2 = a promoted single-flight
    #: follower getting its one independent retry after a batch failure).
    attempt: int = 1

    @property
    def cache_key(self) -> Optional[tuple]:
        """The (circuit, witness) identity the result cache dedupes on."""
        if self.witness_key is None:
            return None
        return (self.circuit_key, self.witness_key)

    def urgency(self) -> tuple:
        """Sort key for deadline-aware, priority-first ordering."""
        deadline = self.deadline if self.deadline is not None else float("inf")
        return (int(self.priority), deadline, self.submitted_at)
