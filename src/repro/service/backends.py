"""Proving backends: what the service dispatches a formed batch to.

A backend is anything with ``prove_batch(circuit_key, requests) ->
results`` (one result per request, in order).  Because the batcher only
ever forms *uniform* batches (one circuit key per batch), a backend can
assume every request in the call shares a prover setup — the same
contract :meth:`MlaasService.prove_predictions` exploits.

:class:`RuntimeProofBackend` is the stock backend for raw
:class:`~repro.core.batch.ProofTask` payloads.  It holds one
:class:`~repro.runtime.ProverSpec` per circuit key and routes every
batch through the unified execution layer (:mod:`repro.execution`):
``workers == 1`` selects the in-process :class:`SerialBackend`,
``workers > 1`` a :class:`PoolBackend`, and any selector string or
backend instance can be passed explicitly.  Tasks are renumbered to
their request ids before dispatch, so the ``task`` spans in a shared
trace file carry the same ids the service's ``request`` spans do — the
join that lets :func:`repro.execution.request_lineage` walk one request
from submission to proof.
"""

from __future__ import annotations

from dataclasses import replace
from typing import Any, List, Mapping, Optional, Protocol, Sequence, Union

from ..core.batch import ProofTask
from ..core.verifier import SnarkVerifier
from ..errors import ServiceError
from ..execution import PoolBackend, ProvingBackend, SerialBackend, resolve_backend
from ..runtime import ProverSpec, RuntimeStats
from .request import ProofRequest


class ProofBackend(Protocol):
    """Structural interface every service backend satisfies."""

    def prove_batch(
        self, circuit_key: bytes, requests: Sequence[ProofRequest]
    ) -> List[Any]:
        """Prove one uniform batch; one result per request, in order."""
        ...  # pragma: no cover - protocol stub


class RuntimeProofBackend:
    """Proves :class:`ProofTask` payloads on an execution backend.

    Args:
        specs:   ``{circuit key: ProverSpec}`` — the circuits this
                 backend can serve.  The natural key is
                 ``spec.r1cs.digest()`` (see :func:`spec_key`).
        workers: ``1`` proves inline on the batcher thread with a
                 prover cached per circuit key; ``> 1`` shards each
                 batch across a process pool.  Ignored when ``backend``
                 is given.
        runtime_options: Extra keyword arguments forwarded to
                 :class:`~repro.runtime.ParallelProvingRuntime` in
                 pooled mode (``chunk_size``, ``max_retries``, …).
        backend: Explicit execution substrate — a selector string
                 (``"serial"``, ``"pool:8"``,
                 ``"sharded:pool:4,pool:4"``) or a
                 :class:`~repro.execution.ProvingBackend` instance.
    """

    def __init__(
        self,
        specs: Mapping[bytes, ProverSpec],
        workers: int = 1,
        runtime_options: Optional[dict] = None,
        backend: Optional[Union[str, ProvingBackend]] = None,
    ):
        if not specs:
            raise ServiceError("RuntimeProofBackend needs at least one spec")
        if workers < 1:
            raise ServiceError(f"workers must be >= 1, got {workers}")
        self.specs = dict(specs)
        self.workers = workers
        self.runtime_options = dict(runtime_options or {})
        if backend is not None:
            self.backend: ProvingBackend = resolve_backend(backend)
        elif workers == 1:
            self.backend = SerialBackend()
        else:
            self.backend = PoolBackend(workers, **self.runtime_options)
        #: :class:`RuntimeStats` of the most recent batch (None before
        #: the first batch).
        self.last_runtime_stats: Optional[RuntimeStats] = None

    @classmethod
    def from_specs(
        cls, specs: Sequence[ProverSpec], **kwargs
    ) -> "RuntimeProofBackend":
        """Build with keys derived from each spec's R1CS digest."""
        return cls({spec_key(spec): spec for spec in specs}, **kwargs)

    def _spec_for(self, circuit_key: bytes) -> ProverSpec:
        try:
            return self.specs[circuit_key]
        except KeyError:
            raise ServiceError(
                f"no ProverSpec registered for circuit key "
                f"{circuit_key.hex()[:16]}…"
            ) from None

    def prove_batch(
        self, circuit_key: bytes, requests: Sequence[ProofRequest]
    ) -> List[Any]:
        """Prove every request's :class:`ProofTask` payload.

        Tasks are renumbered to their request ids (``task_id`` is not
        part of proof content), so per-task trace spans and
        :class:`RuntimeStats` records correlate with service requests.
        """
        spec = self._spec_for(circuit_key)
        tasks: List[ProofTask] = [
            replace(request.payload, task_id=request.request_id)
            for request in requests
        ]
        proofs, stats = self.backend.prove_tasks(spec, tasks)
        self.last_runtime_stats = stats
        return proofs

    def verifier_for(self, circuit_key: bytes) -> SnarkVerifier:
        """The matching verifier for one registered circuit (for clients)."""
        return self._spec_for(circuit_key).build_verifier()


def spec_key(spec: ProverSpec) -> bytes:
    """The canonical circuit key for a spec: its R1CS digest."""
    return spec.r1cs.digest()


def task_witness_key(task: ProofTask) -> bytes:
    """A dedup key for a :class:`ProofTask`: digest of witness + publics."""
    import hashlib

    h = hashlib.sha256()
    h.update(",".join(str(int(v)) for v in task.witness).encode())
    h.update(b"|")
    h.update(",".join(str(int(v)) for v in task.public_values).encode())
    return h.digest()
