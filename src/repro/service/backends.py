"""Proving backends: what the service dispatches a formed batch to.

A backend is anything with ``prove_batch(circuit_key, requests) ->
results`` (one result per request, in order).  Because the batcher only
ever forms *uniform* batches (one circuit key per batch), a backend can
assume every request in the call shares a prover setup — the same
contract :meth:`MlaasService.prove_predictions` exploits.

:class:`RuntimeProofBackend` is the stock backend for raw
:class:`~repro.core.batch.ProofTask` payloads: it holds one
:class:`~repro.runtime.ProverSpec` per circuit key, pays each key's
prover construction once for the service's lifetime (not once per
batch), and shards multi-worker batches through
:class:`~repro.runtime.ParallelProvingRuntime`.
"""

from __future__ import annotations

from typing import Any, Dict, List, Mapping, Optional, Sequence

from ..core.batch import ProofTask
from ..core.prover import SnarkProver
from ..core.verifier import SnarkVerifier
from ..errors import ServiceError
from ..runtime import ParallelProvingRuntime, ProverSpec, RuntimeStats
from .request import ProofRequest

try:  # pragma: no cover - version probe
    from typing import Protocol
except ImportError:  # pragma: no cover - Python < 3.8
    Protocol = object  # type: ignore[assignment]


class ProofBackend(Protocol):
    """Structural interface every service backend satisfies."""

    def prove_batch(
        self, circuit_key: bytes, requests: Sequence[ProofRequest]
    ) -> List[Any]:
        """Prove one uniform batch; one result per request, in order."""
        ...  # pragma: no cover - protocol stub


class RuntimeProofBackend:
    """Proves :class:`ProofTask` payloads on the parallel runtime.

    Args:
        specs:   ``{circuit key: ProverSpec}`` — the circuits this
                 backend can serve.  The natural key is
                 ``spec.r1cs.digest()`` (see :func:`spec_key`).
        workers: ``1`` proves inline on the batcher thread with a
                 prover cached per circuit key; ``> 1`` shards each
                 batch across a process pool.
        runtime_options: Extra keyword arguments forwarded to
                 :class:`ParallelProvingRuntime` in pooled mode
                 (``chunk_size``, ``max_retries``, …).
    """

    def __init__(
        self,
        specs: Mapping[bytes, ProverSpec],
        workers: int = 1,
        runtime_options: Optional[dict] = None,
    ):
        if not specs:
            raise ServiceError("RuntimeProofBackend needs at least one spec")
        if workers < 1:
            raise ServiceError(f"workers must be >= 1, got {workers}")
        self.specs = dict(specs)
        self.workers = workers
        self.runtime_options = dict(runtime_options or {})
        self._provers: Dict[bytes, SnarkProver] = {}
        self._runtimes: Dict[bytes, ParallelProvingRuntime] = {}
        #: :class:`RuntimeStats` of the most recent pooled batch (None in
        #: inline mode or before the first batch).
        self.last_runtime_stats: Optional[RuntimeStats] = None

    @classmethod
    def from_specs(
        cls, specs: Sequence[ProverSpec], **kwargs
    ) -> "RuntimeProofBackend":
        """Build with keys derived from each spec's R1CS digest."""
        return cls({spec_key(spec): spec for spec in specs}, **kwargs)

    def _spec_for(self, circuit_key: bytes) -> ProverSpec:
        try:
            return self.specs[circuit_key]
        except KeyError:
            raise ServiceError(
                f"no ProverSpec registered for circuit key "
                f"{circuit_key.hex()[:16]}…"
            ) from None

    def prove_batch(
        self, circuit_key: bytes, requests: Sequence[ProofRequest]
    ) -> List[Any]:
        """Prove every request's :class:`ProofTask` payload."""
        spec = self._spec_for(circuit_key)
        tasks: List[ProofTask] = [request.payload for request in requests]
        if self.workers == 1:
            prover = self._provers.get(circuit_key)
            if prover is None:
                prover = spec.build_prover()
                self._provers[circuit_key] = prover
            return [
                prover.prove(task.witness, task.public_values)
                for task in tasks
            ]
        runtime = self._runtimes.get(circuit_key)
        if runtime is None:
            runtime = ParallelProvingRuntime(
                spec, workers=self.workers, **self.runtime_options
            )
            self._runtimes[circuit_key] = runtime
        proofs, stats = runtime.prove_tasks(tasks)
        self.last_runtime_stats = stats
        return proofs

    def verifier_for(self, circuit_key: bytes) -> SnarkVerifier:
        """The matching verifier for one registered circuit (for clients)."""
        return self._spec_for(circuit_key).build_verifier()


def spec_key(spec: ProverSpec) -> bytes:
    """The canonical circuit key for a spec: its R1CS digest."""
    return spec.r1cs.digest()


def task_witness_key(task: ProofTask) -> bytes:
    """A dedup key for a :class:`ProofTask`: digest of witness + publics."""
    import hashlib

    h = hashlib.sha256()
    h.update(",".join(str(int(v)) for v in task.witness).encode())
    h.update(b"|")
    h.update(",".join(str(int(v)) for v in task.public_values).encode())
    return h.digest()
