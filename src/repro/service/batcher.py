"""Dynamic batch formation: when to cut a batch, and what goes in it.

The paper's pipeline wants large uniform batches (every module processes
a *batch* of proof tasks per beat); an online service wants low latency.
:class:`BatchPolicy` arbitrates with three triggers, evaluated per
circuit-key group:

* **size** — a group reaching ``max_batch_size`` is dispatched at once
  (the batch is as good as it will get);
* **age** — a group whose oldest request has waited ``max_wait_seconds``
  is dispatched even if small (bounds the batching delay);
* **deadline** — a group containing a request whose deadline slack has
  shrunk to ``urgency_slack_seconds`` is dispatched immediately.

Groups are keyed by circuit digest so every dispatched batch is
*uniform* — it hits the shared-prover-setup fast path
(:class:`~repro.runtime.ProverSpec` built once per batch, as in
:meth:`MlaasService.prove_predictions`).  Among ripe groups, the one
holding the most urgent request (priority class, then earliest deadline,
then arrival) wins, and members are ordered by the same key inside the
batch.

:class:`BatchPolicy` is pure (pending list + clock in, batch out) so the
scheduling behavior is unit-testable without threads;
:class:`DynamicBatcher` is the thread that runs it against the service's
queue and dispatches the selected batches.
"""

from __future__ import annotations

import threading
from collections import defaultdict
from dataclasses import dataclass
from typing import TYPE_CHECKING, Dict, List, Optional, Sequence

from ..errors import ServiceError
from .request import ProofRequest

if TYPE_CHECKING:  # pragma: no cover - typing only
    from .service import ProofService


@dataclass(frozen=True)
class BatchPolicy:
    """Knobs for the size / age / deadline batch triggers.

    Args:
        max_batch_size:        Hard cap on requests per dispatched batch
                               (the size trigger fires at this count).
        max_wait_seconds:      Oldest-request age at which a group is
                               dispatched regardless of size (the batch
                               window; the throughput/latency knob).
        urgency_slack_seconds: Deadline slack below which a request makes
                               its whole group ripe.  ``None`` defaults
                               to ``max_wait_seconds`` — a request is
                               never held once waiting longer could miss
                               its deadline.
    """

    max_batch_size: int = 16
    max_wait_seconds: float = 0.05
    urgency_slack_seconds: Optional[float] = None

    def __post_init__(self) -> None:
        if self.max_batch_size < 1:
            raise ServiceError(
                f"max_batch_size must be >= 1, got {self.max_batch_size}"
            )
        if self.max_wait_seconds < 0:
            raise ServiceError(
                f"max_wait_seconds must be >= 0, got {self.max_wait_seconds}"
            )

    @property
    def slack(self) -> float:
        """Effective urgency slack (defaults to the batch window)."""
        if self.urgency_slack_seconds is not None:
            return self.urgency_slack_seconds
        return self.max_wait_seconds

    # -- pure scheduling decisions -------------------------------------------

    def group(
        self, pending: Sequence[ProofRequest]
    ) -> Dict[bytes, List[ProofRequest]]:
        """Partition pending requests into uniform circuit-key groups."""
        groups: Dict[bytes, List[ProofRequest]] = defaultdict(list)
        for request in pending:
            groups[request.circuit_key].append(request)
        return dict(groups)

    def _ripe(self, requests: List[ProofRequest], now: float) -> bool:
        if len(requests) >= self.max_batch_size:
            return True
        oldest = min(r.submitted_at for r in requests)
        if now - oldest >= self.max_wait_seconds:
            return True
        return any(
            r.deadline is not None and r.deadline - now <= self.slack
            for r in requests
        )

    def select(
        self,
        pending: Sequence[ProofRequest],
        now: float,
        drain: bool = False,
    ) -> Optional[List[ProofRequest]]:
        """The next batch to dispatch, or None if no trigger has fired.

        With ``drain=True`` every non-empty group is ripe (service
        shutdown flushes the queue).  The returned batch is deadline-aware
        ordered: priority class first, then earliest deadline, then FIFO.
        """
        if not pending:
            return None
        ripe = [
            requests
            for requests in self.group(pending).values()
            if drain or self._ripe(requests, now)
        ]
        if not ripe:
            return None
        chosen = min(ripe, key=lambda reqs: min(r.urgency() for r in reqs))
        ordered = sorted(chosen, key=ProofRequest.urgency)
        return ordered[: self.max_batch_size]

    def next_wakeup(
        self, pending: Sequence[ProofRequest], now: float
    ) -> Optional[float]:
        """Earliest future instant a time-based trigger can fire.

        None when the queue is empty (sleep until a submit wakes us).
        """
        if not pending:
            return None
        candidates: List[float] = []
        for requests in self.group(pending).values():
            oldest = min(r.submitted_at for r in requests)
            candidates.append(oldest + self.max_wait_seconds)
            for r in requests:
                if r.deadline is not None:
                    candidates.append(r.deadline - self.slack)
        return min(candidates)


class DynamicBatcher(threading.Thread):
    """The scheduler thread: waits for a trigger, cuts a batch, dispatches.

    Dispatch runs *on this thread*, synchronously — while a batch proves,
    arrivals accumulate, so the next batch is naturally larger under
    load.  That is the dynamic-batching feedback loop: light traffic gets
    small low-latency batches, heavy traffic gets big efficient ones.
    """

    def __init__(self, service: "ProofService", policy: BatchPolicy):
        super().__init__(name="repro-batcher", daemon=True)
        self.service = service
        self.policy = policy

    def run(self) -> None:  # pragma: no cover - exercised via ProofService
        service = self.service
        while True:
            with service._cond:
                while True:
                    now = service._clock()
                    batch = self.policy.select(
                        service._pending, now, drain=service._closing
                    )
                    if batch is not None:
                        for request in batch:
                            service._pending.remove(request)
                        service._active_batches += 1
                        break
                    if service._closing:
                        return
                    wakeup = self.policy.next_wakeup(service._pending, now)
                    timeout = None if wakeup is None else max(wakeup - now, 0.0)
                    service._cond.wait(timeout)
            try:
                service._dispatch(batch)
            except Exception as exc:  # noqa: BLE001 - thread must survive
                # A bug (or injected chaos) escaping _dispatch must not
                # kill the scheduler: fail this batch's tickets, keep
                # serving the queue.
                service._batcher_error(batch, exc)
            finally:
                with service._cond:
                    service._active_batches -= 1
                    service._cond.notify_all()
