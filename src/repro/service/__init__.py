"""Streaming proof service (system S23 in DESIGN.md).

The paper's opening scenario — "service providers need to continuously
process customer inputs that come in like a flowing stream" (§1) — needs
more than a fast batch prover: it needs the layer that turns an online
request *stream* into the well-formed uniform *batches* the proving
machinery is fast at.  This package is that layer:

* :class:`ProofService` — submit/ticket front door with watermark
  admission control (typed :class:`~repro.errors.AdmissionError`
  rejections, BULK shedding with hysteresis);
* :class:`DynamicBatcher` / :class:`BatchPolicy` — size, age, and
  deadline batch triggers over circuit-key groups, priority-first and
  deadline-aware ordering;
* :class:`ResultCache` — LRU result reuse plus single-flight
  deduplication of identical in-flight requests;
* :class:`ServiceStats` — arrival rate, queue depth, batch-size
  histogram, deadline misses, cache hit rate, p50/p95/p99 end-to-end
  latency;
* :class:`RuntimeProofBackend` — the stock bridge onto
  :class:`~repro.runtime.ParallelProvingRuntime`, one shared prover
  setup per circuit key;
* :mod:`~repro.service.workload` — Poisson and bursty arrival traces
  with priorities, deadlines, and duplicates, plus a real-time
  :func:`replay` driver.

``python -m repro serve`` replays a synthetic trace end to end;
``benchmarks/bench_service.py`` sweeps arrival rate × batch window.
"""

from .backends import (
    ProofBackend,
    RuntimeProofBackend,
    spec_key,
    task_witness_key,
)
from .batcher import BatchPolicy, DynamicBatcher
from .cache import ResultCache
from .request import Priority, ProofRequest, Ticket
from .service import ProofService
from .stats import ServiceStats
from .workload import (
    ArrivalEvent,
    bursty_trace,
    poisson_trace,
    replay,
)

__apidoc__ = """\
**Submit/ticket lifecycle.** `ProofService.submit(payload, circuit_key=…,
witness_key=…, priority=…, deadline_seconds=…)` never blocks: it either
returns a `Ticket` or raises a typed `AdmissionError` whose `reason` is
`"queue_full"` (hard bound `max_queue` hit), `"bulk_shed"` (queue above
`high_watermark`; BULK rejected until depth falls below `low_watermark` —
INTERACTIVE still boards), or `"service_closed"`. The ticket resolves
once — `ticket.result(timeout)` blocks for the value, `ticket.source`
says whether it was `"proved"`, served from `"cache"`, or `"coalesced"`
onto an identical in-flight request. Deadlines shape scheduling and are
*recorded* when missed (`ServiceStats.deadline_misses`); they never drop
a request. `close(drain=True)` flushes the queue; `close(drain=False)`
fails pending tickets with `ServiceError`.

**Batching knobs (`BatchPolicy`).** Requests group by `circuit_key` so
every batch is uniform (one prover setup per batch). A group dispatches
when it reaches `max_batch_size` (size trigger), when its oldest member
has waited `max_wait_seconds` (age trigger — the throughput/latency
knob), or when any member's deadline slack falls to
`urgency_slack_seconds` (deadline trigger). Among ripe groups the most
urgent wins — priority class, then earliest deadline, then arrival — and
the batch is ordered the same way.

**Cache semantics.** Results are keyed by `(circuit_key, witness_key)`.
A finished key resolves new submissions instantly (LRU, `cache_capacity`
entries); an in-flight key parks the new ticket on the leader
(single-flight: N identical concurrent requests cost one proof). Pass
`witness_key=None` to opt a request out of caching entirely. A failed
batch releases its claims so a retry can re-prove.
"""

__all__ = [
    "ArrivalEvent",
    "BatchPolicy",
    "DynamicBatcher",
    "Priority",
    "ProofBackend",
    "ProofRequest",
    "ProofService",
    "ResultCache",
    "RuntimeProofBackend",
    "ServiceStats",
    "Ticket",
    "bursty_trace",
    "poisson_trace",
    "replay",
    "spec_key",
    "task_witness_key",
]
