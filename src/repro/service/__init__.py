"""Streaming proof service (system S23 in DESIGN.md).

The paper's opening scenario — "service providers need to continuously
process customer inputs that come in like a flowing stream" (§1) — needs
more than a fast batch prover: it needs the layer that turns an online
request *stream* into the well-formed uniform *batches* the proving
machinery is fast at.  This package is that layer:

* :class:`ProofService` — submit/ticket front door with watermark
  admission control (typed :class:`~repro.errors.AdmissionError`
  rejections, BULK shedding with hysteresis);
* :class:`DynamicBatcher` / :class:`BatchPolicy` — size, age, and
  deadline batch triggers over circuit-key groups, priority-first and
  deadline-aware ordering;
* :class:`ResultCache` — LRU result reuse plus single-flight
  deduplication of identical in-flight requests;
* :class:`ServiceStats` — arrival rate, queue depth, batch-size
  histogram, deadline misses, cache hit rate, p50/p95/p99 end-to-end
  latency;
* :class:`RuntimeProofBackend` — the stock bridge onto
  :class:`~repro.runtime.ParallelProvingRuntime`, one shared prover
  setup per circuit key;
* :mod:`~repro.service.workload` — Poisson and bursty arrival traces
  with priorities, deadlines, and duplicates, plus a real-time
  :func:`replay` driver;
* :mod:`~repro.service.fleet` (S30) — the shed-or-scale layer: a
  :class:`FleetSupervisor` feeding live arrival rates into the cluster
  :class:`~repro.cluster.Autoscaler`, a :class:`FleetActuator` keeping
  pool and hash ring in lockstep with drain-then-terminate shrink, and
  the ``healthy → scaling → brownout → shedding`` degradation ladder
  surfaced through :class:`ServiceStats` and retry-after hints.

``python -m repro serve`` replays a synthetic trace end to end (add
``--fleet`` to serve it over a supervised local node fleet);
``benchmarks/bench_service.py`` sweeps arrival rate × batch window.
"""

from .backends import (
    ProofBackend,
    RuntimeProofBackend,
    spec_key,
    task_witness_key,
)
from .batcher import BatchPolicy, DynamicBatcher
from .cache import ResultCache
from .fleet import (
    Fleet,
    FleetActuator,
    FleetSupervisor,
    find_cluster_backend,
    launch_fleet,
)
from .request import Priority, ProofRequest, Ticket
from .service import ProofService
from .stats import DEGRADATION_LADDER, ServiceStats
from .workload import (
    ArrivalEvent,
    bursty_trace,
    poisson_trace,
    replay,
)

__apidoc__ = """\
**Submit/ticket lifecycle.** `ProofService.submit(payload, circuit_key=…,
witness_key=…, priority=…, deadline_seconds=…)` never blocks: it either
returns a `Ticket` or raises a typed `AdmissionError` whose `reason` is
`"queue_full"` (hard bound `max_queue` hit), `"bulk_shed"` (queue above
`high_watermark`; BULK rejected until depth falls below `low_watermark` —
INTERACTIVE still boards), or `"service_closed"`. The ticket resolves
once — `ticket.result(timeout)` blocks for the value, `ticket.source`
says whether it was `"proved"`, served from `"cache"`, or `"coalesced"`
onto an identical in-flight request. Deadlines shape scheduling and are
*recorded* when missed (`ServiceStats.deadline_misses`); they never drop
a request. `close(drain=True)` flushes the queue; `close(drain=False)`
fails pending tickets with `ServiceError`; `close(drain=True,
timeout=…)` bounds the flush — still-queued requests fail with a
`drain_timeout` trace event naming them, while batches already in
flight resolve normally.

**Degradation ladder (S30).** The service reports one of
`DEGRADATION_LADDER = ("healthy", "scaling", "brownout", "shedding")`
in `ServiceStats.degradation_state`: *brownout* while the watermark
hysteresis sheds BULK, *shedding* when the queue is hard-full, and
*scaling* when an attached `FleetSupervisor` reports the fleet is
growing. Every `AdmissionError` carries `retry_after_seconds` derived
from the rung (scaling = retry soon, shedding = back off hard), and
every rung change emits a `degradation` trace event.

**Fleet serving (S30).** `launch_fleet("serial", initial_nodes=2)`
spawns a local `NodePool`, builds a (resilient-wrapped)
`ClusterBackend` over it, and returns a `Fleet` whose
`supervise(service, model, min_nodes=…, max_nodes=…)` starts the
shed-or-scale loop: live `arrival_rate_per_second` → `Autoscaler` →
`FleetActuator`, which grows pool + hash ring together and shrinks via
unroute → `DRAIN` → terminate so no in-flight proof is lost.
`find_cluster_backend(backend)` locates the cluster inside any composed
backend (e.g. what `resolve_backend("resilient:cluster:…")` built).

**Batching knobs (`BatchPolicy`).** Requests group by `circuit_key` so
every batch is uniform (one prover setup per batch). A group dispatches
when it reaches `max_batch_size` (size trigger), when its oldest member
has waited `max_wait_seconds` (age trigger — the throughput/latency
knob), or when any member's deadline slack falls to
`urgency_slack_seconds` (deadline trigger). Among ripe groups the most
urgent wins — priority class, then earliest deadline, then arrival — and
the batch is ordered the same way.

**Cache semantics.** Results are keyed by `(circuit_key, witness_key)`.
A finished key resolves new submissions instantly (LRU, `cache_capacity`
entries); an in-flight key parks the new ticket on the leader
(single-flight: N identical concurrent requests cost one proof). Pass
`witness_key=None` to opt a request out of caching entirely. A failed
batch releases its claims so a retry can re-prove.
"""

__all__ = [
    "ArrivalEvent",
    "BatchPolicy",
    "DEGRADATION_LADDER",
    "DynamicBatcher",
    "Fleet",
    "FleetActuator",
    "FleetSupervisor",
    "Priority",
    "ProofBackend",
    "ProofRequest",
    "ProofService",
    "ResultCache",
    "RuntimeProofBackend",
    "ServiceStats",
    "Ticket",
    "bursty_trace",
    "find_cluster_backend",
    "launch_fleet",
    "poisson_trace",
    "replay",
    "spec_key",
    "task_witness_key",
]
