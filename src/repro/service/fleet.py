"""S30 — the overload-resilience layer tying the service to the fleet.

The :class:`~repro.service.ProofService` (S23) admits a request stream;
:mod:`repro.cluster` (S28) proves batches across a node fleet.  This
module closes the control loop between them so the system's answer to
overload is **shed-or-scale** rather than shed-only:

* :class:`FleetActuator` wraps a :class:`~repro.cluster.NodePool` and a
  :class:`~repro.cluster.ClusterBackend` so membership changes stay
  atomic from the router's point of view: a grown node joins the hash
  ring the moment it is ready, and a shrink *removes the node from the
  ring first* (no new shards route to it), then drains it over the
  ``DRAIN`` protocol frame (in-flight proofs finish), then terminates
  the subprocess — a rolling restart that loses no work.  It satisfies
  the :class:`~repro.cluster.Autoscaler`'s duck-typed actuator seam
  (``grow_to`` / ``shrink_to`` / ``size``), so the existing scale
  discipline (grow fast, shrink patient, cooldown) drives it unchanged.

* :class:`FleetSupervisor` is the timer loop: every tick it reaps dead
  node processes out of both pool and ring, feeds the service's live
  :attr:`~repro.service.ServiceStats.arrival_rate_per_second` into
  :meth:`Autoscaler.observe`, and reflects the decision back into the
  service's degradation ladder via
  :meth:`~repro.service.ProofService.note_scaling` — so while the fleet
  is growing, rejected callers get a *short* retry-after hint instead
  of a shed.

* :func:`launch_fleet` is the one-call assembly used by ``python -m
  repro serve --fleet``: spawn nodes, build the (optionally
  resilient-wrapped) cluster backend over them, and return a
  :class:`Fleet` handle that supervises services and tears everything
  down in the right order.

The degradation ladder itself (``healthy → scaling → brownout →
shedding``) lives in :mod:`repro.service.stats`; this module is what
makes the ``scaling`` rung reachable — without a supervisor the service
can only ever brown out or shed.
"""

from __future__ import annotations

import threading
from dataclasses import dataclass, field
from typing import Dict, List, Optional

from ..cluster.autoscale import Autoscaler, LoadModel, NodePool
from ..cluster.coordinator import ClusterBackend
from ..cluster.remote import RemoteBackend
from ..errors import ClusterError, ServiceError
from ..runtime.trace import JsonlTraceSink, SpanContext
from .stats import DEGRADATION_LADDER

__all__ = [
    "DEGRADATION_LADDER",
    "Fleet",
    "FleetActuator",
    "FleetSupervisor",
    "find_cluster_backend",
    "launch_fleet",
]


def find_cluster_backend(backend) -> Optional[ClusterBackend]:
    """The :class:`ClusterBackend` inside a composed backend, if any.

    Walks ``children`` lists (``ResilientBackend``, sharded composites)
    and single-child ``backend`` attributes (``RuntimeProofBackend``),
    so a supervisor can be attached to whatever
    ``resolve_backend("resilient:cluster:…")`` produced without the
    caller holding a direct reference.
    """
    seen = set()
    stack = [backend]
    while stack:
        candidate = stack.pop()
        if candidate is None or id(candidate) in seen:
            continue
        seen.add(id(candidate))
        if isinstance(candidate, ClusterBackend):
            return candidate
        children = getattr(candidate, "children", None)
        if isinstance(children, (list, tuple)):
            stack.extend(children)
        stack.append(getattr(candidate, "backend", None))
    return None


class FleetActuator:
    """Pool + ring membership as one unit, with drain-then-terminate.

    The plain :class:`NodePool` knows processes; the
    :class:`ClusterBackend` knows routing.  Scaling through either alone
    desynchronizes them — a spawned node the ring never learns about is
    wasted capacity, a retired node still on the ring is a failover
    storm.  The actuator changes both together, and is what the
    :class:`Autoscaler` delegates to through its ``grow_to`` /
    ``shrink_to`` seam.
    """

    def __init__(
        self,
        pool: NodePool,
        cluster: ClusterBackend,
        *,
        drain_timeout_seconds: float = 10.0,
        trace: Optional[JsonlTraceSink] = None,
    ):
        self.pool = pool
        self.cluster = cluster
        self.drain_timeout_seconds = drain_timeout_seconds
        self._ctx = SpanContext(trace, "fleet")
        self._lock = threading.Lock()
        #: address → cluster member id for nodes this actuator manages.
        self._members: Dict[str, str] = {}
        self.adopt()

    def adopt(self) -> None:
        """Learn the member ids of pool nodes already on the ring (the
        ``launch_fleet`` path, where the cluster was built from the
        pool's initial spawn)."""
        by_name = {
            member.backend.name: member.id for member in self.cluster.members
        }
        with self._lock:
            for address in self.pool.addresses:
                member_id = by_name.get(f"remote:{address}")
                if member_id is not None:
                    self._members.setdefault(address, member_id)

    @property
    def size(self) -> int:
        return self.pool.size

    def grow_to(self, target: int) -> None:
        """Spawn until ``target``; each node joins the ring when ready."""
        while self.pool.size < target:
            address = self.pool.spawn()
            host, port = address.rsplit(":", 1)
            member_id = self.cluster.add_node(RemoteBackend(host, int(port)))
            with self._lock:
                self._members[address] = member_id
            self._ctx.emit("node_join", node=member_id, reason="scale_up")

    def shrink_to(self, target: int) -> None:
        """Retire LIFO until ``target``: unroute → drain → terminate."""
        while self.pool.size > target:
            addresses = self.pool.addresses
            if not addresses:
                return
            address = addresses[-1]
            with self._lock:
                member_id = self._members.pop(address, None)
            if member_id is not None:
                self._ctx.emit(
                    "node_drain", node=member_id,
                    timeout_seconds=self.drain_timeout_seconds,
                )
                self._remove_member(member_id)
            self.pool.retire(drain_timeout=self.drain_timeout_seconds)
            self._ctx.emit(
                "node_leave",
                node=member_id or f"remote:{address}",
                reason="scale_down",
            )

    def reap(self) -> List[str]:
        """Drop dead node processes from pool *and* ring; returns their
        addresses.  The scaler's next grow decision replaces them."""
        dropped = self.pool.reap()
        for address in dropped:
            with self._lock:
                member_id = self._members.pop(address, None)
            if member_id is not None:
                self._remove_member(member_id)
            self._ctx.emit(
                "node_leave",
                node=member_id or f"remote:{address}",
                reason="died",
            )
        return dropped

    def _remove_member(self, member_id: str) -> None:
        try:
            self.cluster.remove_node(member_id)
        except ClusterError:
            pass  # already gone (e.g. reaped concurrently)

    def close(self) -> None:
        """Tear down every managed node: unroute, then stop the pool."""
        with self._lock:
            members, self._members = dict(self._members), {}
        for member_id in members.values():
            self._remove_member(member_id)
        self.pool.close()


class FleetSupervisor(threading.Thread):
    """The shed-or-scale timer loop over one service and one scaler.

    Each tick: reap dead nodes, read the service's live arrival rate,
    let the :class:`Autoscaler` decide (and actuate, through the
    :class:`FleetActuator`), then tell the service whether capacity is
    being added so its degradation ladder and retry-after hints reflect
    the fleet's trajectory, not just the queue's depth.

    The loop survives tick errors (a flapping node must not kill the
    control plane); they are counted and traced as ``supervisor_error``.
    """

    def __init__(
        self,
        service,
        scaler: Autoscaler,
        actuator: Optional[FleetActuator] = None,
        *,
        interval_seconds: float = 0.25,
        trace: Optional[JsonlTraceSink] = None,
    ):
        if interval_seconds <= 0:
            raise ServiceError(
                f"interval_seconds must be > 0, got {interval_seconds}"
            )
        super().__init__(name="repro-fleet-supervisor", daemon=True)
        self.service = service
        self.scaler = scaler
        self.actuator = actuator
        self.interval_seconds = interval_seconds
        self._ctx = SpanContext(trace, "supervisor")
        self._halt = threading.Event()
        self.ticks = 0
        self.errors = 0

    def tick(self) -> dict:
        """One observe-decide-actuate cycle; returns the scale decision."""
        self.ticks += 1
        reaped: List[str] = []
        if self.actuator is not None:
            reaped = self.actuator.reap()
        rate = self.service.stats.arrival_rate_per_second
        decision = self.scaler.observe(rate)
        scaling = (
            decision["action"] == "grow"
            or decision["target"] > self.scaler.current_nodes
        )
        self.service.note_scaling(scaling)
        self._ctx.emit(
            "supervisor_tick",
            rate=round(rate, 3),
            action=decision["action"],
            reason=decision["reason"],
            current=self.scaler.current_nodes,
            target=decision["target"],
            reaped=reaped,
            degradation=self.service.degradation_state,
        )
        return decision

    def run(self) -> None:
        while not self._halt.wait(self.interval_seconds):
            try:
                self.tick()
            except Exception as exc:  # noqa: BLE001 - control plane survives
                self.errors += 1
                self._ctx.emit("supervisor_error", error=repr(exc)[:200])

    def stop(self, timeout: Optional[float] = 10.0) -> None:
        """Halt the loop and clear the service's scaling hint."""
        self._halt.set()
        if self.is_alive():
            self.join(timeout)
        try:
            self.service.note_scaling(False)
        except Exception:
            pass


@dataclass
class Fleet:
    """Everything :func:`launch_fleet` built, with ordered teardown."""

    pool: NodePool
    cluster: ClusterBackend
    actuator: FleetActuator
    #: What to hand the service: the cluster, resilient-wrapped unless
    #: ``launch_fleet(resilient=False)``.
    backend: object
    drain_timeout_seconds: float = 10.0
    trace: Optional[JsonlTraceSink] = None
    _supervisors: List[FleetSupervisor] = field(default_factory=list)

    def supervise(
        self,
        service,
        model: LoadModel,
        *,
        min_nodes: int = 1,
        max_nodes: int = 4,
        interval_seconds: float = 0.25,
        cooldown_seconds: float = 1.0,
        shrink_patience: int = 3,
        start: bool = True,
    ) -> FleetSupervisor:
        """Attach a shed-or-scale supervisor for ``service``."""
        scaler = Autoscaler(
            model,
            self.actuator,
            min_nodes=min_nodes,
            max_nodes=max_nodes,
            cooldown_seconds=cooldown_seconds,
            shrink_patience=shrink_patience,
            trace=self.trace,
        )
        supervisor = FleetSupervisor(
            service, scaler, self.actuator,
            interval_seconds=interval_seconds, trace=self.trace,
        )
        self._supervisors.append(supervisor)
        if start:
            supervisor.start()
        return supervisor

    def close(self) -> None:
        """Stop supervisors, close routing, then stop the node fleet."""
        for supervisor in self._supervisors:
            supervisor.stop()
        self._supervisors.clear()
        close = getattr(self.backend, "close", None)
        if callable(close) and self.backend is not self.cluster:
            try:
                close()
            except Exception:
                pass
        try:
            self.cluster.close()
        except Exception:
            pass
        self.actuator.close()

    def __enter__(self) -> "Fleet":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()


def launch_fleet(
    node_backend: str = "serial",
    *,
    initial_nodes: int = 1,
    resilient: bool = True,
    drain_timeout_seconds: float = 10.0,
    trace: Optional[JsonlTraceSink] = None,
    pool: Optional[NodePool] = None,
    **cluster_kwargs,
) -> Fleet:
    """Spawn a local node fleet and return its :class:`Fleet` handle.

    ``node_backend`` is each node's *inner* selector (``serial``,
    ``pool:2``, …); ``cluster_kwargs`` pass through to
    :class:`ClusterBackend` (hedging knobs included).  With
    ``resilient=True`` (default) the cluster is wrapped in a
    :class:`~repro.resilience.ResilientBackend`, the composition the
    chaos drill serves through: breaker-level failover inside the
    cluster, quarantine and retry discipline outside it.
    """
    own_pool = pool is None
    if pool is None:
        pool = NodePool(backend=node_backend)
    try:
        while pool.size < max(1, initial_nodes):
            pool.spawn()
        cluster = ClusterBackend(pool.backends(), **cluster_kwargs)
    except Exception:
        if own_pool:
            pool.close()
        raise
    actuator = FleetActuator(
        pool, cluster,
        drain_timeout_seconds=drain_timeout_seconds, trace=trace,
    )
    if resilient:
        from ..resilience import ResilientBackend

        backend: object = ResilientBackend(cluster)
    else:
        backend = cluster
    return Fleet(
        pool=pool,
        cluster=cluster,
        actuator=actuator,
        backend=backend,
        drain_timeout_seconds=drain_timeout_seconds,
        trace=trace,
    )
