"""The streaming proof service: admission, batching, caching, dispatch.

:class:`ProofService` is the front door the paper's §1 scenario needs —
"customer inputs that come in like a flowing stream" — in front of the
batch-oriented proving machinery this repository already has.  The life
of a request:

1. :meth:`submit` runs **admission control**: a closed service or a full
   queue rejects immediately with a typed
   :class:`~repro.errors.AdmissionError` (never blocks), and between the
   high and low watermarks BULK traffic is shed while INTERACTIVE
   requests still board (hysteresis, so shedding doesn't flap).
2. The **result cache** is consulted: a finished identical request
   resolves the ticket instantly; an in-flight identical request parks
   the ticket on the leader (single-flight).
3. Otherwise the request joins the pending queue and the
   :class:`~repro.service.batcher.DynamicBatcher` thread forms uniform,
   deadline-aware batches and dispatches them to the backend.
4. The ticket resolves with the result; :class:`ServiceStats` records
   the end-to-end latency, deadline misses, batch shapes, and cache
   behavior, and every lifecycle step can be traced through a (shared,
   thread-safe) :class:`~repro.runtime.JsonlTraceSink`.
"""

from __future__ import annotations

import threading
import time
from typing import Any, Callable, List, Optional, Tuple

from ..errors import (
    AdmissionError,
    ProofError,
    QuarantinedTaskError,
    ServiceError,
)
from ..runtime.trace import JsonlTraceSink, SpanContext, use_span
from .batcher import BatchPolicy, DynamicBatcher
from .cache import ResultCache
from .request import Priority, ProofRequest, Ticket
from .stats import ServiceStats

#: Maps a payload to its (circuit key, witness key) routing identity.
Keyer = Callable[[Any], Tuple[bytes, Optional[bytes]]]


class ProofService:
    """Accepts a request stream, serves proof results through tickets.

    >>> # sketch; see examples/streaming_service.py for a real run
    >>> # service = ProofService(backend, policy=BatchPolicy(max_batch_size=8))
    >>> # ticket = service.submit(task, circuit_key=key, witness_key=wkey)
    >>> # proof = ticket.result(timeout=30)

    Args:
        backend:        Object with ``prove_batch(circuit_key, requests)``
                        (see :mod:`repro.service.backends`).
        policy:         Batch-formation knobs (:class:`BatchPolicy`).
        max_queue:      Hard queue bound; a submit beyond it raises
                        :class:`AdmissionError` ("queue_full").
        high_watermark: Queue depth at which BULK admission stops
                        ("bulk_shed").  Default ``3/4 × max_queue``.
        low_watermark:  Depth at which BULK admission resumes.  Default
                        ``1/2 × max_queue``.
        cache_capacity: Finished-result LRU size (0 disables caching but
                        single-flight dedup still applies).
        keyer:          Optional payload → (circuit_key, witness_key)
                        function so callers can omit explicit keys.
        trace:          Optional shared :class:`JsonlTraceSink`.
        fault_injector: Optional chaos hook (a
                        :class:`~repro.resilience.FaultInjector`); its
                        ``on_batch_dispatch(seq)`` runs before each batch
                        reaches the backend, so injected batch faults
                        exercise the service's own failure path.
        start:          Start the batcher thread immediately (tests may
                        pass False and drive :meth:`_dispatch` directly).
    """

    def __init__(
        self,
        backend,
        *,
        policy: Optional[BatchPolicy] = None,
        max_queue: int = 256,
        high_watermark: Optional[int] = None,
        low_watermark: Optional[int] = None,
        cache_capacity: int = 1024,
        keyer: Optional[Keyer] = None,
        trace: Optional[JsonlTraceSink] = None,
        fault_injector=None,
        start: bool = True,
    ):
        if max_queue < 1:
            raise ServiceError(f"max_queue must be >= 1, got {max_queue}")
        self.backend = backend
        self.policy = policy or BatchPolicy()
        self.max_queue = max_queue
        self.high_watermark = (
            high_watermark if high_watermark is not None else (3 * max_queue) // 4
        )
        self.low_watermark = (
            low_watermark if low_watermark is not None else max_queue // 2
        )
        if not 0 <= self.low_watermark <= self.high_watermark <= max_queue:
            raise ServiceError(
                f"watermarks must satisfy 0 <= low <= high <= max_queue, got "
                f"low={self.low_watermark} high={self.high_watermark} "
                f"max={max_queue}"
            )
        self.cache = ResultCache(capacity=cache_capacity)
        self.keyer = keyer
        self.trace = trace
        self.fault_injector = fault_injector
        #: Root span of this service instance; every request and batch
        #: span the service emits hangs off it, so one shared sink can
        #: reconstruct any request's lifecycle (see
        #: :func:`repro.execution.request_lineage`).
        self._span = SpanContext(trace, "service")
        self._batch_seq = 0
        self.stats = ServiceStats()
        self._clock = time.monotonic
        self._cond = threading.Condition()
        self._pending: List[ProofRequest] = []
        self._active_batches = 0
        self._closing = False
        self._shedding = False
        #: Supervisor hint: the fleet is adding capacity right now (see
        #: :meth:`note_scaling` and :mod:`repro.service.fleet`).
        self._scaling = False
        self._next_id = 0
        self._batcher = DynamicBatcher(self, self.policy)
        self._span.emit(
            "svc_start", max_queue=max_queue,
            high_watermark=self.high_watermark,
            low_watermark=self.low_watermark,
        )
        if start:
            self._batcher.start()

    # -- submission -----------------------------------------------------------

    def submit(
        self,
        payload: Any,
        *,
        circuit_key: Optional[bytes] = None,
        witness_key: Optional[bytes] = None,
        priority: Priority = Priority.BULK,
        deadline_seconds: Optional[float] = None,
    ) -> Ticket:
        """Admit one request; returns its :class:`Ticket` or raises.

        ``deadline_seconds`` is relative to now; a completion after it
        counts as a deadline miss (the request is still served — the
        deadline shapes scheduling, it is not a drop-dead abort).
        Raises :class:`AdmissionError` when the service is closed, the
        queue is full, or BULK traffic is being shed.
        """
        now = self._clock()
        self.stats.record_submit(now)
        if circuit_key is None:
            if self.keyer is None:
                raise ServiceError(
                    "submit() needs circuit_key= (no keyer configured)"
                )
            circuit_key, witness_key = self.keyer(payload)
        deadline = None if deadline_seconds is None else now + deadline_seconds
        ticket = Ticket(
            self._allocate_id(),
            priority=priority,
            submitted_at=now,
            deadline=deadline,
        )

        with self._cond:
            if self._closing:
                self.stats.record_rejection("service_closed")
                raise AdmissionError("service_closed")
            depth = len(self._pending)
            self.stats.sample_queue_depth(depth)

            # Cache / single-flight first: a duplicate consumes no queue
            # slot, so overload never penalizes repeat queries.
            cache_key = (
                (circuit_key, witness_key) if witness_key is not None else None
            )
            if cache_key is not None:
                outcome, value = self.cache.claim(cache_key, ticket)
                if outcome == "hit":
                    self.stats.record_cache_hit()
                    self.stats.record_completion(
                        self._clock() - now, missed_deadline=False
                    )
                    ticket._resolve(value, source="cache")
                    self._request_ctx(ticket.request_id).emit(
                        "svc_cache_hit", request_id=ticket.request_id
                    )
                    return ticket
                if outcome == "joined":
                    self.stats.record_coalesced()
                    self._request_ctx(ticket.request_id).emit(
                        "svc_coalesce", request_id=ticket.request_id
                    )
                    return ticket
                self.stats.record_cache_miss()

            try:
                self._admit(depth, priority)
            except AdmissionError:
                if cache_key is not None:
                    # Release the single-flight claim this leader took.
                    self.cache.abandon(cache_key)
                raise

            request = ProofRequest(
                request_id=ticket.request_id,
                payload=payload,
                circuit_key=circuit_key,
                witness_key=witness_key,
                priority=priority,
                submitted_at=now,
                deadline=deadline,
                ticket=ticket,
            )
            self._pending.append(request)
            self.stats.record_accept()
            self._cond.notify_all()
        self._request_ctx(ticket.request_id).emit(
            "svc_submit",
            request_id=ticket.request_id,
            priority=priority.name,
            queue_depth=depth + 1,
        )
        return ticket

    def _admit(self, depth: int, priority: Priority) -> None:
        """Watermark admission control; raises :class:`AdmissionError`."""
        if depth >= self.max_queue:
            self._set_degradation_locked("shedding")
            hint = self.retry_after_hint("shedding")
            self.stats.record_rejection("queue_full", retry_after=hint)
            self._span.emit(
                "svc_reject", reason="queue_full", queue_depth=depth,
                retry_after_seconds=hint,
            )
            raise AdmissionError(
                "queue_full", f"depth {depth} >= max_queue {self.max_queue}",
                retry_after_seconds=hint,
            )
        if self._shedding and depth <= self.low_watermark:
            self._shedding = False
        elif not self._shedding and depth >= self.high_watermark:
            self._shedding = True
        state = self._derive_degradation_locked(depth)
        self._set_degradation_locked(state)
        if self._shedding and priority == Priority.BULK:
            hint = self.retry_after_hint(state)
            self.stats.record_rejection("bulk_shed", retry_after=hint)
            self._span.emit(
                "svc_reject", reason="bulk_shed", queue_depth=depth,
                retry_after_seconds=hint,
            )
            raise AdmissionError(
                "bulk_shed",
                f"depth {depth} >= high watermark {self.high_watermark}",
                retry_after_seconds=hint,
            )

    # -- degradation ladder ----------------------------------------------------

    def _derive_degradation_locked(self, depth: int) -> str:
        """Current ladder rung, most degraded condition first."""
        if depth >= self.max_queue:
            return "shedding"
        if self._shedding:
            return "brownout"
        if self._scaling:
            return "scaling"
        return "healthy"

    def _set_degradation_locked(self, state: str) -> None:
        previous = self.stats.record_degradation(state)
        if previous is not None:
            self._span.emit(
                "degradation",
                **{"from": previous, "to": state,
                   "queue_depth": len(self._pending)},
            )

    def note_scaling(self, active: bool) -> None:
        """Supervisor hook: capacity is (or is no longer) being added.

        While active, an otherwise-healthy service reports the
        ``scaling`` rung — callers seeing a rejection get a short
        :attr:`~repro.errors.AdmissionError.retry_after_seconds` because
        the fleet is already growing to absorb them.
        """
        with self._cond:
            self._scaling = bool(active)
            self._set_degradation_locked(
                self._derive_degradation_locked(len(self._pending))
            )

    @property
    def degradation_state(self) -> str:
        """Where the service sits on the ladder right now."""
        return self.stats.degradation_state

    def retry_after_hint(self, state: Optional[str] = None) -> float:
        """Backoff to suggest with a rejection, scaled by ladder rung.

        The unit is the batcher's wait window (one full batch forms and
        drains per window under load): *scaling* doubles it because
        capacity is coming, *brownout* quadruples, *shedding* — the
        queue is hard-full — pushes callers out eight windows.
        """
        state = state or self.stats.degradation_state
        window = max(self.policy.max_wait_seconds, 0.01)
        multiplier = {
            "healthy": 1.0, "scaling": 2.0, "brownout": 4.0, "shedding": 8.0,
        }.get(state, 4.0)
        return multiplier * window

    def _allocate_id(self) -> int:
        with self._cond:
            self._next_id += 1
            return self._next_id - 1

    # -- dispatch (runs on the batcher thread) --------------------------------

    def _dispatch(self, batch: List[ProofRequest]) -> None:
        """Prove one uniform batch and resolve every ticket it covers."""
        circuit_key = batch[0].circuit_key
        self.stats.record_batch(len(batch))
        with self._cond:
            self.stats.sample_queue_depth(len(self._pending))
            self._batch_seq += 1
            seq = self._batch_seq
        bctx = self._span.child("batch", span=f"{self._span.span}/b{seq}")
        bctx.emit(
            "batch_form",
            size=len(batch),
            circuit=circuit_key.hex()[:12],
            request_ids=[r.request_id for r in batch],
        )
        started = self._clock()
        try:
            if self.fault_injector is not None:
                self.fault_injector.on_batch_dispatch(seq)
            # The ambient span hands the sink and this batch's span id to
            # whatever execution backend the proof backend dispatches to,
            # so the backend run appears *under* this batch in the trace.
            with use_span(bctx):
                results = self.backend.prove_batch(circuit_key, batch)
            if len(results) != len(batch):
                raise ProofError(
                    f"backend returned {len(results)} results for a batch "
                    f"of {len(batch)}"
                )
        except Exception as exc:
            self._fail_batch(batch, exc, bctx)
            return
        now = self._clock()
        for request, result in zip(batch, results):
            if isinstance(result, QuarantinedTaskError):
                # A resilient backend quarantined this one task; the
                # rest of the batch still resolves with proofs.
                followers = (
                    self.cache.abandon(request.cache_key)
                    if request.cache_key is not None
                    else []
                )
                for ticket in [request.ticket] + followers:
                    ticket._fail(result)
                self.stats.record_failure(1 + len(followers))
                bctx.emit(
                    "quarantined",
                    request_id=request.request_id,
                    task_id=result.task_id,
                    tried_on=result.tried_on,
                )
                continue
            followers = (
                self.cache.fulfill(request.cache_key, result)
                if request.cache_key is not None
                else []
            )
            for resolved in [request.ticket] + followers:
                missed = (
                    resolved.deadline is not None and now > resolved.deadline
                )
                self.stats.record_completion(
                    now - resolved.submitted_at, missed_deadline=missed
                )
                if missed:
                    bctx.emit(
                        "deadline_miss",
                        request_id=resolved.request_id,
                        late_seconds=now - resolved.deadline,
                    )
                source = "proved" if resolved is request.ticket else "coalesced"
                resolved._resolve(result, source=source)
        bctx.emit(
            "batch_done", size=len(batch), seconds=now - started
        )

    def _fail_batch(
        self,
        batch: List[ProofRequest],
        exc: Exception,
        bctx: SpanContext,
    ) -> None:
        """Fail a batch's leaders; give single-flight followers one retry.

        A follower coalesced onto a leader whose batch then failed never
        had its *own* attempt — failing it would convert one transient
        backend error into N client-visible errors.  Instead the first
        follower is promoted to a fresh leader request (``attempt=2``)
        and re-enqueued once; remaining followers park on it.  A batch
        that fails on attempt 2 fails everyone — one independent retry,
        not a loop.
        """
        error = ProofError(f"batch of {len(batch)} failed: {exc}")
        error.__cause__ = exc
        count = 0
        for request in batch:
            followers = (
                self.cache.abandon(request.cache_key)
                if request.cache_key is not None
                else []
            )
            request.ticket._fail(error)
            count += 1
            if followers and request.attempt < 2:
                self._requeue_followers(request, followers, bctx)
            else:
                for ticket in followers:
                    ticket._fail(error)
                    count += 1
        self.stats.record_failure(count)
        bctx.emit("batch_failed", size=len(batch), reason=repr(exc))

    def _requeue_followers(
        self,
        request: ProofRequest,
        followers: List[Ticket],
        bctx: SpanContext,
    ) -> None:
        """Promote the first follower to a retry leader; park the rest."""
        leader, rest = followers[0], followers[1:]
        outcome, value = self.cache.claim(request.cache_key, leader)
        if outcome == "hit":
            # Someone fulfilled the key between abandon and re-claim.
            for ticket in followers:
                ticket._resolve(value, source="cache")
            return
        for ticket in rest:
            self.cache.claim(request.cache_key, ticket)
        if outcome == "joined":
            return  # an independent submitter already leads a fresh attempt
        retry = ProofRequest(
            request_id=leader.request_id,
            payload=request.payload,
            circuit_key=request.circuit_key,
            witness_key=request.witness_key,
            priority=leader.priority,
            submitted_at=leader.submitted_at,
            deadline=leader.deadline,
            ticket=leader,
            attempt=request.attempt + 1,
        )
        with self._cond:
            self._pending.append(retry)
            self._cond.notify_all()
        self.stats.record_follower_retry(1 + len(rest))
        bctx.emit(
            "follower_retry",
            request_id=leader.request_id,
            failed_leader=request.request_id,
            parked=len(rest),
            attempt=retry.attempt,
        )

    def _batcher_error(self, batch: List[ProofRequest], exc: Exception) -> None:
        """Last-resort guard for exceptions that escape :meth:`_dispatch`.

        Fails only the in-flight batch's unresolved tickets (and their
        single-flight followers); the batcher thread survives to serve
        the rest of the queue.
        """
        self.stats.record_batcher_error()
        error = ServiceError(f"batch dispatch crashed: {exc}")
        error.__cause__ = exc
        count = 0
        for request in batch:
            followers = (
                self.cache.abandon(request.cache_key)
                if request.cache_key is not None
                else []
            )
            for ticket in [request.ticket] + followers:
                if not ticket.done():
                    ticket._fail(error)
                    count += 1
        self.stats.record_failure(count)
        self._span.emit(
            "batcher_error",
            size=len(batch),
            request_ids=[r.request_id for r in batch],
            reason=repr(exc),
        )

    # -- lifecycle ------------------------------------------------------------

    @property
    def queue_depth(self) -> int:
        """Requests currently waiting for a batch."""
        with self._cond:
            return len(self._pending)

    def drain(self, timeout: Optional[float] = None) -> bool:
        """Block until the queue is empty and no batch is in flight."""
        deadline = None if timeout is None else self._clock() + timeout
        with self._cond:
            while self._pending or self._active_batches:
                remaining = (
                    None if deadline is None else deadline - self._clock()
                )
                if remaining is not None and remaining <= 0:
                    return False
                self._cond.wait(remaining)
        return True

    def close(self, drain: bool = True, timeout: Optional[float] = None) -> None:
        """Stop admission; by default flush the queue before returning.

        With ``drain=False`` still-pending tickets fail with
        :class:`ServiceError` instead of being proved.  With ``drain=True``
        and a ``timeout``, the drain is *bounded*: requests still queued
        when it expires fail with :class:`ServiceError` and a
        ``drain_timeout`` trace event names them — but any batch already
        in flight keeps running and resolves its tickets normally, so
        the timeout fails only work that never started.
        """
        with self._cond:
            if self._closing:
                return
            abandoned: List[ProofRequest] = []
            if not drain:
                abandoned = list(self._pending)
                self._pending.clear()
            self._closing = True
            self._cond.notify_all()
        self._fail_undispatched(
            abandoned, ServiceError("service closed before dispatch")
        )
        drained = True
        if drain and timeout is not None:
            drained = self.drain(timeout)
            if not drained:
                with self._cond:
                    expired = list(self._pending)
                    self._pending.clear()
                    self._cond.notify_all()
                failed = self._fail_undispatched(
                    expired,
                    ServiceError(
                        f"drain timed out after {timeout:.2f}s "
                        "before dispatch"
                    ),
                )
                self._span.emit(
                    "drain_timeout",
                    timeout_seconds=timeout,
                    failed=failed,
                    request_ids=[r.request_id for r in expired],
                )
        if self._batcher.is_alive():
            self._batcher.join(timeout)
        self._span.emit("svc_close", drained=drain and drained)
        if self.trace is not None:
            self.trace.flush()

    def _fail_undispatched(
        self, requests: List[ProofRequest], error: ServiceError
    ) -> int:
        """Fail requests (and their followers) that never reached a batch."""
        count = 0
        for request in requests:
            followers = (
                self.cache.abandon(request.cache_key)
                if request.cache_key is not None
                else []
            )
            for ticket in [request.ticket] + followers:
                if not ticket.done():
                    ticket._fail(error)
                    count += 1
        if count:
            self.stats.record_failure(count)
        return count

    def __enter__(self) -> "ProofService":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    # -- helpers --------------------------------------------------------------

    def _request_ctx(self, request_id: int) -> SpanContext:
        """The deterministic span for one request, under the service span."""
        return self._span.child(
            "request", span=f"{self._span.span}/r{request_id}"
        )
