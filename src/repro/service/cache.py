"""Result cache with single-flight deduplication.

A proving service billed per proof (§2.1) should never pay twice for the
same work: identical (circuit, witness) pairs produce identical proofs
because the whole pipeline is deterministically seeded
(:class:`~repro.runtime.ProverSpec`).  The cache exploits that two ways:

* **Completed results** are kept in a bounded LRU map and served without
  re-proving — a repeat query costs a dictionary lookup.
* **In-flight requests** are deduplicated *single-flight*: the first
  submission of a key becomes the *leader* and is enqueued; later
  identical submissions become *followers* whose tickets are resolved
  from the leader's result the moment it lands.  A thundering herd of N
  identical requests costs one proof, not N.

All methods are thread-safe behind one lock — submitters and the batcher
thread hit the cache concurrently.
"""

from __future__ import annotations

import threading
from collections import OrderedDict
from typing import Any, Dict, List, Optional, Tuple

from ..errors import ServiceError
from .request import Ticket

#: A cache key: (circuit digest, witness digest).
CacheKey = Tuple[bytes, bytes]


class ResultCache:
    """Bounded LRU of finished results plus a single-flight registry.

    >>> cache = ResultCache(capacity=2)
    >>> t = Ticket(0)
    >>> cache.claim((b"c", b"w"), t)
    ('lead', None)
    >>> cache.fulfill((b"c", b"w"), "proof")
    []
    >>> cache.claim((b"c", b"w"), Ticket(1))
    ('hit', 'proof')
    """

    def __init__(self, capacity: int = 1024):
        if capacity < 0:
            raise ServiceError(f"cache capacity must be >= 0, got {capacity}")
        self.capacity = capacity
        self._lock = threading.Lock()
        self._values: "OrderedDict[CacheKey, Any]" = OrderedDict()
        self._inflight: Dict[CacheKey, List[Ticket]] = {}
        #: Entries dropped to stay within ``capacity``.
        self.evictions = 0

    def __len__(self) -> int:
        with self._lock:
            return len(self._values)

    def claim(
        self, key: CacheKey, ticket: Ticket
    ) -> Tuple[str, Optional[Any]]:
        """Route one submission through the cache.

        Returns one of:

        * ``("hit", value)`` — a finished result exists; the caller
          resolves the ticket immediately and nothing is enqueued.
        * ``("joined", None)`` — an identical request is already in
          flight; ``ticket`` was parked on it and will be resolved when
          the leader finishes.  Nothing is enqueued.
        * ``("lead", None)`` — first sighting of this key; the caller
          must enqueue the request and later call :meth:`fulfill` or
          :meth:`abandon`.
        """
        with self._lock:
            if key in self._values:
                self._values.move_to_end(key)
                return ("hit", self._values[key])
            if key in self._inflight:
                self._inflight[key].append(ticket)
                return ("joined", None)
            self._inflight[key] = []
            return ("lead", None)

    def fulfill(self, key: CacheKey, value: Any) -> List[Ticket]:
        """Record a finished result; returns the follower tickets to resolve."""
        with self._lock:
            followers = self._inflight.pop(key, [])
            if self.capacity > 0:
                self._values[key] = value
                self._values.move_to_end(key)
                while len(self._values) > self.capacity:
                    self._values.popitem(last=False)
                    self.evictions += 1
            return followers

    def abandon(self, key: CacheKey) -> List[Ticket]:
        """Drop an in-flight claim (the batch failed); returns followers.

        The key becomes claimable again so a retry can re-prove it.
        """
        with self._lock:
            return self._inflight.pop(key, [])

    def peek(self, key: CacheKey) -> Optional[Any]:
        """Non-mutating lookup (no LRU touch); for tests and inspection."""
        with self._lock:
            return self._values.get(key)

    def inflight_count(self) -> int:
        """Number of keys currently claimed but unfinished."""
        with self._lock:
            return len(self._inflight)
