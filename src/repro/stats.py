"""Statistics helpers shared across every observability layer.

:mod:`repro.runtime.stats` (per-batch worker reports),
:mod:`repro.service.stats` (service-level request reports), and the
benchmarks all summarize latency distributions the same way; the shared
implementation lives here so every layer's percentiles agree to the
bit.  :mod:`repro.runtime.stats` re-exports :func:`percentile` for
backward compatibility.
"""

from __future__ import annotations

import math
from typing import Sequence


def percentile(values: Sequence[float], q: float) -> float:
    """Linear-interpolation percentile of ``values`` (numpy's default).

    ``q`` is in [0, 100].  An empty sequence yields 0.0 so callers can
    report on a run that produced no records without special-casing.

    >>> percentile([1, 2, 3, 4], 50)
    2.5
    >>> percentile([10], 99)
    10.0
    """
    if not 0 <= q <= 100:
        raise ValueError(f"percentile q must be in [0, 100], got {q}")
    if not values:
        return 0.0
    ordered = sorted(float(v) for v in values)
    if len(ordered) == 1:
        return ordered[0]
    rank = (len(ordered) - 1) * (q / 100.0)
    lo = math.floor(rank)
    hi = math.ceil(rank)
    if lo == hi:
        return ordered[lo]
    frac = rank - lo
    return ordered[lo] * (1.0 - frac) + ordered[hi] * frac
