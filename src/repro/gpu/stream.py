"""CUDA-stream transfer/compute overlap model (paper §3.1, §4, Table 9).

The dynamic loading discipline moves a large volume of data per pipeline
beat (inputs for the entering task, intermediate Merkle layers leaving).
With **multi-stream** execution the copy engines run concurrently with the
compute kernels, so one beat costs ``max(comm, comp)`` plus a small sync
epsilon; without it, ``comm + comp``.  Table 9 reports exactly these three
quantities per device; this module computes them.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..errors import SimulationError
from .device import GpuSpec


@dataclass(frozen=True)
class BeatTiming:
    """Per-beat timing of one pipeline cycle (Table 9's columns)."""

    comm_bytes: int
    comm_seconds: float
    comp_seconds: float
    overall_seconds: float

    @property
    def overlap_saving_seconds(self) -> float:
        """Time saved versus serializing the transfer after the compute."""
        return (self.comm_seconds + self.comp_seconds) - self.overall_seconds

    @property
    def hidden_fraction(self) -> float:
        """Fraction of communication hidden under computation."""
        if self.comm_seconds == 0:
            return 1.0
        return min(1.0, self.overlap_saving_seconds / self.comm_seconds)


class TransferEngine:
    """Models the host↔device copy engines of one device."""

    def __init__(
        self,
        device: GpuSpec,
        multi_stream: bool = True,
        sync_overhead_fraction: float = 0.025,
    ):
        if sync_overhead_fraction < 0:
            raise SimulationError("sync overhead cannot be negative")
        self.device = device
        self.multi_stream = multi_stream
        self.sync_overhead_fraction = sync_overhead_fraction
        self.total_bytes = 0
        self.total_comm_seconds = 0.0

    def beat(self, comm_bytes: int, comp_seconds: float) -> BeatTiming:
        """Time one pipeline beat moving ``comm_bytes`` while computing."""
        if comm_bytes < 0 or comp_seconds < 0:
            raise SimulationError("negative beat inputs")
        comm_seconds = self.device.transfer_seconds(comm_bytes)
        if self.multi_stream:
            base = max(comm_seconds, comp_seconds)
            overall = base * (1.0 + self.sync_overhead_fraction)
        else:
            overall = comm_seconds + comp_seconds
        self.total_bytes += comm_bytes
        self.total_comm_seconds += comm_seconds
        return BeatTiming(
            comm_bytes=comm_bytes,
            comm_seconds=comm_seconds,
            comp_seconds=comp_seconds,
            overall_seconds=overall,
        )
