"""GPU simulator substrate (system S8 in DESIGN.md).

Replaces the paper's CUDA hardware with a calibrated analytic simulator:
device catalog (§6.1), cost models (calibration notes in
:mod:`repro.gpu.costs`), kernel stages and thread allocation (§4), device
memory accounting (§3.1, Table 10), stream overlap (Table 9), and the two
scheduling disciplines (Figure 4a/4b).
"""

from .costs import (
    BELLPERSON_MEMORY_GB,
    BELLPERSON_MSM,
    BELLPERSON_NTT,
    BELLPERSON_TOTAL,
    CpuCostModel,
    DEFAULT_CPU_COSTS,
    DEFAULT_GPU_COSTS,
    GpuCostModel,
    LIBSNARK_MSM,
    LIBSNARK_NTT,
    LIBSNARK_TOTAL,
    VendorLinearModel,
    cpu_costs_from_stages,
    stage_cost_fractions,
)
from .device import CPU_C5A_8XLARGE, GPU_CATALOG, CpuSpec, GpuSpec, get_gpu
from .kernel import (
    KernelStage,
    ModuleGraph,
    allocate_threads_proportional,
    allocate_threads_uniform,
)
from .memory import MemoryTracker, dynamic_footprint_blocks, preload_footprint_blocks
from .simulator import SimResult, run_cpu, run_naive, run_pipelined
from .stream import BeatTiming, TransferEngine
from .sweep import (
    batch_amortization_curve,
    device_scaling_curve,
    monotone_nondecreasing,
    monotone_nonincreasing,
    size_speedup_curve,
    thread_scaling_curve,
)

__all__ = [
    "GpuSpec",
    "CpuSpec",
    "GPU_CATALOG",
    "CPU_C5A_8XLARGE",
    "get_gpu",
    "GpuCostModel",
    "CpuCostModel",
    "DEFAULT_GPU_COSTS",
    "DEFAULT_CPU_COSTS",
    "VendorLinearModel",
    "LIBSNARK_TOTAL",
    "LIBSNARK_MSM",
    "LIBSNARK_NTT",
    "BELLPERSON_TOTAL",
    "BELLPERSON_MSM",
    "BELLPERSON_NTT",
    "BELLPERSON_MEMORY_GB",
    "cpu_costs_from_stages",
    "stage_cost_fractions",
    "KernelStage",
    "ModuleGraph",
    "allocate_threads_proportional",
    "allocate_threads_uniform",
    "MemoryTracker",
    "dynamic_footprint_blocks",
    "preload_footprint_blocks",
    "TransferEngine",
    "BeatTiming",
    "SimResult",
    "run_naive",
    "run_pipelined",
    "run_cpu",
    "batch_amortization_curve",
    "thread_scaling_curve",
    "size_speedup_curve",
    "device_scaling_curve",
    "monotone_nondecreasing",
    "monotone_nonincreasing",
]
