"""Kernels, stages and thread allocations for the simulated GPU.

The simulator's unit of scheduling is a :class:`KernelStage`: a fixed
piece of a module's computation (one Merkle layer, one sum-check round,
one encoder pipeline stage) with a known work-unit count, per-unit cycle
cost and host↔device byte traffic.  The paper's two disciplines differ in
how stages map to kernels:

* **intuitive** (Figure 4a): one kernel per *task*, executing all of its
  stages serially;
* **pipelined** (Figure 4b): one persistent kernel per *stage*, with tasks
  streaming through.

Thread allocation follows §4: threads proportional to stage work so every
thread carries the same number of work units per beat.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Sequence

from ..errors import SimulationError


@dataclass(frozen=True)
class KernelStage:
    """One fixed stage of a module's computation.

    Attributes:
        name:            Human-readable stage id ("merkle/layer3").
        work_units:      Work units *per task* (hashes, entries, MACs).
        cycles_per_unit: Effective core-cycles per work unit.
        bytes_in:        Host→device bytes per task entering this stage.
        bytes_out:       Device→host bytes per task leaving this stage.
        memory_bytes:    Device memory this stage's buffers occupy per task.
    """

    name: str
    work_units: int
    cycles_per_unit: float
    bytes_in: int = 0
    bytes_out: int = 0
    memory_bytes: int = 0
    #: Work-unit kind ("hash", "entry", "mac", "field_mul") — lets the CPU
    #: baseline runner price the same graph with CPU per-unit rates.
    unit: str = "generic"

    def __post_init__(self) -> None:
        if self.work_units < 0:
            raise SimulationError(f"stage {self.name}: negative work")
        if self.cycles_per_unit <= 0:
            raise SimulationError(f"stage {self.name}: non-positive unit cost")

    @property
    def total_cycles(self) -> float:
        return self.work_units * self.cycles_per_unit

    def duration_cycles(self, threads: int) -> float:
        """Cycles to process one task's stage work on ``threads`` threads."""
        if threads <= 0:
            raise SimulationError(f"stage {self.name}: no threads allocated")
        if self.work_units == 0:
            return 0.0
        waves = -(-self.work_units // threads)  # ceil division
        return waves * self.cycles_per_unit


@dataclass(frozen=True)
class ModuleGraph:
    """A module's ordered stage list — the unit the schedulers consume."""

    name: str
    stages: List[KernelStage]

    def total_work_cycles(self) -> float:
        return sum(s.total_cycles for s in self.stages)

    def total_bytes_in(self) -> int:
        return sum(s.bytes_in for s in self.stages)

    def total_bytes_out(self) -> int:
        return sum(s.bytes_out for s in self.stages)

    def peak_memory_bytes(self) -> int:
        return sum(s.memory_bytes for s in self.stages)

    def __len__(self) -> int:
        return len(self.stages)


def allocate_threads_proportional(
    stages: Sequence[KernelStage], total_threads: int
) -> List[int]:
    """Split a thread budget across stages proportionally to stage work.

    This is the allocation rule of §4 ("allocate M/2 threads to the first
    layer with N hashes, M/4 to the second…"): every stage receives
    threads in proportion to its per-task cycle count, with a floor of one
    thread per non-empty stage, so each thread ends up with an (almost)
    equal number of cycles per beat.
    """
    import heapq

    if total_threads < len(stages):
        raise SimulationError(
            f"{total_threads} threads cannot cover {len(stages)} stages"
        )
    # Greedy minimax: seed one thread per stage, then repeatedly give the
    # next thread to the stage currently pacing the beat.  This matches the
    # proportional rule of §4 in the limit and, unlike naive rounding, never
    # lets a floor-quantized small stage stall the pipeline.
    alloc = [1] * len(stages)
    heap = []
    for i, stage in enumerate(stages):
        heap.append((-stage.duration_cycles(1), i))
    heapq.heapify(heap)
    for _ in range(total_threads - len(stages)):
        neg_dur, i = heapq.heappop(heap)
        alloc[i] += 1
        heapq.heappush(heap, (-stages[i].duration_cycles(alloc[i]), i))
    return alloc


def allocate_threads_uniform(
    stages: Sequence[KernelStage], total_threads: int
) -> List[int]:
    """The naive uniform split (ablation baseline for the §4 rule)."""
    if total_threads < len(stages):
        raise SimulationError(
            f"{total_threads} threads cannot cover {len(stages)} stages"
        )
    base = total_threads // len(stages)
    alloc = [base] * len(stages)
    alloc[0] += total_threads - base * len(stages)
    return alloc
