"""Device-memory accounting for the simulator.

§3.1's dynamic loading discipline keeps only ≈2N blocks resident per
in-flight tree, versus mN for a preloading scheme with m parallel trees;
Table 10 reports per-proof amortized device memory.  This tracker gives
the schedulers explicit alloc/free with a high-water mark, plus the two
closed-form footprints used by tests to validate the schedulers.
"""

from __future__ import annotations

from typing import Dict, List, Tuple

from ..errors import SimulationError


class MemoryTracker:
    """Byte-granular allocation tracker with a high-water mark."""

    def __init__(self, capacity_bytes: int):
        if capacity_bytes <= 0:
            raise SimulationError("capacity must be positive")
        self.capacity_bytes = capacity_bytes
        self._allocations: Dict[str, int] = {}
        self._current = 0
        self.high_water_bytes = 0
        self.history: List[Tuple[float, int]] = []

    @property
    def current_bytes(self) -> int:
        return self._current

    def allocate(self, label: str, num_bytes: int, time: float = 0.0) -> None:
        if num_bytes < 0:
            raise SimulationError(f"negative allocation {label!r}")
        if label in self._allocations:
            raise SimulationError(f"double allocation of {label!r}")
        if self._current + num_bytes > self.capacity_bytes:
            raise SimulationError(
                f"device OOM: {label!r} needs {num_bytes} bytes, "
                f"{self.capacity_bytes - self._current} free"
            )
        self._allocations[label] = num_bytes
        self._current += num_bytes
        self.high_water_bytes = max(self.high_water_bytes, self._current)
        self.history.append((time, self._current))

    def free(self, label: str, time: float = 0.0) -> None:
        try:
            num_bytes = self._allocations.pop(label)
        except KeyError:
            raise SimulationError(f"free of unallocated {label!r}") from None
        self._current -= num_bytes
        self.history.append((time, self._current))

    def utilization(self) -> float:
        return self._current / self.capacity_bytes


def dynamic_footprint_blocks(num_blocks: int) -> int:
    """§3.1's resident footprint with dynamic loading: ≈ 2N blocks.

    One tree's live layers sum to N + N/2 + … + 1 = 2N − 1 blocks; because
    finished layers stream back to the host, only one tree's layers are
    resident regardless of how many trees are in flight.
    """
    if num_blocks <= 0:
        raise SimulationError("num_blocks must be positive")
    total = 0
    n = num_blocks
    while n >= 1:
        total += n
        if n == 1:
            break
        n //= 2
    return total


def preload_footprint_blocks(num_blocks: int, num_parallel: int) -> int:
    """The intuitive scheme: all m trees' data resident at once (mN)."""
    if num_parallel <= 0:
        raise SimulationError("num_parallel must be positive")
    return num_blocks * num_parallel
