"""Device catalog for the GPU simulator.

The paper evaluates on Nvidia GH200, V100, A100, RTX 3090 Ti and H100
(§6.1, Tables 8–9).  Each entry carries the published core count and
clock, plus the *effective* host↔device bandwidth implied by the paper's
own Table 9 (320 MB transferred in the reported per-cycle communication
time), so the overlap experiment reproduces the paper's communication
numbers by construction.

The CPU baseline spec mirrors §6.1's Amazon EC2 c5a.8xlarge (32 vCPU,
64 GB).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict

from ..errors import SimulationError


@dataclass(frozen=True)
class GpuSpec:
    """Static description of one GPU model."""

    name: str
    cuda_cores: int
    sm_count: int
    clock_ghz: float
    device_memory_gb: float
    pcie: str
    #: Effective host<->device bandwidth in GB/s (measured, not theoretical).
    pcie_gbps: float
    #: Per-device compute-efficiency multiplier (> 1 = faster than the raw
    #: cores×clock product predicts).  Calibrated from the paper's Table 9
    #: computation times: memory-bandwidth-rich parts (A100) outrun their
    #: core count on these memory-bound kernels, PCIe H100 underruns it.
    compute_scale: float = 1.0

    @property
    def clock_hz(self) -> float:
        return self.clock_ghz * 1e9

    @property
    def device_memory_bytes(self) -> int:
        return int(self.device_memory_gb * (1 << 30))

    def cycles_to_seconds(self, cycles: float) -> float:
        return cycles / (self.clock_hz * self.compute_scale)

    def seconds_to_cycles(self, seconds: float) -> float:
        return seconds * self.clock_hz * self.compute_scale

    def transfer_seconds(self, num_bytes: float) -> float:
        """Host↔device transfer time at the effective PCIe bandwidth."""
        return num_bytes / (self.pcie_gbps * 1e9)


@dataclass(frozen=True)
class CpuSpec:
    """Static description of a CPU host used by the baselines."""

    name: str
    cores: int
    clock_ghz: float
    memory_gb: float
    #: Fraction of linear speedup the baseline actually extracts from the
    #: cores (production CPU provers are far from perfectly parallel).
    parallel_efficiency: float = 0.55

    @property
    def clock_hz(self) -> float:
        return self.clock_ghz * 1e9

    @property
    def effective_parallelism(self) -> float:
        return max(1.0, self.cores * self.parallel_efficiency)


# Effective PCIe bandwidths back-derived from Table 9 of the paper:
#   V100   : 320 MB / 22.95 ms = 13.9 GB/s   (PCIe 3.0 x16)
#   A100   : 320 MB / 10.44 ms = 30.7 GB/s   (PCIe 4.0 x16)
#   3090Ti : 320 MB / 10.50 ms = 30.5 GB/s   (PCIe 4.0 x16)
#   H100   : 320 MB /  4.90 ms = 65.3 GB/s   (PCIe 5.0 x16)
GPU_CATALOG: Dict[str, GpuSpec] = {
    "V100": GpuSpec(
        name="V100",
        cuda_cores=5120,
        sm_count=80,
        clock_ghz=1.53,
        device_memory_gb=32,
        pcie="PCIe 3.0 x16",
        pcie_gbps=13.9,
        compute_scale=1.0,
    ),
    "A100": GpuSpec(
        name="A100",
        cuda_cores=6912,
        sm_count=108,
        clock_ghz=1.41,
        device_memory_gb=80,
        pcie="PCIe 4.0 x16",
        pcie_gbps=30.7,
        compute_scale=1.63,
    ),
    "3090Ti": GpuSpec(
        name="3090Ti",
        cuda_cores=10752,
        sm_count=84,
        clock_ghz=1.86,
        device_memory_gb=24,
        pcie="PCIe 4.0 x16",
        pcie_gbps=30.5,
        compute_scale=1.0,
    ),
    "H100": GpuSpec(
        name="H100",
        cuda_cores=14592,
        sm_count=114,
        clock_ghz=1.98,
        device_memory_gb=80,
        pcie="PCIe 5.0 x16",
        pcie_gbps=65.3,
        compute_scale=0.75,
    ),
    "GH200": GpuSpec(
        name="GH200",
        cuda_cores=16896,
        sm_count=132,
        clock_ghz=1.98,
        device_memory_gb=96,
        pcie="NVLink-C2C",
        pcie_gbps=450.0,
        compute_scale=0.97,
    ),
}

#: §6.1: CPU baselines run on an EC2 c5a.8xlarge (32 vCPU, 64 GB).
CPU_C5A_8XLARGE = CpuSpec(
    name="c5a.8xlarge", cores=32, clock_ghz=3.3, memory_gb=64
)


def get_gpu(name: str) -> GpuSpec:
    """Look up a GPU model from the catalog by name (e.g. "GH200")."""
    try:
        return GPU_CATALOG[name]
    except KeyError:
        raise SimulationError(
            f"unknown GPU {name!r}; available: {sorted(GPU_CATALOG)}"
        ) from None
