"""The simulation engine: executes module graphs under both disciplines.

Two runners share all device/cost plumbing:

* :func:`run_naive` — the intuitive kernel-per-task discipline of
  Figure 4a (what Simon, Icicle and "Ours-np" do): each task launches one
  kernel per stage in series; threads idle as stage work shrinks, and
  every stage pays a kernel launch + sync.
* :func:`run_pipelined` — the paper's discipline of Figure 4b: one
  persistent kernel per stage with a fixed thread allocation; tasks stream
  through, one entering and one leaving per beat, with transfers
  overlapped by multi-stream copy engines.

Both produce a :class:`SimResult` carrying throughput, latency, a sampled
core-utilization trace (Figure 9), the device-memory high-water mark
(Table 10) and the per-beat communication/computation split (Table 9).
The engine is analytic (event-granular, not cycle-granular) so batches of
2^22-element tasks simulate in microseconds of host time.
"""

from __future__ import annotations

from dataclasses import dataclass, field as dc_field
from typing import List, Optional, Sequence, Tuple

from ..errors import SimulationError
from .costs import CpuCostModel, GpuCostModel
from .device import CpuSpec, GpuSpec
from .kernel import (
    ModuleGraph,
    allocate_threads_proportional,
)
from .stream import BeatTiming, TransferEngine


@dataclass
class SimResult:
    """Outcome of simulating a batch of tasks through one module graph."""

    scheduler: str
    device_name: str
    batch_size: int
    total_seconds: float
    latency_seconds: float  # per-task start-to-finish
    utilization_trace: List[Tuple[float, float]] = dc_field(default_factory=list)
    memory_high_water_bytes: int = 0
    beat: Optional[BeatTiming] = None
    thread_allocation: List[int] = dc_field(default_factory=list)
    #: Steady-state per-task interval (pipelined: one beat; naive: the
    #: amortized per-task time).  Excludes pipeline fill/drain, matching
    #: how the paper reports throughput.
    steady_interval_seconds: float = 0.0

    @property
    def throughput_per_second(self) -> float:
        if self.total_seconds <= 0:
            return 0.0
        return self.batch_size / self.total_seconds

    @property
    def throughput_per_ms(self) -> float:
        return self.throughput_per_second / 1e3

    @property
    def amortized_seconds(self) -> float:
        return self.total_seconds / self.batch_size

    @property
    def steady_throughput_per_second(self) -> float:
        if self.steady_interval_seconds <= 0:
            return self.throughput_per_second
        return 1.0 / self.steady_interval_seconds

    @property
    def steady_throughput_per_ms(self) -> float:
        return self.steady_throughput_per_second / 1e3

    @property
    def mean_utilization(self) -> float:
        if not self.utilization_trace:
            return 0.0
        return sum(u for _, u in self.utilization_trace) / len(
            self.utilization_trace
        )


def _trace_samples(
    segments: Sequence[Tuple[float, float, float]], num_samples: int
) -> List[Tuple[float, float]]:
    """Sample piecewise-constant (start, end, utilization) segments."""
    if not segments:
        return []
    end_time = max(end for _, end, _ in segments)
    if end_time <= 0:
        return []
    samples = []
    for i in range(num_samples):
        t = end_time * (i + 0.5) / num_samples
        util = 0.0
        for start, end, u in segments:
            if start <= t < end:
                util += u
        samples.append((t, min(1.0, util)))
    return samples


def run_naive(
    device: GpuSpec,
    module: ModuleGraph,
    batch_size: int,
    costs: Optional[GpuCostModel] = None,
    compute_penalty: float = 1.0,
    launch_seconds: Optional[float] = None,
    trace_samples: int = 200,
) -> SimResult:
    """Simulate the intuitive kernel-per-task discipline (Figure 4a).

    Each task allocates ``min(cores, max stage work)`` threads and walks
    its stages serially; ``m = cores // threads`` tasks run concurrently.
    ``compute_penalty`` models the baseline's per-unit inefficiencies (no
    register-resident hash state, unsorted sparse rows, …).
    """
    costs = costs or GpuCostModel()
    if batch_size <= 0:
        raise SimulationError("batch_size must be positive")
    launch = (
        costs.kernel_launch_seconds if launch_seconds is None else launch_seconds
    )
    max_work = max((s.work_units for s in module.stages), default=0)
    if max_work == 0:
        raise SimulationError("module has no work")
    threads = min(device.cuda_cores, max_work)
    concurrency = max(1, device.cuda_cores // threads)

    # Per-task serial schedule.
    stage_durations: List[float] = []
    stage_useful_cycles: List[float] = []
    for stage in module.stages:
        if stage.work_units == 0:
            continue
        cycles = stage.duration_cycles(min(threads, max(1, stage.work_units)))
        seconds = device.cycles_to_seconds(cycles * compute_penalty) + launch
        stage_durations.append(seconds)
        stage_useful_cycles.append(stage.total_cycles)
    task_seconds = sum(stage_durations)

    waves = -(-batch_size // concurrency)
    total_seconds = waves * task_seconds
    # Utilization = useful work cycles delivered per core-second (fraction
    # of peak sustained throughput).  The baseline loses utilization both
    # to idle threads as stage work shrinks (Figure 4a) and to its per-unit
    # penalty (non-register hash state, unsorted rows) and launch gaps.
    segments: List[Tuple[float, float, float]] = []
    for wave in range(waves):
        tasks_in_wave = min(concurrency, batch_size - wave * concurrency)
        t = wave * task_seconds
        for duration, useful in zip(stage_durations, stage_useful_cycles):
            spent_core_cycles = device.seconds_to_cycles(duration) * (
                device.cuda_cores
            )
            util = tasks_in_wave * useful / spent_core_cycles
            segments.append((t, t + duration, min(1.0, util)))
            t += duration
    # Memory: the intuitive scheme preloads every concurrent task's input.
    memory = sum(s.memory_bytes for s in module.stages) * concurrency

    return SimResult(
        scheduler="naive",
        device_name=device.name,
        batch_size=batch_size,
        total_seconds=total_seconds,
        latency_seconds=task_seconds,
        utilization_trace=_trace_samples(segments, trace_samples),
        memory_high_water_bytes=memory,
        thread_allocation=[threads] * len(module.stages),
        steady_interval_seconds=task_seconds / concurrency,
    )


def run_pipelined(
    device: GpuSpec,
    module: ModuleGraph,
    batch_size: int,
    costs: Optional[GpuCostModel] = None,
    total_threads: Optional[int] = None,
    multi_stream: bool = True,
    include_transfers: bool = True,
    allocator=allocate_threads_proportional,
    trace_samples: int = 200,
) -> SimResult:
    """Simulate the paper's fully pipelined discipline (Figure 4b).

    One persistent kernel per stage; a new task enters every beat and one
    leaves.  The beat is paced by the slowest stage; with the §4
    proportional allocation all stages finish together, so threads never
    idle in steady state.
    """
    costs = costs or GpuCostModel()
    if batch_size <= 0:
        raise SimulationError("batch_size must be positive")
    threads = total_threads or device.cuda_cores
    if threads > device.cuda_cores:
        raise SimulationError(
            f"{threads} threads exceed {device.cuda_cores} cores"
        )
    stages = [s for s in module.stages if s.work_units > 0]
    if not stages:
        raise SimulationError("module has no work")
    alloc = allocator(stages, threads)

    beat_cycles = max(
        stage.duration_cycles(a) for stage, a in zip(stages, alloc)
    )
    comp_seconds = device.cycles_to_seconds(beat_cycles) * (
        1.0 + costs.pipeline_sync_fraction
    )
    # Per-beat traffic: the entering task's inputs come down, every stage's
    # outbound intermediates go up (dynamic load/store, §3.1/§4).
    # ``include_transfers=False`` models a device-resident workload — how
    # the paper's standalone module benchmarks (Tables 3–6) are run.
    comm_bytes = (
        module.total_bytes_in() + module.total_bytes_out()
        if include_transfers
        else 0
    )
    engine = TransferEngine(device, multi_stream=multi_stream)
    beat = engine.beat(comm_bytes, comp_seconds)

    num_stages = len(stages)
    total_beats = batch_size + num_stages - 1
    total_seconds = total_beats * beat.overall_seconds
    latency_seconds = num_stages * beat.overall_seconds

    # Utilization = useful work cycles per core-beat: stage k delivers its
    # work every beat while a task occupies it — beats k … k+batch_size−1.
    beat_core_cycles = device.seconds_to_cycles(beat.overall_seconds) * (
        device.cuda_cores
    )
    stage_util = [
        stage.total_cycles / beat_core_cycles for stage in stages
    ]
    segments: List[Tuple[float, float, float]] = []
    beat_len = beat.overall_seconds
    for k, util in enumerate(stage_util):
        start = k * beat_len
        end = (k + batch_size) * beat_len
        segments.append((start, end, util))

    # Memory: exactly one task resident per stage (§3.1's ≈2N discipline).
    memory = sum(s.memory_bytes for s in stages)

    return SimResult(
        scheduler="pipelined",
        device_name=device.name,
        batch_size=batch_size,
        total_seconds=total_seconds,
        latency_seconds=latency_seconds,
        utilization_trace=_trace_samples(segments, trace_samples),
        memory_high_water_bytes=memory,
        beat=beat,
        thread_allocation=alloc,
        steady_interval_seconds=beat.overall_seconds,
    )


def run_cpu(
    cpu: CpuSpec,
    module: ModuleGraph,
    batch_size: int,
    costs: Optional[CpuCostModel] = None,
) -> SimResult:
    """Price the same module graph at the CPU baselines' aggregate rates."""
    costs = costs or CpuCostModel()
    if batch_size <= 0:
        raise SimulationError("batch_size must be positive")
    rate = {
        "hash": costs.hash_seconds,
        "entry": costs.sumcheck_entry_seconds,
        "mac": costs.encoder_mac_seconds,
    }
    task_seconds = 0.0
    for stage in module.stages:
        try:
            per_unit = rate[stage.unit]
        except KeyError:
            raise SimulationError(
                f"stage {stage.name}: CPU model has no rate for unit "
                f"{stage.unit!r}"
            ) from None
        task_seconds += stage.work_units * per_unit
    total = task_seconds * batch_size
    return SimResult(
        scheduler="cpu",
        device_name=cpu.name,
        batch_size=batch_size,
        total_seconds=total,
        latency_seconds=task_seconds,
        utilization_trace=[],
        memory_high_water_bytes=0,
        steady_interval_seconds=task_seconds,
    )
