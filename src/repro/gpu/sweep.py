"""Parameter sweeps over the simulator: the plot-ready series behind the
evaluation's trends.

Each function returns ``(x_values, series_dict)`` ready for plotting or
tabulation: batch-size amortization curves, thread-budget scaling, the
size-dependent pipelined-vs-naive speedup (the Tables 3–5 trend), and
device scaling.  Used by the ablation benches and available to users for
their own what-if analysis.
"""

from __future__ import annotations

from typing import Callable, Dict, List, Optional, Sequence, Tuple

from ..errors import SimulationError
from .costs import GpuCostModel
from .device import GpuSpec, get_gpu
from .kernel import ModuleGraph
from .simulator import run_naive, run_pipelined

Series = Tuple[List[float], Dict[str, List[float]]]


def batch_amortization_curve(
    device: GpuSpec,
    graph: ModuleGraph,
    batches: Sequence[int] = (1, 2, 4, 8, 16, 32, 64, 128, 256),
    costs: Optional[GpuCostModel] = None,
) -> Series:
    """Amortized per-task seconds vs batch size (pipeline fill washes out).

    The curve decays toward the steady-state beat — the quantitative form
    of "our system maintains a full workload state" (§4).
    """
    xs: List[float] = []
    amortized: List[float] = []
    steady: List[float] = []
    for batch in batches:
        res = run_pipelined(device, graph, batch, costs=costs, include_transfers=False)
        xs.append(float(batch))
        amortized.append(res.amortized_seconds)
        steady.append(res.steady_interval_seconds)
    return xs, {"amortized_seconds": amortized, "steady_beat_seconds": steady}


def thread_scaling_curve(
    device: GpuSpec,
    graph: ModuleGraph,
    fractions: Sequence[float] = (0.125, 0.25, 0.5, 0.75, 1.0),
    costs: Optional[GpuCostModel] = None,
) -> Series:
    """Steady throughput vs thread budget (resource-allocation planning)."""
    xs: List[float] = []
    throughput: List[float] = []
    for frac in fractions:
        threads = max(len(graph.stages), int(device.cuda_cores * frac))
        res = run_pipelined(
            device, graph, 64, costs=costs, total_threads=threads,
            include_transfers=False,
        )
        xs.append(float(threads))
        throughput.append(res.steady_throughput_per_second)
    return xs, {"throughput_per_second": throughput}


def size_speedup_curve(
    device: GpuSpec,
    graph_builder: Callable[[int], ModuleGraph],
    log_sizes: Sequence[int] = (14, 16, 18, 20, 22),
    compute_penalty: float = 1.3,
    costs: Optional[GpuCostModel] = None,
) -> Series:
    """Pipelined/naive speedup vs input size — the Tables 3-5 trend that
    the advantage widens as inputs shrink."""
    xs: List[float] = []
    speedup: List[float] = []
    for lg in log_sizes:
        graph = graph_builder(lg)
        pipe = run_pipelined(device, graph, 64, costs=costs, include_transfers=False)
        naive = run_naive(device, graph, 64, costs=costs, compute_penalty=compute_penalty)
        xs.append(float(lg))
        speedup.append(
            pipe.steady_throughput_per_second / naive.steady_throughput_per_second
        )
    return xs, {"speedup": speedup}


def device_scaling_curve(
    graph_builder: Callable[[GpuSpec], ModuleGraph],
    device_names: Sequence[str] = ("V100", "A100", "3090Ti", "H100", "GH200"),
    costs: Optional[GpuCostModel] = None,
) -> Series:
    """Steady throughput per device (the Table 8 trend)."""
    xs: List[float] = []
    throughput: List[float] = []
    for name in device_names:
        device = get_gpu(name)
        graph = graph_builder(device)
        res = run_pipelined(device, graph, 64, costs=costs, include_transfers=False)
        xs.append(device.cuda_cores * device.clock_ghz * device.compute_scale)
        throughput.append(res.steady_throughput_per_second)
    return xs, {"throughput_per_second": throughput}


def monotone_nondecreasing(values: Sequence[float], tolerance: float = 1e-9) -> bool:
    """Helper for asserting trend shapes in tests."""
    if not values:
        raise SimulationError("empty series")
    return all(b >= a - tolerance for a, b in zip(values, values[1:]))


def monotone_nonincreasing(values: Sequence[float], tolerance: float = 1e-9) -> bool:
    """True iff the series never increases (within ``tolerance``)."""
    if not values:
        raise SimulationError("empty series")
    return all(b <= a + tolerance for a, b in zip(values, values[1:]))
