"""Cost models for the GPU/CPU simulators.

Because this reproduction replaces CUDA silicon with a simulator, the
absolute per-operation costs are *calibrated constants*, each back-derived
from a row of the paper's own tables and documented below.  The schedulers
never see wall-clock — they see work units (hashes, table entries, sparse
multiply-adds) and convert through these models, so changing a constant
rescales a column without touching any scheduling logic.

Calibration notes (GH200, Tables 3–5 "Ours" rows):

* ``hash_cycles`` — Table 3, N = 2^22: 1.698 trees/ms with ≈ 2N = 2^23
  hashes/tree on 16 896 cores @ 1.98 GHz ⇒ ≈ 2.3 k effective core-cycles
  per SHA-256 compression (64 rounds ≈ 36 cycles each: realistic for
  int32 ALU work).
* ``sumcheck_entry_cycles`` — Table 4, N = 2^22: 1.461 proofs/ms with
  ≈ 2^23 table-entry updates/proof ⇒ ≈ 2.7 k cycles/entry.  Far above the
  raw mul+add cost because the module is *memory-access bound* (§3.2);
  the constant is an effective (bandwidth-inclusive) cost.
* ``encoder_mac_cycles`` — Table 5, N = 2^22: 0.182 codes/ms with
  ≈ 16N sparse multiply-adds/codeword ⇒ ≈ 2.7 k cycles/MAC (gather-bound
  sparse access to 256-bit elements).

Naive-scheduler penalties (matching the paper's baselines):

* ``kernel_launch_seconds`` — per-stage kernel launch + device sync of a
  non-persistent kernel; 12 µs reproduces the Simon/Icicle gap growth as
  trees shrink (Tables 3–4).
* ``naive_merkle_penalty`` / ``naive_sumcheck_penalty`` — 1.3×: the
  baseline keeps SHA-256 message chunks in shared/global memory instead of
  registers (§3.1) and re-reads table entries (§3.2).
* ``naive_encoder_penalty`` — 5.65×: unsorted rows leave warps imbalanced
  (§3.3 measures ≈ 1.9× alone), plus non-coalesced gathers and no
  cross-task overlap; fit from Table 5's Ours-np column.

CPU baseline rates (aggregate across the c5a.8xlarge's parallelism) are
back-derived from the CPU columns of Tables 3–5.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, replace
from typing import Dict, Mapping


@dataclass(frozen=True)
class GpuCostModel:
    """Per-work-unit costs on the simulated GPU."""

    hash_cycles: float = 2300.0
    sumcheck_entry_cycles: float = 2700.0
    encoder_mac_cycles: float = 2700.0
    #: Raw 256-bit field multiply (used by the MSM/NTT baseline models).
    field_mul_cycles: float = 120.0
    #: Launch + sync cost of one non-persistent kernel (naive scheduler).
    kernel_launch_seconds: float = 12e-6
    #: Extra launch cost of the naive encoder's irregular sparse kernels.
    encoder_stage_launch_seconds: float = 30e-6
    #: Compute penalties of the non-pipelined baselines (see module doc).
    naive_merkle_penalty: float = 1.3
    naive_sumcheck_penalty: float = 1.3
    naive_encoder_penalty: float = 5.65
    #: Small per-beat synchronization overhead of the pipelined scheduler
    #: (stream event waits), as a fraction of the beat.
    pipeline_sync_fraction: float = 0.02

    def with_overrides(self, **kwargs: float) -> "GpuCostModel":
        return replace(self, **kwargs)


@dataclass(frozen=True)
class CpuCostModel:
    """Aggregate per-work-unit wall times of the CPU baselines.

    These absorb whatever parallelism the production baselines achieve on
    the 32-vCPU host, so they are *system* rates, not per-core rates.
    """

    hash_seconds: float = 55.6e-9  # Orion Merkle, Table 3 @ 2^22
    sumcheck_entry_seconds: float = 312e-9  # Arkworks, Table 4 @ 2^22
    encoder_mac_seconds: float = 69e-9  # Orion encoder, Table 5 @ 2^22

    def with_overrides(self, **kwargs: float) -> "CpuCostModel":
        return replace(self, **kwargs)


@dataclass(frozen=True)
class VendorLinearModel:
    """An affine time model ``T(S) = rate·S + fixed`` for a closed-source
    baseline, fit to two of the paper's own table rows.

    Used for Libsnark and Bellperson (Table 7), whose NTT+MSM pipelines we
    implement functionally in :mod:`repro.baselines` but whose absolute
    performance we take from the paper's measurements.
    """

    name: str
    rate_seconds_per_gate: float
    fixed_seconds: float

    def time_seconds(self, num_gates: int) -> float:
        return self.rate_seconds_per_gate * num_gates + self.fixed_seconds


# Fits from Table 7 (endpoints S = 2^18 and S = 2^22):
LIBSNARK_TOTAL = VendorLinearModel("libsnark/proof", 86.5e-6, 0.5)
LIBSNARK_MSM = VendorLinearModel("libsnark/msm", 66.6e-6, 1.53)
LIBSNARK_NTT = VendorLinearModel("libsnark/ntt", 19.8e-6, -1.0)
BELLPERSON_TOTAL = VendorLinearModel("bellperson/proof", 1.60e-6, 0.880)
BELLPERSON_MSM = VendorLinearModel("bellperson/msm", 1.48e-6, 0.585)
BELLPERSON_NTT = VendorLinearModel("bellperson/ntt", 0.0998e-6, 0.241)

#: Bellperson's amortized device memory per in-flight proof (Table 10).
BELLPERSON_MEMORY_GB: Dict[int, float] = {
    18: 0.90,
    19: 1.25,
    20: 1.38,
    21: 2.21,
    22: 3.87,
}

DEFAULT_GPU_COSTS = GpuCostModel()
DEFAULT_CPU_COSTS = CpuCostModel()


# -- calibration from measured stage profiles ---------------------------------


def stage_cost_fractions(stage_seconds: Mapping[str, float]) -> Dict[str, float]:
    """Per-module time fractions from a measured stage profile.

    Maps the functional prover's stage names onto the simulator's three
    modules — ``merkle``, ``sumcheck`` (both sum-checks), ``encoder`` —
    plus ``other`` (commit residue, opening).  ``commit`` itself is a
    container (it includes ``encode`` and ``merkle``) and is excluded
    from the total; fractions sum to 1 when any time was recorded.
    """
    merkle = stage_seconds.get("merkle", 0.0)
    encode = stage_seconds.get("encode", 0.0)
    sumcheck = stage_seconds.get("sumcheck1", 0.0) + stage_seconds.get(
        "sumcheck2", 0.0
    )
    commit = stage_seconds.get("commit", 0.0)
    opening = stage_seconds.get("open", 0.0)
    other = max(0.0, commit - encode - merkle) + opening
    total = merkle + encode + sumcheck + other
    if total <= 0.0:
        return {"merkle": 0.0, "sumcheck": 0.0, "encoder": 0.0, "other": 0.0}
    return {
        "merkle": merkle / total,
        "sumcheck": sumcheck / total,
        "encoder": encode / total,
        "other": other / total,
    }


def proof_cost_seconds(stage_seconds: Mapping[str, float]) -> float:
    """One proof's exclusive CPU-seconds from a measured stage profile.

    The same accounting as :func:`stage_cost_fractions`: ``commit`` is a
    container around ``encode`` and ``merkle``, so only its residue
    counts, and the opening rides in ``other``.  This scalar is the load
    model's demand unit — arrival rate × this = busy-seconds per second
    the fleet must absorb.
    """
    merkle = stage_seconds.get("merkle", 0.0)
    encode = stage_seconds.get("encode", 0.0)
    sumcheck = stage_seconds.get("sumcheck1", 0.0) + stage_seconds.get(
        "sumcheck2", 0.0
    )
    commit = stage_seconds.get("commit", 0.0)
    opening = stage_seconds.get("open", 0.0)
    return (
        merkle + encode + sumcheck
        + max(0.0, commit - encode - merkle) + opening
    )


def target_node_count(
    arrival_rate: float,
    per_proof_seconds: float,
    node_parallelism: int,
    *,
    headroom: float = 0.8,
    min_nodes: int = 1,
    max_nodes: int = 16,
) -> int:
    """Nodes needed to absorb ``arrival_rate`` proofs/second.

    Demand is ``arrival_rate × per_proof_seconds`` busy-seconds per
    second; one node supplies ``node_parallelism`` of them, derated by
    ``headroom`` (running a queue at 100% utilization has unbounded
    latency — the derate keeps ρ ≤ headroom).  The result is clamped to
    ``[min_nodes, max_nodes]``.

    >>> target_node_count(8.0, 0.5, 2, headroom=0.8)
    3
    """
    if per_proof_seconds < 0 or arrival_rate < 0:
        raise ValueError("rates and costs must be non-negative")
    if node_parallelism < 1:
        raise ValueError(f"node_parallelism must be >= 1, got {node_parallelism}")
    if not 0.0 < headroom <= 1.0:
        raise ValueError(f"headroom must be in (0, 1], got {headroom}")
    if min_nodes < 0 or max_nodes < min_nodes:
        raise ValueError(
            f"bad bounds: min_nodes={min_nodes}, max_nodes={max_nodes}"
        )
    demand = arrival_rate * per_proof_seconds
    capacity_per_node = node_parallelism * headroom
    needed = math.ceil(demand / capacity_per_node) if demand > 0 else 0
    return max(min_nodes, min(max_nodes, needed))


def cpu_costs_from_stages(
    stage_seconds: Mapping[str, float],
    *,
    hashes: int,
    sumcheck_entries: int,
    encoder_macs: int,
) -> CpuCostModel:
    """A :class:`CpuCostModel` calibrated from measured stage wall time.

    The functional prover *is* a CPU implementation, so its measured
    per-stage seconds (a :class:`~repro.kernels.profile.StageProfile`, or
    a ``stage_timing`` trace event's ``stages`` payload) divided by the
    proof's work-unit counts give real per-unit rates the simulator can
    run with.  Work units follow the module docstring's accounting: total
    Merkle compressions (≈2·leaves), sum-check table-entry updates, and
    encoder sparse multiply-adds.  Zero measured time for a stage keeps
    the default constant (so partial profiles calibrate partially).
    """
    if min(hashes, sumcheck_entries, encoder_macs) <= 0:
        raise ValueError("work-unit counts must be positive")
    merkle = stage_seconds.get("merkle", 0.0)
    sumcheck = stage_seconds.get("sumcheck1", 0.0) + stage_seconds.get(
        "sumcheck2", 0.0
    )
    encode = stage_seconds.get("encode", 0.0)
    base = DEFAULT_CPU_COSTS
    return CpuCostModel(
        hash_seconds=merkle / hashes if merkle > 0 else base.hash_seconds,
        sumcheck_entry_seconds=(
            sumcheck / sumcheck_entries
            if sumcheck > 0
            else base.sumcheck_entry_seconds
        ),
        encoder_mac_seconds=(
            encode / encoder_macs if encode > 0 else base.encoder_mac_seconds
        ),
    )
