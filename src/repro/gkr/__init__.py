"""GKR protocol for layered circuits (extension; paper Table 1's
Libra/Virgo family).

* :class:`LayeredCircuit`, :func:`random_layered_circuit`,
  :func:`matmul_circuit` — circuit model.
* :class:`GkrProver` / :class:`GkrVerifier` — the two-phase Libra-style
  linear-time prover and the O(depth·width) verifier.
"""

from .circuit import (
    ADD,
    Gate,
    LayeredCircuit,
    MUL,
    matmul_circuit,
    random_layered_circuit,
)
from .committed import (
    CommittedGkrProof,
    CommittedGkrProver,
    CommittedGkrVerifier,
)
from .protocol import GkrProof, GkrProver, GkrVerifier, LayerProof

__all__ = [
    "LayeredCircuit",
    "Gate",
    "ADD",
    "MUL",
    "random_layered_circuit",
    "matmul_circuit",
    "GkrProver",
    "GkrVerifier",
    "GkrProof",
    "LayerProof",
    "CommittedGkrProver",
    "CommittedGkrVerifier",
    "CommittedGkrProof",
]
