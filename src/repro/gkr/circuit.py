"""Layered arithmetic circuits for the GKR protocol.

The paper's "second category" protocols (Libra, Virgo, Virgo++ — Table 1)
prove *layered* circuits with the GKR interactive proof: layer 0 is the
output, the last layer is the input, and every gate in layer ``i`` reads
two gates of layer ``i+1``.  The wiring of layer ``i`` is described by the
multilinear predicates

* ``add_i(z, x, y)`` — 1 iff gate ``z`` of layer ``i`` is an addition gate
  with inputs ``x, y`` in layer ``i+1``;
* ``mul_i(z, x, y)`` — likewise for multiplication,

giving the layer identity the sum-check proves:

    Ṽ_i(z) = Σ_{x,y} [ add_i(z,x,y)·(Ṽ_{i+1}(x) + Ṽ_{i+1}(y))
                      + mul_i(z,x,y)·Ṽ_{i+1}(x)·Ṽ_{i+1}(y) ]

Layer widths are padded to powers of two; padding gates are additions of
input 0 with itself... no — padding gates are *absent* (the predicates are
simply zero there), so padded values are 0.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import List, Sequence

from ..errors import CircuitError
from ..field.prime_field import PrimeField

ADD = "add"
MUL = "mul"


@dataclass(frozen=True)
class Gate:
    """One gate: ``op`` over two gate indices of the next (lower) layer."""

    op: str
    left: int
    right: int

    def __post_init__(self) -> None:
        if self.op not in (ADD, MUL):
            raise CircuitError(f"unknown gate op {self.op!r}")
        if self.left < 0 or self.right < 0:
            raise CircuitError("gate inputs must be non-negative indices")


def _pad_vars(n: int) -> int:
    """Variables needed to index n items (>= 1)."""
    if n <= 1:
        return 1
    return (n - 1).bit_length()


class LayeredCircuit:
    """A layered circuit: ``layers[0]`` computes the output from
    ``layers[1]``'s values, …, the deepest values are the inputs.

    Attributes:
        field:      The prime field.
        layers:     ``layers[i]`` is the gate list of layer ``i`` (reading
                    layer ``i+1``); there are ``depth`` gate layers.
        input_size: Number of circuit inputs (the values of layer
                    ``depth``).
    """

    def __init__(
        self, field: PrimeField, layers: List[List[Gate]], input_size: int
    ):
        if not layers:
            raise CircuitError("need at least one gate layer")
        if input_size < 1:
            raise CircuitError("need at least one input")
        self.field = field
        self.layers = layers
        self.input_size = input_size
        # Validate wiring: gates in layer i read layer i+1.
        for i, gates in enumerate(layers):
            below = (
                len(layers[i + 1]) if i + 1 < len(layers) else input_size
            )
            if not gates:
                raise CircuitError(f"layer {i} has no gates")
            for g in gates:
                if g.left >= below or g.right >= below:
                    raise CircuitError(
                        f"layer {i}: gate reads index >= {below}"
                    )

    # -- shapes ----------------------------------------------------------------

    @property
    def depth(self) -> int:
        return len(self.layers)

    def layer_width(self, i: int) -> int:
        """Gate count of layer i (i == depth means the input layer)."""
        if i == self.depth:
            return self.input_size
        return len(self.layers[i])

    def layer_vars(self, i: int) -> int:
        """k_i: hypercube variables indexing layer i."""
        return _pad_vars(self.layer_width(i))

    def total_gates(self) -> int:
        return sum(len(gates) for gates in self.layers)

    def mul_gates(self) -> int:
        return sum(1 for gates in self.layers for g in gates if g.op == MUL)

    # -- evaluation -------------------------------------------------------------

    def evaluate(self, inputs: Sequence[int]) -> List[List[int]]:
        """Return per-layer value tables, padded to powers of two.

        ``values[i]`` holds layer i's values (``values[depth]`` = inputs);
        every table has length ``2^{k_i}``.
        """
        if len(inputs) != self.input_size:
            raise CircuitError(
                f"expected {self.input_size} inputs, got {len(inputs)}"
            )
        p = self.field.modulus
        values: List[List[int]] = [[] for _ in range(self.depth + 1)]
        padded_in = [v % p for v in inputs]
        padded_in += [0] * ((1 << self.layer_vars(self.depth)) - len(padded_in))
        values[self.depth] = padded_in
        for i in range(self.depth - 1, -1, -1):
            below = values[i + 1]
            table = []
            for g in self.layers[i]:
                a, b = below[g.left], below[g.right]
                table.append((a + b) % p if g.op == ADD else (a * b) % p)
            table += [0] * ((1 << self.layer_vars(i)) - len(table))
            values[i] = table
        return values

    def outputs(self, inputs: Sequence[int]) -> List[int]:
        """Unpadded output values."""
        return self.evaluate(inputs)[0][: len(self.layers[0])]

    def digest(self) -> bytes:
        """Hash binding the circuit structure (for transcripts)."""
        from ..hashing.hashers import get_hasher

        parts = [
            self.field.modulus.to_bytes(64, "little"),
            self.input_size.to_bytes(8, "little"),
        ]
        for gates in self.layers:
            for g in gates:
                parts.append(
                    (b"\x00" if g.op == ADD else b"\x01")
                    + g.left.to_bytes(8, "little")
                    + g.right.to_bytes(8, "little")
                )
            parts.append(b"|")
        return get_hasher("sha256-hw").hash_bytes(b"".join(parts))

    def __repr__(self) -> str:
        widths = "x".join(str(self.layer_width(i)) for i in range(self.depth + 1))
        return f"LayeredCircuit(depth={self.depth}, widths={widths})"


def random_layered_circuit(
    field: PrimeField,
    depth: int = 3,
    width: int = 8,
    input_size: int = 8,
    seed: int = 0,
) -> LayeredCircuit:
    """A random layered circuit with a mix of add and mul gates."""
    rng = random.Random(f"gkr-circuit/{seed}/{depth}/{width}")
    layers: List[List[Gate]] = []
    below = input_size
    widths = [width] * depth
    for i, w in enumerate(widths):
        src = widths[i + 1] if i + 1 < depth else input_size
        layers.append(
            [
                Gate(
                    op=rng.choice((ADD, MUL)),
                    left=rng.randrange(src),
                    right=rng.randrange(src),
                )
                for _ in range(w)
            ]
        )
    return LayeredCircuit(field, layers, input_size)


def matmul_circuit(field: PrimeField, n: int) -> LayeredCircuit:
    """An n×n matrix-product circuit (the classic GKR benchmark).

    Inputs: matrices A then B, row-major (2n² inputs).  Layer 1 computes
    all n³ products A[i][k]·B[k][j]; layer 0 sums each row of n products
    with a binary addition tree folded into ``log n`` layers.
    """
    if n < 2 or n & (n - 1):
        raise CircuitError("matmul_circuit needs a power-of-two n >= 2")
    a_off = 0
    b_off = n * n

    # Product layer: index (i, j, k) -> A[i*n+k] * B[k*n+j].
    prod_gates = []
    for i in range(n):
        for j in range(n):
            for k in range(n):
                prod_gates.append(
                    Gate(op=MUL, left=a_off + i * n + k, right=b_off + k * n + j)
                )
    layers = [prod_gates]

    # Addition tree: repeatedly halve the k dimension.
    width = n * n * n
    stride = n
    while stride > 1:
        adds = []
        for group in range(width // stride):
            base = group * stride
            for t in range(stride // 2):
                adds.append(Gate(op=ADD, left=base + 2 * t, right=base + 2 * t + 1))
        layers.insert(0, adds)
        width //= 2
        stride //= 2
    return LayeredCircuit(field, layers, input_size=2 * n * n)
