"""GKR over committed (private) inputs — the full Figure 1 workflow.

Plain GKR (``repro.gkr.protocol``) runs in the delegation setting with
public inputs.  The paper's protocols (Virgo, Orion) make the witness
*private* by committing the input layer with the linear-code + Merkle
polynomial commitment: the verifier's final input-layer checks become two
PCS openings instead of direct MLE evaluations — which is precisely the
composition the paper's Figure 1 draws (encoder + Merkle commit the
witness, sum-check modules prove the function).

Flow:

1. prover commits the padded input table ``Ṽ_in`` (Brakedown PCS); the
   Merkle root seeds the transcript ("random numbers … using the final
   Merkle root as a seed", §4);
2. standard GKR layers run, bound to the same transcript;
3. the two surviving claims ``Ṽ_in(u)``, ``Ṽ_in(v)`` are opened against
   the commitment.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Sequence

from ..commitment.brakedown import BrakedownPCS, Commitment, EvalProof
from ..errors import CircuitError, SumcheckError
from ..field.multilinear import eq_table
from ..hashing.transcript import Transcript
from ..sumcheck.prover import evaluation_point
from .circuit import LayeredCircuit
from .protocol import (
    GkrProof,
    LayerProof,
    _AffineProductProver,
    _mle_eval,
    _phase1_tables,
    _phase2_tables,
    _replay_phase,
    _run_phase,
    _wiring_evals,
)

TRANSCRIPT_LABEL = b"repro/gkr-committed/v1"


@dataclass(frozen=True)
class CommittedGkrProof:
    """GKR proof with committed inputs: layers + commitment + openings."""

    commitment: Commitment
    gkr: GkrProof
    v_u_opening: EvalProof
    v_v_opening: EvalProof

    def size_field_elements(self) -> int:
        return (
            self.gkr.size_field_elements()
            + self.v_u_opening.size_field_elements()
            + self.v_v_opening.size_field_elements()
        )


def _input_pcs(circuit: LayeredCircuit, num_col_checks: int, seed: int) -> BrakedownPCS:
    num_vars = circuit.layer_vars(circuit.depth)
    if num_vars < 2:
        raise CircuitError(
            "committed GKR needs at least 4 (padded) inputs to commit"
        )
    return BrakedownPCS(
        circuit.field, num_vars=num_vars, seed=seed, num_col_checks=num_col_checks
    )


class CommittedGkrProver:
    """Proves circuit outputs over a *private* committed input vector."""

    def __init__(
        self,
        circuit: LayeredCircuit,
        num_col_checks: int = 12,
        pcs_seed: int = 0,
    ):
        self.circuit = circuit
        self.field = circuit.field
        self.pcs = _input_pcs(circuit, num_col_checks, pcs_seed)
        self._digest = circuit.digest()

    def prove(self, inputs: Sequence[int]) -> CommittedGkrProof:
        field = self.field
        p = field.modulus
        circuit = self.circuit
        values = circuit.evaluate(inputs)
        outputs = values[0][: len(circuit.layers[0])]
        padded_in = values[circuit.depth]

        commitment, state = self.pcs.commit(padded_in)
        transcript = Transcript(TRANSCRIPT_LABEL)
        transcript.absorb_bytes(b"circuit", self._digest)
        transcript.absorb_bytes(b"commitment", commitment.root)
        transcript.absorb_field_vector(b"outputs", field, outputs)

        k0 = circuit.layer_vars(0)
        z0 = transcript.challenge_field_vector(b"z0", field, k0)
        eq_z = eq_table(field, z0)

        layer_proofs: List[LayerProof] = []
        u = v_pt = None
        for i, gates in enumerate(circuit.layers):
            v_below = values[i + 1]
            p1, p2 = _phase1_tables(field, gates, eq_z, v_below)
            phase1 = _AffineProductProver(field, list(v_below), p1, p2)
            rounds1, ch1 = _run_phase(field, phase1, transcript, b"gkr/L%d/p1" % i)
            u = evaluation_point(ch1)
            v_u = phase1.final_v()
            eq_u = eq_table(field, u)
            q1, q2 = _phase2_tables(field, gates, eq_z, eq_u, v_u, len(v_below))
            phase2 = _AffineProductProver(field, list(v_below), q1, q2)
            rounds2, ch2 = _run_phase(field, phase2, transcript, b"gkr/L%d/p2" % i)
            v_pt = evaluation_point(ch2)
            v_v = phase2.final_v()
            transcript.absorb_field_vector(b"gkr/claims", field, [v_u, v_v])
            layer_proofs.append(
                LayerProof(
                    phase1_rounds=rounds1, phase2_rounds=rounds2, v_u=v_u, v_v=v_v
                )
            )
            if i + 1 < circuit.depth:
                alpha = transcript.challenge_field(b"gkr/alpha", field)
                beta = transcript.challenge_field(b"gkr/beta", field)
                eq_z = [
                    (alpha * a + beta * b) % p
                    for a, b in zip(eq_table(field, u), eq_table(field, v_pt))
                ]

        # Open the committed input polynomial at the two bound points.
        v_u_opening = self.pcs.open(state, u, transcript)
        v_v_opening = self.pcs.open(state, v_pt, transcript)
        return CommittedGkrProof(
            commitment=commitment,
            gkr=GkrProof(outputs=outputs, layer_proofs=layer_proofs),
            v_u_opening=v_u_opening,
            v_v_opening=v_v_opening,
        )


class CommittedGkrVerifier:
    """Verifies committed-input GKR proofs without seeing the inputs."""

    def __init__(
        self,
        circuit: LayeredCircuit,
        num_col_checks: int = 12,
        pcs_seed: int = 0,
    ):
        self.circuit = circuit
        self.field = circuit.field
        self.pcs = _input_pcs(circuit, num_col_checks, pcs_seed)
        self._digest = circuit.digest()

    def verify(self, proof: CommittedGkrProof) -> bool:
        field = self.field
        p = field.modulus
        circuit = self.circuit
        gkr = proof.gkr
        if len(gkr.layer_proofs) != circuit.depth:
            return False
        if len(gkr.outputs) != len(circuit.layers[0]):
            return False

        transcript = Transcript(TRANSCRIPT_LABEL)
        transcript.absorb_bytes(b"circuit", self._digest)
        transcript.absorb_bytes(b"commitment", proof.commitment.root)
        transcript.absorb_field_vector(b"outputs", field, list(gkr.outputs))

        k0 = circuit.layer_vars(0)
        z0 = transcript.challenge_field_vector(b"z0", field, k0)
        padded_out = list(gkr.outputs) + [0] * ((1 << k0) - len(gkr.outputs))
        claim = _mle_eval(field, padded_out, z0)

        eq_z_points = [(z0, 1)]
        u = v_pt = None
        final_u = final_v = None
        for i, (gates, lp) in enumerate(zip(circuit.layers, gkr.layer_proofs)):
            k_next = circuit.layer_vars(i + 1)
            if len(lp.phase1_rounds) != k_next or len(lp.phase2_rounds) != k_next:
                return False
            try:
                mid, ch1 = _replay_phase(
                    field, claim, lp.phase1_rounds, transcript, b"gkr/L%d/p1" % i
                )
                final, ch2 = _replay_phase(
                    field, mid, lp.phase2_rounds, transcript, b"gkr/L%d/p2" % i
                )
            except SumcheckError:
                return False
            u = evaluation_point(ch1)
            v_pt = evaluation_point(ch2)
            transcript.absorb_field_vector(b"gkr/claims", field, [lp.v_u, lp.v_v])
            eq_u = eq_table(field, u)
            eq_v = eq_table(field, v_pt)
            eq_z = [0] * (1 << circuit.layer_vars(i))
            for point, coeff in eq_z_points:
                table = eq_table(field, point)
                for g in range(len(eq_z)):
                    eq_z[g] = (eq_z[g] + coeff * table[g]) % p
            add_val, mul_val = _wiring_evals(field, gates, eq_z, eq_u, eq_v)
            expected = (add_val * (lp.v_u + lp.v_v) + mul_val * lp.v_u * lp.v_v) % p
            if final != expected:
                return False
            if i + 1 < circuit.depth:
                alpha = transcript.challenge_field(b"gkr/alpha", field)
                beta = transcript.challenge_field(b"gkr/beta", field)
                claim = (alpha * lp.v_u + beta * lp.v_v) % p
                eq_z_points = [(u, alpha), (v_pt, beta)]
            else:
                final_u, final_v = lp.v_u, lp.v_v

        # Input layer: check the claims against the COMMITMENT (not the
        # inputs — the verifier never sees them).
        if not self.pcs.verify(
            proof.commitment, u, final_u, proof.v_u_opening, transcript
        ):
            return False
        if not self.pcs.verify(
            proof.commitment, v_pt, final_v, proof.v_v_opening, transcript
        ):
            return False
        return True
