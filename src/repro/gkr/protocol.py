"""The GKR protocol with the Libra-style linear-time prover.

Proves correct evaluation of a :class:`LayeredCircuit` layer by layer.
Per layer the two-variable-group sum-check runs in **two phases** (Xie et
al., Libra): binding ``x`` first and ``y`` second, with all helper tables
built in O(#gates):

* phase 1 sums ``h(x) = Ṽ(x)·P1(x) + P2(x)`` where
  ``P1 = Σ_y add(z,·,y) + Σ_y mul(z,·,y)·Ṽ(y)`` and
  ``P2 = Σ_y add(z,·,y)·Ṽ(y)``;
* phase 2, with ``x`` bound to ``u``, sums
  ``h2(y) = Ṽ(y)·(B_add(y) + Ṽ(u)·B_mul(y)) + Ṽ(u)·B_add(y)``.

Each phase is a degree-2 sum-check whose round messages are verified by
the generic degree-2 round checks.  The two next-layer claims
``Ṽ_{i+1}(u), Ṽ_{i+1}(v)`` are merged for the next layer with a random
linear combination (the classic two-point reduction), realized by feeding
the combined table ``α·eq(u,·) + β·eq(v,·)`` as the layer's ``eq_z``.

This reproduction runs GKR in the delegation setting (inputs and outputs
public, as in the original protocol): the verifier evaluates the input
and output multilinear extensions itself.  Composing with the witness
commitment (private inputs) is exactly what the core SNARK does.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Sequence, Tuple

from ..errors import SumcheckError
from ..field.multilinear import eq_table
from ..field.prime_field import PrimeField
from ..hashing.transcript import Transcript
from ..sumcheck.prover import evaluation_point
from ..sumcheck.verifier import verify_product_rounds
from .circuit import ADD, LayeredCircuit

TRANSCRIPT_LABEL = b"repro/gkr/v1"


class _AffineProductProver:
    """Degree-2 sum-check prover for ``h(x) = V(x)·P1(x) + P2(x)``."""

    def __init__(
        self,
        field: PrimeField,
        v: List[int],
        p1: List[int],
        p2: List[int],
    ):
        n = len(v).bit_length() - 1
        if len(v) != 1 << n or n == 0:
            raise SumcheckError(f"table length must be 2^n with n >= 1, got {len(v)}")
        if not (len(p1) == len(p2) == len(v)):
            raise SumcheckError("V, P1, P2 must have equal length")
        p = field.modulus
        self.field = field
        self.num_vars = n
        self._v = [x % p for x in v]
        self._p1 = [x % p for x in p1]
        self._p2 = [x % p for x in p2]
        self.claimed_sum = sum(
            a * b + c for a, b, c in zip(self._v, self._p1, self._p2)
        ) % p

    def round_polynomial(self) -> List[int]:
        p = self.field.modulus
        half = len(self._v) // 2
        evals = [0, 0, 0]
        for b in range(half):
            v_lo, v_hi = self._v[b], self._v[b + half]
            p1_lo, p1_hi = self._p1[b], self._p1[b + half]
            p2_lo, p2_hi = self._p2[b], self._p2[b + half]
            dv, dp1, dp2 = v_hi - v_lo, p1_hi - p1_lo, p2_hi - p2_lo
            v_t, p1_t, p2_t = v_lo, p1_lo, p2_lo
            for t in range(3):
                evals[t] = (evals[t] + v_t * p1_t + p2_t) % p
                if t < 2:
                    v_t += dv
                    p1_t += dp1
                    p2_t += dp2
        return evals

    def fold(self, r: int) -> None:
        p = self.field.modulus
        half = len(self._v) // 2
        r %= p
        for name in ("_v", "_p1", "_p2"):
            tab = getattr(self, name)
            setattr(
                self,
                name,
                [(tab[b] + r * (tab[b + half] - tab[b])) % p for b in range(half)],
            )

    def final_v(self) -> int:
        if len(self._v) != 1:
            raise SumcheckError("sum-check not complete")
        return self._v[0]


@dataclass(frozen=True)
class LayerProof:
    """One GKR layer: the two sum-check phases plus the two value claims."""

    phase1_rounds: List[List[int]]
    phase2_rounds: List[List[int]]
    v_u: int  # Ṽ_{i+1}(u)
    v_v: int  # Ṽ_{i+1}(v)


@dataclass(frozen=True)
class GkrProof:
    """A complete non-interactive GKR proof."""

    outputs: List[int]
    layer_proofs: List[LayerProof]

    def size_field_elements(self) -> int:
        total = len(self.outputs)
        for lp in self.layer_proofs:
            total += 2 + sum(len(r) for r in lp.phase1_rounds)
            total += sum(len(r) for r in lp.phase2_rounds)
        return total


def _run_phase(
    field: PrimeField,
    prover: _AffineProductProver,
    transcript: Transcript,
    tag: bytes,
) -> Tuple[List[List[int]], List[int]]:
    rounds: List[List[int]] = []
    challenges: List[int] = []
    for i in range(prover.num_vars):
        evals = prover.round_polynomial()
        transcript.absorb_field_vector(tag, field, evals)
        r = transcript.challenge_field(tag + b"/r/%d" % i, field)
        prover.fold(r)
        rounds.append(evals)
        challenges.append(r)
    return rounds, challenges


def _replay_phase(
    field: PrimeField,
    claimed: int,
    rounds: Sequence[Sequence[int]],
    transcript: Transcript,
    tag: bytes,
) -> Tuple[int, List[int]]:
    challenges: List[int] = []
    for i, evals in enumerate(rounds):
        transcript.absorb_field_vector(tag, field, list(evals))
        challenges.append(transcript.challenge_field(tag + b"/r/%d" % i, field))
    final = verify_product_rounds(field, claimed, rounds, challenges, degree=2)
    return final, challenges


def _phase1_tables(
    field: PrimeField,
    gates,
    eq_z: Sequence[int],
    v_below: Sequence[int],
) -> Tuple[List[int], List[int]]:
    """(P1, P2) over x, built in O(#gates)."""
    p = field.modulus
    size = len(v_below)
    a_add = [0] * size
    a_mul_v = [0] * size
    a_add_v = [0] * size
    for g_idx, gate in enumerate(gates):
        w = eq_z[g_idx]
        if w == 0:
            continue
        if gate.op == ADD:
            a_add[gate.left] = (a_add[gate.left] + w) % p
            a_add_v[gate.left] = (a_add_v[gate.left] + w * v_below[gate.right]) % p
        else:
            a_mul_v[gate.left] = (
                a_mul_v[gate.left] + w * v_below[gate.right]
            ) % p
    p1 = [(a + m) % p for a, m in zip(a_add, a_mul_v)]
    return p1, a_add_v


def _phase2_tables(
    field: PrimeField,
    gates,
    eq_z: Sequence[int],
    eq_u: Sequence[int],
    v_u: int,
    size: int,
) -> Tuple[List[int], List[int]]:
    """(P1, P2) over y with x bound to u, in O(#gates)."""
    p = field.modulus
    b_add = [0] * size
    b_mul = [0] * size
    for g_idx, gate in enumerate(gates):
        w = (eq_z[g_idx] * eq_u[gate.left]) % p
        if w == 0:
            continue
        if gate.op == ADD:
            b_add[gate.right] = (b_add[gate.right] + w) % p
        else:
            b_mul[gate.right] = (b_mul[gate.right] + w) % p
    p1 = [(a + v_u * m) % p for a, m in zip(b_add, b_mul)]
    p2 = [(v_u * a) % p for a in b_add]
    return p1, p2


def _wiring_evals(
    field: PrimeField,
    gates,
    eq_z: Sequence[int],
    eq_u: Sequence[int],
    eq_v: Sequence[int],
) -> Tuple[int, int]:
    """(add̃, mul̃) at (z, u, v) — the verifier's O(#gates) wiring check."""
    p = field.modulus
    add_val = 0
    mul_val = 0
    for g_idx, gate in enumerate(gates):
        term = (eq_z[g_idx] * eq_u[gate.left]) % p
        term = (term * eq_v[gate.right]) % p
        if gate.op == ADD:
            add_val += term
        else:
            mul_val += term
    return add_val % p, mul_val % p


def _mle_eval(field: PrimeField, table: Sequence[int], point: Sequence[int]) -> int:
    p = field.modulus
    eq = eq_table(field, point)
    return sum(e * v for e, v in zip(eq, table)) % p


class GkrProver:
    """Generates GKR proofs for a fixed layered circuit."""

    def __init__(self, circuit: LayeredCircuit):
        self.circuit = circuit
        self.field = circuit.field
        self._digest = circuit.digest()

    def prove(self, inputs: Sequence[int]) -> GkrProof:
        field = self.field
        p = field.modulus
        circuit = self.circuit
        values = circuit.evaluate(inputs)
        outputs = values[0][: len(circuit.layers[0])]

        transcript = Transcript(TRANSCRIPT_LABEL)
        transcript.absorb_bytes(b"circuit", self._digest)
        transcript.absorb_field_vector(b"inputs", field, [v % p for v in inputs])
        transcript.absorb_field_vector(b"outputs", field, outputs)

        # Initial claim: Ṽ_0 at a random point.
        k0 = circuit.layer_vars(0)
        z0 = transcript.challenge_field_vector(b"z0", field, k0)
        eq_z = eq_table(field, z0)

        layer_proofs: List[LayerProof] = []
        for i, gates in enumerate(circuit.layers):
            v_below = values[i + 1]
            # Phase 1 (bind x).
            p1, p2 = _phase1_tables(field, gates, eq_z, v_below)
            phase1 = _AffineProductProver(field, list(v_below), p1, p2)
            rounds1, ch1 = _run_phase(
                field, phase1, transcript, b"gkr/L%d/p1" % i
            )
            u = evaluation_point(ch1)
            v_u = phase1.final_v()
            # Phase 2 (bind y).
            eq_u = eq_table(field, u)
            q1, q2 = _phase2_tables(
                field, gates, eq_z, eq_u, v_u, len(v_below)
            )
            phase2 = _AffineProductProver(field, list(v_below), q1, q2)
            rounds2, ch2 = _run_phase(
                field, phase2, transcript, b"gkr/L%d/p2" % i
            )
            v_pt = evaluation_point(ch2)
            v_v = phase2.final_v()
            transcript.absorb_field_vector(b"gkr/claims", field, [v_u, v_v])
            layer_proofs.append(
                LayerProof(
                    phase1_rounds=rounds1,
                    phase2_rounds=rounds2,
                    v_u=v_u,
                    v_v=v_v,
                )
            )
            # Two-point reduction for the next layer.
            if i + 1 < circuit.depth:
                alpha = transcript.challenge_field(b"gkr/alpha", field)
                beta = transcript.challenge_field(b"gkr/beta", field)
                eq_u_next = eq_table(field, u)
                eq_v_next = eq_table(field, v_pt)
                eq_z = [
                    (alpha * a + beta * b) % p
                    for a, b in zip(eq_u_next, eq_v_next)
                ]
        return GkrProof(outputs=outputs, layer_proofs=layer_proofs)


class GkrVerifier:
    """Verifies GKR proofs in O(depth · width) field operations."""

    def __init__(self, circuit: LayeredCircuit):
        self.circuit = circuit
        self.field = circuit.field
        self._digest = circuit.digest()

    def verify(self, inputs: Sequence[int], proof: GkrProof) -> bool:
        field = self.field
        p = field.modulus
        circuit = self.circuit
        if len(proof.layer_proofs) != circuit.depth:
            return False
        if len(proof.outputs) != len(circuit.layers[0]):
            return False

        transcript = Transcript(TRANSCRIPT_LABEL)
        transcript.absorb_bytes(b"circuit", self._digest)
        transcript.absorb_field_vector(b"inputs", field, [v % p for v in inputs])
        transcript.absorb_field_vector(b"outputs", field, list(proof.outputs))

        k0 = circuit.layer_vars(0)
        z0 = transcript.challenge_field_vector(b"z0", field, k0)
        padded_out = list(proof.outputs) + [0] * ((1 << k0) - len(proof.outputs))
        claim = _mle_eval(field, padded_out, z0)

        eq_z_points: List[Tuple[List[int], int]] = [(z0, 1)]  # [(point, coeff)]
        for i, (gates, lp) in enumerate(zip(circuit.layers, proof.layer_proofs)):
            k_next = circuit.layer_vars(i + 1)
            if len(lp.phase1_rounds) != k_next or len(lp.phase2_rounds) != k_next:
                return False
            try:
                mid_claim, ch1 = _replay_phase(
                    field, claim, lp.phase1_rounds, transcript, b"gkr/L%d/p1" % i
                )
                final_claim, ch2 = _replay_phase(
                    field, mid_claim, lp.phase2_rounds, transcript, b"gkr/L%d/p2" % i
                )
            except SumcheckError:
                return False
            u = evaluation_point(ch1)
            v_pt = evaluation_point(ch2)
            transcript.absorb_field_vector(
                b"gkr/claims", field, [lp.v_u, lp.v_v]
            )
            # Wiring check: final claim must equal
            # add̃(z,u,v)(v_u + v_v) + mul̃(z,u,v)·v_u·v_v.
            eq_u = eq_table(field, u)
            eq_v = eq_table(field, v_pt)
            eq_z = [0] * (1 << circuit.layer_vars(i))
            for point, coeff in eq_z_points:
                table = eq_table(field, point)
                for g in range(len(eq_z)):
                    eq_z[g] = (eq_z[g] + coeff * table[g]) % p
            add_val, mul_val = _wiring_evals(field, gates, eq_z, eq_u, eq_v)
            expected = (
                add_val * (lp.v_u + lp.v_v) + mul_val * lp.v_u * lp.v_v
            ) % p
            if final_claim != expected:
                return False
            if i + 1 < circuit.depth:
                alpha = transcript.challenge_field(b"gkr/alpha", field)
                beta = transcript.challenge_field(b"gkr/beta", field)
                claim = (alpha * lp.v_u + beta * lp.v_v) % p
                eq_z_points = [(u, alpha), (v_pt, beta)]
            else:
                # Input layer: evaluate the (public) input MLE directly.
                padded_in = [v % p for v in inputs]
                padded_in += [0] * ((1 << k_next) - len(padded_in))
                if lp.v_u != _mle_eval(field, padded_in, u):
                    return False
                if lp.v_v != _mle_eval(field, padded_in, v_pt):
                    return False
        return True
