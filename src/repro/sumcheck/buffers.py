"""The two-buffer table store of Figure 5 (paper §3.2).

Sum-check proof generation is memory-access bound.  The paper considers two
minimal-access layouts for the shrinking tables of a *stream* of sum-check
instances:

* **In-place stride** — write each folded table immediately after the
  previous one in a single buffer.  Minimal space, but concurrent kernels
  of the pipeline would read and write overlapping regions → race hazards.
* **Double buffer (chosen)** — two recyclable buffers; odd time periods
  read from the lower buffer and write to the upper, even periods reverse.
  Reads and writes never touch the same buffer in the same period.

:class:`DoubleBuffer` implements the chosen scheme with explicit period
bookkeeping; tests assert the no-overlap invariant, and the ablation bench
compares its (modeled) hazard-free behaviour against the stride layout.
"""

from __future__ import annotations

from typing import Dict, List, Tuple

from ..errors import SumcheckError


class BufferRegion:
    """A reserved [start, end) region of one of the two buffers."""

    __slots__ = ("buffer_index", "start", "length")

    def __init__(self, buffer_index: int, start: int, length: int):
        self.buffer_index = buffer_index
        self.start = start
        self.length = length

    @property
    def end(self) -> int:
        return self.start + self.length

    def overlaps(self, other: "BufferRegion") -> bool:
        return (
            self.buffer_index == other.buffer_index
            and self.start < other.end
            and other.start < self.end
        )

    def __repr__(self) -> str:
        return f"BufferRegion(buf={self.buffer_index}, [{self.start},{self.end}))"


class DoubleBuffer:
    """Figure 5's alternating two-buffer store for pipelined sum-check.

    At each *period*, every live sum-check instance reads its current table
    from one buffer and writes its folded (half-size) table to the other.
    ``read_buffer(period)`` alternates every period, so a region written in
    period ``t`` is read in period ``t+1`` from the *same physical buffer*
    it was written to — hence reads and writes within one period always hit
    different buffers.

    The class tracks allocations and records every access so the invariant
    is checkable:

    >>> db = DoubleBuffer(capacity=1024)
    >>> r = db.allocate(period=0, length=256)
    >>> db.begin_period(1)
    >>> db.read_regions(1)[0].buffer_index == r.buffer_index
    True
    """

    def __init__(self, capacity: int):
        if capacity <= 0:
            raise SumcheckError("buffer capacity must be positive")
        self.capacity = capacity
        self._period = 0
        # Per-buffer free cursor (simple bump allocation recycled per period).
        self._cursors = [0, 0]
        # Regions written in the current period (become readable next period).
        self._written_now: List[BufferRegion] = []
        # Regions readable in the current period (written last period).
        self._readable_now: List[BufferRegion] = []
        self.access_log: List[Tuple[int, str, BufferRegion]] = []

    @staticmethod
    def write_buffer_index(period: int) -> int:
        """Odd periods write the upper buffer (1), even the lower (0)."""
        return period & 1

    @staticmethod
    def read_buffer_index(period: int) -> int:
        return 1 - (period & 1)

    @property
    def period(self) -> int:
        return self._period

    def begin_period(self, period: int) -> None:
        """Advance to ``period``; last period's writes become readable."""
        if period != self._period + 1 and not (period == 0 and self._period == 0):
            if period <= self._period:
                raise SumcheckError(
                    f"periods must advance monotonically: {self._period} -> {period}"
                )
        self._readable_now = self._written_now
        self._written_now = []
        self._cursors[self.write_buffer_index(period)] = 0
        self._period = period

    def allocate(self, period: int, length: int) -> BufferRegion:
        """Reserve a write region of ``length`` entries for this period."""
        if period != self._period:
            raise SumcheckError(
                f"allocation period {period} != current period {self._period}"
            )
        buf = self.write_buffer_index(period)
        start = self._cursors[buf]
        if start + length > self.capacity:
            raise SumcheckError(
                f"buffer {buf} overflow: need {start + length}, capacity "
                f"{self.capacity}"
            )
        self._cursors[buf] = start + length
        region = BufferRegion(buf, start, length)
        self._written_now.append(region)
        self.access_log.append((period, "write", region))
        return region

    def read_regions(self, period: int) -> List[BufferRegion]:
        """Regions readable in ``period`` (those written in ``period − 1``)."""
        if period != self._period:
            raise SumcheckError(
                f"read period {period} != current period {self._period}"
            )
        for region in self._readable_now:
            self.access_log.append((period, "read", region))
        return list(self._readable_now)

    def hazard_pairs(self) -> List[Tuple[BufferRegion, BufferRegion]]:
        """Same-period read/write overlaps — must always be empty.

        This is the checkable form of Figure 5's claim that "reading and
        writing never occur simultaneously within the same buffer".
        """
        by_period: Dict[int, Dict[str, List[BufferRegion]]] = {}
        for period, kind, region in self.access_log:
            by_period.setdefault(period, {"read": [], "write": []})[kind].append(
                region
            )
        hazards = []
        for accesses in by_period.values():
            for r in accesses["read"]:
                for w in accesses["write"]:
                    if r.overlaps(w):
                        hazards.append((r, w))
        return hazards


class StrideBuffer:
    """The rejected single-buffer layout of Figure 5 (for the ablation).

    Writes each folded table directly after the live region.  We log the
    accesses the same way; with concurrently executing pipeline stages this
    layout *does* produce same-period read/write overlaps, which the
    ablation bench demonstrates.
    """

    def __init__(self, capacity: int):
        if capacity <= 0:
            raise SumcheckError("buffer capacity must be positive")
        self.capacity = capacity
        self._cursor = 0
        self.access_log: List[Tuple[int, str, BufferRegion]] = []

    def allocate(self, period: int, length: int) -> BufferRegion:
        start = self._cursor % self.capacity
        if start + length > self.capacity:
            start = 0
        self._cursor = start + length
        region = BufferRegion(0, start, length)
        self.access_log.append((period, "write", region))
        return region

    def read(self, period: int, region: BufferRegion) -> None:
        self.access_log.append((period, "read", region))

    def hazard_pairs(self) -> List[Tuple[BufferRegion, BufferRegion]]:
        by_period: Dict[int, Dict[str, List[BufferRegion]]] = {}
        for period, kind, region in self.access_log:
            by_period.setdefault(period, {"read": [], "write": []})[kind].append(
                region
            )
        hazards = []
        for accesses in by_period.values():
            for r in accesses["read"]:
                for w in accesses["write"]:
                    if r.overlaps(w):
                        hazards.append((r, w))
        return hazards


def required_capacity(table_length: int) -> int:
    """Worst-case entries one buffer must hold for a steady pipeline.

    In steady state the write buffer holds the folded tables of every other
    pipeline stage: N/2 + N/8 + N/32 + … < (2/3)·N entries, and the read
    buffer the complementary N + N/4 + … < (4/3)·N.  We return the safe
    bound 2·N·(2/3) rounded up plus slack.
    """
    if table_length <= 0:
        raise SumcheckError("table_length must be positive")
    return (4 * table_length) // 3 + 2
