"""Non-interactive sum-check via Fiat–Shamir.

The paper's system derives the verifier's randoms from "pseudorandom
generators using either the final Merkle root or the output from other
sum-check modules as a seed" (§4).  Here the :class:`Transcript` plays
that role: the prover absorbs each round message before squeezing the next
challenge, so prover and verifier reconstruct identical randomness.
"""

from __future__ import annotations

from dataclasses import dataclass, field as dc_field
from typing import List, Sequence

from ..field.prime_field import PrimeField
from ..hashing.transcript import Transcript
from .prover import MultilinearSumcheckProver, ProductSumcheckProver
from .verifier import (
    RoundCheckFailure,
    verify_multilinear_rounds,
    verify_product_rounds,
)


@dataclass(frozen=True)
class SumcheckProof:
    """A non-interactive sum-check proof.

    Attributes:
        claimed_sum: The value H the proof attests to.
        round_polys: Per-round polynomial evaluations. For the multilinear
            protocol each row is ``(π_i1, π_i2)``; for a degree-k product
            each row has ``k + 1`` entries.
        degree:     Per-variable degree of the summed polynomial.
        final_value: The prover's fully folded evaluation (the oracle claim).
    """

    claimed_sum: int
    round_polys: List[List[int]]
    degree: int
    final_value: int

    @property
    def num_rounds(self) -> int:
        return len(self.round_polys)

    def size_field_elements(self) -> int:
        return 2 + sum(len(r) for r in self.round_polys)


@dataclass(frozen=True)
class SumcheckResult:
    """Proof plus the challenges it was generated under (for debugging and
    for protocol layers that need the bound point)."""

    proof: SumcheckProof
    challenges: List[int] = dc_field(default_factory=list)


def _challenge(transcript: Transcript, field: PrimeField, i: int) -> int:
    return transcript.challenge_field(b"sumcheck/r/%d" % i, field)


def prove(
    field: PrimeField,
    table: Sequence[int],
    transcript: Transcript,
) -> SumcheckResult:
    """Non-interactive Algorithm 1 over a multilinear table."""
    prover = MultilinearSumcheckProver(field, table)
    transcript.absorb_int(b"sumcheck/n", prover.num_vars)
    transcript.absorb_field(b"sumcheck/H", field, prover.claimed_sum)
    rounds: List[List[int]] = []
    challenges: List[int] = []
    for i in range(prover.num_vars):
        # Standard Fiat–Shamir ordering: emit the round message from the
        # current table, absorb it, squeeze the challenge, then fold.
        pi1, pi2 = prover.round_message()
        transcript.absorb_field_vector(b"sumcheck/round", field, [pi1, pi2])
        r = _challenge(transcript, field, i)
        prover.fold(r)
        rounds.append([pi1, pi2])
        challenges.append(r)
    final = prover.final_value()
    transcript.absorb_field(b"sumcheck/final", field, final)
    proof = SumcheckProof(
        claimed_sum=prover.claimed_sum,
        round_polys=rounds,
        degree=1,
        final_value=final,
    )
    return SumcheckResult(proof=proof, challenges=challenges)


def prove_product(
    field: PrimeField,
    factors: Sequence[Sequence[int]],
    transcript: Transcript,
) -> SumcheckResult:
    """Non-interactive degree-k product sum-check."""
    prover = ProductSumcheckProver(field, factors)
    transcript.absorb_int(b"sumcheck/n", prover.num_vars)
    transcript.absorb_int(b"sumcheck/deg", prover.degree)
    transcript.absorb_field(b"sumcheck/H", field, prover.claimed_sum)
    rounds: List[List[int]] = []
    challenges: List[int] = []
    for i in range(prover.num_vars):
        evals = prover.round_polynomial()
        transcript.absorb_field_vector(b"sumcheck/round", field, evals)
        r = _challenge(transcript, field, i)
        prover.fold(r)
        rounds.append(evals)
        challenges.append(r)
    final = prover.final_value()
    transcript.absorb_field(b"sumcheck/final", field, final)
    proof = SumcheckProof(
        claimed_sum=prover.claimed_sum,
        round_polys=rounds,
        degree=prover.degree,
        final_value=final,
    )
    return SumcheckResult(proof=proof, challenges=challenges)


def verify(
    field: PrimeField,
    proof: SumcheckProof,
    transcript: Transcript,
) -> List[int]:
    """Replay the transcript and verify all round checks.

    Returns the challenge list on success so the caller can perform the
    final oracle check (``proof.final_value`` against the committed
    polynomial at the bound point).  Raises
    :class:`~repro.errors.SumcheckError` on failure.
    """
    transcript.absorb_int(b"sumcheck/n", proof.num_rounds)
    if proof.degree != 1:
        transcript.absorb_int(b"sumcheck/deg", proof.degree)
    transcript.absorb_field(b"sumcheck/H", field, proof.claimed_sum)
    challenges: List[int] = []
    for i, evals in enumerate(proof.round_polys):
        transcript.absorb_field_vector(b"sumcheck/round", field, list(evals))
        challenges.append(_challenge(transcript, field, i))
    if proof.degree == 1:
        pairs = [(row[0], row[1]) for row in proof.round_polys]
        final_claim = verify_multilinear_rounds(
            field, proof.claimed_sum, pairs, challenges
        )
    else:
        final_claim = verify_product_rounds(
            field, proof.claimed_sum, proof.round_polys, challenges, proof.degree
        )
    if final_claim != proof.final_value % field.modulus:
        raise RoundCheckFailure(
            proof.num_rounds, final_claim, proof.final_value % field.modulus
        )
    transcript.absorb_field(b"sumcheck/final", field, proof.final_value)
    return challenges
