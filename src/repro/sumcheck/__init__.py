"""Sum-check protocol module (system S4 in DESIGN.md; paper §2.3, §3.2).

* Algorithm 1 prover (:func:`prove_multilinear`,
  :class:`MultilinearSumcheckProver`) and the degree-k
  :class:`ProductSumcheckProver`.
* O(n) verifiers with explicit round-check failures.
* Non-interactive Fiat–Shamir wrappers producing :class:`SumcheckProof`.
* Figure 5's :class:`DoubleBuffer` memory discipline (and the rejected
  :class:`StrideBuffer` for ablation).
"""

from .buffers import BufferRegion, DoubleBuffer, StrideBuffer, required_capacity
from .noninteractive import (
    SumcheckProof,
    SumcheckResult,
    prove,
    prove_product,
    verify,
)
from .prover import (
    MultilinearSumcheckProver,
    ProductSumcheckProver,
    evaluation_point,
    hypercube_sum,
    prove_multilinear,
    table_of,
)
from .verifier import (
    RoundCheckFailure,
    verify_multilinear,
    verify_multilinear_rounds,
    verify_product,
    verify_product_rounds,
)

__all__ = [
    "prove_multilinear",
    "MultilinearSumcheckProver",
    "ProductSumcheckProver",
    "evaluation_point",
    "hypercube_sum",
    "table_of",
    "verify_multilinear",
    "verify_multilinear_rounds",
    "verify_product",
    "verify_product_rounds",
    "RoundCheckFailure",
    "SumcheckProof",
    "SumcheckResult",
    "prove",
    "prove_product",
    "verify",
    "DoubleBuffer",
    "StrideBuffer",
    "BufferRegion",
    "required_capacity",
]
