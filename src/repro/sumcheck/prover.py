"""Sum-check provers (paper §2.3, Algorithm 1).

Two provers are provided:

* :func:`prove_multilinear` / :class:`MultilinearSumcheckProver` — a
  line-for-line implementation of the paper's Algorithm 1: ``n`` rounds,
  each emitting the two half-table sums ``(π_i1, π_i2)`` and folding the
  table with that round's random number.  Round ``i`` pairs entry ``b``
  with ``b + 2^{n−i}``, so the *most significant* live variable is bound
  each round.
* :class:`ProductSumcheckProver` — the degree-``k`` generalization needed
  by sum-check-based SNARKs (the eq·(L·R−O) constraint of the core
  protocol is a product of up to three multilinears).  Each round sends the
  round polynomial's evaluations at ``t = 0 … k``.

Both provers expose a round-at-a-time interface (for interactive use and
for the pipeline scheduler, which maps each round to a dedicated GPU
kernel) and a one-shot interface.
"""

from __future__ import annotations

from typing import List, Sequence, Tuple

from ..errors import SumcheckError
from ..field.multilinear import MultilinearPolynomial
from ..field.prime_field import PrimeField
from ..kernels import field_kernels as _kernels
from ..kernels.dispatch import kernels_enabled

try:
    import numpy as _np

    from ..field import fast61 as _f61
except ImportError:  # pragma: no cover - numpy is part of the base image
    _np = None
    _f61 = None


def prove_multilinear(
    field: PrimeField, table: Sequence[int], randoms: Sequence[int]
) -> List[Tuple[int, int]]:
    """Algorithm 1 of the paper, verbatim.

    Args:
        field:   The prime field.
        table:   ``A`` with ``A[b] = p(b1, …, bn)``, length ``2^n``.
        randoms: ``r_1, …, r_n``.

    Returns:
        ``[(π_11, π_12), …, (π_n1, π_n2)]``.
    """
    n = len(table).bit_length() - 1
    if len(table) != 1 << n or n == 0:
        raise SumcheckError(f"table length must be 2^n with n >= 1, got {len(table)}")
    if len(randoms) != n:
        raise SumcheckError(f"need {n} random numbers, got {len(randoms)}")
    p = field.modulus
    a = [v % p for v in table]
    proof: List[Tuple[int, int]] = []
    for i in range(n):
        half = 1 << (n - i - 1)
        r = randoms[i] % p
        pi1 = 0
        pi2 = 0
        # Lines 3-7 of Algorithm 1: accumulate the two half sums and fold.
        for b in range(half):
            lo = a[b]
            hi = a[b + half]
            pi1 += lo
            pi2 += hi
            a[b] = (lo + r * (hi - lo)) % p
        proof.append((pi1 % p, pi2 % p))
    return proof


class MultilinearSumcheckProver:
    """Round-at-a-time Algorithm 1 prover.

    The pipeline scheduler drives one instance per in-flight proof; each
    :meth:`round` call corresponds to one per-round GPU kernel execution in
    the paper's pipelined module (§3.2).
    """

    def __init__(self, field: PrimeField, table: Sequence[int]):
        n = len(table).bit_length() - 1
        if len(table) != 1 << n or n == 0:
            raise SumcheckError(
                f"table length must be 2^n with n >= 1, got {len(table)}"
            )
        self.field = field
        self.num_vars = n
        self._table = [v % field.modulus for v in table]
        self._round = 0
        self.claimed_sum = sum(self._table) % field.modulus

    @property
    def rounds_remaining(self) -> int:
        return self.num_vars - self._round

    def round_message(self) -> Tuple[int, int]:
        """This round's ``(π_i1, π_i2)`` half-table sums (no fold)."""
        if self._round >= self.num_vars:
            raise SumcheckError("sum-check already complete")
        p = self.field.modulus
        half = len(self._table) // 2
        pi1 = sum(self._table[:half]) % p
        pi2 = sum(self._table[half:]) % p
        return (pi1, pi2)

    def fold(self, r: int) -> None:
        """Bind this round's variable to ``r`` (Algorithm 1 line 6)."""
        if self._round >= self.num_vars:
            raise SumcheckError("sum-check already complete")
        self._table = _kernels.fold_table(self.field, self._table, r)
        self._round += 1

    def round(self, r: int) -> Tuple[int, int]:
        """Execute one round with random number ``r``; returns (π_i1, π_i2)."""
        message = self.round_message()
        self.fold(r)
        return message

    def final_value(self) -> int:
        """The fully folded evaluation p(r_n, …, r_1) after all rounds."""
        if self._round != self.num_vars:
            raise SumcheckError(
                f"{self.rounds_remaining} rounds remaining; cannot finalize"
            )
        return self._table[0]


class ProductSumcheckProver:
    """Sum-check for ``Σ_b Π_j f_j(b)`` over multilinear factors ``f_j``.

    Round ``i`` sends the evaluations of the degree-``k`` round polynomial
    ``g_i(t) = Σ_b Π_j ((1−t)·f_j(b) + t·f_j(b+half))`` at ``t = 0, …, k``
    and then folds every factor table at the verifier's challenge.  With a
    single factor this degenerates exactly to Algorithm 1 (``g_i(0),
    g_i(1)`` are ``π_i1, π_i2``).
    """

    def __init__(self, field: PrimeField, factors: Sequence[Sequence[int]]):
        if not factors:
            raise SumcheckError("need at least one factor")
        length = len(factors[0])
        n = length.bit_length() - 1
        if length != 1 << n or n == 0:
            raise SumcheckError(f"factor length must be 2^n with n >= 1, got {length}")
        for f in factors:
            if len(f) != length:
                raise SumcheckError("all factors must have equal length")
        self.field = field
        self.num_vars = n
        self.degree = len(factors)
        p = field.modulus
        tables = None
        if (
            _f61 is not None
            and kernels_enabled()
            and p == _f61._P61_INT
            and self.degree == 2
            and length >= 32
        ):
            # Array state for the SNARK's two-factor sum-check: tables stay
            # uint64 arrays across every round (the generic-degree round
            # loop below is pure Python, so higher degrees keep lists).
            try:
                tables = [_np.asarray(f, dtype=_np.uint64) for f in factors]
                tables = [
                    a % _f61.P61 if (a >= _f61.P61).any() else a for a in tables
                ]
            except (OverflowError, TypeError, ValueError):
                tables = None  # negative / oversized entries: int path
        if tables is None:
            tables = [[v % p for v in f] for f in factors]
        self._tables = tables
        self._round = 0
        self.claimed_sum = self._product_sum()

    def _product_sum(self) -> int:
        p = self.field.modulus
        if self.degree == 2:
            return _kernels.product_pair_sum(self.field, *self._tables)
        total = 0
        for b in range(len(self._tables[0])):
            term = 1
            for tab in self._tables:
                term = (term * tab[b]) % p
            total += term
        return total % p

    @property
    def rounds_remaining(self) -> int:
        return self.num_vars - self._round

    def round_polynomial(self) -> List[int]:
        """Evaluations of this round's ``g_i`` at ``t = 0, …, degree``.

        Pure query — does not advance the round.  ``g_i(t)`` is evaluated by
        linear interpolation of every factor between its two half-tables.
        """
        if self._round >= self.num_vars:
            raise SumcheckError("sum-check already complete")
        p = self.field.modulus
        if self.degree == 2:
            # The SNARK's second sum-check is always a two-factor product;
            # the fused kernel computes g(0), g(1), g(2) in one pass.
            return _kernels.product_round_quadratic(self.field, *self._tables)
        half = len(self._tables[0]) // 2
        evals = [0] * (self.degree + 1)
        for b in range(half):
            los = [tab[b] for tab in self._tables]
            his = [tab[b + half] for tab in self._tables]
            diffs = [(h - l) % p for l, h in zip(los, his)]
            # t = 0 term is the product of the lows; each t adds one diff.
            cur = list(los)
            for t in range(self.degree + 1):
                term = 1
                for c in cur:
                    term = (term * c) % p
                evals[t] = (evals[t] + term) % p
                if t < self.degree:
                    cur = [(c + d) % p for c, d in zip(cur, diffs)]
        return evals

    def fold(self, r: int) -> None:
        """Bind this round's variable to the challenge ``r``."""
        if self._round >= self.num_vars:
            raise SumcheckError("sum-check already complete")
        self._tables = _kernels.fold_product_tables(self.field, self._tables, r)
        self._round += 1

    def round(self, r: int) -> List[int]:
        """Convenience: emit the round polynomial, then fold at ``r``."""
        evals = self.round_polynomial()
        self.fold(r)
        return evals

    def final_factor_values(self) -> List[int]:
        """Each factor's evaluation at the bound point (after all rounds)."""
        if self._round != self.num_vars:
            raise SumcheckError(
                f"{self.rounds_remaining} rounds remaining; cannot finalize"
            )
        # int() unwraps numpy scalars from array state (see fold_table).
        return [int(tab[0]) for tab in self._tables]

    def final_value(self) -> int:
        p = self.field.modulus
        out = 1
        for v in self.final_factor_values():
            out = (out * v) % p
        return out


def evaluation_point(randoms: Sequence[int]) -> List[int]:
    """Map Algorithm 1's challenge order to a point for ``evaluate``.

    Round ``i`` binds the most-significant live variable, i.e. ``x_{n−i+1}``
    gets ``r_i``; in (x1, …, xn) coordinate order the bound point is the
    challenges reversed.
    """
    return list(reversed(list(randoms)))


def hypercube_sum(field: PrimeField, table: Sequence[int]) -> int:
    """The value ``H`` that a sum-check proof attests to."""
    return sum(table) % field.modulus


def table_of(poly: MultilinearPolynomial) -> List[int]:
    """Extract a defensive copy of a multilinear polynomial's table."""
    return list(poly.evals)
