"""Sum-check verifiers (paper §2.3).

Verification is O(n): per round, check that the round polynomial sums to
the running claim over {0,1} and update the claim at the round challenge.
The surviving claim must then equal an *oracle* evaluation of the original
polynomial at the bound point — supplied by the caller (directly for tests,
or via a polynomial-commitment opening inside the full protocol).
"""

from __future__ import annotations

from typing import Sequence, Tuple

from ..errors import SumcheckError
from ..field.lagrange import evaluate_from_points
from ..field.prime_field import PrimeField


class RoundCheckFailure(SumcheckError):
    """A round polynomial was inconsistent with the running claim."""

    def __init__(self, round_index: int, expected: int, got: int):
        super().__init__(
            f"sum-check round {round_index}: g({0})+g(1) = {got} != claim {expected}"
        )
        self.round_index = round_index


def verify_multilinear_rounds(
    field: PrimeField,
    claimed_sum: int,
    proof: Sequence[Tuple[int, int]],
    randoms: Sequence[int],
) -> int:
    """Verify Algorithm 1 proof pairs against ``claimed_sum``.

    Returns the final claim, which the caller must compare against
    ``p(evaluation_point(randoms))``.

    Raises :class:`RoundCheckFailure` on any inconsistent round.
    """
    if len(proof) != len(randoms):
        raise SumcheckError(
            f"proof has {len(proof)} rounds but {len(randoms)} challenges"
        )
    p = field.modulus
    claim = claimed_sum % p
    for i, ((pi1, pi2), r) in enumerate(zip(proof, randoms)):
        pi1 %= p
        pi2 %= p
        if (pi1 + pi2) % p != claim:
            raise RoundCheckFailure(i, claim, (pi1 + pi2) % p)
        # Round polynomial is linear: g(r) = (1−r)·g(0) + r·g(1).
        claim = (pi1 + (r % p) * (pi2 - pi1)) % p
    return claim


def verify_multilinear(
    field: PrimeField,
    claimed_sum: int,
    proof: Sequence[Tuple[int, int]],
    randoms: Sequence[int],
    oracle_value: int,
) -> bool:
    """Full Algorithm 1 verification, including the final oracle check."""
    try:
        final_claim = verify_multilinear_rounds(field, claimed_sum, proof, randoms)
    except RoundCheckFailure:
        return False
    return final_claim == oracle_value % field.modulus


def verify_product_rounds(
    field: PrimeField,
    claimed_sum: int,
    round_polys: Sequence[Sequence[int]],
    randoms: Sequence[int],
    degree: int,
) -> int:
    """Verify a degree-``degree`` product sum-check's round polynomials.

    Each round supplies ``degree + 1`` evaluations of ``g_i`` at
    ``t = 0 … degree``; the claim update interpolates ``g_i`` at the round
    challenge.  Returns the final claim for the caller's oracle check.
    """
    if len(round_polys) != len(randoms):
        raise SumcheckError(
            f"{len(round_polys)} round polynomials but {len(randoms)} challenges"
        )
    p = field.modulus
    xs = list(range(degree + 1))
    claim = claimed_sum % p
    for i, (evals, r) in enumerate(zip(round_polys, randoms)):
        if len(evals) != degree + 1:
            raise SumcheckError(
                f"round {i}: expected {degree + 1} evaluations, got {len(evals)}"
            )
        evals = [e % p for e in evals]
        if (evals[0] + evals[1]) % p != claim:
            raise RoundCheckFailure(i, claim, (evals[0] + evals[1]) % p)
        claim = evaluate_from_points(field, xs, evals, r % p)
    return claim


def verify_product(
    field: PrimeField,
    claimed_sum: int,
    round_polys: Sequence[Sequence[int]],
    randoms: Sequence[int],
    degree: int,
    oracle_value: int,
) -> bool:
    """Full product sum-check verification with the final oracle check."""
    try:
        final_claim = verify_product_rounds(
            field, claimed_sum, round_polys, randoms, degree
        )
    except RoundCheckFailure:
        return False
    return final_claim == oracle_value % field.modulus


def proof_size_field_elements(proof: Sequence[Sequence[int]]) -> int:
    """Number of field elements a sum-check proof contributes to the ZKP."""
    return sum(len(row) for row in proof)
