"""The fault-tolerant execution substrate: failover, breakers, quarantine.

:class:`ResilientBackend` implements the
:class:`~repro.execution.ProvingBackend` protocol around a set of child
backends (typically adopted from a :class:`~repro.execution.ShardedBackend`,
via the ``resilient:sharded:pool:2,pool:2`` selector) and keeps a batch
streaming when children misbehave:

* Each child sits behind a :class:`~repro.resilience.CircuitBreaker` and
  a :class:`~repro.resilience.HealthTracker`.  A child whose dispatch
  fails — an outage, a dead pool, a fault that exhausted the child's own
  retries — trips toward open; its tasks **fail over** to healthy
  siblings in the next dispatch round, and the breaker's half-open probe
  re-admits the child once its cooldown elapses.
* A task whose failures are *attributable* (a singleton dispatch failed)
  on ``quarantine_threshold`` distinct children is **quarantined**: its
  result slot carries a typed
  :class:`~repro.errors.QuarantinedTaskError` instead of sinking the
  other tasks' proofs — the per-task blast-radius discipline the
  chunk-splitting retry in :mod:`repro.runtime.pool` applies one level
  down.
* With ``verify_on_return=True`` every proof is verified before it is
  returned; a corrupted proof is **re-proved** (bounded by
  ``max_reproves`` per task, then treated as an attributable failure).

Failure attribution: a failed *group* dispatch has an unknown culprit
(the child may be down, or one task may be poisoned), so its tasks are
resubmitted as **singletons** — after which every failure names exactly
one (task, child) pair.  Child-level unavailability
(:class:`~repro.errors.BackendUnavailableError`) never counts against
the tasks it stranded.

Every decision is traced on the shared span schema: ``child_failure``,
``failover``, ``breaker`` (state transitions), ``reprove``, and
``quarantine`` events all hang off this backend's span, so one JSONL
file shows a dead child's tasks completing under its sibling's span —
the lineage the acceptance drill checks.
"""

from __future__ import annotations

import time
from concurrent.futures import ThreadPoolExecutor
from typing import Any, Dict, List, Optional, Sequence, Set, Tuple, Union

from ..core.batch import ProofTask
from ..core.proof import SnarkProof
from ..errors import (
    BackendUnavailableError,
    ExecutionError,
    QuarantinedTaskError,
)
from ..execution.backend import (
    ProvingBackend,
    ShardedBackend,
    _PerSpecCache,
    _span_for,
)
from ..execution.sharding import largest_remainder_shares
from ..runtime.spec import ProverSpec
from ..runtime.stats import RuntimeStats, merge_runtime_stats
from ..runtime.trace import JsonlTraceSink
from .faults import FaultInjector
from .health import CircuitBreaker, HealthTracker
from .stats import ResilienceStats

#: A result slot: the proof, or the typed quarantine verdict.
TaskResult = Union[SnarkProof, QuarantinedTaskError]


class ResilientBackend:
    """Failover + breakers + quarantine around child proving backends.

    Args:
        children: What to protect — a single backend, a sequence of
            sibling backends, or a :class:`ShardedBackend` whose children
            and weights are adopted (the ``resilient:sharded:...``
            selector path).
        weights: Sharding weights (default: each child's parallelism).
        failure_threshold / cooldown_seconds / half_open_probes:
            Per-child :class:`CircuitBreaker` tuning.
        quarantine_threshold: Distinct children an *attributable* task
            failure must span before the task is quarantined (clamped to
            the child count).
        verify_on_return: Verify every proof before returning; failed
            verification triggers a re-prove.
        max_reproves: Re-prove budget per task before a bad proof counts
            as an attributable child failure.
        fault_injector: Optional :class:`FaultInjector` for the chaos
            plane (outage checks before each child call; leaf backends
            carry their own worker/corruption hooks).
        max_unavailable_seconds: Total time one run may spend waiting for
            any breaker to admit work before giving up.
    """

    def __init__(
        self,
        children: Union[ProvingBackend, Sequence[ProvingBackend]],
        *,
        weights: Optional[Sequence[float]] = None,
        failure_threshold: int = 2,
        cooldown_seconds: float = 0.25,
        half_open_probes: int = 1,
        quarantine_threshold: int = 2,
        verify_on_return: bool = False,
        max_reproves: int = 1,
        fault_injector: Optional[FaultInjector] = None,
        max_unavailable_seconds: float = 5.0,
    ):
        inner_name, child_list, child_weights = self._adopt(children, weights)
        if not child_list:
            raise ExecutionError("ResilientBackend needs at least one child")
        if quarantine_threshold < 1:
            raise ExecutionError(
                f"quarantine_threshold must be >= 1, "
                f"got {quarantine_threshold}"
            )
        if max_reproves < 0:
            raise ExecutionError(
                f"max_reproves must be >= 0, got {max_reproves}"
            )
        self.children: List[ProvingBackend] = child_list
        self.weights = child_weights
        self.name = f"resilient:{inner_name}"
        self.parallelism = sum(
            max(1, getattr(child, "parallelism", 1)) for child in child_list
        )
        self.quarantine_threshold = quarantine_threshold
        self.verify_on_return = verify_on_return
        self.max_reproves = max_reproves
        self.fault_injector = fault_injector
        self.max_unavailable_seconds = max_unavailable_seconds
        self.health = [
            HealthTracker(f"{i}:{child.name}")
            for i, child in enumerate(child_list)
        ]
        self.breakers = [
            CircuitBreaker(
                failure_threshold=failure_threshold,
                cooldown_seconds=cooldown_seconds,
                half_open_probes=half_open_probes,
                on_transition=self._transition_recorder(i),
            )
            for i in range(len(child_list))
        ]
        self._verifiers = _PerSpecCache()
        #: Lifetime accumulation across runs.
        self.resilience_stats = ResilienceStats()
        #: The most recent run's report (None before the first run).
        self.last_resilience_stats: Optional[ResilienceStats] = None
        self._run_stats: Optional[ResilienceStats] = None
        self._run_ctx = None

    @staticmethod
    def _adopt(
        children, weights
    ) -> Tuple[str, List[ProvingBackend], List[float]]:
        """Normalize the children argument; adopt a ShardedBackend's shape."""
        if isinstance(children, ShardedBackend):
            return children.name, list(children.children), (
                list(weights) if weights is not None
                else list(children.weights)
            )
        if isinstance(children, ProvingBackend) and not isinstance(
            children, (list, tuple)
        ):
            children = [children]
        child_list = list(children)
        if weights is None:
            child_weights = [
                float(max(1, getattr(child, "parallelism", 1)))
                for child in child_list
            ]
        else:
            child_weights = [float(w) for w in weights]
        if len(child_weights) != len(child_list):
            raise ExecutionError(
                f"{len(child_weights)} weights for "
                f"{len(child_list)} children"
            )
        inner = ",".join(child.name for child in child_list)
        if len(child_list) > 1:
            inner = f"sharded:{inner}"
        return inner, child_list, child_weights

    def _transition_recorder(self, child_index: int):
        def record(src: str, dst: str) -> None:
            name = self.health[child_index].name
            stats = self._run_stats
            if stats is not None:
                stats.record_transition(name, src, dst)
            self.resilience_stats.record_transition(name, src, dst)
            ctx = self._run_ctx
            if ctx is not None:
                ctx.emit("breaker", child=name, src=src, dst=dst)

        return record

    # -- the run ---------------------------------------------------------------

    def prove_tasks(
        self,
        spec: ProverSpec,
        tasks: Sequence[ProofTask],
        *,
        trace: Optional[JsonlTraceSink] = None,
        parent: Optional[str] = None,
    ) -> Tuple[List[TaskResult], RuntimeStats]:
        """Prove every task, surviving child failures.

        The result list is in task order; a slot holds the task's
        :class:`SnarkProof`, or a :class:`QuarantinedTaskError` when the
        task failed attributably on ``quarantine_threshold`` distinct
        children.  The batch itself only raises when *no* child can take
        work for longer than ``max_unavailable_seconds``.
        """
        tasks = list(tasks)
        ctx = _span_for(trace, parent)
        rstats = ResilienceStats()
        self._run_stats = rstats
        self._run_ctx = ctx
        injector = self.fault_injector
        injected_before = (
            injector.injected_snapshot() if injector is not None else {}
        )
        start = time.perf_counter()
        ctx.emit(
            "resilient_start",
            backend=self.name,
            tasks=len(tasks),
            children=[h.name for h in self.health],
        )
        results: List[Optional[TaskResult]] = [None] * len(tasks)
        part_stats: List[RuntimeStats] = []
        pending: List[int] = list(range(len(tasks)))
        failed_on: Dict[int, Set[int]] = {}
        last_failed_child: Dict[int, int] = {}
        reproves: Dict[int, int] = {}
        isolate: Set[int] = set()
        effective_quarantine = min(
            self.quarantine_threshold, len(self.children)
        )
        waited = 0.0
        round_budget = 4 + len(tasks) * (
            effective_quarantine + self.max_reproves + 1
        )

        try:
            while pending:
                rstats.rounds += 1
                if rstats.rounds > round_budget:
                    raise ExecutionError(
                        f"resilient dispatch did not converge after "
                        f"{rstats.rounds - 1} rounds "
                        f"({len(pending)} tasks still pending)"
                    )
                eligible = [
                    i
                    for i in range(len(self.children))
                    if self.breakers[i].acquire()
                ]
                if not eligible:
                    wait = min(
                        (
                            b.seconds_until_probe()
                            for b in self.breakers
                        ),
                        default=0.0,
                    )
                    wait = min(max(wait, 0.005), 0.25)
                    if waited + wait > self.max_unavailable_seconds:
                        raise ExecutionError(
                            f"no healthy children after waiting "
                            f"{waited:.2f}s; breakers: "
                            + ", ".join(
                                f"{h.name}={b.state}"
                                for h, b in zip(self.health, self.breakers)
                            )
                        )
                    time.sleep(wait)
                    waited += wait
                    rstats.rounds -= 1  # nothing was dispatched
                    continue

                groups, deferred = self._plan_round(
                    pending, eligible, failed_on, isolate,
                    fresh=(rstats.rounds == 1),
                )
                used = {child for child, _ in groups}
                for child in eligible:
                    if child not in used:
                        self.breakers[child].release()
                if not groups:
                    # Every pending task is deferred (its remaining
                    # children are all breaker-rejected); wait a beat.
                    time.sleep(0.005)
                    waited += 0.005
                    if waited > self.max_unavailable_seconds:
                        raise ExecutionError(
                            "pending tasks cannot be placed on any "
                            "admissible child"
                        )
                    rstats.rounds -= 1
                    continue

                self._record_failovers(
                    groups, last_failed_child, rstats, ctx, tasks
                )
                outcomes = self._dispatch_round(spec, tasks, groups, ctx)
                next_pending: List[int] = list(deferred)
                for (child_index, group), outcome in zip(groups, outcomes):
                    kind, payload = outcome
                    if kind == "ok":
                        proofs, child_stats = payload
                        part_stats.append(child_stats)
                        self.breakers[child_index].record_success()
                        self.health[child_index].record_success(len(group))
                        retry = self._accept_proofs(
                            spec, tasks, group, proofs, results,
                            reproves, failed_on, last_failed_child,
                            child_index, rstats, ctx,
                        )
                        for index in retry:
                            isolate.add(index)
                            next_pending.append(index)
                    else:
                        exc = payload
                        rstats.child_failures += 1
                        self.breakers[child_index].record_failure()
                        self.health[child_index].record_failure(repr(exc))
                        ctx.emit(
                            "child_failure",
                            child=self.health[child_index].name,
                            tasks=[tasks[i].task_id for i in group],
                            reason=repr(exc),
                            attributable=(
                                kind == "failed" and len(group) == 1
                            ),
                        )
                        for index in group:
                            last_failed_child[index] = child_index
                        if kind == "unavailable":
                            # Child-level outage: tasks are blameless.
                            next_pending.extend(group)
                        elif len(group) == 1:
                            index = group[0]
                            failed_on.setdefault(index, set()).add(
                                child_index
                            )
                            if (
                                len(failed_on[index])
                                >= effective_quarantine
                            ):
                                self._quarantine(
                                    index, tasks, failed_on, repr(exc),
                                    results, rstats, ctx,
                                )
                            else:
                                isolate.add(index)
                                next_pending.append(index)
                        else:
                            # Unknown culprit: isolate for attribution.
                            for index in group:
                                isolate.add(index)
                            next_pending.extend(group)
                pending = next_pending
        finally:
            self._run_stats = None
            self._run_ctx = None

        stats = merge_runtime_stats(
            part_stats, total_seconds=time.perf_counter() - start
        )
        stats.workers = max(stats.workers, 1)
        if injector is not None:
            after = injector.injected_snapshot()
            for fault_kind, count in after.items():
                delta = count - injected_before.get(fault_kind, 0)
                if delta > 0:
                    rstats.record_fault(fault_kind, delta)
        ctx.emit(
            "resilient_end",
            proofs=sum(
                1 for r in results if isinstance(r, SnarkProof)
            ),
            quarantined=rstats.quarantined,
            failovers=rstats.failovers,
            re_proves=rstats.re_proves,
            child_failures=rstats.child_failures,
            seconds=stats.total_seconds,
        )
        if ctx.sink is not None:
            ctx.sink.flush()
        self.last_resilience_stats = rstats
        self.resilience_stats.merge(rstats)
        return results, stats  # type: ignore[return-value]

    # -- round planning --------------------------------------------------------

    def _plan_round(
        self,
        pending: Sequence[int],
        eligible: List[int],
        failed_on: Dict[int, Set[int]],
        isolate: Set[int],
        fresh: bool,
    ) -> Tuple[List[Tuple[int, List[int]]], List[int]]:
        """Assign pending task indices to eligible children.

        Returns ``(groups, deferred)``: each group is ``(child_index,
        [task indices])`` and becomes one child call; deferred tasks have
        no admissible child this round.  The first (fresh) round uses the
        same largest-remainder proportional split as
        :class:`ShardedBackend`, so a fault-free resilient run places
        tasks identically to its sharded core; failover rounds place
        per-task, least-loaded first, and isolated tasks become
        singleton calls for exact failure attribution.
        """
        if fresh and not isolate:
            weights = [self.weights[i] for i in eligible]
            shares = largest_remainder_shares(len(pending), weights)
            groups = []
            cursor = 0
            for child_index, share in zip(eligible, shares):
                if share > 0:
                    groups.append(
                        (child_index, list(pending[cursor:cursor + share]))
                    )
                    cursor += share
            return groups, []

        load = {i: 0.0 for i in eligible}
        grouped: Dict[int, List[int]] = {}
        singles: List[Tuple[int, List[int]]] = []
        deferred: List[int] = []
        for index in pending:
            options = [
                i for i in eligible if i not in failed_on.get(index, ())
            ]
            if not options:
                deferred.append(index)
                continue
            choice = min(
                options, key=lambda i: (load[i] / self.weights[i], i)
            )
            load[choice] += 1.0
            if index in isolate:
                singles.append((choice, [index]))
            else:
                grouped.setdefault(choice, []).append(index)
        groups = [
            (child, members) for child, members in grouped.items()
        ] + singles
        return groups, deferred

    def _record_failovers(
        self, groups, last_failed_child, rstats, ctx, tasks
    ) -> None:
        """Count and trace tasks landing on a different child than the
        one that last failed them."""
        for child_index, group in groups:
            moved = [
                tasks[i].task_id
                for i in group
                if last_failed_child.get(i, child_index) != child_index
            ]
            if moved:
                rstats.failovers += len(moved)
                sources = {
                    self.health[last_failed_child[i]].name
                    for i in group
                    if last_failed_child.get(i, child_index) != child_index
                }
                ctx.emit(
                    "failover",
                    tasks=moved,
                    to_child=self.health[child_index].name,
                    from_children=sorted(sources),
                )

    # -- dispatch and acceptance -----------------------------------------------

    def _dispatch_round(
        self, spec, tasks, groups, ctx
    ) -> List[Tuple[str, Any]]:
        """Run every group call; children proceed concurrently.

        Calls to the *same* child run sequentially on one thread — a
        child backend (its pool runtime especially) is not re-entrant,
        and a failover round can assign one child many singleton groups.

        Outcome per group: ``("ok", (proofs, stats))``,
        ``("unavailable", exc)`` for child-level outages, or
        ``("failed", exc)`` for everything else.
        """

        def call(child_index: int, group: List[int]):
            child = self.children[child_index]
            try:
                if self.fault_injector is not None:
                    self.fault_injector.check_outage(
                        child_index, child.name
                    )
                proofs, stats = child.prove_tasks(
                    spec,
                    [tasks[i] for i in group],
                    trace=ctx.sink,
                    parent=ctx.span,
                )
                return ("ok", (proofs, stats))
            except BackendUnavailableError as exc:
                return ("unavailable", exc)
            except Exception as exc:  # noqa: BLE001 - failure domain seam
                return ("failed", exc)

        by_child: Dict[int, List[int]] = {}
        for slot, (child_index, _) in enumerate(groups):
            by_child.setdefault(child_index, []).append(slot)

        outcomes: List[Optional[Tuple[str, Any]]] = [None] * len(groups)

        def run_lane(slots: List[int]) -> None:
            for slot in slots:
                child_index, group = groups[slot]
                outcomes[slot] = call(child_index, group)

        lanes = list(by_child.values())
        if len(lanes) == 1:
            run_lane(lanes[0])
        else:
            with ThreadPoolExecutor(max_workers=len(lanes)) as pool:
                futures = [pool.submit(run_lane, slots) for slots in lanes]
                for future in futures:
                    future.result()
        return outcomes  # type: ignore[return-value]

    def _accept_proofs(
        self,
        spec,
        tasks,
        group: List[int],
        proofs: List[SnarkProof],
        results: List[Optional[TaskResult]],
        reproves: Dict[int, int],
        failed_on: Dict[int, Set[int]],
        last_failed_child: Dict[int, int],
        child_index: int,
        rstats: ResilienceStats,
        ctx,
    ) -> List[int]:
        """Verify (optionally) and store a successful group's proofs.

        Returns task indices that must be re-proved (failed
        verification within their re-prove budget).
        """
        retry: List[int] = []
        verifier = None
        if self.verify_on_return:
            verifier = self._verifiers.get_or_build(
                spec, lambda s: s.build_verifier()
            )
        effective_quarantine = min(
            self.quarantine_threshold, len(self.children)
        )
        for index, proof in zip(group, proofs):
            if verifier is not None:
                try:
                    good = verifier.verify(
                        proof, tasks[index].public_values
                    )
                except Exception:  # structurally broken proof
                    good = False
                if not good:
                    used = reproves.get(index, 0)
                    if used < self.max_reproves:
                        reproves[index] = used + 1
                        rstats.re_proves += 1
                        last_failed_child[index] = child_index
                        ctx.emit(
                            "reprove",
                            task_id=tasks[index].task_id,
                            child=self.health[child_index].name,
                            attempt=used + 1,
                        )
                        retry.append(index)
                        continue
                    failed_on.setdefault(index, set()).add(child_index)
                    last_failed_child[index] = child_index
                    if len(failed_on[index]) >= effective_quarantine:
                        self._quarantine(
                            index, tasks, failed_on,
                            "proof failed verification after re-proves",
                            results, rstats, ctx,
                        )
                    else:
                        retry.append(index)
                    continue
            results[index] = proof
        return retry

    def _quarantine(
        self, index, tasks, failed_on, reason, results, rstats, ctx
    ) -> None:
        tried = sorted(
            self.health[i].name for i in failed_on.get(index, ())
        )
        error = QuarantinedTaskError(
            tasks[index].task_id, tried, last_error=reason
        )
        results[index] = error
        rstats.quarantined += 1
        ctx.emit(
            "quarantine",
            task_id=tasks[index].task_id,
            tried_on=tried,
            reason=reason,
        )


def split_results(
    results: Sequence[TaskResult],
) -> Tuple[List[Tuple[int, SnarkProof]], List[QuarantinedTaskError]]:
    """Partition a resilient result list into proofs and quarantines.

    Returns ``([(task index, proof), ...], [QuarantinedTaskError, ...])``
    so callers can verify the proofs against the right tasks and report
    the quarantines separately.
    """
    proofs: List[Tuple[int, SnarkProof]] = []
    quarantined: List[QuarantinedTaskError] = []
    for index, result in enumerate(results):
        if isinstance(result, QuarantinedTaskError):
            quarantined.append(result)
        else:
            proofs.append((index, result))
    return proofs, quarantined
