"""Deterministic, seeded fault injection (the chaos plane of S25).

A production proving farm meets partial failure constantly — worker
crashes, stragglers, bit-flips in proof bytes, a device dropping off the
bus — and a resilience layer is only trustworthy if those failures can be
*rehearsed*.  :class:`FaultPlan` is a declarative, picklable schedule of
failures; :class:`FaultInjector` turns it into deterministic decisions:
every decision is a pure function of the plan's seed and the decision's
identity (task id, attempt, child index, call sequence), so the same plan
against the same workload injects the same faults — in every worker
process, on every rerun.

Fault taxonomy (each independently rated):

* ``crash``       — a worker attempt raises :class:`InjectedFault`
                    before proving (keyed per ``(task, attempt)``, so a
                    retry of the same task rolls fresh).
* ``slow``        — a worker attempt sleeps ``slow_seconds`` first (a
                    straggler; exercises timeout accounting).
* ``corrupt``     — a finished proof is corrupted in flight (one byte of
                    the commitment root flipped); keyed per delivery, so
                    a re-prove of the same task rolls fresh.
* ``outage``      — a child backend refuses a dispatch with
                    :class:`BackendUnavailableError` (transient; keyed
                    per ``(child, call)``).
* ``pool_death``  — a worker raises :class:`OSError`, which the runtime
                    treats as pool-infrastructure death and degrades to
                    serial (exercises the fallback path).
* ``batch``       — a service-level batch dispatch fails before reaching
                    the backend (exercises the service failure path and
                    the single-flight follower retry).

Plus two scheduled (non-random) fault shapes:

* ``down=C@FxN``  — child ``C`` is forcibly down for ``N`` consecutive
                    calls starting at its ``F``-th call (default
                    ``@0x1``): the deterministic "dead device" drill.
* ``poison=A+B``  — tasks ``A`` and ``B`` crash on *every* attempt, on
                    every child: the poison-task drill that must end in
                    quarantine, not a sunk batch.

The worker-side hook is the exact ``(task_id, attempt) -> None`` callable
:class:`~repro.runtime.ParallelProvingRuntime` already accepts as
``fault_injector``; the dispatcher-side hooks (:meth:`maybe_corrupt`,
:meth:`check_outage`, :meth:`on_batch_dispatch`) plug into the execution
backends and the proof service.
"""

from __future__ import annotations

import hashlib
import time
from dataclasses import dataclass, replace
from typing import Dict, Optional, Tuple

from ..errors import BackendUnavailableError, InjectedFault, ResilienceError

#: Rated fault kinds accepted in a plan string as ``kind:rate`` tokens.
RATED_KINDS = ("crash", "slow", "corrupt", "outage", "pool_death", "batch")


@dataclass(frozen=True)
class FaultPlan:
    """A declarative, picklable schedule of failures to inject.

    All rates are per-decision probabilities in ``[0, 1]``; the seed
    makes every decision reproducible.  Build one from the CLI grammar
    with :meth:`parse`::

        FaultPlan.parse("crash:0.1,corrupt:0.02,seed=7")
        FaultPlan.parse("outage:0.05,down=0@1x2,poison=3,seed=11")
    """

    crash: float = 0.0
    slow: float = 0.0
    corrupt: float = 0.0
    outage: float = 0.0
    pool_death: float = 0.0
    batch: float = 0.0
    seed: int = 0
    #: Straggler sleep for ``slow`` faults.
    slow_seconds: float = 0.02
    #: Forced outage: (child index, first affected call, number of calls),
    #: or None for no scheduled outage.
    down: Optional[Tuple[int, int, int]] = None
    #: Task ids that crash on every attempt (must end in quarantine).
    poison: Tuple[int, ...] = ()

    def __post_init__(self) -> None:
        for kind in RATED_KINDS:
            rate = getattr(self, kind)
            if not 0.0 <= rate <= 1.0:
                raise ResilienceError(
                    f"fault rate {kind}={rate} outside [0, 1]"
                )
        if self.slow_seconds < 0:
            raise ResilienceError(
                f"slow_seconds must be >= 0, got {self.slow_seconds}"
            )

    @property
    def any_faults(self) -> bool:
        """True when the plan can inject at least one fault."""
        return (
            any(getattr(self, kind) > 0 for kind in RATED_KINDS)
            or self.down is not None
            or bool(self.poison)
        )

    @classmethod
    def parse(cls, text: str) -> "FaultPlan":
        """Parse the CLI grammar: comma-separated ``kind:rate`` / ``key=value``.

        >>> FaultPlan.parse("crash:0.1,corrupt:0.02,seed=7").crash
        0.1
        >>> FaultPlan.parse("down=0@1x2,seed=3").down
        (0, 1, 2)
        >>> FaultPlan.parse("poison=3+7").poison
        (3, 7)
        """
        fields: dict = {}
        for token in text.split(","):
            token = token.strip()
            if not token:
                continue
            if "=" in token:
                key, _, value = token.partition("=")
                key = key.strip().lower()
                value = value.strip()
                try:
                    if key == "seed":
                        fields["seed"] = int(value)
                    elif key == "slow_seconds":
                        fields["slow_seconds"] = float(value)
                    elif key == "down":
                        fields["down"] = cls._parse_down(value)
                    elif key == "poison":
                        fields["poison"] = tuple(
                            int(p) for p in value.split("+") if p
                        )
                    else:
                        raise ResilienceError(
                            f"unknown fault-plan key {key!r}"
                        )
                except ValueError:
                    raise ResilienceError(
                        f"bad fault-plan value {token!r}"
                    ) from None
            elif ":" in token:
                kind, _, rate_text = token.partition(":")
                kind = kind.strip().lower()
                if kind not in RATED_KINDS:
                    raise ResilienceError(
                        f"unknown fault kind {kind!r}; known: "
                        + ", ".join(RATED_KINDS)
                    )
                try:
                    fields[kind] = float(rate_text)
                except ValueError:
                    raise ResilienceError(
                        f"bad fault rate in {token!r}"
                    ) from None
            else:
                raise ResilienceError(
                    f"unparseable fault-plan token {token!r} "
                    "(want kind:rate or key=value)"
                )
        return cls(**fields)

    @staticmethod
    def _parse_down(value: str) -> Tuple[int, int, int]:
        """``C@FxN`` → (child C, from call F, N calls); F and N optional."""
        child_text, _, rest = value.partition("@")
        child = int(child_text)
        if not rest:
            return (child, 0, 1)
        from_text, _, count_text = rest.partition("x")
        start = int(from_text) if from_text else 0
        count = int(count_text) if count_text else 1
        return (child, start, count)


class FaultInjector:
    """Deterministic decisions from a :class:`FaultPlan`.

    Picklable: worker processes each receive a copy whose per-``(task,
    attempt)`` decisions agree with the dispatcher's, because every
    decision hashes only the plan seed and the decision identity.  The
    per-task delivery counters used by :meth:`maybe_corrupt` live on the
    dispatcher side only.

    The instance itself is the worker-side hook: ``injector(task_id,
    attempt)`` raises or sleeps per the plan, matching the
    ``fault_injector`` contract of
    :class:`~repro.runtime.ParallelProvingRuntime`.
    """

    def __init__(self, plan: FaultPlan):
        self.plan = plan
        #: Dispatcher-side delivery counter per task id (corrupt rolls).
        self._deliveries: Dict[int, int] = {}
        #: Dispatcher-side dispatch-call counter per child index.
        self._child_calls: Dict[int, int] = {}
        #: Faults injected by *this* process's copy, by kind.
        self.injected: Dict[str, int] = {}

    @classmethod
    def from_plan(cls, plan) -> "FaultInjector":
        """Build from a :class:`FaultPlan` or a plan string."""
        if isinstance(plan, str):
            plan = FaultPlan.parse(plan)
        return cls(plan)

    # -- deterministic dice ----------------------------------------------------

    def _roll(self, kind: str, *key) -> float:
        """A uniform [0, 1) draw, pure in (seed, kind, key)."""
        material = f"{self.plan.seed}|{kind}|" + "|".join(
            str(part) for part in key
        )
        digest = hashlib.sha256(material.encode()).digest()
        return int.from_bytes(digest[:8], "big") / 2.0**64

    def _count(self, kind: str) -> None:
        self.injected[kind] = self.injected.get(kind, 0) + 1

    # -- worker-side hook ------------------------------------------------------

    def __call__(self, task_id: int, attempt: int) -> None:
        """Pre-prove hook: raise or sleep per the plan (runs in workers)."""
        if task_id in self.plan.poison:
            self._count("poison")
            raise InjectedFault("poison", f"task {task_id} is poisoned")
        if (
            self.plan.pool_death > 0
            and self._roll("pool_death", task_id, attempt)
            < self.plan.pool_death
        ):
            self._count("pool_death")
            raise OSError(
                f"injected pool death (task {task_id}, attempt {attempt})"
            )
        if (
            self.plan.crash > 0
            and self._roll("crash", task_id, attempt) < self.plan.crash
        ):
            self._count("crash")
            raise InjectedFault(
                "crash", f"task {task_id}, attempt {attempt}"
            )
        if (
            self.plan.slow > 0
            and self._roll("slow", task_id, attempt) < self.plan.slow
        ):
            self._count("slow")
            time.sleep(self.plan.slow_seconds)

    # -- dispatcher-side hooks -------------------------------------------------

    def maybe_corrupt(self, proof, task_id: int):
        """Possibly corrupt a finished proof (one root byte flipped).

        Keyed per *delivery* of the task, not per task: the first
        delivery of task 7 may be corrupted while its re-prove comes
        back clean — exactly the transient bit-flip the
        ``verify_on_return`` path must absorb.
        """
        if self.plan.corrupt <= 0:
            return proof
        nth = self._deliveries.get(task_id, 0)
        self._deliveries[task_id] = nth + 1
        if self._roll("corrupt", task_id, nth) >= self.plan.corrupt:
            return proof
        self._count("corrupt")
        root = bytearray(proof.commitment.root)
        root[0] ^= 0xFF
        return replace(
            proof,
            commitment=replace(proof.commitment, root=bytes(root)),
        )

    def check_outage(self, child_index: int, child_name: str) -> None:
        """Pre-dispatch hook for one child call; may raise an outage.

        Consumes one call slot for the child whether or not a fault
        fires, so the forced ``down=C@FxN`` window counts actual
        dispatches.
        """
        call = self._child_calls.get(child_index, 0)
        self._child_calls[child_index] = call + 1
        down = self.plan.down
        if (
            down is not None
            and child_index == down[0]
            and down[1] <= call < down[1] + down[2]
        ):
            self._count("outage")
            raise BackendUnavailableError(
                f"injected forced outage: child {child_name} "
                f"(call {call} in down window)"
            )
        if (
            self.plan.outage > 0
            and self._roll("outage", child_index, call) < self.plan.outage
        ):
            self._count("outage")
            raise BackendUnavailableError(
                f"injected transient outage: child {child_name} "
                f"(call {call})"
            )

    def on_batch_dispatch(self, batch_seq: int) -> None:
        """Service-level hook: may fail a batch before it reaches a backend."""
        if (
            self.plan.batch > 0
            and self._roll("batch", batch_seq) < self.plan.batch
        ):
            self._count("batch")
            raise InjectedFault("batch", f"batch {batch_seq}")

    # -- introspection ---------------------------------------------------------

    def injected_snapshot(self) -> Dict[str, int]:
        """Copy of this process's per-kind injection counters."""
        return dict(self.injected)


def apply_fault_plan(
    backend, injector: FaultInjector, *, min_retries: Optional[int] = None
) -> None:
    """Attach an injector at every level of a backend tree.

    Walks the composition the selector registry builds —
    ``resilient:sharded:pool:2,pool:2`` and friends — and installs the
    *same* injector instance at each hook point: worker-side faults on
    :class:`~repro.execution.SerialBackend` /
    :class:`~repro.execution.PoolBackend` (before their per-spec runtime
    caches are built), delivery corruption on both, and outage/corruption
    hooks on :class:`~repro.resilience.ResilientBackend`.

    ``min_retries`` optionally raises each node's ``max_retries`` to at
    least that many — a chaos drill against a retry-less oracle (plain
    :class:`~repro.execution.SerialBackend`) would otherwise turn every
    transient crash into a hard failure, which is the substrate's
    *absence*, not its behavior under faults.

    Call this before the backend's first ``prove_tasks`` — pool runtimes
    are cached per spec on first use, and a runtime built without the
    injector keeps running without it.
    """
    seen = set()

    def walk(node) -> None:
        if id(node) in seen:
            return
        seen.add(id(node))
        if hasattr(node, "fault_injector"):
            node.fault_injector = injector
        if min_retries is not None:
            if hasattr(node, "max_retries"):
                node.max_retries = max(node.max_retries, min_retries)
            elif hasattr(node, "runtime_options"):
                # PoolBackend forwards retry tuning to its runtime.
                opts = node.runtime_options
                opts["max_retries"] = max(
                    opts.get("max_retries", 0), min_retries
                )
        for child in getattr(node, "children", []) or []:
            walk(child)
        inner = getattr(node, "child", None)
        if inner is not None and not isinstance(inner, (int, float, str)):
            walk(inner)

    walk(backend)
