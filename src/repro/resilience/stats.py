"""Resilience observability: what broke, what the layer did about it.

:class:`~repro.runtime.RuntimeStats` reports how fast a run went;
:class:`ResilienceStats` reports how *rough* it was and how the layer
absorbed it: faults injected (from the local
:class:`~repro.resilience.FaultInjector` counters), child-call failures,
breaker transitions, failovers, quarantines, and verify-and-re-prove
corrections.  One instance is produced per
:meth:`~repro.resilience.ResilientBackend.prove_tasks` run (exposed as
``last_resilience_stats``) and accumulated into the backend's lifetime
``resilience_stats``, mirroring how runtime stats ride alongside proofs.
"""

from __future__ import annotations

from dataclasses import dataclass, field as dc_field
from typing import Dict, List, Tuple

#: One breaker transition: (child name, from_state, to_state).
BreakerTransition = Tuple[str, str, str]


@dataclass
class ResilienceStats:
    """Aggregate fault/recovery counters for one (or many) resilient runs."""

    #: Faults injected by this process's injector copy, by kind (worker
    #: processes keep their own counters; see FaultInjector docs).
    faults_injected: Dict[str, int] = dc_field(default_factory=dict)
    #: Child dispatch calls that failed (outage, crash-through, anything).
    child_failures: int = 0
    #: Tasks re-routed from a failed child to a healthy sibling.
    failovers: int = 0
    #: Tasks surfaced as QuarantinedTaskError instead of proofs.
    quarantined: int = 0
    #: Proofs that failed verify_on_return and were proved again.
    re_proves: int = 0
    #: Every breaker transition, in order: (child, from, to).
    breaker_transitions: List[BreakerTransition] = dc_field(
        default_factory=list
    )
    #: Dispatch rounds the run needed (1 = no failures anywhere).
    rounds: int = 0

    # -- recording -------------------------------------------------------------

    def record_fault(self, kind: str, count: int = 1) -> None:
        self.faults_injected[kind] = (
            self.faults_injected.get(kind, 0) + count
        )

    def record_transition(self, child: str, src: str, dst: str) -> None:
        self.breaker_transitions.append((child, src, dst))

    def merge(self, other: "ResilienceStats") -> None:
        """Fold another report into this one (lifetime accumulation)."""
        for kind, count in other.faults_injected.items():
            self.record_fault(kind, count)
        self.child_failures += other.child_failures
        self.failovers += other.failovers
        self.quarantined += other.quarantined
        self.re_proves += other.re_proves
        self.breaker_transitions.extend(other.breaker_transitions)
        self.rounds += other.rounds

    # -- aggregates ------------------------------------------------------------

    @property
    def total_faults_injected(self) -> int:
        return sum(self.faults_injected.values())

    @property
    def breaker_opens(self) -> int:
        return sum(
            1 for _, _, dst in self.breaker_transitions if dst == "open"
        )

    @property
    def breaker_recoveries(self) -> int:
        """Half-open probes that closed the breaker (child recovered)."""
        return sum(
            1
            for _, src, dst in self.breaker_transitions
            if src == "half_open" and dst == "closed"
        )

    # -- presentation ----------------------------------------------------------

    def report(self) -> str:
        """A human-readable block to print beside RuntimeStats.report()."""
        injected = (
            ", ".join(
                f"{kind}={count}"
                for kind, count in sorted(self.faults_injected.items())
            )
            or "none"
        )
        lines = [
            f"faults injected : {injected}",
            f"child failures  : {self.child_failures} "
            f"(over {self.rounds} dispatch rounds)",
            f"failovers       : {self.failovers}",
            f"quarantined     : {self.quarantined}",
            f"re-proves       : {self.re_proves}",
            f"breaker         : {self.breaker_opens} opens, "
            f"{self.breaker_recoveries} recoveries "
            f"({len(self.breaker_transitions)} transitions)",
        ]
        return "\n".join(lines)
