"""Resilience layer (system S25 in DESIGN.md): chaos in, proofs out.

BatchZK's pipeline is only as strong as its weakest worker: one dead
pool, one flaky device, one poisoned witness can sink a whole batch.
This package makes failure a first-class, *testable* input:

* :class:`FaultPlan` / :class:`FaultInjector` — a deterministic, seeded
  chaos plane.  A plan like ``"crash:0.1,corrupt:0.02,seed=7"`` injects
  worker crashes, slow tasks, corrupted proof bytes, transient child
  outages, and pool deaths at exact, reproducible points (pure hashes of
  the seed and the event identity — the same plan replays the same
  faults, even across worker processes).
* :class:`ResilientBackend` — a :class:`~repro.execution.ProvingBackend`
  that wraps child backends with per-child :class:`HealthTracker` +
  :class:`CircuitBreaker`, fails tasks over from dead children to
  healthy siblings, quarantines poison tasks as typed
  :class:`~repro.errors.QuarantinedTaskError` results instead of sinking
  the batch, and can verify-and-re-prove corrupted proofs before
  returning them.  Selector: ``resilient:sharded:pool:2,pool:2``.
* :class:`ProofJournal` / :func:`journaled_prove` — a crash-safe JSONL
  write-ahead journal so ``prove --journal out.jsonl --resume`` after a
  mid-batch kill re-proves zero completed tasks.
"""

from .backend import ResilientBackend, split_results
from .faults import (
    FaultInjector,
    FaultPlan,
    apply_fault_plan,
)
from .health import (
    CLOSED,
    HALF_OPEN,
    OPEN,
    CircuitBreaker,
    HealthTracker,
)
from .journal import (
    JournalReport,
    ProofJournal,
    journaled_prove,
    task_key,
)
from .stats import ResilienceStats

__apidoc__ = """\
**The chaos plane.** `FaultPlan.parse("crash:0.1,corrupt:0.02,seed=7")`
builds a seeded plan; `FaultInjector(plan)` turns it into hooks:
a worker-side callable (crashes, slowdowns, pool deaths, per-task
poison), `maybe_corrupt` (flips a commitment byte in returned proofs),
`check_outage` (child-level `BackendUnavailableError` windows, including
a forced `down=CHILD@CALL×N` window), and `on_batch_dispatch` (service
batch faults).  Every decision is a pure hash of `(seed, kind,
identity)` — rerunning the same plan injects the same faults, and
retries with a new attempt number roll fresh.  `apply_fault_plan(
backend, injector)` walks a backend tree and installs the hooks on
every layer that accepts them.

**The failover substrate.** `ResilientBackend` implements
`prove_tasks` over child backends.  Each child sits behind a
`CircuitBreaker` (closed → open on `failure_threshold` consecutive
failures → half-open probe after `cooldown_seconds`) and a
`HealthTracker` ledger.  Failed children's tasks fail over to healthy
siblings; group failures are re-dispatched as singletons for exact
attribution; a task failing attributably on `quarantine_threshold`
distinct children comes back as a `QuarantinedTaskError` result slot —
the other tasks' proofs still arrive.  `split_results(results)`
partitions the mixed result list.  With `verify_on_return=True` each
proof is verified (and re-proved up to `max_reproves`) before return.
A per-run `ResilienceStats` (`last_resilience_stats`) counts faults,
failovers, quarantines, re-proves, and breaker transitions.

**The journal.** `journaled_prove(backend, spec, tasks, path,
resume=True)` write-ahead-logs each completed proof (fsync per entry,
content-addressed by circuit digest + witness + publics) and on resume
deserializes already-proven tasks from the journal instead of proving
them; a torn final line from a mid-write kill is tolerated and
reported.  CLI: `python -m repro prove --journal out.jsonl --resume`.
"""

__all__ = [
    "CLOSED",
    "CircuitBreaker",
    "FaultInjector",
    "FaultPlan",
    "HALF_OPEN",
    "HealthTracker",
    "JournalReport",
    "OPEN",
    "ProofJournal",
    "ResilienceStats",
    "ResilientBackend",
    "apply_fault_plan",
    "journaled_prove",
    "split_results",
    "task_key",
]
