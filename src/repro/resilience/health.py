"""Per-child health accounting and the circuit-breaker state machine.

A dead or flapping child backend must stop receiving work *quickly* (its
tasks fail over to siblings) but must also be *re-probed* once it may
have recovered — a transient outage should cost one cooldown, not the
child's membership.  That is the classic circuit breaker:

* **closed** — calls flow; ``failure_threshold`` consecutive failures
  trip the breaker open.
* **open** — calls are rejected without being attempted until
  ``cooldown_seconds`` have elapsed.
* **half-open** — after the cooldown, up to ``half_open_probes`` trial
  calls are admitted; one success closes the breaker (recovered), one
  failure re-opens it (still down, new cooldown).

:class:`CircuitBreaker` is clock-injected and lock-protected (shard
threads call it concurrently); every transition is recorded and
optionally reported through a callback so the resilience layer can trace
and count them.  :class:`HealthTracker` is the companion ledger of raw
outcomes per child — successes, failures, consecutive-failure streak,
last error — the operator-facing "which device is sick" view.
"""

from __future__ import annotations

import threading
import time
from typing import Callable, List, Optional, Tuple

from ..errors import ResilienceError

#: Breaker states.
CLOSED = "closed"
OPEN = "open"
HALF_OPEN = "half_open"

#: Transition report: (from_state, to_state).
Transition = Tuple[str, str]


class HealthTracker:
    """Raw outcome ledger for one child backend."""

    def __init__(self, name: str):
        self.name = name
        self.successes = 0
        self.failures = 0
        self.consecutive_failures = 0
        self.tasks_completed = 0
        self.last_error: Optional[str] = None
        self.last_failure_at: Optional[float] = None

    def record_success(self, tasks: int = 0) -> None:
        self.successes += 1
        self.tasks_completed += tasks
        self.consecutive_failures = 0

    def record_failure(self, error: str, now: Optional[float] = None) -> None:
        self.failures += 1
        self.consecutive_failures += 1
        self.last_error = error
        self.last_failure_at = now if now is not None else time.monotonic()

    @property
    def total_calls(self) -> int:
        return self.successes + self.failures

    def summary(self) -> str:
        """One line for reports: name, call split, streak, last error."""
        text = (
            f"{self.name}: {self.successes} ok / {self.failures} failed"
            f" ({self.tasks_completed} tasks)"
        )
        if self.consecutive_failures:
            text += f", streak {self.consecutive_failures}"
        if self.last_error:
            text += f", last: {self.last_error[:60]}"
        return text


class CircuitBreaker:
    """Closed → open → half-open gate in front of one child backend.

    >>> clock = lambda: clock.now
    >>> clock.now = 0.0
    >>> cb = CircuitBreaker(failure_threshold=2, cooldown_seconds=1.0,
    ...                     clock=clock)
    >>> cb.acquire(), cb.state
    (True, 'closed')
    >>> cb.record_failure(); cb.record_failure(); cb.state
    'open'
    >>> cb.acquire()
    False
    >>> clock.now = 1.5
    >>> cb.acquire(), cb.state        # cooldown elapsed: probe admitted
    (True, 'half_open')
    >>> cb.record_success(); cb.state
    'closed'

    Args:
        failure_threshold: Consecutive failures that trip the breaker.
        cooldown_seconds:  Open-state dwell before probes are admitted.
        half_open_probes:  Trial calls admitted while half-open.
        clock:             Monotonic clock (injected for tests).
        on_transition:     Optional ``(from_state, to_state)`` callback,
                           invoked outside the lock.
    """

    def __init__(
        self,
        failure_threshold: int = 3,
        cooldown_seconds: float = 1.0,
        half_open_probes: int = 1,
        clock: Callable[[], float] = time.monotonic,
        on_transition: Optional[Callable[[str, str], None]] = None,
    ):
        if failure_threshold < 1:
            raise ResilienceError(
                f"failure_threshold must be >= 1, got {failure_threshold}"
            )
        if cooldown_seconds < 0:
            raise ResilienceError(
                f"cooldown_seconds must be >= 0, got {cooldown_seconds}"
            )
        if half_open_probes < 1:
            raise ResilienceError(
                f"half_open_probes must be >= 1, got {half_open_probes}"
            )
        self.failure_threshold = failure_threshold
        self.cooldown_seconds = cooldown_seconds
        self.half_open_probes = half_open_probes
        self._clock = clock
        self._on_transition = on_transition
        self._lock = threading.Lock()
        self._state = CLOSED
        self._consecutive_failures = 0
        self._opened_at: Optional[float] = None
        self._probes_in_flight = 0
        #: Every (from, to) transition, in order.
        self.transitions: List[Transition] = []

    @property
    def state(self) -> str:
        """Current state, with open → half-open promotion applied lazily."""
        with self._lock:
            if self._cooldown_elapsed_locked():
                return HALF_OPEN  # an acquire() now would be admitted
            return self._state

    def _cooldown_elapsed_locked(self) -> bool:
        return (
            self._state == OPEN
            and self._opened_at is not None
            and self._clock() - self._opened_at >= self.cooldown_seconds
        )

    def _move_locked(self, to_state: str) -> Transition:
        transition = (self._state, to_state)
        self._state = to_state
        self.transitions.append(transition)
        return transition

    def _notify(self, transition: Optional[Transition]) -> None:
        if transition is not None and self._on_transition is not None:
            self._on_transition(*transition)

    def acquire(self) -> bool:
        """Ask to route one call through; True admits it.

        An admitted call MUST be concluded with :meth:`record_success`
        or :meth:`record_failure` (half-open probe slots are otherwise
        leaked).  Rejected calls consume nothing.
        """
        transition = None
        with self._lock:
            if self._state == OPEN and self._cooldown_elapsed_locked():
                transition = self._move_locked(HALF_OPEN)
                self._probes_in_flight = 0
            if self._state == CLOSED:
                admitted = True
            elif self._state == HALF_OPEN:
                admitted = self._probes_in_flight < self.half_open_probes
                if admitted:
                    self._probes_in_flight += 1
            else:
                admitted = False
        self._notify(transition)
        return admitted

    def record_success(self) -> None:
        """Conclude an admitted call successfully."""
        transition = None
        with self._lock:
            self._consecutive_failures = 0
            if self._state == HALF_OPEN:
                self._probes_in_flight = max(0, self._probes_in_flight - 1)
                transition = self._move_locked(CLOSED)
        self._notify(transition)

    def record_failure(self) -> None:
        """Conclude an admitted call with a failure."""
        transition = None
        with self._lock:
            self._consecutive_failures += 1
            if self._state == HALF_OPEN:
                self._probes_in_flight = max(0, self._probes_in_flight - 1)
                self._opened_at = self._clock()
                transition = self._move_locked(OPEN)
            elif (
                self._state == CLOSED
                and self._consecutive_failures >= self.failure_threshold
            ):
                self._opened_at = self._clock()
                transition = self._move_locked(OPEN)
        self._notify(transition)

    def release(self) -> None:
        """Return an admitted-but-unused call (no outcome recorded).

        The failover planner acquires before it knows whether any task
        is assignable to this child; a half-open probe slot must not be
        leaked when nothing is dispatched.
        """
        with self._lock:
            if self._state == HALF_OPEN:
                self._probes_in_flight = max(0, self._probes_in_flight - 1)

    def seconds_until_probe(self) -> float:
        """How long until an open breaker admits a probe (0 if admitting)."""
        with self._lock:
            if self._state != OPEN or self._opened_at is None:
                return 0.0
            remaining = (
                self.cooldown_seconds - (self._clock() - self._opened_at)
            )
            return max(0.0, remaining)
