"""Crash-safe proof journal: a write-ahead log for batch prove runs.

A long batch run that dies at task 180/200 should not re-prove 179
finished proofs.  :class:`ProofJournal` is an append-only JSONL
write-ahead log of completed work — one ``{"key", "task_id", "proof"}``
entry per proof, flushed and fsynced per append — and
:func:`journaled_prove` is the runner that consults it: on ``--resume``
it loads the journal, skips every task whose key is already recorded,
and proves only the remainder (checkpointing as it goes).

Format (one JSON object per line):

* line 1 — header: ``{"journal": "repro-proofs", "version": 1,
  "spec": "<r1cs digest hex>", "field": "<modulus hex>"}``.  Resuming
  against a different circuit fails loudly
  (:class:`~repro.errors.JournalError`) instead of serving proofs of the
  wrong statement.
* following lines — entries: ``{"key": "<task key hex>", "task_id": N,
  "proof": "<serialized proof hex>", "t": <unix time>}``.  The proof
  bytes are the wire format of :mod:`repro.core.serialize`, so a journal
  doubles as an exportable proof archive.

A crash mid-append leaves at most one truncated final line; the loader
tolerates (and reports) exactly that — a torn line anywhere *before* the
tail means external corruption and fails loudly.

Task identity is content-addressed: ``task_key(spec, task)`` digests the
circuit (R1CS digest) together with the witness and public values, so a
resumed run matches tasks by meaning, not by position — reordering the
task list between runs still skips exactly the proven work.
"""

from __future__ import annotations

import hashlib
import json
import os
import time
from dataclasses import dataclass, field as dc_field
from typing import Dict, List, Optional, Sequence, Tuple

from ..core.batch import ProofTask
from ..core.proof import SnarkProof
from ..core.serialize import deserialize_proof, serialize_proof
from ..errors import JournalError
from ..runtime.spec import ProverSpec
from ..runtime.stats import RuntimeStats, merge_runtime_stats
from ..runtime.trace import JsonlTraceSink, SpanContext, ambient_span

HEADER_TAG = "repro-proofs"
JOURNAL_VERSION = 1


def task_key(spec: ProverSpec, task: ProofTask) -> bytes:
    """Content address of one task under one circuit.

    Independent of ``task_id`` (an ordering label, not proof content),
    so identical work is recognized across runs that renumber tasks.
    """
    h = hashlib.sha256()
    h.update(spec.r1cs.digest())
    h.update(b"|w|")
    h.update(",".join(str(int(v)) for v in task.witness).encode())
    h.update(b"|p|")
    h.update(",".join(str(int(v)) for v in task.public_values).encode())
    return h.digest()


class ProofJournal:
    """Append-only JSONL write-ahead log of ``task key → proof bytes``.

    Open with :meth:`create` for a fresh journal (writes the header) or
    :meth:`open` to append to / resume from an existing one (validates
    the header against the spec).  Each :meth:`append` is flushed and
    fsynced before returning — the durability point a kill cannot cross.
    """

    def __init__(self, path: str, handle, spec_digest: bytes):
        self.path = path
        self._handle = handle
        self.spec_digest = spec_digest
        self.entries_written = 0

    # -- constructors ----------------------------------------------------------

    @classmethod
    def create(cls, path: str, spec: ProverSpec) -> "ProofJournal":
        """Start a fresh journal (truncates any existing file)."""
        digest = spec.r1cs.digest()
        handle = open(path, "w", encoding="utf-8")
        header = {
            "journal": HEADER_TAG,
            "version": JOURNAL_VERSION,
            "spec": digest.hex(),
            "field": hex(spec.r1cs.field.modulus),
        }
        handle.write(json.dumps(header, sort_keys=True) + "\n")
        handle.flush()
        os.fsync(handle.fileno())
        return cls(path, handle, digest)

    @classmethod
    def open(cls, path: str, spec: ProverSpec) -> "ProofJournal":
        """Open an existing journal for appending (header must match)."""
        digest = spec.r1cs.digest()
        header = cls._read_header(path)
        if bytes.fromhex(header["spec"]) != digest:
            raise JournalError(
                f"journal {path} was written for circuit "
                f"{header['spec'][:16]}…, not {digest.hex()[:16]}…"
            )
        handle = open(path, "a", encoding="utf-8")
        return cls(path, handle, digest)

    @staticmethod
    def _read_header(path: str) -> dict:
        with open(path, "r", encoding="utf-8") as handle:
            first = handle.readline()
        try:
            header = json.loads(first)
        except json.JSONDecodeError:
            raise JournalError(
                f"{path} is not a proof journal (unparseable header)"
            ) from None
        if (
            not isinstance(header, dict)
            or header.get("journal") != HEADER_TAG
        ):
            raise JournalError(
                f"{path} is not a proof journal (bad header tag)"
            )
        if header.get("version") != JOURNAL_VERSION:
            raise JournalError(
                f"unsupported journal version {header.get('version')}"
            )
        return header

    # -- writing ---------------------------------------------------------------

    def append(self, key: bytes, task_id: int, proof_bytes: bytes) -> None:
        """Durably record one completed proof (flush + fsync)."""
        entry = {
            "key": key.hex(),
            "task_id": task_id,
            "proof": proof_bytes.hex(),
            "t": time.time(),
        }
        self._handle.write(json.dumps(entry, sort_keys=True) + "\n")
        self._handle.flush()
        os.fsync(self._handle.fileno())
        self.entries_written += 1

    def close(self) -> None:
        self._handle.close()

    def __enter__(self) -> "ProofJournal":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    # -- reading ---------------------------------------------------------------

    @staticmethod
    def load(path: str, spec: ProverSpec) -> Tuple[Dict[bytes, bytes], int]:
        """Read completed entries: ``({task key: proof bytes}, torn_lines)``.

        Tolerates a truncated *final* line (a crash mid-append); a
        malformed line anywhere else raises :class:`JournalError`.
        Later entries for the same key win (re-proves after corruption).
        """
        header = ProofJournal._read_header(path)
        if bytes.fromhex(header["spec"]) != spec.r1cs.digest():
            raise JournalError(
                f"journal {path} was written for a different circuit"
            )
        entries: Dict[bytes, bytes] = {}
        torn = 0
        with open(path, "r", encoding="utf-8") as handle:
            lines = handle.readlines()
        for lineno, line in enumerate(lines[1:], start=2):
            if not line.strip():
                continue
            try:
                entry = json.loads(line)
                key = bytes.fromhex(entry["key"])
                proof = bytes.fromhex(entry["proof"])
            except (json.JSONDecodeError, KeyError, ValueError):
                if lineno == len(lines):
                    torn += 1  # crash mid-append: expected, recoverable
                    continue
                raise JournalError(
                    f"{path}:{lineno}: corrupt journal entry "
                    "(not at tail — refusing to resume)"
                ) from None
            entries[key] = proof
        return entries, torn


@dataclass
class JournalReport:
    """What a journaled run did: the resume audit trail."""

    path: str
    #: Tasks served from the journal without re-proving.
    skipped: int = 0
    #: Tasks proved (and appended) by this run.
    proved: int = 0
    #: Tasks quarantined by the backend (never journaled).
    quarantined: int = 0
    #: Truncated tail lines tolerated while loading.
    torn_lines: int = 0
    #: Task ids served from the journal.
    skipped_task_ids: List[int] = dc_field(default_factory=list)

    def summary(self) -> str:
        text = (
            f"journal {self.path}: skipped {self.skipped} already-proven, "
            f"proved {self.proved}"
        )
        if self.quarantined:
            text += f", quarantined {self.quarantined}"
        if self.torn_lines:
            text += f", tolerated {self.torn_lines} torn tail line(s)"
        return text


def journaled_prove(
    backend,
    spec: ProverSpec,
    tasks: Sequence[ProofTask],
    journal_path: str,
    *,
    resume: bool = False,
    checkpoint_every: int = 1,
    trace: Optional[JsonlTraceSink] = None,
    parent: Optional[str] = None,
):
    """Prove a batch with write-ahead journaling (and optional resume).

    With ``resume=True`` and an existing journal, tasks whose keys are
    already recorded are *deserialized from the journal* instead of
    proved; the rest are proved in chunks of ``checkpoint_every`` tasks,
    each chunk's proofs durably appended before the next chunk starts —
    so a kill at any instant loses at most the in-flight chunk.

    Returns ``(results, stats, report)``: results in task order (each a
    proof or a :class:`~repro.errors.QuarantinedTaskError` if the
    backend quarantines), the merged
    :class:`~repro.runtime.RuntimeStats` of the proving actually
    performed, and a :class:`JournalReport`.
    """
    if checkpoint_every < 1:
        raise JournalError(
            f"checkpoint_every must be >= 1, got {checkpoint_every}"
        )
    tasks = list(tasks)
    field = spec.r1cs.field
    report = JournalReport(path=journal_path)
    completed: Dict[bytes, bytes] = {}
    if resume and os.path.exists(journal_path):
        completed, report.torn_lines = ProofJournal.load(journal_path, spec)
        journal = ProofJournal.open(journal_path, spec)
    else:
        journal = ProofJournal.create(journal_path, spec)

    ambient = ambient_span()
    if ambient is not None:
        if trace is None:
            trace = ambient.sink
        if parent is None:
            parent = ambient.span
    ctx = SpanContext(trace, "backend", parent=parent)
    ctx.emit(
        "journal_start",
        path=journal_path,
        resume=resume,
        known_entries=len(completed),
        tasks=len(tasks),
    )

    keys = [task_key(spec, task) for task in tasks]
    results: List[object] = [None] * len(tasks)
    pcs_params = None
    todo: List[int] = []
    for index, key in enumerate(keys):
        if key in completed:
            if pcs_params is None:
                pcs_params = spec.build_pcs().params
            results[index] = deserialize_proof(
                completed[key], field, pcs_params
            )
            report.skipped += 1
            report.skipped_task_ids.append(tasks[index].task_id)
        else:
            todo.append(index)
    if report.skipped:
        ctx.emit(
            "journal_skip",
            skipped=report.skipped,
            task_ids=report.skipped_task_ids,
        )

    part_stats: List[RuntimeStats] = []
    try:
        for lo in range(0, len(todo), checkpoint_every):
            chunk = todo[lo:lo + checkpoint_every]
            chunk_tasks = [tasks[i] for i in chunk]
            proofs, stats = backend.prove_tasks(
                spec, chunk_tasks, trace=trace, parent=ctx.span
            )
            part_stats.append(stats)
            for index, proof in zip(chunk, proofs):
                results[index] = proof
                # Only a real proof is durable progress.  A quarantined
                # slot (or any other non-proof placeholder a backend
                # might return) must NOT be journaled: a later --resume
                # would deserialize it as a completed task and silently
                # skip the re-attempt the quarantine exists to force.
                if not isinstance(proof, SnarkProof):
                    report.quarantined += 1
                    continue
                journal.append(
                    keys[index],
                    tasks[index].task_id,
                    serialize_proof(proof, field),
                )
                report.proved += 1
    finally:
        journal.close()
        ctx.emit(
            "journal_end",
            proved=report.proved,
            skipped=report.skipped,
            quarantined=report.quarantined,
        )
        if trace is not None:
            trace.flush()

    merged = merge_runtime_stats(part_stats)
    merged.total_seconds = sum(p.total_seconds for p in part_stats)
    return results, merged, report
