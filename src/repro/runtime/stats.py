"""Observability for the parallel proving runtime (S22).

The paper frames batch proving as a *service*: "service providers need to
continuously process customer inputs that come in like a flowing stream"
(§1).  A service needs more than a proofs/second scalar — operators watch
tail latency, queue depth, and worker utilization.  :class:`RuntimeStats`
collects a :class:`TaskRecord` per proof and derives those aggregates,
mirroring what :mod:`repro.pipeline`'s simulator reports for the GPU half
(throughput, latency, utilization traces) for the *functional* half.
"""

from __future__ import annotations

from dataclasses import dataclass, field as dc_field
from typing import Dict, List, Optional

# Shared percentile implementation; re-exported here so existing
# ``from repro.runtime.stats import percentile`` imports keep working.
from ..stats import percentile

__all__ = ["RuntimeStats", "TaskRecord", "merge_runtime_stats", "percentile"]


@dataclass(frozen=True)
class TaskRecord:
    """Timing record for one successfully proved task."""

    task_id: int
    #: Total attempts consumed (1 = succeeded on the first try).
    attempts: int
    #: In-worker proving time of the winning attempt.
    prove_seconds: float
    #: Submission → completion as seen by the dispatcher (includes queueing,
    #: pickling, and any failed attempts).
    latency_seconds: float
    #: OS pid of the worker that produced the proof (None = proved inline).
    worker: Optional[int] = None
    #: Per-stage proving seconds of the winning attempt (commit ⊃ encode +
    #: merkle, sumcheck1, sumcheck2, open), when stage profiling captured
    #: them; None for records from pre-profiling producers.
    stage_seconds: Optional[Dict[str, float]] = None


@dataclass
class RuntimeStats:
    """Aggregate report of one :meth:`ParallelProvingRuntime.prove_tasks` run."""

    workers: int = 1
    records: List[TaskRecord] = dc_field(default_factory=list)
    #: Wall-clock time of the whole run.
    total_seconds: float = 0.0
    #: Resubmissions after a failed attempt (exceptions and timeouts).
    retries: int = 0
    #: Attempts abandoned because they outlived the per-task timeout.
    timeouts: int = 0
    #: Dispatcher-side samples of how many tasks were waiting for a worker.
    queue_depth_samples: List[int] = dc_field(default_factory=list)
    #: Summed in-worker proving seconds across all *successful* attempts.
    busy_seconds: float = 0.0
    #: True when the process pool could not be used and the run completed
    #: on the dispatching process instead.
    fell_back_to_serial: bool = False

    # -- aggregates -----------------------------------------------------------

    @property
    def proofs_generated(self) -> int:
        return len(self.records)

    @property
    def throughput_per_second(self) -> float:
        if self.total_seconds <= 0:
            return 0.0
        return self.proofs_generated / self.total_seconds

    @property
    def latencies(self) -> List[float]:
        """Per-task submission→completion latencies, in record order."""
        return [r.latency_seconds for r in self.records]

    def latency_percentile(self, q: float) -> float:
        """The q-th percentile of task latency (seconds)."""
        return percentile(self.latencies, q)

    @property
    def p50_latency_seconds(self) -> float:
        return self.latency_percentile(50)

    @property
    def p95_latency_seconds(self) -> float:
        return self.latency_percentile(95)

    @property
    def p99_latency_seconds(self) -> float:
        return self.latency_percentile(99)

    @property
    def worker_utilization(self) -> float:
        """Fraction of worker·wall capacity spent proving (≤ 1)."""
        if self.total_seconds <= 0 or self.workers <= 0:
            return 0.0
        return min(1.0, self.busy_seconds / (self.workers * self.total_seconds))

    @property
    def max_queue_depth(self) -> int:
        return max(self.queue_depth_samples, default=0)

    @property
    def mean_queue_depth(self) -> float:
        if not self.queue_depth_samples:
            return 0.0
        return sum(self.queue_depth_samples) / len(self.queue_depth_samples)

    @property
    def total_attempts(self) -> int:
        return sum(r.attempts for r in self.records)

    def stage_totals(self, *, exclusive: bool = True) -> Dict[str, float]:
        """Summed per-stage proving seconds across every task record.

        Stage order follows :data:`repro.kernels.profile.STAGE_NAMES`
        with unknown stages appended; empty when no record carried a
        stage profile.  By default this is the *exclusive* view —
        ``commit`` is its residue after subtracting its children
        ``encode``/``merkle``, so the values partition proving time and
        are safe to sum (an earlier version returned the raw nested dict
        here, which made every summing consumer double-count the commit
        phase).  Pass ``exclusive=False`` for the raw inclusive
        (as-measured) dict in which ``commit ⊇ encode + merkle``.
        """
        from ..kernels.profile import StageProfile

        totals = StageProfile()
        for record in self.records:
            if record.stage_seconds:
                totals.merge(record.stage_seconds)
        return totals.exclusive() if exclusive else totals.inclusive()

    # -- presentation ---------------------------------------------------------

    def report(self) -> str:
        """A human-readable multi-line summary (the operator's dashboard)."""
        lines = [
            f"proofs          : {self.proofs_generated}",
            f"workers         : {self.workers}"
            + (" (serial fallback)" if self.fell_back_to_serial else ""),
            f"wall time       : {self.total_seconds:.3f} s",
            f"throughput      : {self.throughput_per_second:.2f} proofs/s",
            f"latency p50     : {self.p50_latency_seconds * 1e3:.1f} ms",
            f"latency p95     : {self.p95_latency_seconds * 1e3:.1f} ms",
            f"latency p99     : {self.p99_latency_seconds * 1e3:.1f} ms",
            f"utilization     : {self.worker_utilization * 100:.0f}%",
            f"retries         : {self.retries} ({self.timeouts} timeouts)",
            f"queue depth     : max {self.max_queue_depth}, "
            f"mean {self.mean_queue_depth:.1f}",
        ]
        # Exclusive view: disjoint shares, so the displayed split sums to
        # at most proving wall time (commit is its residue, not the
        # container that also holds encode + merkle).
        stages = self.stage_totals(exclusive=True)
        if stages:
            split = "  ".join(
                f"{name} {seconds * 1e3:.1f}ms" for name, seconds in stages.items()
            )
            lines.append(f"stage split     : {split}")
        return "\n".join(lines)


def merge_runtime_stats(
    parts: List["RuntimeStats"], *, total_seconds: Optional[float] = None
) -> RuntimeStats:
    """Combine per-shard reports into one aggregate run report.

    Used by :class:`~repro.execution.ShardedBackend` when a batch is
    split across child backends: records, retries, and busy time are
    summed; ``workers`` is the combined worker count of every shard; the
    wall time is the caller-measured envelope (shards run concurrently,
    so summing shard wall times would overcount) and defaults to the
    slowest shard when not given.
    """
    merged = RuntimeStats(workers=0)
    for part in parts:
        merged.workers += part.workers
        merged.records.extend(part.records)
        merged.retries += part.retries
        merged.timeouts += part.timeouts
        merged.queue_depth_samples.extend(part.queue_depth_samples)
        merged.busy_seconds += part.busy_seconds
        merged.fell_back_to_serial = (
            merged.fell_back_to_serial or part.fell_back_to_serial
        )
    merged.workers = max(1, merged.workers)
    if total_seconds is not None:
        merged.total_seconds = total_seconds
    else:
        merged.total_seconds = max(
            (part.total_seconds for part in parts), default=0.0
        )
    return merged
