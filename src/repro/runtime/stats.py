"""Observability for the parallel proving runtime (S22).

The paper frames batch proving as a *service*: "service providers need to
continuously process customer inputs that come in like a flowing stream"
(§1).  A service needs more than a proofs/second scalar — operators watch
tail latency, queue depth, and worker utilization.  :class:`RuntimeStats`
collects a :class:`TaskRecord` per proof and derives those aggregates,
mirroring what :mod:`repro.pipeline`'s simulator reports for the GPU half
(throughput, latency, utilization traces) for the *functional* half.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field as dc_field
from typing import List, Optional, Sequence


def percentile(values: Sequence[float], q: float) -> float:
    """Linear-interpolation percentile of ``values`` (numpy's default).

    ``q`` is in [0, 100].  An empty sequence yields 0.0 so callers can
    report on a run that produced no records without special-casing.

    >>> percentile([1, 2, 3, 4], 50)
    2.5
    >>> percentile([10], 99)
    10.0
    """
    if not 0 <= q <= 100:
        raise ValueError(f"percentile q must be in [0, 100], got {q}")
    if not values:
        return 0.0
    ordered = sorted(float(v) for v in values)
    if len(ordered) == 1:
        return ordered[0]
    rank = (len(ordered) - 1) * (q / 100.0)
    lo = math.floor(rank)
    hi = math.ceil(rank)
    if lo == hi:
        return ordered[lo]
    frac = rank - lo
    return ordered[lo] * (1.0 - frac) + ordered[hi] * frac


@dataclass(frozen=True)
class TaskRecord:
    """Timing record for one successfully proved task."""

    task_id: int
    #: Total attempts consumed (1 = succeeded on the first try).
    attempts: int
    #: In-worker proving time of the winning attempt.
    prove_seconds: float
    #: Submission → completion as seen by the dispatcher (includes queueing,
    #: pickling, and any failed attempts).
    latency_seconds: float
    #: OS pid of the worker that produced the proof (None = proved inline).
    worker: Optional[int] = None


@dataclass
class RuntimeStats:
    """Aggregate report of one :meth:`ParallelProvingRuntime.prove_tasks` run."""

    workers: int = 1
    records: List[TaskRecord] = dc_field(default_factory=list)
    #: Wall-clock time of the whole run.
    total_seconds: float = 0.0
    #: Resubmissions after a failed attempt (exceptions and timeouts).
    retries: int = 0
    #: Attempts abandoned because they outlived the per-task timeout.
    timeouts: int = 0
    #: Dispatcher-side samples of how many tasks were waiting for a worker.
    queue_depth_samples: List[int] = dc_field(default_factory=list)
    #: Summed in-worker proving seconds across all *successful* attempts.
    busy_seconds: float = 0.0
    #: True when the process pool could not be used and the run completed
    #: on the dispatching process instead.
    fell_back_to_serial: bool = False

    # -- aggregates -----------------------------------------------------------

    @property
    def proofs_generated(self) -> int:
        return len(self.records)

    @property
    def throughput_per_second(self) -> float:
        if self.total_seconds <= 0:
            return 0.0
        return self.proofs_generated / self.total_seconds

    @property
    def latencies(self) -> List[float]:
        """Per-task submission→completion latencies, in record order."""
        return [r.latency_seconds for r in self.records]

    def latency_percentile(self, q: float) -> float:
        """The q-th percentile of task latency (seconds)."""
        return percentile(self.latencies, q)

    @property
    def p50_latency_seconds(self) -> float:
        return self.latency_percentile(50)

    @property
    def p95_latency_seconds(self) -> float:
        return self.latency_percentile(95)

    @property
    def p99_latency_seconds(self) -> float:
        return self.latency_percentile(99)

    @property
    def worker_utilization(self) -> float:
        """Fraction of worker·wall capacity spent proving (≤ 1)."""
        if self.total_seconds <= 0 or self.workers <= 0:
            return 0.0
        return min(1.0, self.busy_seconds / (self.workers * self.total_seconds))

    @property
    def max_queue_depth(self) -> int:
        return max(self.queue_depth_samples, default=0)

    @property
    def mean_queue_depth(self) -> float:
        if not self.queue_depth_samples:
            return 0.0
        return sum(self.queue_depth_samples) / len(self.queue_depth_samples)

    @property
    def total_attempts(self) -> int:
        return sum(r.attempts for r in self.records)

    # -- presentation ---------------------------------------------------------

    def report(self) -> str:
        """A human-readable multi-line summary (the operator's dashboard)."""
        lines = [
            f"proofs          : {self.proofs_generated}",
            f"workers         : {self.workers}"
            + (" (serial fallback)" if self.fell_back_to_serial else ""),
            f"wall time       : {self.total_seconds:.3f} s",
            f"throughput      : {self.throughput_per_second:.2f} proofs/s",
            f"latency p50     : {self.p50_latency_seconds * 1e3:.1f} ms",
            f"latency p95     : {self.p95_latency_seconds * 1e3:.1f} ms",
            f"latency p99     : {self.p99_latency_seconds * 1e3:.1f} ms",
            f"utilization     : {self.worker_utilization * 100:.0f}%",
            f"retries         : {self.retries} ({self.timeouts} timeouts)",
            f"queue depth     : max {self.max_queue_depth}, "
            f"mean {self.mean_queue_depth:.1f}",
        ]
        return "\n".join(lines)
