"""Process-pool batch proving engine (S22).

:class:`ParallelProvingRuntime` shards independent :class:`ProofTask`s
across N worker processes.  Design points, each motivated by the paper's
service setting (§1, §2.1 — a proving farm billing per proof):

* **Per-worker prover construction** — the picklable
  :class:`~repro.runtime.spec.ProverSpec` crosses the pipe once per
  worker; the R1CS/PCS setup (expander generation, digesting) is paid
  once per worker, not once per task.
* **Chunked dispatch with a bounded in-flight queue** — tasks travel in
  chunks of ``chunk_size`` to amortize IPC, and at most ``max_in_flight``
  chunks are outstanding at any moment, giving backpressure instead of
  unbounded pickling of a million-task stream.
* **Robustness** — a failed attempt (worker exception or per-task
  timeout) is retried with backoff, failed multi-task chunks are split
  into singleton resubmissions so one poisoned task cannot sink its
  chunk-mates, and a dead pool degrades gracefully to in-process serial
  execution.  Retries exhausted surface as a clean
  :class:`~repro.errors.ProofError`.
* **Observability** — per-task :class:`TaskRecord`s, queue-depth and
  utilization counters in :class:`RuntimeStats`, and an optional JSONL
  trace-event sink.

Fault injection for tests and chaos drills: pass ``fault_injector``, a
*module-level* (picklable) callable ``(task_id, attempt) -> None`` that
raises to simulate a worker failure.  It runs in the worker before
proving, so the retry path is exercised end to end.
"""

from __future__ import annotations

import os
import time
from collections import deque
from typing import Callable, Dict, List, Optional, Sequence, Tuple

from ..core.batch import ProofTask
from ..core.proof import SnarkProof
from ..core.prover import SnarkProver
from ..errors import ProofError
from ..kernels.profile import collect_stages
from ..kernels.spec_cache import default_spec_cache
from .spec import ProverSpec
from .stats import RuntimeStats, TaskRecord
from .trace import JsonlTraceSink, SpanContext, ambient_span

FaultInjector = Callable[[int, int], None]

#: Process-global worker state, populated once by :func:`_init_worker`.
_WORKER_STATE: dict = {}


def _init_worker(
    spec: ProverSpec,
    fault_injector: Optional[FaultInjector],
    lane_width: Optional[int] = None,
) -> None:
    """Pool initializer: resolve this worker's prover through the spec cache.

    The cache is process-global, so a worker that survives across runs of
    the same circuit (one pool, many batches) derives setup exactly once.
    ``lane_width`` switches the worker body to fused lane proving (S31).
    """
    _WORKER_STATE["prover"] = default_spec_cache().get_prover(spec)
    _WORKER_STATE["fault"] = fault_injector
    _WORKER_STATE["lane_width"] = lane_width


def _prove_chunk(
    chunk: Sequence[Tuple[int, ProofTask, int]]
) -> List[Tuple[int, SnarkProof, float, int, Dict[str, float]]]:
    """Worker body: prove every (index, task, attempt) in the chunk.

    Returns ``(index, proof, prove_seconds, worker_pid, stage_seconds)``
    per task.  Any exception (including an injected fault) propagates to
    the dispatcher, which retries; a chunk fails as a unit and is split
    on retry.

    With ``lane_width`` set, a multi-task chunk is one fused lane
    dispatch (:meth:`~repro.core.prover.SnarkProver.prove_lanes`): the
    injector still fires per task, the proofs are byte-identical to the
    per-task path, and the wall time and stage buckets are amortized
    uniformly across the chunk.  Retried singletons take the per-task
    path naturally.
    """
    prover: SnarkProver = _WORKER_STATE["prover"]
    fault: Optional[FaultInjector] = _WORKER_STATE.get("fault")
    lane_width = _WORKER_STATE.get("lane_width")
    pid = os.getpid()
    if lane_width is not None and len(chunk) > 1:
        for _, task, attempt in chunk:
            if fault is not None:
                fault(task.task_id, attempt)
        start = time.perf_counter()
        with collect_stages() as profile:
            proofs = prover.prove_lanes(
                [task.witness for _, task, _ in chunk],
                [task.public_values for _, task, _ in chunk],
            )
        per_task = (time.perf_counter() - start) / len(chunk)
        stages = {k: v / len(chunk) for k, v in profile.as_dict().items()}
        return [
            (index, proof, per_task, pid, dict(stages))
            for (index, _, _), proof in zip(chunk, proofs)
        ]
    out: List[Tuple[int, SnarkProof, float, int, Dict[str, float]]] = []
    for index, task, attempt in chunk:
        if fault is not None:
            fault(task.task_id, attempt)
        start = time.perf_counter()
        with collect_stages() as profile:
            proof = prover.prove(task.witness, task.public_values)
        out.append(
            (index, proof, time.perf_counter() - start, pid, profile.as_dict())
        )
    return out


class _WorkItem:
    """A pending chunk: input indices plus per-item attempt counts."""

    __slots__ = ("items", "not_before")

    def __init__(self, items: List[Tuple[int, int]], not_before: float = 0.0):
        self.items = items  # [(task_index, attempt), ...]
        self.not_before = not_before

    def __len__(self) -> int:
        return len(self.items)


class ParallelProvingRuntime:
    """Shards a batch of proof tasks across a pool of worker processes.

    >>> # sketch; see examples/parallel_proving.py for a real run
    >>> # runtime = ParallelProvingRuntime(ProverSpec.from_prover(prover), workers=4)
    >>> # proofs, stats = runtime.prove_tasks(tasks)

    Args:
        spec:                  Picklable prover recipe (built per worker).
        workers:               Pool size; ``None`` → ``os.cpu_count()``;
                               ``1`` proves inline with no pool at all.
        chunk_size:            Tasks per dispatched chunk (IPC amortization).
        max_in_flight:         Outstanding-chunk bound (backpressure);
                               default ``2 × workers``.
        max_retries:           Extra attempts per task after the first
                               (so a task runs at most ``1 + max_retries``
                               times before :class:`ProofError`).
        retry_backoff_seconds: Base delay before a retry; doubles per
                               attempt (0.05 → 0.1 → 0.2 …).
        task_timeout_seconds:  Per-task attempt budget.  In pooled mode an
                               attempt that outlives ``timeout × chunk_len``
                               is abandoned and resubmitted (the stale
                               worker result, if it ever lands, is
                               discarded).  In serial mode a mid-call
                               preemption is impossible, so overruns are
                               only *recorded* in ``stats.timeouts``.
        trace:                 Optional :class:`JsonlTraceSink`.
        fault_injector:        Optional picklable ``(task_id, attempt)``
                               callable that raises to simulate failures.
        lane_width:            When set, each multi-task chunk is proved
                               as one fused lane dispatch (S31);
                               ``chunk_size`` defaults to the lane width
                               so a chunk *is* a lane group.  Proofs stay
                               byte-identical to the per-task path; the
                               ``workers=1``/fallback serial path and
                               retried singletons prove per task.
    """

    def __init__(
        self,
        spec: ProverSpec,
        workers: Optional[int] = None,
        *,
        chunk_size: int = 1,
        max_in_flight: Optional[int] = None,
        max_retries: int = 2,
        retry_backoff_seconds: float = 0.05,
        task_timeout_seconds: Optional[float] = None,
        trace: Optional[JsonlTraceSink] = None,
        fault_injector: Optional[FaultInjector] = None,
        poll_interval_seconds: float = 0.002,
        lane_width: Optional[int] = None,
    ):
        if workers is None:
            workers = os.cpu_count() or 1
        if workers < 1:
            raise ProofError(f"workers must be >= 1, got {workers}")
        if chunk_size < 1:
            raise ProofError(f"chunk_size must be >= 1, got {chunk_size}")
        if max_retries < 0:
            raise ProofError(f"max_retries must be >= 0, got {max_retries}")
        if lane_width is not None:
            if lane_width < 1:
                raise ProofError(
                    f"lane_width must be >= 1, got {lane_width}"
                )
            if chunk_size == 1:
                # A lane group rides in one chunk; size the chunks to the
                # lanes unless the caller tuned chunking explicitly.
                chunk_size = lane_width
        self.lane_width = lane_width
        self.spec = spec
        self.workers = workers
        self.chunk_size = chunk_size
        self.max_in_flight = max_in_flight or 2 * workers
        self.max_retries = max_retries
        self.retry_backoff_seconds = retry_backoff_seconds
        self.task_timeout_seconds = task_timeout_seconds
        self.trace = trace
        self.fault_injector = fault_injector
        self.poll_interval_seconds = poll_interval_seconds
        #: Lazily built prover for the serial path, reused across runs so
        #: a long-lived ``workers=1`` runtime pays the R1CS/PCS setup once.
        self._serial_prover: Optional[SnarkProver] = None
        #: Span context of the run in progress (one run at a time).
        self._ctx = SpanContext(None, "backend")

    # -- public API -----------------------------------------------------------

    def prove_tasks(
        self,
        tasks: Sequence[ProofTask],
        *,
        trace: Optional[JsonlTraceSink] = None,
        parent: Optional[str] = None,
    ) -> Tuple[List[SnarkProof], RuntimeStats]:
        """Prove every task; proofs are returned in input order.

        Raises :class:`ProofError` once any task exhausts its retry
        budget (``1 + max_retries`` attempts, counting timeouts).

        ``trace`` overrides the constructor sink for this run; ``parent``
        is the enclosing span id for correlated telemetry.  Both default
        to the ambient span (see :func:`~repro.runtime.trace.use_span`)
        when one is set, so a service dispatching through intermediate
        layers still produces one connected span tree.
        """
        tasks = list(tasks)
        sink = trace if trace is not None else self.trace
        ambient = ambient_span()
        if ambient is not None:
            if sink is None:
                sink = ambient.sink
            if parent is None:
                parent = ambient.span
        self._ctx = SpanContext(sink, "backend", parent=parent)
        stats = RuntimeStats(workers=self.workers)
        start = time.perf_counter()
        self._emit(
            "run_start",
            backend=f"pool:{self.workers}",
            tasks=len(tasks),
            workers=self.workers,
        )
        try:
            if self.workers == 1 or len(tasks) <= 1:
                stats.workers = 1
                proofs = self._prove_serial(tasks, stats)
            else:
                proofs = self._prove_pooled(tasks, stats, start)
        finally:
            stats.total_seconds = time.perf_counter() - start
            self._emit(
                "run_end",
                proofs=stats.proofs_generated,
                retries=stats.retries,
                seconds=stats.total_seconds,
            )
            if sink is not None:
                sink.flush()
        return proofs, stats

    # -- serial path ----------------------------------------------------------

    def _prove_serial(
        self, tasks: Sequence[ProofTask], stats: RuntimeStats
    ) -> List[SnarkProof]:
        """In-process execution: ``workers=1`` or pool-death fallback.

        Honors the same retry/fault semantics as the pooled path so a
        flaky dependency injected under test behaves identically at
        either worker count.
        """
        prover = self._serial_prover
        if prover is None:
            prover = self._serial_prover = default_spec_cache().get_prover(
                self.spec
            )
        proofs: List[SnarkProof] = []
        for task in tasks:
            submitted = time.perf_counter()
            attempt = 1
            while True:
                try:
                    if self.fault_injector is not None:
                        self.fault_injector(task.task_id, attempt)
                    t0 = time.perf_counter()
                    with collect_stages() as profile:
                        proof = prover.prove(task.witness, task.public_values)
                    prove_seconds = time.perf_counter() - t0
                    break
                except Exception as exc:
                    if attempt > self.max_retries:
                        raise ProofError(
                            f"task {task.task_id} failed after {attempt} "
                            f"attempts: {exc}"
                        ) from exc
                    stats.retries += 1
                    self._emit_task(
                        "retry", task.task_id, attempt=attempt,
                        reason=repr(exc),
                    )
                    time.sleep(self._backoff(attempt))
                    attempt += 1
            if (
                self.task_timeout_seconds is not None
                and prove_seconds > self.task_timeout_seconds
            ):
                # Serial mode cannot preempt a running prove; record the
                # overrun so operators still see the budget violation.
                # Same run-level event shape as the pooled path, so trace
                # consumers need one "timeout" parser for either mode.
                stats.timeouts += 1
                self._emit(
                    "timeout", tasks=[task.task_id], seconds=prove_seconds
                )
            stats.busy_seconds += prove_seconds
            stages = profile.as_dict()
            stats.records.append(
                TaskRecord(
                    task_id=task.task_id,
                    attempts=attempt,
                    prove_seconds=prove_seconds,
                    latency_seconds=time.perf_counter() - submitted,
                    worker=None,
                    stage_seconds=stages or None,
                )
            )
            self._emit_task(
                "complete", task.task_id, attempt=attempt,
                seconds=prove_seconds,
            )
            if stages:
                self._emit_task(
                    "stage_timing", task.task_id, seconds=prove_seconds,
                    stages=stages,
                )
            proofs.append(proof)
        return proofs

    # -- pooled path ----------------------------------------------------------

    def _prove_pooled(
        self,
        tasks: Sequence[ProofTask],
        stats: RuntimeStats,
        run_start: float,
    ) -> List[SnarkProof]:
        import multiprocessing

        try:
            ctx = multiprocessing.get_context()
            pool = ctx.Pool(
                processes=self.workers,
                initializer=_init_worker,
                initargs=(self.spec, self.fault_injector, self.lane_width),
            )
        except (OSError, ValueError) as exc:
            # Pool could not even start (fd exhaustion, sandboxed env…):
            # degrade to serial rather than failing the batch.
            stats.fell_back_to_serial = True
            stats.workers = 1
            self._emit("fallback_serial", reason=repr(exc))
            return self._prove_serial(tasks, stats)

        try:
            return self._dispatch(pool, tasks, stats)
        except ProofError:
            raise
        except (OSError, EOFError, BrokenPipeError) as exc:
            # The pool died underneath us mid-run.  Proofs completed before
            # the crash lived in the dispatcher's local state, so restart
            # the batch inline with fresh records — the run still completes
            # and the stats describe the authoritative (serial) attempts.
            stats.fell_back_to_serial = True
            stats.workers = 1
            stats.records.clear()
            stats.busy_seconds = 0.0
            self._emit("fallback_serial", reason=repr(exc))
            return self._prove_serial(tasks, stats)
        finally:
            pool.terminate()
            pool.join()

    def _dispatch(
        self, pool, tasks: Sequence[ProofTask], stats: RuntimeStats
    ) -> List[SnarkProof]:
        """The bounded-in-flight dispatch loop."""
        ready: deque = deque(
            _WorkItem(
                [(i, 1) for i in range(lo, min(lo + self.chunk_size, len(tasks)))]
            )
            for lo in range(0, len(tasks), self.chunk_size)
        )
        delayed: List[_WorkItem] = []  # backoff parking lot
        in_flight: Dict[int, Tuple[object, float, _WorkItem, Optional[float]]] = {}
        submitted_at: Dict[int, float] = {}  # first submission per index
        results: Dict[int, Tuple[SnarkProof, TaskRecord]] = {}
        next_handle = 0

        def fail_item(item: _WorkItem, reason: str) -> None:
            """Retry a failed chunk; multi-task chunks split into singles."""
            now_ts = time.perf_counter()
            for index, attempt in item.items:
                if index in results:
                    continue
                if attempt > self.max_retries:
                    raise ProofError(
                        f"task {tasks[index].task_id} failed after {attempt} "
                        f"attempts: {reason}"
                    )
                stats.retries += 1
                self._emit_task(
                    "retry", tasks[index].task_id, attempt=attempt,
                    reason=reason,
                )
                delayed.append(
                    _WorkItem(
                        [(index, attempt + 1)],
                        not_before=now_ts + self._backoff(attempt),
                    )
                )

        while len(results) < len(tasks):
            now = time.perf_counter()
            # Backoff expiry: move parked retries back into the ready queue.
            still_delayed = [w for w in delayed if w.not_before > now]
            for w in delayed:
                if w.not_before <= now:
                    ready.append(w)
            delayed[:] = still_delayed

            # Submit while the in-flight window has room.
            progressed = False
            while ready and len(in_flight) < self.max_in_flight:
                item = ready.popleft()
                payload = [
                    (index, tasks[index], attempt)
                    for index, attempt in item.items
                ]
                handle = next_handle
                next_handle += 1
                for index, _ in item.items:
                    submitted_at.setdefault(index, now)
                deadline = (
                    now + self.task_timeout_seconds * len(item)
                    if self.task_timeout_seconds is not None
                    else None
                )
                async_result = pool.apply_async(_prove_chunk, (payload,))
                in_flight[handle] = (async_result, now, item, deadline)
                stats.queue_depth_samples.append(len(ready) + len(delayed))
                self._emit(
                    "submit",
                    tasks=[tasks[i].task_id for i, _ in item.items],
                    attempts=[a for _, a in item.items],
                )
                progressed = True

            # Poll outstanding chunks.
            for handle in list(in_flight):
                async_result, sub_time, item, deadline = in_flight[handle]
                if async_result.ready():
                    del in_flight[handle]
                    progressed = True
                    try:
                        chunk_out = async_result.get()
                    except Exception as exc:  # worker raised (or died)
                        if isinstance(exc, (OSError, EOFError)):
                            raise  # pool infrastructure failure
                        fail_item(item, repr(exc))
                        continue
                    attempts_by_index = dict(item.items)
                    for index, proof, prove_seconds, pid, stages in chunk_out:
                        if index in results:
                            continue  # stale duplicate of a timed-out chunk
                        record = TaskRecord(
                            task_id=tasks[index].task_id,
                            attempts=attempts_by_index.get(index, 1),
                            prove_seconds=prove_seconds,
                            latency_seconds=(
                                time.perf_counter() - submitted_at[index]
                            ),
                            worker=pid,
                            stage_seconds=stages or None,
                        )
                        results[index] = (proof, record)
                        stats.busy_seconds += prove_seconds
                        stats.records.append(record)
                        self._emit_task(
                            "complete", record.task_id,
                            attempt=record.attempts, seconds=prove_seconds,
                            worker=pid,
                        )
                        if stages:
                            self._emit_task(
                                "stage_timing", record.task_id,
                                seconds=prove_seconds, stages=stages,
                                worker=pid,
                            )
                elif deadline is not None and now > deadline:
                    # Abandon the attempt; the occupied worker will finish
                    # eventually and its late result is discarded above.
                    del in_flight[handle]
                    progressed = True
                    stats.timeouts += 1
                    self._emit(
                        "timeout",
                        tasks=[tasks[i].task_id for i, _ in item.items],
                        seconds=now - sub_time,
                    )
                    fail_item(item, "per-task timeout exceeded")

            if not progressed:
                time.sleep(self.poll_interval_seconds)

        return [results[i][0] for i in range(len(tasks))]

    # -- helpers --------------------------------------------------------------

    def _backoff(self, attempt: int) -> float:
        """Exponential backoff: base × 2^(attempt−1)."""
        return self.retry_backoff_seconds * (2 ** (attempt - 1))

    def _emit(self, event: str, **fields) -> None:
        """A run-level event on this run's backend span."""
        self._ctx.emit(event, **fields)

    def _emit_task(self, event: str, task_id: int, **fields) -> None:
        """A per-task event on the task's own span (child of the run span).

        The task span id is deterministic — ``<run span>/t<task id>`` —
        so every attempt of one task lands on one span without any
        cross-attempt bookkeeping.
        """
        self._ctx.child(
            "task", span=f"{self._ctx.span}/t{task_id}"
        ).emit(event, task_id=task_id, **fields)
