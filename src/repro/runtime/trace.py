"""JSONL trace-event sink for the proving runtime.

One JSON object per line, append-only, cheap enough to leave on in
production: the dispatcher emits lifecycle events (``run_start``,
``submit``, ``complete``, ``retry``, ``timeout``, ``fallback_serial``,
``run_end``) that can be replayed into a timeline, much as the GPU
simulator's utilization traces back Figure 9.
"""

from __future__ import annotations

import json
import threading
import time
from typing import IO, Optional, Union


class JsonlTraceSink:
    """Writes runtime trace events as JSON lines.

    >>> sink = JsonlTraceSink("/tmp/trace.jsonl")   # doctest: +SKIP
    >>> sink.emit("submit", task_id=3, attempt=1)   # doctest: +SKIP
    >>> sink.close()                                # doctest: +SKIP

    Accepts a path or an already-open text handle (handy for tests and
    in-memory buffers); only handles the sink opened itself are closed by
    :meth:`close`.

    :meth:`emit` is thread-safe: one sink may be shared by the proving
    dispatcher, the service's batcher thread, and any number of
    submitting threads — lines never interleave and the event counter
    never drops an increment.
    """

    def __init__(self, target: Union[str, IO[str]]):
        if isinstance(target, str):
            self._handle: IO[str] = open(target, "a", encoding="utf-8")
            self._owns_handle = True
        else:
            self._handle = target
            self._owns_handle = False
        self._lock = threading.Lock()
        self.events_emitted = 0

    def emit(self, event: str, **fields) -> None:
        """Append one event line; ``t`` is the wall-clock timestamp."""
        record = {"t": time.time(), "event": event}
        record.update(fields)
        line = json.dumps(record, sort_keys=True) + "\n"
        with self._lock:
            self._handle.write(line)
            self.events_emitted += 1

    def flush(self) -> None:
        """Flush the underlying handle (called at run end)."""
        with self._lock:
            self._handle.flush()

    def close(self) -> None:
        """Flush, and close the handle if this sink opened it."""
        self.flush()
        if self._owns_handle:
            self._handle.close()

    def __enter__(self) -> "JsonlTraceSink":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()
