"""JSONL trace-event sink and correlated span identity for proving traces.

One JSON object per line, append-only, cheap enough to leave on in
production: the dispatcher emits lifecycle events (``run_start``,
``submit``, ``complete``, ``retry``, ``timeout``, ``fallback_serial``,
``run_end``) that can be replayed into a timeline, much as the GPU
simulator's utilization traces back Figure 9.

Every layer that writes into a shared sink does so through a
:class:`SpanContext`, which stamps each event with the correlated-trace
schema shared by the whole system:

* ``span``   — the id of the span this event belongs to;
* ``parent`` — the id of the enclosing span (None for a root);
* ``kind``   — what the span represents: ``"service"``, ``"request"``,
  ``"batch"``, ``"backend"``, or ``"task"``.

A service run therefore writes one JSONL file from which the complete
service → batch → backend → task lifecycle of any request can be
reconstructed (see :mod:`repro.execution.trace` for the replay side).
Propagation across layers that do not share a call signature uses the
ambient span (:func:`use_span` / :func:`ambient_span`), a
:class:`contextvars.ContextVar` the dispatching layer sets around the
downstream call.
"""

from __future__ import annotations

import itertools
import json
import threading
import time
from contextlib import contextmanager
from contextvars import ContextVar
from typing import IO, Iterator, Optional, Union


class JsonlTraceSink:
    """Writes runtime trace events as JSON lines.

    >>> sink = JsonlTraceSink("/tmp/trace.jsonl")   # doctest: +SKIP
    >>> sink.emit("submit", task_id=3, attempt=1)   # doctest: +SKIP
    >>> sink.close()                                # doctest: +SKIP

    Accepts a path or an already-open text handle (handy for tests and
    in-memory buffers); only handles the sink opened itself are closed by
    :meth:`close`.

    :meth:`emit` is thread-safe: one sink may be shared by the proving
    dispatcher, the service's batcher thread, and any number of
    submitting threads — lines never interleave and the event counter
    never drops an increment.
    """

    def __init__(self, target: Union[str, IO[str]]):
        if isinstance(target, str):
            self._handle: IO[str] = open(target, "a", encoding="utf-8")
            self._owns_handle = True
        else:
            self._handle = target
            self._owns_handle = False
        self._lock = threading.Lock()
        self.events_emitted = 0

    def emit(self, event: str, **fields) -> None:
        """Append one event line; ``t`` is the wall-clock timestamp."""
        record = {"t": time.time(), "event": event}
        record.update(fields)
        line = json.dumps(record, sort_keys=True) + "\n"
        with self._lock:
            self._handle.write(line)
            self.events_emitted += 1

    def flush(self) -> None:
        """Flush the underlying handle (called at run end)."""
        with self._lock:
            self._handle.flush()

    def close(self) -> None:
        """Flush, and close the handle if this sink opened it."""
        self.flush()
        if self._owns_handle:
            self._handle.close()

    def __enter__(self) -> "JsonlTraceSink":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()


# -- correlated spans ----------------------------------------------------------

#: Process-global span-id counter.  ``itertools.count`` increments
#: atomically under the GIL, so ids are unique across threads; worker
#: processes never allocate spans (all trace events are emitted by the
#: dispatching process).
_span_counter = itertools.count(1)


def new_span_id(kind: str) -> str:
    """A fresh process-unique span id, prefixed with the span's kind."""
    return f"{kind}-{next(_span_counter):04d}"


class SpanContext:
    """One node of a correlated trace tree, bound to a (possibly absent) sink.

    Stamps every emitted event with ``span``, ``parent``, and ``kind`` so
    one JSONL file reconstructs the full cross-layer lifecycle.  A
    context with ``sink=None`` swallows emits, which lets tracing stay a
    single code path for callers that run untraced.
    """

    __slots__ = ("sink", "kind", "span", "parent")

    def __init__(
        self,
        sink: Optional[JsonlTraceSink],
        kind: str,
        *,
        parent: Optional[str] = None,
        span: Optional[str] = None,
    ):
        self.sink = sink
        self.kind = kind
        self.parent = parent
        self.span = span if span is not None else new_span_id(kind)

    def emit(self, event: str, **fields) -> None:
        """Emit one event stamped with this span's identity (no-op unsinked)."""
        if self.sink is not None:
            self.sink.emit(
                event, span=self.span, parent=self.parent, kind=self.kind,
                **fields,
            )

    def child(self, kind: str, span: Optional[str] = None) -> "SpanContext":
        """A sub-span parented to this one, sharing the sink."""
        return SpanContext(self.sink, kind, parent=self.span, span=span)


#: The ambient span a dispatching layer sets around a downstream call
#: whose signature it does not control (e.g. the proof service around
#: ``backend.prove_batch``).  Context-local, so concurrent shard threads
#: each see their own parent.
_AMBIENT: ContextVar[Optional[SpanContext]] = ContextVar(
    "repro_ambient_span", default=None
)


def ambient_span() -> Optional[SpanContext]:
    """The innermost ambient :class:`SpanContext`, or None."""
    return _AMBIENT.get()


@contextmanager
def use_span(ctx: SpanContext) -> Iterator[SpanContext]:
    """Make ``ctx`` the ambient span for the duration of the block."""
    token = _AMBIENT.set(ctx)
    try:
        yield ctx
    finally:
        _AMBIENT.reset(token)
