"""Parallel proving runtime (system S22 in DESIGN.md).

The functional counterpart of the paper's throughput story for multicore
CPUs: where :mod:`repro.pipeline` *simulates* a pipelined GPU filling
every SM, this package actually fills every core of the host with real
proof generation.  A picklable :class:`ProverSpec` rebuilds the prover
once per worker process, :class:`ParallelProvingRuntime` shards the task
stream across the pool with bounded in-flight backpressure, retries, and
per-task timeouts, and :class:`RuntimeStats` reports the service-level
numbers (p50/p95/p99 latency, throughput, utilization) an operator of
the paper's §2.1 proving business would watch.
"""

from .pool import ParallelProvingRuntime
from .spec import ProverSpec
from .stats import RuntimeStats, TaskRecord, merge_runtime_stats, percentile
from .trace import (
    JsonlTraceSink,
    SpanContext,
    ambient_span,
    new_span_id,
    use_span,
)

__all__ = [
    "ParallelProvingRuntime",
    "ProverSpec",
    "RuntimeStats",
    "SpanContext",
    "TaskRecord",
    "ambient_span",
    "merge_runtime_stats",
    "new_span_id",
    "percentile",
    "use_span",
    "JsonlTraceSink",
]
