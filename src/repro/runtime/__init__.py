"""Parallel proving runtime (system S22 in DESIGN.md).

The functional counterpart of the paper's throughput story for multicore
CPUs: where :mod:`repro.pipeline` *simulates* a pipelined GPU filling
every SM, this package actually fills every core of the host with real
proof generation.  A picklable :class:`ProverSpec` rebuilds the prover
once per worker process, :class:`ParallelProvingRuntime` shards the task
stream across the pool with bounded in-flight backpressure, retries, and
per-task timeouts, and :class:`RuntimeStats` reports the service-level
numbers (p50/p95/p99 latency, throughput, utilization) an operator of
the paper's §2.1 proving business would watch.
"""

__apidoc__ = """
Timeout semantics differ by mode, deliberately: in pooled mode an
attempt that outlives its budget is killed and retried (the late result,
if any, is discarded); in serial mode (``workers=1`` or the pool-death
fallback) a running prove cannot be preempted, so an overrun is
*recorded, not preempted* — the proof still lands, ``stats.timeouts``
counts the violation, and a run-level ``timeout`` trace event is emitted
with the same ``{"event": "timeout", "tasks": [...], "seconds": ...}``
shape as the pooled path, so trace consumers need one parser for either
mode.
"""

from .pool import ParallelProvingRuntime
from .spec import ProverSpec
from .stats import RuntimeStats, TaskRecord, merge_runtime_stats, percentile
from .trace import (
    JsonlTraceSink,
    SpanContext,
    ambient_span,
    new_span_id,
    use_span,
)

__all__ = [
    "ParallelProvingRuntime",
    "ProverSpec",
    "RuntimeStats",
    "SpanContext",
    "TaskRecord",
    "ambient_span",
    "merge_runtime_stats",
    "new_span_id",
    "percentile",
    "use_span",
    "JsonlTraceSink",
]
