"""Picklable prover construction recipe for worker processes.

A :class:`~repro.core.prover.SnarkProver` carries heavyweight derived
state (expander graphs, eq tables) that is wasteful to ship over a pipe
for every task.  :class:`ProverSpec` is the *recipe* instead: plain data
(the R1CS, PCS knobs, public indices) that crosses the process boundary
once per worker, after which each worker builds its own prover and pays
the R1CS/PCS setup exactly once — the same "fix the instance, stream the
witnesses" discipline the paper's pipeline applies on-device.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Tuple

from ..commitment.brakedown import DEFAULT_COLUMN_CHECKS, BrakedownPCS
from ..core.prover import SnarkProver
from ..core.r1cs import R1CS
from ..core.verifier import SnarkVerifier
from ..encoder.spielman import EncoderParams
from ..hashing.hashers import get_hasher


@dataclass(frozen=True)
class ProverSpec:
    """Everything needed to rebuild an equivalent prover in another process.

    All fields are plain picklable data; :meth:`build_prover` performs the
    (per-worker, once) expensive derivation.  Two processes building from
    the same spec produce byte-identical proofs for the same task because
    the PCS/encoder are seeded deterministically.
    """

    r1cs: R1CS
    public_indices: Tuple[int, ...] = ()
    pcs_seed: int = 0
    num_col_checks: int = DEFAULT_COLUMN_CHECKS
    compress_openings: bool = False
    row_vars: Optional[int] = None
    encoder_params: Optional[EncoderParams] = None
    hasher_name: str = "sha256-hw"

    @classmethod
    def from_prover(cls, prover: SnarkProver) -> "ProverSpec":
        """Extract the recipe from a live prover (its PCS params are public)."""
        params = prover.pcs.params
        return cls(
            r1cs=prover.r1cs,
            public_indices=tuple(prover.public_indices),
            pcs_seed=params.encoder_seed,
            num_col_checks=params.num_col_checks,
            compress_openings=params.compress_openings,
            row_vars=params.row_vars,
            encoder_params=params.encoder_params,
            hasher_name=prover.pcs.hasher.name,
        )

    def build_pcs(self) -> BrakedownPCS:
        """Instantiate the PCS (expander generation happens here)."""
        return BrakedownPCS(
            self.r1cs.field,
            num_vars=self.r1cs.witness_vars,
            row_vars=self.row_vars,
            encoder_params=self.encoder_params,
            seed=self.pcs_seed,
            hasher=get_hasher(self.hasher_name),
            num_col_checks=self.num_col_checks,
            compress_openings=self.compress_openings,
        )

    def build_prover(self) -> SnarkProver:
        """Instantiate a prover; called once per worker process."""
        return SnarkProver(
            self.r1cs, self.build_pcs(), public_indices=list(self.public_indices)
        )

    def build_verifier(self) -> SnarkVerifier:
        """Instantiate the matching verifier (same PCS derivation)."""
        return SnarkVerifier(
            self.r1cs, self.build_pcs(), public_indices=list(self.public_indices)
        )
