"""Report rendering: per-run ``report.md`` and the EXPERIMENTS.md body.

This is the one home of the markdown-table helpers (``md_table`` /
``fmt``) that ``benchmarks/regen_experiments.py`` used to re-implement
locally: the per-run artifact report and the repo-level EXPERIMENTS.md
now render through the same functions, from the same normalized
:class:`~repro.experiments.spec.ExperimentResult` payloads — no bespoke
table code per consumer.
"""

from __future__ import annotations

import io
import time
from typing import Any, Dict, Iterable, List, Mapping, Optional, Sequence

from ..errors import ExperimentError
from .spec import ExperimentResult

# -- shared markdown helpers ---------------------------------------------------


def md_table(headers: Sequence[str], rows: Iterable[Sequence[Any]]) -> str:
    """A GitHub-flavored markdown table."""
    out = ["| " + " | ".join(str(h) for h in headers) + " |",
           "|" + "---|" * len(headers)]
    for row in rows:
        out.append("| " + " | ".join(str(c) for c in row) + " |")
    return "\n".join(out)


def fmt(v: Optional[float], digits: int = 4) -> str:
    """Compact numeric cell; ``None`` renders as an em dash."""
    if v is None:
        return "—"
    return f"{v:.{digits}g}"


# -- per-run report ------------------------------------------------------------


def _guard_cell(result: ExperimentResult) -> str:
    if not result.guards:
        return "—"
    parts = []
    for v in result.guards:
        if not v.enforced:
            mark = "skipped"
        elif v.passed:
            mark = "ok"
        else:
            mark = "**FAIL**"
        parts.append(
            f"{v.guard} ({v.metric} {v.op} {fmt(v.threshold)}: "
            f"{fmt(v.value)}) {mark}"
        )
    return "; ".join(parts)


def render_run_report(
    run_id: str,
    results: Sequence[ExperimentResult],
    *,
    git_rev: str = "unknown",
    host: Optional[Mapping[str, Any]] = None,
    quick: bool = False,
    label: str = "",
) -> str:
    """The ``report.md`` body for one run's artifact directory."""
    buf = io.StringIO()
    buf.write(f"# Experiment run `{run_id}`\n\n")
    if label:
        buf.write(f"**Label:** {label}\n\n")
    started = min(
        (r.started_at for r in results), default=time.time()
    )
    buf.write(
        f"- **git rev:** `{git_rev}`\n"
        f"- **mode:** {'quick' if quick else 'full'}\n"
        f"- **started:** "
        f"{time.strftime('%Y-%m-%d %H:%M:%S UTC', time.gmtime(started))}\n"
    )
    if host:
        buf.write(
            f"- **host:** {host.get('platform', '?')} · "
            f"python {host.get('python', '?')} · "
            f"{host.get('cpu_count', '?')} cores\n"
        )
    buf.write("\n## Experiments\n\n")
    buf.write(
        md_table(
            ["experiment", "status", "duration", "guards"],
            [
                [
                    f"[`{r.name}`]({r.name}.json)",
                    r.status if r.ok else f"**{r.status}**",
                    f"{r.duration_seconds:.2f}s",
                    _guard_cell(r),
                ]
                for r in results
            ],
        )
    )
    buf.write("\n")
    failures = [r for r in results if not r.ok]
    if failures:
        buf.write("\n## Failures\n\n")
        for r in failures:
            buf.write(f"### `{r.name}` — {r.status}\n\n")
            if r.error:
                buf.write(f"```\n{r.error}\n```\n\n")
            for v in r.guard_failures:
                buf.write(f"- guard `{v.guard}`: {v.detail}\n")
            buf.write("\n")
    buf.write("\n## Headline metrics\n\n")
    rows = []
    for r in results:
        watched = {v.metric for v in r.guards}
        for metric in sorted(r.metrics):
            if watched and metric not in watched:
                continue
            if not watched and len(r.metrics) > 8:
                continue
            rows.append([f"`{r.name}`", f"`{metric}`", fmt(r.metrics[metric])])
    if rows:
        buf.write(md_table(["experiment", "metric", "value"], rows))
    else:
        buf.write("(no guard-covered metrics in this run)")
    buf.write(
        "\n\nFull numbers: the per-experiment `<name>.json` files beside "
        "this report; cross-run history: `python -m repro experiment "
        "history <name> <metric>`.\n"
    )
    return buf.getvalue()


# -- EXPERIMENTS.md ------------------------------------------------------------

#: The paper-artifact experiments EXPERIMENTS.md is rendered from.
PAPER_EXPERIMENTS = (
    "table3", "table4", "table5", "table6", "fig9", "table7", "breakdown",
    "table8", "table9", "table10", "table11",
)


def _rows(result: ExperimentResult) -> List[Dict[str, Any]]:
    return list(result.data["rows"])


def _module_section(buf: io.StringIO, title: str, rows, unit: str) -> None:
    buf.write(f"\n### {title}\n\n")
    buf.write(
        md_table(
            ["size", f"CPU baseline {unit}", "paper", f"GPU baseline {unit}",
             "paper", f"ours {unit}", "paper", "ours/CPU", "ours/GPU"],
            [
                [
                    r["label"],
                    fmt(r["values"]["cpu"]), fmt(r["values"].get("cpu_paper")),
                    fmt(r["values"]["gpu_baseline"]),
                    fmt(r["values"].get("gpu_baseline_paper")),
                    fmt(r["values"]["ours"]), fmt(r["values"].get("ours_paper")),
                    fmt(r["values"]["speedup_vs_cpu"], 4) + "x",
                    fmt(r["values"]["speedup_vs_gpu"], 3) + "x",
                ]
                for r in rows
            ],
        )
    )
    buf.write("\n")


def render_experiments_md(
    results: Mapping[str, ExperimentResult]
) -> str:
    """The full EXPERIMENTS.md body from paper-artifact results.

    ``results`` must hold every name in :data:`PAPER_EXPERIMENTS`
    (a ``reproduce-all`` run provides them all).
    """
    missing = [n for n in PAPER_EXPERIMENTS if n not in results]
    if missing:
        raise ExperimentError(
            "cannot render EXPERIMENTS.md: missing results for "
            + ", ".join(missing)
        )
    buf = io.StringIO()
    buf.write(
        """# EXPERIMENTS — paper vs. measured

Every evaluation artifact of the BatchZK paper (Tables 3–11, Figure 9),
regenerated by this repository's calibrated simulator and functional code.
Regenerate this file with `python -m repro experiment reproduce-all`
(which also re-runs every extension bench into a per-run artifact
directory and appends the cross-run perf ledger); the same numbers print
from `pytest benchmarks/ --benchmark-only`.

**Reading guide.** "paper" columns are the published values; "measured"
columns are this reproduction. Per-operation GPU/CPU costs were calibrated
once against a handful of anchor cells (documented in
`src/repro/gpu/costs.py`); everything else — scalings across sizes,
baselines, devices, speedup factors, crossovers — is produced by the
scheduling/cost model. Expect the *shape* to match (orderings, factors
within ~±30%); absolute cells the paper's own tables disagree on
(its CPU baselines differ between Tables 3–5 and Table 7) match their own
table's calibration.
"""
    )

    _module_section(
        buf, "Table 3 — Merkle tree throughput (trees/ms, GH200)",
        _rows(results["table3"]), "(trees/ms)")
    _module_section(
        buf, "Table 4 — sum-check throughput (proofs/ms, GH200)",
        _rows(results["table4"]), "(proofs/ms)")
    _module_section(
        buf, "Table 5 — linear-time encoder throughput (codes/ms, GH200)",
        _rows(results["table5"]), "(codes/ms)")

    buf.write("\n### Table 6 — module latency (ms): pipelining's honest cost\n\n")
    buf.write(
        md_table(
            ["size/module", "baseline ms", "paper", "ours ms", "paper",
             "baseline/ours"],
            [
                [r["label"], fmt(r["values"]["baseline_ms"]),
                 fmt(r["values"]["baseline_paper"]),
                 fmt(r["values"]["ours_ms"]), fmt(r["values"]["ours_paper"]),
                 fmt(r["values"]["ratio"], 3)]
                for r in _rows(results["table6"])
            ],
        )
    )
    buf.write(
        "\n\nThe pipelined modules trade latency for throughput exactly as the "
        "paper reports (ours is slower *per item* in every row).\n"
    )

    buf.write("\n### Figure 9 — GPU core utilization (3090Ti, 10,752 cores)\n\n")
    fig9 = results["fig9"].data["modules"]
    buf.write(
        md_table(
            ["module", "pipelined mean util", "baseline mean util"],
            [
                [m, fmt(t["ours_mean"], 3), fmt(t["baseline_mean"], 3)]
                for m, t in fig9.items()
            ],
        )
    )
    buf.write(
        "\n\nPipelined modules hold near-peak *useful-work* utilization through "
        "the batch (means include fill/drain ramps); the kernel-per-task "
        "baselines decay as stage work shrinks, matching Figure 9's profiles. "
        "Full time-series traces: `repro.bench.compute_fig9()` or the "
        "sparklines in `examples/module_pipelines.py`.\n"
    )

    buf.write("\n### Table 7 — amortized per-proof time (ms, GH200)\n\n")
    buf.write(
        md_table(
            ["scale", "Libsnark", "Bellperson", "Orion&Arkworks",
             "ours merkle (paper)", "ours sumcheck (paper)",
             "ours encoder (paper)", "ours total (paper)",
             "vs Bellperson", "vs Orion&Ark"],
            [
                [
                    r["label"],
                    fmt(r["values"]["libsnark_ms"], 5),
                    fmt(r["values"]["bellperson_ms"], 5),
                    fmt(r["values"]["orion_ark_ms"], 5),
                    f"{fmt(r['values']['ours_merkle_ms'])} "
                    f"({fmt(r['values']['ours_merkle_paper'])})",
                    f"{fmt(r['values']['ours_sumcheck_ms'])} "
                    f"({fmt(r['values']['ours_sumcheck_paper'])})",
                    f"{fmt(r['values']['ours_encoder_ms'])} "
                    f"({fmt(r['values']['ours_encoder_paper'])})",
                    f"{fmt(r['values']['ours_ms'])} "
                    f"({fmt(r['values']['ours_paper'])})",
                    fmt(r["values"]["speedup_vs_bellperson"], 4) + "x",
                    fmt(r["values"]["speedup_vs_orion_ark"], 4) + "x",
                ]
                for r in _rows(results["table7"])
            ],
        )
    )
    bd = results["breakdown"].data
    buf.write(
        f"\n\n**§6.3 speedup decomposition @ S=2^20:** protocol "
        f"{fmt(bd['protocol_speedup'], 3)}x (paper {bd['paper_protocol_speedup']}x), "
        f"pipeline {fmt(bd['pipeline_speedup'], 3)}x (paper "
        f"{bd['paper_pipeline_speedup']}x).\n"
    )

    buf.write("\n### Table 8 — across GPUs @ S = 2^20\n\n")
    buf.write(
        md_table(
            ["GPU", "Bell latency s (paper)", "ours latency s (paper)",
             "Bell thpt /s (paper)", "ours thpt /s (paper)", "thpt speedup"],
            [
                [
                    r["label"],
                    f"{fmt(r['values']['bell_latency_s'])} "
                    f"({fmt(r['values']['bell_latency_paper'])})",
                    f"{fmt(r['values']['ours_latency_s'])} "
                    f"({fmt(r['values']['ours_latency_paper'])})",
                    f"{fmt(r['values']['bell_throughput'])} "
                    f"({fmt(r['values']['bell_throughput_paper'])})",
                    f"{fmt(r['values']['ours_throughput'])} "
                    f"({fmt(r['values']['ours_throughput_paper'])})",
                    fmt(r["values"]["throughput_speedup"], 4) + "x",
                ]
                for r in _rows(results["table8"])
            ],
        )
    )
    buf.write(
        "\n\nThe paper's headline '259.5x on V100' corresponds to the V100 row's "
        "throughput speedup.\n"
    )

    buf.write("\n### Table 9 — communication/computation overlap per beat\n\n")
    buf.write(
        md_table(
            ["GPU", "comm MB", "comm ms (paper)", "comp ms (paper)",
             "overall ms (paper)"],
            [
                [
                    r["label"],
                    fmt(r["values"]["comm_mb"], 4),
                    f"{fmt(r['values']['comm_ms'])} "
                    f"({fmt(r['values']['comm_paper'])})",
                    f"{fmt(r['values']['comp_ms'])} "
                    f"({fmt(r['values']['comp_paper'])})",
                    f"{fmt(r['values']['overall_ms'])} "
                    f"({fmt(r['values']['overall_paper'])})",
                ]
                for r in _rows(results["table9"])
            ],
        )
    )

    buf.write("\n### Table 10 — device memory per in-flight proof (GB)\n\n")
    buf.write(
        md_table(
            ["scale", "Bellperson (paper values)", "ours (paper)", "reduction"],
            [
                [
                    r["label"],
                    fmt(r["values"]["bellperson_gb"]),
                    f"{fmt(r['values']['ours_gb'])} "
                    f"({fmt(r['values']['ours_paper'])})",
                    fmt(r["values"]["reduction"], 3) + "x",
                ]
                for r in _rows(results["table10"])
            ],
        )
    )
    buf.write(
        "\n\nOur footprint model is linear in S (the §3.1 ≈2N-blocks "
        "discipline); the paper's own column grows sublinearly, so the match "
        "is exact at the 2^20 calibration point and drifts to ~30% at the "
        "ends — the 3–10x advantage over Bellperson holds everywhere.\n"
    )

    buf.write("\n### Table 11 — verifiable ML (VGG-16 / CIFAR-10, GH200)\n\n")
    rows11 = _rows(results["table11"])
    buf.write(
        md_table(
            ["system", "throughput /s", "latency s", "accuracy %"],
            [
                [
                    r["label"],
                    fmt(r["values"]["throughput"])
                    + (
                        f" (paper {fmt(r['values']['throughput_paper'])})"
                        if "throughput_paper" in r["values"]
                        else ""
                    ),
                    fmt(r["values"]["latency_s"])
                    + (
                        f" (paper {fmt(r['values']['latency_paper'])})"
                        if "latency_paper" in r["values"]
                        else ""
                    ),
                    fmt(r["values"]["accuracy"]),
                ]
                for r in rows11
            ],
        )
    )
    ours11 = next(r for r in rows11 if r["label"] == "Ours")
    amort = 1e3 / ours11["values"]["throughput"]
    buf.write(
        f"\n\nVGG-16 circuit: {ours11['values']['gates'] / 1e6:.1f} M gates "
        f"(zkCNN-style accounting). Amortized generation {amort:.0f} ms → the "
        "paper's 'first sub-second proof generation' claim reproduces. "
        "Baseline rows are the paper's published measurements (CPU systems "
        "we do not re-run); accuracy values are the published model "
        "accuracies — our reproduction does not retrain VGG-16 (no data/GPU), "
        "see DESIGN.md substitutions.\n"
    )

    buf.write(
        """
### Ablations (this reproduction's additions)

`pytest benchmarks/bench_ablations.py --benchmark-only` exercises each
design choice in isolation:

| design choice (paper §) | ablation result |
|---|---|
| per-stage kernels vs kernel-per-task (§3/§4) | >2x throughput from scheduling alone (no cost-penalty modeling) |
| proportional thread allocation (§4) | uniform split inflates the beat >5x (big early stages starve) |
| bucket-sorted warp assignment (§3.3) | >1.5x fewer warp-cycles on bimodal row lengths |
| double-buffer tables (Figure 5) | zero read/write hazards vs overlaps for the stride layout |
| tail-stage merging (§4) | cuts pipeline latency with <10% throughput cost |
| multi-stream overlap (§3.1/§4) | single-stream beat >1.5x longer on V100 |
| shared Merkle multiproofs (our extension) | compressed PCS openings strictly smaller than per-column paths |

### Future work implemented (§6.2's closing direction)

`benchmarks/bench_frontier.py` sweeps **stage fusion** and an
**express-lane hybrid** over the latency–throughput plane. Findings:

* At module scale (Merkle 2^18) fusion is a real trade: fusing 19 stages
  down to 4 cuts latency ~4.3x for ~9% throughput; fully fused loses ~30%.
* At system scale (S = 2^20) every stage's work dwarfs the thread count,
  so intra-group idling is negligible and fusion cuts latency ~29x at
  ~0.2% throughput cost — suggesting the paper's deep per-round pipelines
  buy little at large scales and the latency gap of Table 6 is mostly
  avoidable there.
* A 25% express lane serves latency-critical requests at ~10x lower
  latency while the bulk pipeline keeps ~75% of peak throughput.

### Calibration sensitivity

`benchmarks/bench_sensitivity.py` perturbs every calibrated cost constant
(hash/entry/MAC cycles, launch overhead, baseline penalty) across
0.5x–2x and re-checks the headline claims at all 25 grid points. All
hold everywhere; the vs-Bellperson speedup stays within ~250x–600x. The
reproduction's conclusions are properties of the scheduling model, not of
the calibration choices.
"""
    )
    return buf.getvalue()


__all__ = [
    "md_table",
    "fmt",
    "render_run_report",
    "render_experiments_md",
    "PAPER_EXPERIMENTS",
]
