"""Unified experiment runner (system S29 in DESIGN.md): one manifest.

Every evaluation artifact in this repository — the BatchZK paper's
Tables 3–11 and Figure 9, and the seven extension benches (S22–S28) —
registers an :class:`ExperimentSpec` in one catalog: a named, tagged
runner with quick/full parameterizations and *declarative* regression
guards (the old per-script ``--min-speedup``/``--min-ratio`` flags,
promoted to data).  Running experiments through :class:`RunSession`
yields one normalized :class:`ExperimentResult` schema per experiment,
an ``artifacts/<run-id>/`` directory (``manifest.json``, ``report.md``,
per-experiment JSON), and an append to the cross-run SQLite
:class:`Ledger` — so ``python -m repro experiment compare`` can answer
"did throughput regress since rev X?" across the repo's whole history.

CLI: ``python -m repro experiment list|run|compare|history|reproduce-all``
(``reproduce-all`` also regenerates EXPERIMENTS.md from the paper-table
results, replacing ``benchmarks/regen_experiments.py``'s bespoke
renderer).  The ``benchmarks/bench_*.py`` scripts are now thin shims
over this registry; their measurement cores live in
:mod:`repro.experiments.benches`.
"""

from .spec import (
    RESULT_SCHEMA_VERSION,
    ExperimentResult,
    ExperimentSpec,
    Guard,
    GuardVerdict,
    current_git_rev,
    execute_spec,
    host_fingerprint,
    validate_result,
)
from .registry import (
    KNOWN_SUITES,
    available_experiments,
    experiments_by_tag,
    get_experiment,
    register_experiment,
    select_experiments,
)
from .ledger import Ledger, MetricDelta, MetricPoint
from .paths import (
    ARTIFACTS_ENV,
    artifacts_root,
    default_bench_json,
    default_ledger_path,
    new_run_id,
    repo_root,
)
from .report import fmt, md_table, render_experiments_md, render_run_report
from .runner import RunSession

# Importing the catalog registers every built-in experiment.
from . import catalog as _catalog  # noqa: F401  (side-effect import)

__apidoc__ = """\
**The result schema (v1).** One JSON object per experiment execution:
``schema_version``, ``name``, ``status`` (``ok`` / ``guard_failed`` /
``error``), ``params`` (the resolved quick-or-full parameterization plus
overrides), ``metrics`` (flat name → finite float — what the ledger
indexes), ``data`` (the runner's full payload), ``guards`` (one verdict
per declared guard: threshold, observed value, passed, enforced),
``git_rev``, ``host``, ``started_at``, ``duration_seconds``.
`validate_result` is the schema's executable definition.

**Guards.** A `Guard` names a metric, a direction (``>=`` higher is
better, ``<=`` lower), and a default threshold; a precondition like
``("host_cores", ">=", 2)`` keeps a guard advisory on hosts that can't
meaningfully run it (the cluster scaling guard on a 1-core CI box).
Guard directions flow into the ledger's ``metrics.direction`` column,
which is what lets `Ledger.regressions` know which way "worse" points
without any per-metric configuration.

**Exit codes.** ``run``/``reproduce-all``: 0 all ok · 1 an experiment
errored · 2 a guard failed.  ``compare``: 2 when a directional metric
moved worse than tolerance.  CI fails on either nonzero.
"""

__all__ = [
    "RESULT_SCHEMA_VERSION",
    "ExperimentResult",
    "ExperimentSpec",
    "Guard",
    "GuardVerdict",
    "current_git_rev",
    "execute_spec",
    "host_fingerprint",
    "validate_result",
    "KNOWN_SUITES",
    "available_experiments",
    "experiments_by_tag",
    "get_experiment",
    "register_experiment",
    "select_experiments",
    "Ledger",
    "MetricDelta",
    "MetricPoint",
    "ARTIFACTS_ENV",
    "artifacts_root",
    "default_bench_json",
    "default_ledger_path",
    "new_run_id",
    "repo_root",
    "fmt",
    "md_table",
    "render_experiments_md",
    "render_run_report",
    "RunSession",
]
