"""``python -m repro experiment …`` — the unified experiment runner CLI.

Subcommands::

    list            show the registered catalog (names, tags, guards)
    run             execute experiments into artifacts/<run-id>/
    reproduce-all   run everything and regenerate EXPERIMENTS.md
    compare         metric deltas between two ledger runs
    history         one metric's cross-run trajectory

Exit codes (``run``/``reproduce-all``): 0 all ok · 1 an experiment
errored (or a CLI/usage error) · 2 a regression guard failed.
``compare`` exits 2 when a directional metric regressed beyond
tolerance.
"""

from __future__ import annotations

import argparse
import json
import pathlib
import sys
from typing import Any, Dict, List, Optional, Sequence

from ..errors import ExperimentError
from .ledger import Ledger
from .paths import default_ledger_path
from .registry import KNOWN_SUITES, select_experiments
from .report import PAPER_EXPERIMENTS, render_experiments_md
from .runner import RunSession


def _parse_kv(pairs: Sequence[str], *, what: str) -> Dict[str, Any]:
    """Parse repeated ``KEY=VALUE`` flags; values decode as JSON when
    possible (so ``--param batches=[4,8]`` works), else stay strings."""
    out: Dict[str, Any] = {}
    for pair in pairs:
        if "=" not in pair:
            raise ExperimentError(
                f"malformed {what} {pair!r}: expected KEY=VALUE"
            )
        key, raw = pair.split("=", 1)
        try:
            out[key.strip()] = json.loads(raw)
        except json.JSONDecodeError:
            out[key.strip()] = raw
    return out


def _parse_guards(pairs: Sequence[str]) -> Dict[str, float]:
    parsed = _parse_kv(pairs, what="guard override")
    out: Dict[str, float] = {}
    for name, value in parsed.items():
        try:
            out[name] = float(value)
        except (TypeError, ValueError):
            raise ExperimentError(
                f"guard override {name!r} needs a numeric threshold, "
                f"got {value!r}"
            )
    return out


def _ledger_from(args: argparse.Namespace) -> Ledger:
    path = (
        pathlib.Path(args.ledger) if args.ledger else default_ledger_path()
    )
    if not path.exists():
        raise ExperimentError(
            f"no ledger at {path}; run some experiments first "
            "(python -m repro experiment run --quick)"
        )
    return Ledger(path)


def _build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro experiment",
        description="unified experiment runner + perf-trajectory ledger",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    p_list = sub.add_parser("list", help="show the registered catalog")
    p_list.add_argument("--suite", choices=KNOWN_SUITES, default=None)
    p_list.add_argument("--tag", action="append", default=[])

    for name, helptext in (
        ("run", "execute experiments into an artifact directory"),
        ("reproduce-all", "run everything and regenerate EXPERIMENTS.md"),
    ):
        p = sub.add_parser(name, help=helptext)
        if name == "run":
            p.add_argument("names", nargs="*", help="experiment names")
            p.add_argument("--suite", choices=KNOWN_SUITES, default=None)
            p.add_argument("--tag", action="append", default=[])
        p.add_argument("--quick", action="store_true", help="CI smoke sizes")
        p.add_argument("--label", default="", help="free-form run label")
        p.add_argument(
            "--out-dir",
            default=None,
            help="artifact root (default: <repo>/artifacts, or "
            "$REPRO_ARTIFACTS_DIR)",
        )
        p.add_argument("--ledger", default=None, help="ledger sqlite path")
        p.add_argument(
            "--no-ledger",
            action="store_true",
            help="skip the cross-run ledger append",
        )
        p.add_argument(
            "--guard",
            action="append",
            default=[],
            metavar="NAME=VALUE",
            help="override a guard threshold (e.g. min_speedup=1.5)",
        )
        p.add_argument(
            "--param",
            action="append",
            default=[],
            metavar="KEY=VALUE",
            help="override a runner parameter (JSON values accepted)",
        )
        if name == "reproduce-all":
            p.add_argument(
                "--experiments-md",
                default=None,
                help="where to write EXPERIMENTS.md "
                "(default: <repo>/EXPERIMENTS.md)",
            )

    p_cmp = sub.add_parser("compare", help="metric deltas between two runs")
    p_cmp.add_argument("--baseline", default=None, help="baseline run id")
    p_cmp.add_argument("--latest", default=None, help="latest run id")
    p_cmp.add_argument("--since-rev", default=None, help="baseline git rev")
    p_cmp.add_argument("--experiment", default=None)
    p_cmp.add_argument("--tolerance", type=float, default=0.05)
    p_cmp.add_argument("--ledger", default=None)
    p_cmp.add_argument(
        "--all-metrics",
        action="store_true",
        help="include metrics without a guard direction",
    )

    p_hist = sub.add_parser("history", help="one metric's trajectory")
    p_hist.add_argument("name", help="experiment name")
    p_hist.add_argument("metric", help="metric name")
    p_hist.add_argument("--limit", type=int, default=None)
    p_hist.add_argument("--ledger", default=None)

    return parser


# -- subcommand bodies ---------------------------------------------------------


def _cmd_list(args: argparse.Namespace) -> int:
    specs = select_experiments(suite=args.suite, tags=args.tag or None)
    width = max((len(s.name) for s in specs), default=10)
    for spec in specs:
        guards = ", ".join(
            f"{g.name}({g.metric} {g.op} {g.threshold:g})"
            for g in spec.guards
        )
        line = (
            f"{spec.name:<{width}}  [{', '.join(spec.tags)}]  "
            f"{spec.description}"
        )
        if guards:
            line += f"  guards: {guards}"
        print(line)
    print(f"\n{len(specs)} experiments; suites: {', '.join(KNOWN_SUITES)}")
    return 0


def _execute(
    args: argparse.Namespace, names: Optional[List[str]], suite: Optional[str],
    tags: Optional[List[str]],
) -> RunSession:
    specs = select_experiments(names=names, suite=suite, tags=tags)
    if not specs:
        raise ExperimentError("nothing selected to run")
    session = RunSession(
        quick=args.quick,
        label=args.label,
        artifact_root=(
            pathlib.Path(args.out_dir) if args.out_dir else None
        ),
        ledger_path=pathlib.Path(args.ledger) if args.ledger else None,
        use_ledger=not args.no_ledger,
    )
    params = _parse_kv(args.param, what="param override")
    guards = _parse_guards(args.guard)

    def progress(spec):
        print(f"[{session.run_id}] running {spec.name} …", flush=True)

    session.run_all(
        specs,
        param_overrides=params or None,
        guard_overrides=guards or None,
        progress=progress,
    )
    return session


def _finish(session: RunSession) -> int:
    directory = session.finalize()
    for result in session.results:
        marker = {"ok": "ok", "guard_failed": "GUARD FAIL", "error": "ERROR"}[
            result.status
        ]
        print(f"  {result.name:<24} {marker:<10} "
              f"{result.duration_seconds:.2f}s")
        for verdict in result.guard_failures:
            print(f"    guard {verdict.guard}: {verdict.detail}")
        if result.error:
            print(f"    {result.error}")
    print(f"artifacts: {directory}")
    if session.use_ledger:
        ledger = (
            session.ledger_path
            if session.ledger_path is not None
            else default_ledger_path()
        )
        print(f"ledger: {ledger}")
    return session.exit_code()


def _cmd_run(args: argparse.Namespace) -> int:
    session = _execute(
        args, names=args.names or None, suite=args.suite,
        tags=args.tag or None,
    )
    return _finish(session)


def _cmd_reproduce_all(args: argparse.Namespace) -> int:
    session = _execute(args, names=None, suite="all", tags=None)
    code = _finish(session)
    by_name = {r.name: r for r in session.results}
    ready = all(
        name in by_name and by_name[name].ok for name in PAPER_EXPERIMENTS
    )
    if ready:
        from .paths import repo_root

        target = (
            pathlib.Path(args.experiments_md)
            if args.experiments_md
            else repo_root() / "EXPERIMENTS.md"
        )
        target.write_text(render_experiments_md(by_name))
        print(f"EXPERIMENTS.md: {target}")
    else:
        broken = [
            name
            for name in PAPER_EXPERIMENTS
            if name not in by_name or not by_name[name].ok
        ]
        print(
            "EXPERIMENTS.md not regenerated; paper artifacts failed: "
            + ", ".join(broken),
            file=sys.stderr,
        )
        code = code or 1
    return code


def _cmd_compare(args: argparse.Namespace) -> int:
    with _ledger_from(args) as ledger:
        baseline = args.baseline
        if args.since_rev and baseline is None:
            baseline = ledger.run_for_rev(args.since_rev)
            if baseline is None:
                raise ExperimentError(
                    f"no recorded run at git rev {args.since_rev!r}; "
                    f"known runs: {', '.join(ledger.run_ids()) or 'none'}"
                )
        deltas = ledger.compare(
            baseline,
            args.latest,
            experiment=args.experiment,
            directional_only=not args.all_metrics,
        )
        if not deltas:
            print("nothing to compare (need two runs with shared metrics)")
            return 0
        regressed = 0
        for delta in deltas:
            bad = delta.is_regression(args.tolerance)
            regressed += bad
            print(("REGRESSION  " if bad else "            ")
                  + delta.describe())
        print(
            f"\n{len(deltas)} metrics compared, {regressed} regressed "
            f"(tolerance {args.tolerance:.0%})"
        )
        return 2 if regressed else 0


def _cmd_history(args: argparse.Namespace) -> int:
    with _ledger_from(args) as ledger:
        points = ledger.history(args.name, args.metric, limit=args.limit)
        if not points:
            raise ExperimentError(
                f"no ledger history for {args.name}/{args.metric}"
            )
        for p in points:
            print(f"{p.run_id}  {p.git_rev:<12}  {p.value:g}")
        first, last = points[0].value, points[-1].value
        if first:
            print(
                f"\n{len(points)} runs; {first:g} → {last:g} "
                f"({(last - first) / abs(first):+.1%})"
            )
    return 0


def main(argv: Optional[Sequence[str]] = None) -> int:
    parser = _build_parser()
    args = parser.parse_args(argv)
    handler = {
        "list": _cmd_list,
        "run": _cmd_run,
        "reproduce-all": _cmd_reproduce_all,
        "compare": _cmd_compare,
        "history": _cmd_history,
    }[args.command]
    try:
        return handler(args)
    except ExperimentError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 1


if __name__ == "__main__":
    raise SystemExit(main())
