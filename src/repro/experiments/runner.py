"""The run session: execute specs, write ``artifacts/<run-id>/``, append
the ledger.

One :class:`RunSession` is one invocation of ``python -m repro
experiment run`` (or ``reproduce-all``).  It owns the artifact
directory:

``manifest.json``
    what ran, with which params/guard overrides, and the outcome map.
``report.md``
    the human summary (statuses, guard verdicts, headline metrics).
``<experiment>.json``
    each experiment's normalized :class:`ExperimentResult`.

Unless disabled, every result is also appended to the cross-run SQLite
ledger so ``compare``/``regressions``/``history`` can see it later.
"""

from __future__ import annotations

import json
import pathlib
import time
from dataclasses import dataclass, field
from typing import Any, Dict, List, Mapping, Optional, Sequence

from .ledger import Ledger
from .paths import default_ledger_path, new_run_id, run_dir
from .spec import (
    ExperimentResult,
    ExperimentSpec,
    current_git_rev,
    execute_spec,
    host_fingerprint,
)

MANIFEST_SCHEMA_VERSION = 1


@dataclass
class RunSession:
    """One experiment invocation: artifact dir + optional ledger append."""

    quick: bool = False
    label: str = ""
    artifact_root: Optional[pathlib.Path] = None
    ledger_path: Optional[pathlib.Path] = None
    use_ledger: bool = True
    git_rev: str = ""
    run_id: str = ""
    directory: pathlib.Path = field(init=False)
    results: List[ExperimentResult] = field(default_factory=list)

    def __post_init__(self) -> None:
        if not self.git_rev:
            self.git_rev = current_git_rev()
        if not self.run_id:
            self.run_id = new_run_id(self.git_rev)
        self.host = host_fingerprint()
        self.started_at = time.time()
        self.directory = run_dir(self.run_id, self.artifact_root)
        # run_dir uniquifies; keep run_id in sync with the directory name
        # so manifest, ledger, and path all agree.
        self.run_id = self.directory.name
        self.directory.mkdir(parents=True, exist_ok=True)

    # -- execution -------------------------------------------------------

    def run(
        self,
        spec: ExperimentSpec,
        *,
        param_overrides: Optional[Mapping[str, Any]] = None,
        guard_overrides: Optional[Mapping[str, float]] = None,
    ) -> ExperimentResult:
        """Execute one spec, persist its JSON, remember the result."""
        result = execute_spec(
            spec,
            quick=self.quick,
            param_overrides=param_overrides,
            guard_overrides=guard_overrides,
            git_rev=self.git_rev,
        )
        self.results.append(result)
        out = self.directory / f"{result.name}.json"
        out.write_text(
            json.dumps(result.to_dict(), indent=2, sort_keys=True, default=str)
            + "\n"
        )
        return result

    def run_all(
        self,
        specs: Sequence[ExperimentSpec],
        *,
        param_overrides: Optional[Mapping[str, Any]] = None,
        guard_overrides: Optional[Mapping[str, float]] = None,
        progress=None,
    ) -> List[ExperimentResult]:
        for spec in specs:
            if progress is not None:
                progress(spec)
            self.run(
                spec,
                param_overrides=param_overrides,
                guard_overrides=guard_overrides,
            )
        return self.results

    # -- persistence -----------------------------------------------------

    def manifest(self) -> Dict[str, Any]:
        return {
            "manifest_schema_version": MANIFEST_SCHEMA_VERSION,
            "run_id": self.run_id,
            "git_rev": self.git_rev,
            "host": self.host,
            "quick": self.quick,
            "label": self.label,
            "started_at": self.started_at,
            "experiments": [
                {
                    "name": r.name,
                    "status": r.status,
                    "duration_seconds": r.duration_seconds,
                    "result_file": f"{r.name}.json",
                    "guards": [v.to_dict() for v in r.guards],
                }
                for r in self.results
            ],
        }

    def finalize(self) -> pathlib.Path:
        """Write manifest + report, append the ledger; returns the dir."""
        from .report import render_run_report

        (self.directory / "manifest.json").write_text(
            json.dumps(self.manifest(), indent=2, sort_keys=True, default=str)
            + "\n"
        )
        (self.directory / "report.md").write_text(
            render_run_report(
                self.run_id,
                self.results,
                git_rev=self.git_rev,
                host=self.host,
                quick=self.quick,
                label=self.label,
            )
        )
        if self.use_ledger:
            path = (
                self.ledger_path
                if self.ledger_path is not None
                else default_ledger_path()
            )
            with Ledger(path) as ledger:
                ledger.record_run(
                    self.run_id,
                    git_rev=self.git_rev,
                    host=self.host,
                    quick=self.quick,
                    label=self.label,
                    started_at=self.started_at,
                )
                for result in self.results:
                    ledger.record_result(self.run_id, result)
        return self.directory

    # -- outcome ---------------------------------------------------------

    @property
    def guard_failed(self) -> bool:
        return any(r.status == "guard_failed" for r in self.results)

    @property
    def errored(self) -> bool:
        return any(r.status == "error" for r in self.results)

    def exit_code(self) -> int:
        """0 ok · 1 an experiment errored · 2 a guard regressed."""
        if self.errored:
            return 1
        if self.guard_failed:
            return 2
        return 0


__all__ = ["RunSession", "MANIFEST_SCHEMA_VERSION"]
