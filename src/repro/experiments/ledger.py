"""Cross-run SQLite perf-trajectory ledger.

Every experiment run appends its metrics here, so any later PR can ask
the SZKP-style scaling-study questions: *did throughput regress vs N
runs ago, on which experiment, at which metric?*  Three tables:

``runs``
    one row per invocation (run id, git rev, host JSON, quick flag).
``results``
    one row per experiment execution (status, duration, params, guard
    verdicts as JSON).
``metrics``
    one row per flat numeric metric, carrying the guard-derived
    ``direction`` (``higher``/``lower``/NULL) that tells
    :meth:`Ledger.regressions` which way is worse.

The query API is deliberately small: :meth:`history` (one metric's
trajectory), :meth:`compare` (two runs, metric by metric), and
:meth:`regressions` (directional metrics that got worse since a rev).
"""

from __future__ import annotations

import json
import pathlib
import sqlite3
import time
from dataclasses import dataclass
from typing import Any, Dict, List, Optional, Union

from ..errors import ExperimentError
from .spec import ExperimentResult

_SCHEMA = """
CREATE TABLE IF NOT EXISTS runs (
    run_id      TEXT PRIMARY KEY,
    started_at  REAL NOT NULL,
    git_rev     TEXT NOT NULL,
    host_json   TEXT NOT NULL,
    quick       INTEGER NOT NULL DEFAULT 0,
    label       TEXT NOT NULL DEFAULT ''
);
CREATE TABLE IF NOT EXISTS results (
    id          INTEGER PRIMARY KEY,
    run_id      TEXT NOT NULL REFERENCES runs(run_id),
    experiment  TEXT NOT NULL,
    status      TEXT NOT NULL,
    duration_s  REAL NOT NULL,
    git_rev     TEXT NOT NULL,
    params_json TEXT NOT NULL,
    guards_json TEXT NOT NULL
);
CREATE TABLE IF NOT EXISTS metrics (
    id          INTEGER PRIMARY KEY,
    run_id      TEXT NOT NULL REFERENCES runs(run_id),
    experiment  TEXT NOT NULL,
    metric      TEXT NOT NULL,
    value       REAL NOT NULL,
    direction   TEXT,
    git_rev     TEXT NOT NULL,
    recorded_at REAL NOT NULL
);
CREATE INDEX IF NOT EXISTS idx_metrics_lookup
    ON metrics (experiment, metric, recorded_at);
CREATE INDEX IF NOT EXISTS idx_metrics_run ON metrics (run_id);
"""


@dataclass
class MetricPoint:
    """One observation of one metric in one run."""

    run_id: str
    experiment: str
    metric: str
    value: float
    git_rev: str
    recorded_at: float
    direction: Optional[str] = None


@dataclass
class MetricDelta:
    """A baseline→latest movement of one metric (compare/regressions)."""

    experiment: str
    metric: str
    baseline_run: str
    baseline_rev: str
    baseline_value: float
    latest_run: str
    latest_rev: str
    latest_value: float
    direction: Optional[str]

    @property
    def change_fraction(self) -> float:
        if self.baseline_value == 0:
            return float("inf") if self.latest_value != 0 else 0.0
        return (self.latest_value - self.baseline_value) / abs(
            self.baseline_value
        )

    def is_regression(self, tolerance: float) -> bool:
        """Worse than baseline by more than ``tolerance`` (directional)."""
        if self.direction == "higher":
            return self.change_fraction < -tolerance
        if self.direction == "lower":
            return self.change_fraction > tolerance
        return False

    def describe(self) -> str:
        arrow = {"higher": "↑ better", "lower": "↓ better"}.get(
            self.direction or "", "no direction"
        )
        return (
            f"{self.experiment}/{self.metric}: "
            f"{self.baseline_value:g} ({self.baseline_rev}) → "
            f"{self.latest_value:g} ({self.latest_rev}) "
            f"[{self.change_fraction:+.1%}, {arrow}]"
        )


class Ledger:
    """Append-only metric history over every experiment run."""

    def __init__(self, path: Union[str, pathlib.Path]) -> None:
        self.path = pathlib.Path(path)
        self.path.parent.mkdir(parents=True, exist_ok=True)
        self._conn = sqlite3.connect(str(self.path))
        self._conn.executescript(_SCHEMA)
        self._conn.commit()

    def close(self) -> None:
        self._conn.close()

    def __enter__(self) -> "Ledger":
        return self

    def __exit__(self, *exc_info: Any) -> None:
        self.close()

    # -- writes ----------------------------------------------------------

    def record_run(
        self,
        run_id: str,
        *,
        git_rev: str,
        host: Optional[Dict[str, Any]] = None,
        quick: bool = False,
        label: str = "",
        started_at: Optional[float] = None,
    ) -> None:
        self._conn.execute(
            "INSERT OR REPLACE INTO runs "
            "(run_id, started_at, git_rev, host_json, quick, label) "
            "VALUES (?, ?, ?, ?, ?, ?)",
            (
                run_id,
                started_at if started_at is not None else time.time(),
                git_rev,
                json.dumps(host or {}, sort_keys=True),
                int(bool(quick)),
                label,
            ),
        )
        self._conn.commit()

    def record_result(
        self,
        run_id: str,
        result: ExperimentResult,
        *,
        directions: Optional[Dict[str, str]] = None,
    ) -> None:
        """Append one result's row and every flat metric observation.

        ``directions`` (metric → "higher"/"lower") defaults to the
        directions implied by the result's own guard verdicts.
        """
        row = self._conn.execute(
            "SELECT 1 FROM runs WHERE run_id = ?", (run_id,)
        ).fetchone()
        if row is None:
            raise ExperimentError(
                f"run {run_id!r} is not recorded; call record_run first"
            )
        if directions is None:
            directions = {
                v.metric: ("higher" if v.op == ">=" else "lower")
                for v in result.guards
            }
        self._conn.execute(
            "INSERT INTO results "
            "(run_id, experiment, status, duration_s, git_rev, params_json, "
            "guards_json) VALUES (?, ?, ?, ?, ?, ?, ?)",
            (
                run_id,
                result.name,
                result.status,
                result.duration_seconds,
                result.git_rev,
                json.dumps(result.params, sort_keys=True, default=str),
                json.dumps(
                    [v.to_dict() for v in result.guards], sort_keys=True
                ),
            ),
        )
        now = result.started_at or time.time()
        self._conn.executemany(
            "INSERT INTO metrics "
            "(run_id, experiment, metric, value, direction, git_rev, "
            "recorded_at) VALUES (?, ?, ?, ?, ?, ?, ?)",
            [
                (
                    run_id,
                    result.name,
                    metric,
                    float(value),
                    directions.get(metric),
                    result.git_rev,
                    now,
                )
                for metric, value in sorted(result.metrics.items())
            ],
        )
        self._conn.commit()

    # -- queries ---------------------------------------------------------

    def run_ids(self) -> List[str]:
        """Every recorded run id, oldest first."""
        rows = self._conn.execute(
            "SELECT run_id FROM runs ORDER BY started_at, run_id"
        ).fetchall()
        return [r[0] for r in rows]

    def latest_run_id(self) -> Optional[str]:
        ids = self.run_ids()
        return ids[-1] if ids else None

    def run_for_rev(self, git_rev: str) -> Optional[str]:
        """The most recent run recorded at ``git_rev`` (prefix match)."""
        rows = self._conn.execute(
            "SELECT run_id FROM runs WHERE git_rev LIKE ? "
            "ORDER BY started_at DESC, run_id DESC LIMIT 1",
            (git_rev + "%",),
        ).fetchone()
        return rows[0] if rows else None

    def history(
        self, name: str, metric: str, limit: Optional[int] = None
    ) -> List[MetricPoint]:
        """The trajectory of one experiment metric, oldest first."""
        sql = (
            "SELECT run_id, experiment, metric, value, git_rev, "
            "recorded_at, direction FROM metrics "
            "WHERE experiment = ? AND metric = ? ORDER BY recorded_at, id"
        )
        rows = self._conn.execute(sql, (name, metric)).fetchall()
        if limit is not None:
            rows = rows[-limit:]
        return [
            MetricPoint(
                run_id=r[0],
                experiment=r[1],
                metric=r[2],
                value=r[3],
                git_rev=r[4],
                recorded_at=r[5],
                direction=r[6],
            )
            for r in rows
        ]

    def metrics_for_run(self, run_id: str) -> List[MetricPoint]:
        rows = self._conn.execute(
            "SELECT run_id, experiment, metric, value, git_rev, "
            "recorded_at, direction FROM metrics WHERE run_id = ? "
            "ORDER BY experiment, metric",
            (run_id,),
        ).fetchall()
        return [
            MetricPoint(
                run_id=r[0],
                experiment=r[1],
                metric=r[2],
                value=r[3],
                git_rev=r[4],
                recorded_at=r[5],
                direction=r[6],
            )
            for r in rows
        ]

    def compare(
        self,
        baseline_run: Optional[str] = None,
        latest_run: Optional[str] = None,
        *,
        experiment: Optional[str] = None,
        directional_only: bool = True,
    ) -> List[MetricDelta]:
        """Metric-by-metric deltas between two runs.

        Defaults: ``latest_run`` = newest recorded run, ``baseline_run``
        = the run before it.  Only metrics present in *both* runs are
        compared; by default only directional (guard-covered) metrics
        are returned, since undirected metrics can't regress.
        """
        ids = self.run_ids()
        if latest_run is None:
            latest_run = ids[-1] if ids else None
        if baseline_run is None:
            earlier = [i for i in ids if i != latest_run]
            baseline_run = earlier[-1] if earlier else None
        if latest_run is None or baseline_run is None:
            return []
        base = {
            (p.experiment, p.metric): p
            for p in self.metrics_for_run(baseline_run)
        }
        deltas: List[MetricDelta] = []
        for point in self.metrics_for_run(latest_run):
            if experiment is not None and point.experiment != experiment:
                continue
            if directional_only and point.direction not in (
                "higher",
                "lower",
            ):
                continue
            anchor = base.get((point.experiment, point.metric))
            if anchor is None:
                continue
            deltas.append(
                MetricDelta(
                    experiment=point.experiment,
                    metric=point.metric,
                    baseline_run=baseline_run,
                    baseline_rev=anchor.git_rev,
                    baseline_value=anchor.value,
                    latest_run=latest_run,
                    latest_rev=point.git_rev,
                    latest_value=point.value,
                    direction=point.direction,
                )
            )
        return deltas

    def regressions(
        self,
        since_rev: Optional[str] = None,
        *,
        tolerance: float = 0.05,
        experiment: Optional[str] = None,
    ) -> List[MetricDelta]:
        """Directional metrics that got worse vs the ``since_rev`` run.

        ``since_rev=None`` compares the newest run against the one
        before it.  ``tolerance`` is the worse-than-baseline fraction a
        metric must exceed to count (default 5%, absorbing timer noise).
        """
        baseline_run = None
        if since_rev is not None:
            baseline_run = self.run_for_rev(since_rev)
            if baseline_run is None:
                raise ExperimentError(
                    f"no recorded run at git rev {since_rev!r}; "
                    f"known runs: {', '.join(self.run_ids()) or 'none'}"
                )
        deltas = self.compare(baseline_run, None, experiment=experiment)
        return [d for d in deltas if d.is_regression(tolerance)]


__all__ = ["Ledger", "MetricPoint", "MetricDelta"]
