"""Canonical locations for experiment artifacts.

Before the S29 runner, every bench script wrote its JSON wherever the
process happened to be launched from: ``BENCH_pipeline.json`` landed at
the repo root, ``BENCH_cluster.json`` next to its script, and
``BENCH_hotpath.json`` in the shell's cwd.  This module pins everything
to one root:

* :func:`repo_root` — the checkout's top directory, found by walking up
  from this file (and, failing that, from the cwd) to the nearest
  ``pyproject.toml``.  Falls back to the cwd for installed copies.
* :func:`artifacts_root` — ``<repo>/artifacts`` (override with the
  ``REPRO_ARTIFACTS_DIR`` environment variable); per-run directories and
  the cross-run ledger live under it.
* :func:`default_bench_json` — where a directly-invoked bench script
  writes its ``BENCH_*.json`` when no ``--out`` is given: the repo root,
  never the cwd.
"""

from __future__ import annotations

import os
import pathlib
import time
from typing import Optional

#: Environment override for the artifact root (CI sets this to keep
#: uploads out of the working tree).
ARTIFACTS_ENV = "REPRO_ARTIFACTS_DIR"


def _ascend_to_marker(start: pathlib.Path) -> Optional[pathlib.Path]:
    for candidate in (start, *start.parents):
        if (candidate / "pyproject.toml").is_file():
            return candidate
    return None


def repo_root() -> pathlib.Path:
    """The checkout root: nearest ancestor holding ``pyproject.toml``."""
    here = pathlib.Path(__file__).resolve().parent
    found = _ascend_to_marker(here)
    if found is None:
        found = _ascend_to_marker(pathlib.Path.cwd().resolve())
    return found if found is not None else pathlib.Path.cwd().resolve()


def artifacts_root() -> pathlib.Path:
    """Root for per-run artifact directories and the ledger."""
    override = os.environ.get(ARTIFACTS_ENV)
    if override:
        return pathlib.Path(override).expanduser().resolve()
    return repo_root() / "artifacts"


def default_ledger_path() -> pathlib.Path:
    """Default SQLite ledger location (shared across runs)."""
    return artifacts_root() / "ledger.sqlite"


def default_bench_json(filename: str) -> pathlib.Path:
    """Repo-root fallback for a directly-invoked bench's JSON output."""
    return repo_root() / filename


def new_run_id(git_rev: str = "unknown", now: Optional[float] = None) -> str:
    """A sortable run identifier: UTC timestamp + short git rev."""
    stamp = time.strftime(
        "%Y%m%d-%H%M%S", time.gmtime(now if now is not None else time.time())
    )
    rev = (git_rev or "unknown").strip() or "unknown"
    return f"{stamp}-{rev[:12]}"


def run_dir(run_id: str, root: Optional[pathlib.Path] = None) -> pathlib.Path:
    """The artifact directory for ``run_id``, uniquified if it exists."""
    base = (root if root is not None else artifacts_root()) / run_id
    path = base
    suffix = 1
    while path.exists():
        path = base.parent / f"{base.name}.{suffix}"
        suffix += 1
    return path
