"""Experiment datamodel: specs, declarative guards, normalized results.

Every evaluation artifact in this repository — the paper's Tables 3–11
and Figure 9, and each extension bench — registers an
:class:`ExperimentSpec`: a named, tagged runner with quick/full
parameterizations and *declarative* regression guards.  Running a spec
yields an :class:`ExperimentResult` in one normalized schema
(``schema_version``, git rev, host fingerprint, params, flat numeric
metrics, guard verdicts, raw payload), which is what the per-run
artifact directory stores and the cross-run ledger indexes.

Guards subsume the old per-script ``--min-speedup`` / ``--min-ratio``
flags: a :class:`Guard` names the metric it watches, the comparison
direction, and a default threshold; shims map their legacy flags onto
threshold overrides, so the semantics are unchanged but every guard
verdict now lands in the result (and the ledger) instead of only in an
exit code.
"""

from __future__ import annotations

import math
import os
import platform
import subprocess
import time
from dataclasses import dataclass, field, asdict
from typing import Any, Callable, Dict, List, Mapping, Optional, Tuple

from ..errors import ExperimentError

#: Bump when the normalized result layout changes incompatibly.
RESULT_SCHEMA_VERSION = 1

_OPS: Dict[str, Callable[[float, float], bool]] = {
    ">=": lambda value, threshold: value >= threshold,
    "<=": lambda value, threshold: value <= threshold,
}


def current_git_rev(cwd: Optional[str] = None) -> str:
    """Short git revision of the checkout, or ``"unknown"``.

    Defaults to the repo root (not the process cwd), so runs launched
    from anywhere stamp the same revision."""
    if cwd is None:
        from .paths import repo_root

        cwd = str(repo_root())
    try:
        out = subprocess.run(
            ["git", "rev-parse", "--short", "HEAD"],
            cwd=cwd,
            capture_output=True,
            text=True,
            timeout=10,
        )
    except (OSError, subprocess.SubprocessError):
        return "unknown"
    rev = out.stdout.strip()
    return rev if out.returncode == 0 and rev else "unknown"


def host_fingerprint() -> Dict[str, Any]:
    """Enough about the host to interpret absolute numbers later."""
    return {
        "platform": platform.platform(),
        "machine": platform.machine(),
        "python": platform.python_version(),
        "cpu_count": os.cpu_count() or 1,
    }


@dataclass(frozen=True)
class Guard:
    """A declarative regression guard over one result metric.

    ``op`` gives the passing direction (``">="``: higher is better,
    ``"<="``: lower is better); ``threshold`` is the default bound,
    overridable per run (the legacy ``--min-speedup``-style flags).  An
    optional ``precondition`` — ``(metric, op, bound)`` — gates
    enforcement on host facts, e.g. the cluster scaling guard only binds
    on multi-core hosts.
    """

    name: str
    metric: str
    op: str
    threshold: float
    description: str = ""
    precondition: Optional[Tuple[str, str, float]] = None

    def __post_init__(self) -> None:
        if self.op not in _OPS:
            raise ExperimentError(
                f"guard {self.name!r}: op must be one of {sorted(_OPS)}, "
                f"got {self.op!r}"
            )
        if self.precondition is not None and self.precondition[1] not in _OPS:
            raise ExperimentError(
                f"guard {self.name!r}: precondition op must be one of "
                f"{sorted(_OPS)}, got {self.precondition[1]!r}"
            )

    @property
    def direction(self) -> str:
        """Which way is better for the watched metric."""
        return "higher" if self.op == ">=" else "lower"

    def evaluate(
        self,
        metrics: Mapping[str, float],
        threshold_override: Optional[float] = None,
    ) -> "GuardVerdict":
        threshold = (
            self.threshold if threshold_override is None else threshold_override
        )
        value = metrics.get(self.metric)
        if self.precondition is not None:
            pre_metric, pre_op, pre_bound = self.precondition
            pre_value = metrics.get(pre_metric)
            if pre_value is None or not _OPS[pre_op](float(pre_value), pre_bound):
                return GuardVerdict(
                    guard=self.name,
                    metric=self.metric,
                    op=self.op,
                    threshold=threshold,
                    value=None if value is None else float(value),
                    passed=True,
                    enforced=False,
                    detail=(
                        f"not enforced: requires {pre_metric} {pre_op} "
                        f"{pre_bound:g} (got {pre_value!r})"
                    ),
                )
        if value is None or not math.isfinite(float(value)):
            return GuardVerdict(
                guard=self.name,
                metric=self.metric,
                op=self.op,
                threshold=threshold,
                value=None,
                passed=False,
                enforced=True,
                detail=f"metric {self.metric!r} missing from result",
            )
        passed = _OPS[self.op](float(value), threshold)
        return GuardVerdict(
            guard=self.name,
            metric=self.metric,
            op=self.op,
            threshold=threshold,
            value=float(value),
            passed=passed,
            enforced=True,
            detail="" if passed else (
                f"{self.metric} = {float(value):g} violates "
                f"{self.op} {threshold:g}"
            ),
        )


@dataclass
class GuardVerdict:
    """The outcome of one guard evaluation, stored inside the result."""

    guard: str
    metric: str
    op: str
    threshold: float
    value: Optional[float]
    passed: bool
    enforced: bool
    detail: str = ""

    def to_dict(self) -> Dict[str, Any]:
        return asdict(self)

    @classmethod
    def from_dict(cls, data: Mapping[str, Any]) -> "GuardVerdict":
        return cls(**dict(data))


@dataclass(frozen=True)
class ExperimentSpec:
    """One registered experiment: a runner plus its manifest entry.

    ``runner(params) -> payload`` does the actual work and returns a
    JSON-serializable mapping.  ``metrics_from(payload)`` flattens it to
    the numeric metrics the ledger tracks; when omitted, every top-level
    numeric scalar of the payload becomes a metric.  ``quick_params``
    overlay ``full_params`` when the run asks for quick (CI-smoke)
    sizes.
    """

    name: str
    description: str
    runner: Callable[[Dict[str, Any]], Mapping[str, Any]]
    tags: Tuple[str, ...] = ()
    guards: Tuple[Guard, ...] = ()
    full_params: Mapping[str, Any] = field(default_factory=dict)
    quick_params: Mapping[str, Any] = field(default_factory=dict)
    metrics_from: Optional[
        Callable[[Mapping[str, Any]], Dict[str, float]]
    ] = None

    def params_for(
        self, quick: bool, overrides: Optional[Mapping[str, Any]] = None
    ) -> Dict[str, Any]:
        params: Dict[str, Any] = dict(self.full_params)
        if quick:
            params.update(self.quick_params)
        if overrides:
            params.update(overrides)
        return params

    def extract_metrics(self, payload: Mapping[str, Any]) -> Dict[str, float]:
        if self.metrics_from is not None:
            raw = self.metrics_from(payload)
        else:
            raw = {
                key: value
                for key, value in payload.items()
                if isinstance(value, (int, float))
                and not isinstance(value, bool)
            }
        metrics: Dict[str, float] = {}
        for key, value in raw.items():
            if value is None:
                continue
            number = float(value)
            if math.isfinite(number):
                metrics[key] = number
        return metrics

    def guard_directions(self) -> Dict[str, str]:
        """Metric name → "higher"/"lower", for guard-covered metrics."""
        return {guard.metric: guard.direction for guard in self.guards}


@dataclass
class ExperimentResult:
    """One experiment execution in the normalized result schema."""

    name: str
    status: str  # "ok" | "guard_failed" | "error"
    params: Dict[str, Any]
    metrics: Dict[str, float]
    data: Dict[str, Any]
    guards: List[GuardVerdict]
    git_rev: str
    host: Dict[str, Any]
    started_at: float
    duration_seconds: float
    tags: Tuple[str, ...] = ()
    error: str = ""
    schema_version: int = RESULT_SCHEMA_VERSION

    @property
    def ok(self) -> bool:
        return self.status == "ok"

    @property
    def guard_failures(self) -> List[GuardVerdict]:
        return [v for v in self.guards if v.enforced and not v.passed]

    def to_dict(self) -> Dict[str, Any]:
        return {
            "schema_version": self.schema_version,
            "name": self.name,
            "status": self.status,
            "tags": list(self.tags),
            "params": dict(self.params),
            "metrics": dict(self.metrics),
            "data": self.data,
            "guards": [v.to_dict() for v in self.guards],
            "git_rev": self.git_rev,
            "host": dict(self.host),
            "started_at": self.started_at,
            "duration_seconds": self.duration_seconds,
            "error": self.error,
        }

    @classmethod
    def from_dict(cls, data: Mapping[str, Any]) -> "ExperimentResult":
        validate_result(data)
        return cls(
            name=data["name"],
            status=data["status"],
            params=dict(data["params"]),
            metrics={k: float(v) for k, v in data["metrics"].items()},
            data=dict(data["data"]),
            guards=[GuardVerdict.from_dict(v) for v in data["guards"]],
            git_rev=data["git_rev"],
            host=dict(data["host"]),
            started_at=float(data["started_at"]),
            duration_seconds=float(data["duration_seconds"]),
            tags=tuple(data.get("tags", ())),
            error=data.get("error", ""),
            schema_version=int(data["schema_version"]),
        )


_REQUIRED_RESULT_KEYS = {
    "schema_version": int,
    "name": str,
    "status": str,
    "params": dict,
    "metrics": dict,
    "data": dict,
    "guards": list,
    "git_rev": str,
    "host": dict,
    "started_at": (int, float),
    "duration_seconds": (int, float),
}

_STATUSES = ("ok", "guard_failed", "error")


def validate_result(data: Mapping[str, Any]) -> None:
    """Raise :class:`ExperimentError` unless ``data`` is a valid result."""
    if not isinstance(data, Mapping):
        raise ExperimentError(
            f"result must be a mapping, got {type(data).__name__}"
        )
    for key, kind in _REQUIRED_RESULT_KEYS.items():
        if key not in data:
            raise ExperimentError(f"result missing required key {key!r}")
        if not isinstance(data[key], kind):
            raise ExperimentError(
                f"result key {key!r} must be {kind}, "
                f"got {type(data[key]).__name__}"
            )
    if data["schema_version"] != RESULT_SCHEMA_VERSION:
        raise ExperimentError(
            f"result schema_version {data['schema_version']!r} is not the "
            f"supported version {RESULT_SCHEMA_VERSION}"
        )
    if data["status"] not in _STATUSES:
        raise ExperimentError(
            f"result status must be one of {_STATUSES}, "
            f"got {data['status']!r}"
        )
    for metric, value in data["metrics"].items():
        if not isinstance(metric, str):
            raise ExperimentError(f"metric names must be strings: {metric!r}")
        if isinstance(value, bool) or not isinstance(value, (int, float)):
            raise ExperimentError(
                f"metric {metric!r} must be numeric, "
                f"got {type(value).__name__}"
            )
    for verdict in data["guards"]:
        if not isinstance(verdict, Mapping) or "guard" not in verdict:
            raise ExperimentError(f"malformed guard verdict: {verdict!r}")


def execute_spec(
    spec: ExperimentSpec,
    *,
    quick: bool = False,
    param_overrides: Optional[Mapping[str, Any]] = None,
    guard_overrides: Optional[Mapping[str, float]] = None,
    git_rev: Optional[str] = None,
) -> ExperimentResult:
    """Run one spec and normalize the outcome (exceptions included).

    Guard overrides are keyed by guard name (``{"min_speedup": 1.5}``);
    unknown names raise so a typoed override can't silently no-op.
    """
    overrides = dict(guard_overrides or {})
    known = {guard.name for guard in spec.guards}
    unknown = sorted(set(overrides) - known)
    if unknown:
        raise ExperimentError(
            f"experiment {spec.name!r} has no guard named {unknown[0]!r}; "
            f"available: {sorted(known) or 'none'}"
        )
    params = spec.params_for(quick, param_overrides)
    rev = git_rev if git_rev is not None else current_git_rev()
    started = time.time()
    clock = time.perf_counter()
    try:
        payload = dict(spec.runner(dict(params)))
    except Exception as exc:  # noqa: BLE001 — a failed bench is a result
        return ExperimentResult(
            name=spec.name,
            status="error",
            params=params,
            metrics={},
            data={},
            guards=[],
            git_rev=rev,
            host=host_fingerprint(),
            started_at=started,
            duration_seconds=time.perf_counter() - clock,
            tags=spec.tags,
            error=f"{type(exc).__name__}: {exc}",
        )
    duration = time.perf_counter() - clock
    metrics = spec.extract_metrics(payload)
    verdicts = [
        guard.evaluate(metrics, overrides.get(guard.name))
        for guard in spec.guards
    ]
    status = "ok"
    if any(v.enforced and not v.passed for v in verdicts):
        status = "guard_failed"
    return ExperimentResult(
        name=spec.name,
        status=status,
        params=params,
        metrics=metrics,
        data=payload,
        guards=verdicts,
        git_rev=rev,
        host=host_fingerprint(),
        started_at=started,
        duration_seconds=duration,
        tags=spec.tags,
    )


def coerce_sequence(value: Any) -> Tuple[Any, ...]:
    """Normalize list-ish params (batches, rates) to tuples."""
    if isinstance(value, (list, tuple)):
        return tuple(value)
    return (value,)


__all__ = [
    "RESULT_SCHEMA_VERSION",
    "Guard",
    "GuardVerdict",
    "ExperimentSpec",
    "ExperimentResult",
    "current_git_rev",
    "host_fingerprint",
    "validate_result",
    "execute_spec",
    "coerce_sequence",
]
