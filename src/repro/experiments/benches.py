"""Measurement cores of the extension benchmarks.

Moved here (S29) from the ``benchmarks/bench_*.py`` scripts, which are
now thin CLI shims over these functions via the experiment registry.
Each function takes explicit parameters (no globals, no argv) and
returns a JSON-serializable payload; the registered
:class:`~repro.experiments.spec.ExperimentSpec`s in
:mod:`repro.experiments.catalog` wrap them with quick/full
parameterizations and declarative guards.

Import cost note: everything below imports lazily-importable repro
subsystems at module import time on purpose — these are the same
imports the old bench scripts did, and the experiments package is never
imported on the proving hot path.
"""

from __future__ import annotations

import os
import tempfile
import time
from typing import Dict, List, Optional, Sequence, Tuple

from ..core import (
    BatchProver,
    ProofTask,
    SnarkProver,
    make_pcs,
    random_circuit,
    serialize_proof,
    verify_all,
)
from ..field import DEFAULT_FIELD
from ..runtime import ParallelProvingRuntime, ProverSpec

# -- shared circuit/task setup -------------------------------------------------


def _setup_tasks(gates: int, tasks: int, seed: int = 7):
    cc = random_circuit(DEFAULT_FIELD, gates, seed=seed)
    pcs = make_pcs(DEFAULT_FIELD, cc.r1cs, num_col_checks=6)
    prover = SnarkProver(cc.r1cs, pcs, public_indices=cc.public_indices)
    spec = ProverSpec.from_prover(prover)
    task_list = [
        ProofTask(i, cc.witness, cc.public_values) for i in range(tasks)
    ]
    return cc, prover, spec, task_list


# -- hot-path kernels (S26) ----------------------------------------------------


def _time_proofs(prover, witness, public_values, reps):
    """Best-of-``reps`` single-proof wall time plus its stage profile."""
    from ..kernels import collect_stages

    best_seconds = None
    best_stages: Dict[str, float] = {}
    proof = None
    for _ in range(reps):
        with collect_stages() as profile:
            start = time.perf_counter()
            proof = prover.prove(witness, public_values)
            elapsed = time.perf_counter() - start
        if best_seconds is None or elapsed < best_seconds:
            best_seconds = elapsed
            best_stages = profile.as_dict()
    return proof, best_seconds, best_stages


def run_hotpath(gates: int = 4096, reps: int = 3) -> dict:
    """Fast vs reference single-proof time on one circuit; asserts byte
    identity of the two serialized proofs."""
    from ..gpu import stage_cost_fractions
    from ..kernels import default_spec_cache, use_reference_kernels

    cc = random_circuit(DEFAULT_FIELD, gates, seed=11)
    pcs = make_pcs(DEFAULT_FIELD, cc.r1cs, num_col_checks=6)
    prover = SnarkProver(cc.r1cs, pcs, public_indices=cc.public_indices)
    spec = ProverSpec.from_prover(prover)

    with use_reference_kernels():
        ref_prover = spec.build_prover()
        ref_proof, ref_seconds, ref_stages = _time_proofs(
            ref_prover, cc.witness, cc.public_values, reps
        )

    cache = default_spec_cache()
    misses_before = cache.misses
    fast_prover = cache.get_prover(spec)
    cache.get_prover(spec)  # second lookup must hit
    fast_proof, fast_seconds, fast_stages = _time_proofs(
        fast_prover, cc.witness, cc.public_values, reps
    )

    ref_bytes = serialize_proof(ref_proof, DEFAULT_FIELD)
    fast_bytes = serialize_proof(fast_proof, DEFAULT_FIELD)
    assert fast_bytes == ref_bytes, "fast path changed the proof bytes"
    verifier = spec.build_verifier()
    assert verifier.verify(fast_proof, cc.public_values)

    return {
        "gates": gates,
        "reps": reps,
        "hasher": spec.hasher_name,
        "reference_seconds": ref_seconds,
        "fast_seconds": fast_seconds,
        "speedup": ref_seconds / fast_seconds,
        "byte_identical": True,
        "proof_bytes": len(fast_bytes),
        "reference_stages": ref_stages,
        "fast_stages": fast_stages,
        "fast_stage_fractions": stage_cost_fractions(fast_stages),
        "spec_cache": {
            "hits": cache.hits,
            "misses": cache.misses - misses_before,
        },
    }


# -- lane-vectorized prover (S31) ----------------------------------------------


def _setup_distinct_tasks(gates: int, tasks: int, seed: int = 7):
    """Same-circuit tasks with *distinct* witnesses (the §1 batch shape).

    Every task is an ``input_values`` variant of one seeded circuit, so
    the R1CS digests match (one spec, one lane group family) while no
    two lanes prove the same assignment — the honest setting for lane
    parity and lane throughput claims.
    """
    import random as _random

    cc = random_circuit(DEFAULT_FIELD, gates, seed=seed)
    pcs = make_pcs(DEFAULT_FIELD, cc.r1cs, num_col_checks=6)
    prover = SnarkProver(cc.r1cs, pcs, public_indices=cc.public_indices)
    spec = ProverSpec.from_prover(prover)
    rng = _random.Random(f"bench-lanes/{seed}")
    task_list = []
    for i in range(tasks):
        vals = [
            rng.randrange(1, DEFAULT_FIELD.modulus) for _ in range(8)
        ]
        variant = random_circuit(
            DEFAULT_FIELD, gates, seed=seed, input_values=vals
        )
        task_list.append(
            ProofTask(i, variant.witness, variant.public_values)
        )
    return cc, spec, task_list


def run_lanes(gates: int = 256, lanes: int = 64, reps: int = 2) -> dict:
    """Serial vs lane-vectorized proving of one ``lanes``-task batch.

    Measures best-of-``reps`` wall time for ``serial`` and for
    ``lanes:<lanes>`` on the same distinct-witness batch, asserts the
    laned proofs are byte-identical to serial lane for lane, and
    reports ``lane_speedup`` — the metric the registered
    ``lane_speedup >= 2.0`` guard watches in CI.
    """
    from ..execution import resolve_backend

    _, spec, task_list = _setup_distinct_tasks(gates, lanes)

    def best_of(selector: str):
        best_seconds = None
        wire = None
        for _ in range(reps):
            backend = resolve_backend(selector)
            start = time.perf_counter()
            proofs, _stats = backend.prove_tasks(spec, task_list)
            seconds = time.perf_counter() - start
            if best_seconds is None or seconds < best_seconds:
                best_seconds = seconds
                wire = [serialize_proof(p, DEFAULT_FIELD) for p in proofs]
        return best_seconds, wire

    serial_seconds, serial_wire = best_of("serial")
    laned_seconds, laned_wire = best_of(f"lanes:{lanes}")
    assert laned_wire == serial_wire, (
        "laned proofs diverged from serial bytes"
    )
    return {
        "gates": gates,
        "lanes": lanes,
        "reps": reps,
        "serial_seconds": serial_seconds,
        "laned_seconds": laned_seconds,
        "lane_speedup": serial_seconds / laned_seconds,
        "serial_throughput": lanes / serial_seconds,
        "laned_throughput": lanes / laned_seconds,
        "byte_identical": True,
        "proof_bytes": len(laned_wire[0]),
    }


# -- stage-pipelined executor (S27) --------------------------------------------


def _measure_backend(selector: str, spec, task_list):
    """One fresh backend run: wall seconds, throughput, wire bytes.

    A fresh backend per measurement charges the pipelined warmup slice
    (and the pool's worker startup) to every batch size — the honest
    cold-start comparison."""
    from ..execution import resolve_backend

    backend = resolve_backend(selector)
    start = time.perf_counter()
    proofs, stats = backend.prove_tasks(spec, task_list)
    seconds = time.perf_counter() - start
    wire = [serialize_proof(p, DEFAULT_FIELD) for p in proofs]
    return {
        "seconds": seconds,
        "throughput": len(task_list) / seconds,
        "workers": stats.workers,
    }, wire


def run_pipeline_sweep(
    gates: int = 384,
    workers: int = 2,
    batches: Sequence[int] = (4, 8, 16, 32),
) -> dict:
    """Batch-size sweep of serial vs pool:W vs pipelined:W.

    Asserts byte parity of every backend against serial at every batch
    size, and reports the smallest batch where the pipeline matches the
    pool (``crossover_vs_pool``) and serial (``crossover_vs_serial``).
    ``final_ratio_vs_pool`` — pipelined/pool throughput at the largest
    batch — is the metric the ``min_ratio`` guard watches."""
    rows = []
    crossover_pool: Optional[int] = None
    crossover_serial: Optional[int] = None
    for batch in batches:
        _, _, spec, task_list = _setup_tasks(gates, batch)
        serial_row, serial_wire = _measure_backend("serial", spec, task_list)
        pool_row, pool_wire = _measure_backend(
            f"pool:{workers}", spec, task_list
        )
        pipe_row, pipe_wire = _measure_backend(
            f"pipelined:{workers}", spec, task_list
        )
        assert pool_wire == serial_wire, "pool changed the proof bytes"
        assert pipe_wire == serial_wire, "pipeline changed the proof bytes"
        row = {
            "batch": batch,
            "serial": serial_row,
            f"pool:{workers}": pool_row,
            f"pipelined:{workers}": pipe_row,
            "byte_identical": True,
        }
        rows.append(row)
        if (
            crossover_pool is None
            and pipe_row["throughput"] >= pool_row["throughput"]
        ):
            crossover_pool = batch
        if (
            crossover_serial is None
            and pipe_row["throughput"] >= serial_row["throughput"]
        ):
            crossover_serial = batch
    last = rows[-1]
    return {
        "gates": gates,
        "workers": workers,
        "host_cores": os.cpu_count() or 1,
        "rows": rows,
        "crossover_vs_pool": crossover_pool,
        "crossover_vs_serial": crossover_serial,
        "final_ratio_vs_pool": (
            last[f"pipelined:{workers}"]["throughput"]
            / last[f"pool:{workers}"]["throughput"]
        ),
    }


# -- distributed cluster (S28) -------------------------------------------------


def _measure_fleet(n_nodes: int, spec, task_list):
    """Throughput of a fresh ``n_nodes``-strong fleet on one batch."""
    from ..cluster import NodePool
    from ..execution import resolve_backend

    pool = NodePool(backend="serial")
    try:
        pool.scale_to(n_nodes)
        backend = resolve_backend(pool.cluster_selector())
        # Warm the fleet's caches out-of-band: the steady state the ring
        # routing maintains is what we are measuring, not cold setup.
        backend.prove_tasks(spec, task_list[:n_nodes])
        start = time.perf_counter()
        proofs, stats = backend.prove_tasks(spec, task_list)
        seconds = time.perf_counter() - start
        affinity = backend.cluster_stats()["cache_affinity"]
        backend.close()
    finally:
        pool.close()
    wire = [serialize_proof(p, DEFAULT_FIELD) for p in proofs]
    return {
        "nodes": n_nodes,
        "seconds": seconds,
        "throughput_per_s": len(task_list) / seconds,
        "workers": stats.workers,
        "cache_affinity": affinity["hit_rate"],
    }, wire


def run_cluster_scaleout(
    gates: int = 256, batches: Sequence[int] = (8, 16, 32)
) -> dict:
    """1-node vs 2-node fleets of real node subprocesses.

    Byte parity with serial is asserted per fleet size; the
    ``min_scaling`` guard watches ``scaling_2_over_1`` at the largest
    batch, enforced only on multi-core hosts (precondition on
    ``host_cores``)."""
    from ..execution import SerialBackend

    cores = os.cpu_count() or 1
    results: List[dict] = []
    ratio = None
    for tasks in batches:
        _, _, spec, task_list = _setup_tasks(gates, tasks)
        serial_wire = [
            serialize_proof(p, DEFAULT_FIELD)
            for p in SerialBackend().prove_tasks(spec, task_list)[0]
        ]
        row = {"batch": tasks, "fleets": []}
        for n_nodes in (1, 2):
            fleet, wire = _measure_fleet(n_nodes, spec, task_list)
            assert wire == serial_wire, (
                f"{n_nodes}-node fleet diverged from serial bytes"
            )
            row["fleets"].append(fleet)
        ratio = (
            row["fleets"][1]["throughput_per_s"]
            / row["fleets"][0]["throughput_per_s"]
        )
        row["scaling_2_over_1"] = ratio
        results.append(row)
    return {
        "gates": gates,
        "host_cores": cores,
        "byte_identical_to_serial": True,
        "rows": results,
        "scaling_2_over_1": ratio,
        "final_cache_affinity": results[-1]["fleets"][1]["cache_affinity"],
    }


# -- fleet serving (S30) -------------------------------------------------------


class _Laggard:
    """In-process chaos member: a backend that stalls, but never dies.

    Slowness is the failure mode circuit breakers cannot see — the node
    answers, just late — which is exactly what hedged dispatch exists
    for.  ``stall`` is flipped on after the warm-up phase so the
    coordinator's latency window learns *healthy* timings first.
    """

    def __init__(self, inner, stall_seconds: float = 0.25):
        self.inner = inner
        self.stall_seconds = stall_seconds
        self.stall = False
        self.stalls = 0
        self.name = f"laggard:{inner.name}"
        self.parallelism = getattr(inner, "parallelism", 1)

    def prove_tasks(self, spec, tasks, *, trace=None, parent=None):
        if self.stall:
            self.stalls += 1
            time.sleep(self.stall_seconds)
        return self.inner.prove_tasks(spec, tasks, trace=trace, parent=parent)

    def close(self) -> None:
        close = getattr(self.inner, "close", None)
        if callable(close):
            close()


def _fleet_cell(
    cc,
    spec,
    key,
    *,
    hedge: bool,
    requests: int,
    rate: float,
    stall_seconds: float,
    max_batch: int,
    window: float,
    seed: int,
):
    """One serving run over a 2-member cluster with one laggard.

    Returns (cell payload, wire bytes in event order) so the caller can
    assert hedged and unhedged runs produced identical proofs.
    """
    from ..cluster import ClusterBackend
    from ..execution import SerialBackend
    from ..service import (
        BatchPolicy,
        ProofService,
        RuntimeProofBackend,
        poisson_trace,
        replay,
        task_witness_key,
    )

    laggard = _Laggard(SerialBackend(), stall_seconds=stall_seconds)
    cluster = ClusterBackend(
        [SerialBackend(), laggard],
        hedge=hedge,
        min_hedge_delay_seconds=0.02,
        hedge_min_samples=4,
        hedge_budget_per_second=64.0,
        hedge_budget_burst=32.0,
    )
    # Warm the latency window on healthy timings (stall off): the hedge
    # delay must derive from what a *fast* shard looks like.
    warm = [ProofTask(i, cc.witness, cc.public_values) for i in range(4)]
    for _ in range(3):
        cluster.prove_tasks(spec, warm)
    laggard.stall = True

    backend = RuntimeProofBackend({key: spec}, backend=cluster)
    policy = BatchPolicy(max_batch_size=max_batch, max_wait_seconds=window)
    events = poisson_trace(requests, rate, seed=seed, duplicate_fraction=0.0)

    def make_request(i):
        task = ProofTask(i, cc.witness, cc.public_values)
        return task, key, task_witness_key(task) + i.to_bytes(4, "little")

    service = ProofService(backend, policy=policy, max_queue=4 * requests)
    start = time.perf_counter()
    tickets, rejected = replay(service, events, make_request)
    service.drain(timeout=600)
    wall = time.perf_counter() - start
    service.close()
    cluster.close()

    proofs = [t.result(timeout=60) for t in tickets if t is not None]
    wire = [serialize_proof(p, DEFAULT_FIELD) for p in proofs]
    verifier = spec.build_verifier()
    stats = service.stats
    return {
        "hedge": hedge,
        "wall_seconds": wall,
        "completed": stats.completed,
        "rejected": rejected,
        "laggard_stalls": laggard.stalls,
        "hedges_issued": cluster.hedges_issued,
        "hedges_won": cluster.hedges_won,
        "hedges_denied": cluster.hedges_denied,
        "p50_ms": stats.p50_latency_seconds * 1e3,
        "p99_ms": stats.p99_latency_seconds * 1e3,
        "verified": all(
            verifier.verify(p, cc.public_values) for p in proofs[:4]
        ),
    }, wire


def run_fleet_serving(
    requests: int = 24,
    rate: float = 150.0,
    gates: int = 96,
    stall_seconds: float = 0.25,
    max_batch: int = 8,
    window: float = 0.02,
    seed: int = 13,
) -> dict:
    """S30 hedged serving: tail latency with vs without hedged dispatch.

    The same Poisson trace is served twice through identical 2-member
    in-process clusters where one member stalls every batch; the only
    difference is ``hedge=``.  Hedging must keep p99 at or below the
    no-hedge baseline (the ``max_p99_ratio`` guard, multi-core hosts
    only) without changing a single proof byte.
    """
    cc, spec, key = service_setup(gates)
    kwargs = dict(
        requests=requests,
        rate=rate,
        stall_seconds=stall_seconds,
        max_batch=max_batch,
        window=window,
        seed=seed,
    )
    hedged, hedged_wire = _fleet_cell(cc, spec, key, hedge=True, **kwargs)
    unhedged, unhedged_wire = _fleet_cell(cc, spec, key, hedge=False, **kwargs)
    assert hedged_wire == unhedged_wire, "hedging changed the proof bytes"
    ratio = (
        hedged["p99_ms"] / unhedged["p99_ms"]
        if unhedged["p99_ms"] > 0
        else 1.0
    )
    return {
        "requests": requests,
        "rate": rate,
        "gates": gates,
        "stall_seconds": stall_seconds,
        "host_cores": os.cpu_count() or 1,
        "hedged": hedged,
        "unhedged": unhedged,
        "byte_identical": True,
        "all_verified": hedged["verified"] and unhedged["verified"],
        "hedges_issued": hedged["hedges_issued"],
        "hedges_won": hedged["hedges_won"],
        "p99_hedged_ms": hedged["p99_ms"],
        "p99_unhedged_ms": unhedged["p99_ms"],
        "hedge_p99_ratio": ratio,
    }


# -- resilience plane (S25) ----------------------------------------------------


def run_degradation_curve(
    tasks: int = 32,
    rates: Sequence[float] = (0.0, 0.05, 0.1, 0.2, 0.4),
    gates: int = 256,
) -> list:
    """Throughput vs crash rate; every proof must still verify."""
    from ..execution import resolve_backend
    from ..resilience import FaultInjector, apply_fault_plan, split_results

    _, _, spec, task_list = _setup_tasks(gates, tasks)
    verifier = spec.build_verifier()
    rows = []
    for rate in rates:
        backend = resolve_backend("resilient:sharded:serial,serial")
        injector = FaultInjector.from_plan(f"crash:{rate},seed=7")
        apply_fault_plan(backend, injector, min_retries=4)
        start = time.perf_counter()
        results, stats = backend.prove_tasks(spec, task_list)
        seconds = time.perf_counter() - start
        proofs, quarantined = split_results(results)
        assert not quarantined, "crash storms must not quarantine"
        assert verify_all(verifier, [p for _, p in proofs], task_list)
        rstats = backend.last_resilience_stats
        rows.append({
            "rate": rate,
            "seconds": seconds,
            "throughput": len(proofs) / seconds,
            "faults": rstats.total_faults_injected,
            "failovers": rstats.failovers,
            "rounds": rstats.rounds,
        })
    return rows


def run_wrapper_overhead(tasks: int = 32, gates: int = 256) -> dict:
    """Fault-free resilient wrapper vs its bare sharded core."""
    from ..execution import resolve_backend

    _, _, spec, task_list = _setup_tasks(gates, tasks)
    timings = {}
    for selector in (
        "sharded:serial,serial",
        "resilient:sharded:serial,serial",
    ):
        backend = resolve_backend(selector)
        start = time.perf_counter()
        backend.prove_tasks(spec, task_list)
        timings[selector] = time.perf_counter() - start
    bare = timings["sharded:serial,serial"]
    wrapped = timings["resilient:sharded:serial,serial"]
    return {
        "bare_seconds": bare,
        "wrapped_seconds": wrapped,
        "overhead_pct": (wrapped / bare - 1.0) * 100.0,
    }


def run_journal_tax(tasks: int = 32, gates: int = 256) -> dict:
    """Journaling cost per proof, and the resume saving at 100% overlap."""
    from ..execution import resolve_backend
    from ..resilience import journaled_prove

    _, _, spec, task_list = _setup_tasks(gates, tasks)
    backend = resolve_backend("serial")

    start = time.perf_counter()
    backend.prove_tasks(spec, task_list)
    plain = time.perf_counter() - start

    with tempfile.TemporaryDirectory() as tmp:
        path = os.path.join(tmp, "bench.jsonl")
        start = time.perf_counter()
        journaled_prove(backend, spec, task_list, path)
        journaled = time.perf_counter() - start

        start = time.perf_counter()
        _, _, report = journaled_prove(
            backend, spec, task_list, path, resume=True
        )
        resumed = time.perf_counter() - start
        assert report.skipped == len(task_list)

    return {
        "plain_seconds": plain,
        "journaled_seconds": journaled,
        "tax_pct": (journaled / plain - 1.0) * 100.0,
        "resume_seconds": resumed,
        "resume_speedup": plain / resumed if resumed > 0 else float("inf"),
    }


def run_resilience_suite(
    tasks: int = 32,
    rates: Sequence[float] = (0.0, 0.05, 0.1, 0.2, 0.4),
    gates: int = 256,
) -> dict:
    """The three resilience measurements as one payload."""
    curve = run_degradation_curve(tasks=tasks, rates=rates, gates=gates)
    wrapper = run_wrapper_overhead(tasks=tasks, gates=gates)
    journal = run_journal_tax(tasks=tasks, gates=gates)
    return {
        "tasks": tasks,
        "gates": gates,
        "degradation": curve,
        "wrapper": wrapper,
        "journal": journal,
        "fault_free_throughput": curve[0]["throughput"],
        "max_rate_throughput": curve[-1]["throughput"],
        "wrapper_overhead_pct": wrapper["overhead_pct"],
        "journal_tax_pct": journal["tax_pct"],
        "resume_speedup": journal["resume_speedup"],
    }


# -- streaming service (S23) ---------------------------------------------------


def service_setup(gates: int = 96):
    from ..service import spec_key

    cc = random_circuit(DEFAULT_FIELD, gates, seed=9)
    pcs = make_pcs(DEFAULT_FIELD, cc.r1cs, num_col_checks=6)
    prover = SnarkProver(cc.r1cs, pcs, public_indices=cc.public_indices)
    spec = ProverSpec.from_prover(prover)
    return cc, spec, spec_key(spec)


def run_service_cell(
    cc,
    spec,
    key,
    *,
    rate: float,
    window: float,
    requests: int = 64,
    max_batch: int = 16,
    verify_sample: int = 4,
) -> dict:
    """One (arrival rate, batch window) cell of the service sweep."""
    from ..service import (
        BatchPolicy,
        ProofService,
        RuntimeProofBackend,
        poisson_trace,
        replay,
        task_witness_key,
    )

    backend = RuntimeProofBackend({key: spec})
    policy = BatchPolicy(max_batch_size=max_batch, max_wait_seconds=window)
    events = poisson_trace(
        requests, rate, seed=int(rate) ^ 17, duplicate_fraction=0.15
    )

    def make_request(i):
        task = ProofTask(i, cc.witness, cc.public_values)
        return task, key, task_witness_key(task) + i.to_bytes(4, "little")

    service = ProofService(backend, policy=policy, max_queue=4 * requests)
    start = time.perf_counter()
    tickets, rejected = replay(service, events, make_request)
    service.drain(timeout=600)
    wall = time.perf_counter() - start
    service.close()

    accepted = [t for t in tickets if t is not None]
    proofs = [t.result(timeout=60) for t in accepted]
    verifier = backend.verifier_for(key)
    verified = all(
        verifier.verify(p, cc.public_values) for p in proofs[:verify_sample]
    )
    stats = service.stats
    return {
        "rate": rate,
        "window_ms": window * 1e3,
        "completed": stats.completed,
        "throughput": stats.completed / wall if wall > 0 else 0.0,
        "mean_batch": stats.mean_batch_size,
        "batches": len(stats.batch_sizes),
        "cache_absorbed": stats.cache_hits + stats.coalesced,
        "p95_ms": stats.p95_latency_seconds * 1e3,
        "deadline_misses": stats.deadline_misses,
        "rejected": rejected,
        "verified": verified,
    }


def run_service_sweep(
    rates: Sequence[float] = (100.0, 400.0),
    windows: Sequence[float] = (0.002, 0.02, 0.08),
    requests: int = 64,
    gates: int = 96,
) -> dict:
    """Arrival-rate × batch-window grid through the streaming service."""
    cc, spec, key = service_setup(gates)
    cells = [
        run_service_cell(
            cc, spec, key, rate=rate, window=window, requests=requests
        )
        for rate in rates
        for window in windows
    ]
    return {
        "gates": gates,
        "requests": requests,
        "cells": cells,
        "all_verified": all(c["verified"] for c in cells),
        "peak_throughput": max(c["throughput"] for c in cells),
        "max_mean_batch": max(c["mean_batch"] for c in cells),
    }


# -- execution backends (S24) --------------------------------------------------


def run_seam_overhead(tasks: int = 48, gates: int = 384) -> dict:
    """Inline prover.prove loop vs the same loop behind SerialBackend."""
    from ..execution import resolve_backend

    _, prover, spec, task_list = _setup_tasks(gates, tasks)

    inline_start = time.perf_counter()
    inline_proofs = [
        prover.prove(t.witness, t.public_values) for t in task_list
    ]
    inline_seconds = time.perf_counter() - inline_start

    backend = resolve_backend("serial")
    backend.adopt_prover(spec, prover)
    seam_start = time.perf_counter()
    seam_proofs, stats = backend.prove_tasks(spec, task_list)
    seam_seconds = time.perf_counter() - seam_start

    assert len(seam_proofs) == len(inline_proofs)
    assert verify_all(spec.build_verifier(), seam_proofs, task_list)
    return {
        "tasks": tasks,
        "inline_seconds": inline_seconds,
        "seam_seconds": seam_seconds,
        "overhead_pct": (seam_seconds / inline_seconds - 1.0) * 100.0,
        "throughput": stats.throughput_per_second,
    }


def run_composition(
    tasks: int = 48, workers: int = 2, gates: int = 384
) -> dict:
    """One pool vs two concurrent pools behind the sharded backend."""
    from ..execution import resolve_backend

    _, _, spec, task_list = _setup_tasks(gates, tasks)
    rows = {}
    for selector in (
        f"pool:{workers}",
        f"sharded:pool:{workers},pool:{workers}",
    ):
        backend = resolve_backend(selector)
        start = time.perf_counter()
        proofs, stats = backend.prove_tasks(spec, task_list)
        seconds = time.perf_counter() - start
        assert verify_all(spec.build_verifier(), proofs, task_list)
        rows[selector] = {
            "seconds": seconds,
            "throughput": stats.throughput_per_second,
            "workers": stats.workers,
        }
    return rows


def run_backend_suite(
    tasks: int = 48, workers: Optional[int] = None, gates: int = 384
) -> dict:
    """Seam overhead plus sharded composition as one payload."""
    cores = os.cpu_count() or 1
    workers = min(4 if workers is None else max(1, workers), cores)
    seam = run_seam_overhead(tasks=tasks, gates=gates)
    composition = run_composition(tasks=tasks, workers=workers, gates=gates)
    pool_key = f"pool:{workers}"
    sharded_key = f"sharded:pool:{workers},pool:{workers}"
    return {
        "tasks": tasks,
        "workers": workers,
        "host_cores": cores,
        "seam": seam,
        "composition": composition,
        "seam_overhead_pct": seam["overhead_pct"],
        "pool_throughput": composition[pool_key]["throughput"],
        "sharded_throughput": composition[sharded_key]["throughput"],
    }


# -- parallel runtime (S22) ----------------------------------------------------


def _runtime_setup(gates: int, tasks: int) -> Tuple[SnarkProver, list]:
    cc = random_circuit(DEFAULT_FIELD, gates, seed=5)
    pcs = make_pcs(DEFAULT_FIELD, cc.r1cs, num_col_checks=6)
    prover = SnarkProver(cc.r1cs, pcs, public_indices=cc.public_indices)
    task_list = [
        ProofTask(i, cc.witness, cc.public_values) for i in range(tasks)
    ]
    return prover, task_list


def crash_first_attempts(task_id: int, attempt: int) -> None:
    """Injected fault: tasks 3 and 17 die on their first attempt."""
    if task_id in (3, 17) and attempt == 1:
        raise RuntimeError(f"injected worker crash on task {task_id}")


def run_scaling(
    tasks: int = 48, workers: int = 4, gates: int = 384
) -> dict:
    """Serial vs pooled throughput on the same batch."""
    prover, task_list = _runtime_setup(gates, tasks)
    spec = ProverSpec.from_prover(prover)

    serial_start = time.perf_counter()
    serial_proofs, serial_stats = BatchProver(prover).prove_all(task_list)
    serial_seconds = time.perf_counter() - serial_start

    runtime = ParallelProvingRuntime(spec, workers=workers, chunk_size=2)
    parallel_start = time.perf_counter()
    parallel_proofs, parallel_stats = runtime.prove_tasks(task_list)
    parallel_seconds = time.perf_counter() - parallel_start

    verifier = spec.build_verifier()
    assert verify_all(verifier, serial_proofs, task_list)
    assert verify_all(verifier, parallel_proofs, task_list)
    return {
        "tasks": tasks,
        "workers": workers,
        "serial_seconds": serial_seconds,
        "serial_throughput": serial_stats.throughput_per_second,
        "parallel_seconds": parallel_seconds,
        "parallel_throughput": parallel_stats.throughput_per_second,
        "speedup": serial_seconds / parallel_seconds,
        "utilization": parallel_stats.worker_utilization,
        "p95_latency_ms": parallel_stats.p95_latency_seconds * 1e3,
    }


def run_crash_recovery(
    tasks: int = 48, workers: int = 4, gates: int = 384
) -> dict:
    """A crashing worker mid-batch must not cost any proofs."""
    prover, task_list = _runtime_setup(gates, tasks)
    spec = ProverSpec.from_prover(prover)
    runtime = ParallelProvingRuntime(
        spec, workers=workers, fault_injector=crash_first_attempts
    )
    proofs, stats = runtime.prove_tasks(task_list)
    complete = len(proofs) == len(task_list)
    verified = verify_all(spec.build_verifier(), proofs, task_list)
    return {
        "complete": complete,
        "verified": verified,
        "retries": stats.retries,
        "throughput": stats.throughput_per_second,
    }


def run_runtime_suite(
    tasks: int = 48, workers: Optional[int] = None, gates: int = 384
) -> dict:
    """Scaling and crash-recovery measurements as one payload."""
    cores = os.cpu_count() or 1
    workers = min(4 if workers is None else max(1, workers), cores)
    scaling = run_scaling(tasks=tasks, workers=workers, gates=gates)
    recovery = run_crash_recovery(tasks=tasks, workers=workers, gates=gates)
    return {
        "tasks": tasks,
        "workers": workers,
        "host_cores": cores,
        "scaling": scaling,
        "recovery": recovery,
        "speedup": scaling["speedup"],
        "utilization": scaling["utilization"],
        "recovery_ok": 1.0
        if (recovery["complete"] and recovery["verified"])
        else 0.0,
    }


__all__ = [
    "run_hotpath",
    "run_pipeline_sweep",
    "run_cluster_scaleout",
    "run_fleet_serving",
    "run_degradation_curve",
    "run_wrapper_overhead",
    "run_journal_tax",
    "run_resilience_suite",
    "service_setup",
    "run_service_cell",
    "run_service_sweep",
    "run_seam_overhead",
    "run_composition",
    "run_backend_suite",
    "run_scaling",
    "run_crash_recovery",
    "run_runtime_suite",
    "crash_first_attempts",
]
