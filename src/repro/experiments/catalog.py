"""The built-in experiment catalog: every paper artifact + extension bench.

Importing this module (which ``repro.experiments`` does) registers:

* the eleven paper artifacts — Tables 3–11, Figure 9, and the §6.3
  speedup breakdown — as thin wrappers over ``repro.bench.tables``
  (tagged ``paper``/``paper-table``; quick == full since each computes
  in well under a second), and
* the extension benches (S22–S30), whose measurement cores live
  in :mod:`repro.experiments.benches` (tagged ``extension``/``ci``;
  quick params are the old ``--quick`` CI-smoke sizes).

Guard defaults reproduce the legacy per-script flags exactly:
``--min-speedup`` 1.2 (hotpath), ``--min-ratio`` 1.0 (pipeline),
``--min-scaling`` 1.6 (cluster, enforced only on multi-core hosts).
"""

from __future__ import annotations

from typing import Any, Dict, List, Mapping

from ..bench import tables
from . import benches
from .spec import ExperimentSpec, Guard
from .registry import register_experiment

# -- paper artifacts -----------------------------------------------------------


def _rows_payload(rows) -> Dict[str, Any]:
    return {"rows": [{"label": r.label, "values": r.values} for r in rows]}


def _row_values(payload: Mapping[str, Any], label: str) -> Dict[str, Any]:
    for row in payload["rows"]:
        if row["label"] == label:
            return row["values"]
    return payload["rows"][-1]["values"]


def _module_table_metrics(payload: Mapping[str, Any]) -> Dict[str, float]:
    top = payload["rows"][-1]["values"]
    return {
        "top_speedup_vs_cpu": top["speedup_vs_cpu"],
        "top_speedup_vs_gpu": top["speedup_vs_gpu"],
    }


def _table6_metrics(payload: Mapping[str, Any]) -> Dict[str, float]:
    ratios = [r["values"]["ratio"] for r in payload["rows"]]
    return {"max_latency_ratio": max(ratios), "min_latency_ratio": min(ratios)}


def _fig9_metrics(payload: Mapping[str, Any]) -> Dict[str, float]:
    out: Dict[str, float] = {}
    for module, trace in payload["modules"].items():
        out[f"{module}_ours_mean_util"] = trace["ours_mean"]
        out[f"{module}_baseline_mean_util"] = trace["baseline_mean"]
    return out


def _table7_metrics(payload: Mapping[str, Any]) -> Dict[str, float]:
    top = payload["rows"][-1]["values"]
    return {
        "top_speedup_vs_bellperson": top["speedup_vs_bellperson"],
        "top_speedup_vs_orion_ark": top["speedup_vs_orion_ark"],
    }


def _table8_metrics(payload: Mapping[str, Any]) -> Dict[str, float]:
    return {
        "v100_throughput_speedup": _row_values(payload, "V100")[
            "throughput_speedup"
        ],
    }


def _table9_metrics(payload: Mapping[str, Any]) -> Dict[str, float]:
    overlaps = [
        r["values"]["overall_ms"] / max(r["values"]["comp_ms"], 1e-12)
        for r in payload["rows"]
    ]
    return {"max_overall_over_comp": max(overlaps)}


def _table10_metrics(payload: Mapping[str, Any]) -> Dict[str, float]:
    return {
        "min_memory_reduction": min(
            r["values"]["reduction"] for r in payload["rows"]
        ),
    }


def _table11_metrics(payload: Mapping[str, Any]) -> Dict[str, float]:
    ours = _row_values(payload, "Ours")
    return {
        "ours_throughput_per_s": ours["throughput"],
        "ours_latency_s": ours["latency_s"],
        "amortized_ms": 1e3 / ours["throughput"],
    }


def _table_runner(compute):
    return lambda params: _rows_payload(compute(**params))


_PAPER_TAGS = ("paper", "paper-table", "ci")

_PAPER_SPECS = [
    ExperimentSpec(
        name="table3",
        description="Table 3: Merkle tree throughput (trees/ms, GH200)",
        runner=_table_runner(tables.compute_table3),
        tags=_PAPER_TAGS,
        metrics_from=_module_table_metrics,
    ),
    ExperimentSpec(
        name="table4",
        description="Table 4: sum-check throughput (proofs/ms, GH200)",
        runner=_table_runner(tables.compute_table4),
        tags=_PAPER_TAGS,
        metrics_from=_module_table_metrics,
    ),
    ExperimentSpec(
        name="table5",
        description="Table 5: linear-time encoder throughput (codes/ms)",
        runner=_table_runner(tables.compute_table5),
        tags=_PAPER_TAGS,
        metrics_from=_module_table_metrics,
    ),
    ExperimentSpec(
        name="table6",
        description="Table 6: module latency — pipelining's honest cost",
        runner=_table_runner(tables.compute_table6),
        tags=_PAPER_TAGS,
        metrics_from=_table6_metrics,
    ),
    ExperimentSpec(
        name="fig9",
        description="Figure 9: GPU core utilization traces (3090Ti)",
        runner=lambda params: {"modules": tables.compute_fig9(**params)},
        tags=_PAPER_TAGS,
        metrics_from=_fig9_metrics,
    ),
    ExperimentSpec(
        name="table7",
        description="Table 7: amortized per-proof time across systems",
        runner=_table_runner(tables.compute_table7),
        tags=_PAPER_TAGS,
        metrics_from=_table7_metrics,
    ),
    ExperimentSpec(
        name="breakdown",
        description="§6.3 speedup decomposition (protocol × pipeline)",
        runner=lambda params: dict(tables.compute_breakdown(**params)),
        tags=_PAPER_TAGS,
    ),
    ExperimentSpec(
        name="table8",
        description="Table 8: latency/throughput across GPUs @ S=2^20",
        runner=_table_runner(tables.compute_table8),
        tags=_PAPER_TAGS,
        metrics_from=_table8_metrics,
    ),
    ExperimentSpec(
        name="table9",
        description="Table 9: communication/computation overlap per beat",
        runner=_table_runner(tables.compute_table9),
        tags=_PAPER_TAGS,
        metrics_from=_table9_metrics,
    ),
    ExperimentSpec(
        name="table10",
        description="Table 10: device memory per in-flight proof",
        runner=_table_runner(tables.compute_table10),
        tags=_PAPER_TAGS,
        metrics_from=_table10_metrics,
    ),
    ExperimentSpec(
        name="table11",
        description="Table 11: verifiable ML (VGG-16/CIFAR-10)",
        runner=_table_runner(tables.compute_table11),
        tags=_PAPER_TAGS,
        metrics_from=_table11_metrics,
    ),
]

# -- extension benches ---------------------------------------------------------


def _service_metrics(payload: Mapping[str, Any]) -> Dict[str, float]:
    return {
        "peak_throughput": payload["peak_throughput"],
        "max_mean_batch": payload["max_mean_batch"],
        "verified_ok": 1.0 if payload["all_verified"] else 0.0,
    }


def _fleet_metrics(payload: Mapping[str, Any]) -> Dict[str, float]:
    return {
        "host_cores": float(payload["host_cores"]),
        "p99_hedged_ms": payload["p99_hedged_ms"],
        "p99_unhedged_ms": payload["p99_unhedged_ms"],
        "hedge_p99_ratio": payload["hedge_p99_ratio"],
        "hedges_issued": float(payload["hedges_issued"]),
        "hedges_won": float(payload["hedges_won"]),
        "verified_ok": 1.0 if payload["all_verified"] else 0.0,
    }


def _resilience_metrics(payload: Mapping[str, Any]) -> Dict[str, float]:
    return {
        "fault_free_throughput": payload["fault_free_throughput"],
        "max_rate_throughput": payload["max_rate_throughput"],
        "wrapper_overhead_pct": payload["wrapper_overhead_pct"],
        "journal_tax_pct": payload["journal_tax_pct"],
        "resume_speedup": payload["resume_speedup"],
    }


_EXTENSION_SPECS = [
    ExperimentSpec(
        name="bench_hotpath",
        description="S26 kernels: fast vs reference single-proof speedup",
        runner=lambda params: benches.run_hotpath(**params),
        tags=("extension", "ci"),
        guards=(
            Guard(
                name="min_speedup",
                metric="speedup",
                op=">=",
                threshold=1.2,
                description="fast kernels must beat reference by ≥1.2x "
                "(legacy --min-speedup)",
            ),
        ),
        full_params={"gates": 4096, "reps": 3},
        quick_params={"gates": 1024, "reps": 2},
    ),
    ExperimentSpec(
        name="bench_lanes",
        description="S31 lane-vectorized prover vs serial on one "
        "same-circuit batch",
        runner=lambda params: benches.run_lanes(**params),
        tags=("extension", "ci"),
        guards=(
            Guard(
                name="lane_speedup",
                metric="lane_speedup",
                op=">=",
                threshold=2.0,
                description="lane-vectorized proving must beat serial by "
                "≥2x at 256 gates × 64 lanes",
            ),
        ),
        full_params={"gates": 256, "lanes": 64, "reps": 3},
        quick_params={"gates": 256, "lanes": 64, "reps": 2},
    ),
    ExperimentSpec(
        name="bench_pipeline",
        description="S27 stage-pipelined executor vs pool vs serial sweep",
        runner=lambda params: benches.run_pipeline_sweep(**params),
        tags=("extension", "ci"),
        guards=(
            Guard(
                name="min_ratio",
                metric="final_ratio_vs_pool",
                op=">=",
                threshold=1.0,
                description="pipelined must match the pool at the largest "
                "batch (legacy --min-ratio)",
            ),
        ),
        full_params={"gates": 384, "workers": 2, "batches": (4, 8, 16, 32)},
        quick_params={"gates": 128, "batches": (4, 8)},
    ),
    ExperimentSpec(
        name="bench_cluster",
        description="S28 cluster: 1-node vs 2-node fleet scale-out",
        runner=lambda params: benches.run_cluster_scaleout(**params),
        tags=("extension", "ci"),
        guards=(
            Guard(
                name="min_scaling",
                metric="scaling_2_over_1",
                op=">=",
                threshold=1.6,
                description="2-node fleet must reach ≥1.6x of 1-node "
                "(legacy --min-scaling; multi-core hosts only)",
                precondition=("host_cores", ">=", 2),
            ),
        ),
        full_params={"gates": 256, "batches": (8, 16, 32)},
        quick_params={"gates": 96, "batches": (16,)},
    ),
    ExperimentSpec(
        name="bench_fleet",
        description="S30 hedged serving: p99 with vs without hedged "
        "dispatch under one stalling node",
        runner=lambda params: benches.run_fleet_serving(**params),
        tags=("extension", "ci", "chaos"),
        guards=(
            Guard(
                name="max_p99_ratio",
                metric="hedge_p99_ratio",
                op="<=",
                threshold=1.0,
                description="hedged p99 must not exceed the no-hedge "
                "baseline (multi-core hosts only)",
                precondition=("host_cores", ">=", 2),
            ),
            Guard(
                name="verified",
                metric="verified_ok",
                op=">=",
                threshold=1.0,
                description="every sampled fleet proof must verify",
            ),
        ),
        full_params={
            "requests": 24,
            "rate": 150.0,
            "gates": 96,
            "stall_seconds": 0.25,
        },
        quick_params={
            "requests": 12,
            "rate": 150.0,
            "gates": 96,
            "stall_seconds": 0.2,
        },
        metrics_from=_fleet_metrics,
    ),
    ExperimentSpec(
        name="bench_resilience",
        description="S25 resilience: crash-rate degradation, wrapper "
        "overhead, journal tax",
        runner=lambda params: benches.run_resilience_suite(**params),
        tags=("extension", "ci", "chaos"),
        full_params={
            "tasks": 32,
            "rates": (0.0, 0.05, 0.1, 0.2, 0.4),
            "gates": 256,
        },
        quick_params={"tasks": 8, "rates": (0.0, 0.1, 0.3)},
        metrics_from=_resilience_metrics,
    ),
    ExperimentSpec(
        name="bench_service",
        description="S23 streaming service: arrival-rate × batch-window grid",
        runner=lambda params: benches.run_service_sweep(**params),
        tags=("extension", "ci"),
        guards=(
            Guard(
                name="verified",
                metric="verified_ok",
                op=">=",
                threshold=1.0,
                description="every sampled service proof must verify",
            ),
        ),
        full_params={
            "rates": (100.0, 400.0),
            "windows": (0.002, 0.02, 0.08),
            "requests": 64,
            "gates": 96,
        },
        quick_params={
            "rates": (400.0,),
            "windows": (0.002, 0.02),
            "requests": 16,
        },
        metrics_from=_service_metrics,
    ),
    ExperimentSpec(
        name="bench_backends",
        description="S24 backend seam overhead + sharded composition",
        runner=lambda params: benches.run_backend_suite(**params),
        tags=("extension", "ci"),
        full_params={"tasks": 48, "workers": None, "gates": 384},
        quick_params={"tasks": 8, "workers": 2},
    ),
    ExperimentSpec(
        name="bench_parallel_runtime",
        description="S22 process-pool runtime: scaling + crash recovery",
        runner=lambda params: benches.run_runtime_suite(**params),
        tags=("extension", "ci"),
        guards=(
            Guard(
                name="recovery",
                metric="recovery_ok",
                op=">=",
                threshold=1.0,
                description="a mid-batch worker crash must not lose proofs",
            ),
        ),
        full_params={"tasks": 48, "workers": None, "gates": 384},
        quick_params={"tasks": 8, "workers": 2},
    ),
]


def register_catalog(*, replace: bool = False) -> List[str]:
    """Register every built-in spec; returns the registered names."""
    names = []
    for spec in _PAPER_SPECS + _EXTENSION_SPECS:
        register_experiment(spec, replace=replace)
        names.append(spec.name)
    return names


register_catalog(replace=True)

__all__ = ["register_catalog"]
