"""Name registry for experiments, mirroring the S24 backend registry.

``register_experiment`` is the extension point; ``get_experiment``
resolves a name with the same unknown-name ergonomics as
:func:`repro.execution.resolve_backend` — the error lists every
registered name and offers a difflib "did you mean" suggestion.  Suites
are tag queries: ``--suite ci`` selects everything tagged ``ci``.
"""

from __future__ import annotations

import difflib
from typing import Dict, Iterable, List, Optional, Sequence

from ..errors import ExperimentError
from .spec import ExperimentSpec

_REGISTRY: Dict[str, ExperimentSpec] = {}

#: Suite names double as tags; "all" is the universe.
KNOWN_SUITES = ("all", "ci", "paper", "extension", "chaos")


def register_experiment(
    spec: ExperimentSpec, *, replace: bool = False
) -> ExperimentSpec:
    """Register ``spec`` under its name; duplicate names are an error."""
    key = spec.name.strip().lower()
    if not key:
        raise ExperimentError("experiment name must be non-empty")
    if key in _REGISTRY and not replace:
        raise ExperimentError(f"experiment {key!r} is already registered")
    _REGISTRY[key] = spec
    return spec


def available_experiments() -> List[str]:
    """Sorted registered names (for CLI help and error messages)."""
    return sorted(_REGISTRY)


def get_experiment(name: str) -> ExperimentSpec:
    """Resolve a registered experiment by name.

    Unknown names fail with the full roster and a close-match hint,
    mirroring the S28 ``resolve_backend`` behavior::

        unknown experiment 'bench_hotpat'; available: …
        (did you mean 'bench_hotpath'?)
    """
    key = (name or "").strip().lower()
    spec = _REGISTRY.get(key)
    if spec is not None:
        return spec
    message = (
        f"unknown experiment {name!r}; available: "
        + ", ".join(available_experiments())
    )
    close = difflib.get_close_matches(key, available_experiments(), n=1)
    if close:
        message += f" (did you mean {close[0]!r}?)"
    raise ExperimentError(message)


def experiments_by_tag(tag: str) -> List[ExperimentSpec]:
    """Every registered spec carrying ``tag``, in name order."""
    wanted = tag.strip().lower()
    return [
        _REGISTRY[name]
        for name in available_experiments()
        if wanted in _REGISTRY[name].tags
    ]


def select_experiments(
    names: Optional[Sequence[str]] = None,
    suite: Optional[str] = None,
    tags: Optional[Iterable[str]] = None,
) -> List[ExperimentSpec]:
    """Resolve an explicit name list, a suite, and/or tag filters.

    With nothing given, returns every registered experiment.  Explicit
    names and suite/tag filters compose as a union of names then an
    intersection with tags.
    """
    chosen: List[ExperimentSpec] = []
    if names:
        chosen.extend(get_experiment(name) for name in names)
    if suite is not None:
        key = suite.strip().lower()
        if key == "all":
            chosen.extend(
                _REGISTRY[name] for name in available_experiments()
            )
        else:
            suite_specs = experiments_by_tag(key)
            if not suite_specs:
                raise ExperimentError(
                    f"suite {suite!r} matches no experiments; known suites: "
                    + ", ".join(KNOWN_SUITES)
                )
            chosen.extend(suite_specs)
    if not names and suite is None:
        chosen = [_REGISTRY[name] for name in available_experiments()]
    if tags:
        wanted = {tag.strip().lower() for tag in tags}
        chosen = [spec for spec in chosen if wanted <= set(spec.tags)]
    seen = set()
    unique: List[ExperimentSpec] = []
    for spec in chosen:
        if spec.name not in seen:
            seen.add(spec.name)
            unique.append(spec)
    return unique


def _reset_registry_for_tests() -> Dict[str, ExperimentSpec]:
    """Testing hook: snapshot and clear the registry (restore by update)."""
    snapshot = dict(_REGISTRY)
    _REGISTRY.clear()
    return snapshot


__all__ = [
    "KNOWN_SUITES",
    "register_experiment",
    "available_experiments",
    "get_experiment",
    "experiments_by_tag",
    "select_experiments",
]
