"""Polynomial commitment (system S6 in DESIGN.md).

Brakedown/Orion-style: linear-time encoder + Merkle tree, with proximity
testing and tensor-point evaluation openings.
"""

from .brakedown import (
    BrakedownPCS,
    ColumnOpening,
    Commitment,
    DEFAULT_COLUMN_CHECKS,
    EvalProof,
    PcsParams,
    ProverState,
    split_num_vars,
)
from .security import (
    DEFAULT_ASSUMED_DISTANCE,
    SecurityEstimate,
    checks_for_security,
    column_check_error,
    estimate,
    recommended_parameters,
    sumcheck_error_bits,
)

__all__ = [
    "SecurityEstimate",
    "estimate",
    "column_check_error",
    "checks_for_security",
    "sumcheck_error_bits",
    "recommended_parameters",
    "DEFAULT_ASSUMED_DISTANCE",
    "BrakedownPCS",
    "Commitment",
    "ProverState",
    "EvalProof",
    "ColumnOpening",
    "PcsParams",
    "split_num_vars",
    "DEFAULT_COLUMN_CHECKS",
]
