"""Brakedown/Orion-style polynomial commitment (linear code + Merkle tree).

This is the "commitment" spine of the paper's second category of ZKP
protocols (Figure 1): the prover's input is split into segments, each
segment is encoded by the linear-time encoder, the codewords are committed
by Merkle trees, and evaluation claims are checked with random column
openings.

Scheme (for a multilinear polynomial ``w`` over ``n`` variables):

* Arrange the ``2^n`` hypercube evaluations into an ``R × C`` matrix ``M``
  (``R = 2^{n_row}`` rows, ``C = 2^{n_col}`` columns; the low ``n_col``
  variables index columns).
* **Commit** — encode every row with the Spielman encoder (codeword length
  ``q·C``), then Merkle-commit the *columns* of the encoded matrix ``U``.
  The commitment is the Merkle root.
* **Open at point z** — split ``z`` into column half ``z_lo`` and row half
  ``z_hi``; then ``w(z) = q_rowᵀ · M · q_col`` with ``q_row = eq(z_hi,·)``,
  ``q_col = eq(z_lo,·)``.  The prover sends:

  - a *proximity row*  ``p = rᵀ·M`` for a transcript-derived random ``r``
    (tests that the committed rows are jointly close to the code),
  - the *evaluation row* ``u = q_rowᵀ·M``,
  - openings of ``t`` transcript-chosen codeword columns.

* **Verify** — for each opened column ``j``: check the Merkle path, and
  check ``Enc(p)[j] = Σ_i r_i·U[i][j]`` and ``Enc(u)[j] = Σ_i q_row_i·
  U[i][j]`` (linearity of the code makes honest rows pass everywhere).
  Finally check ``⟨u, q_col⟩ = claimed value``.

Security note: soundness error decays exponentially in the number of
column checks ``t`` given the code's minimum distance; this reproduction
uses pseudorandom expanders without a certified distance bound, so ``t``
is a tunable knob rather than a derived constant.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence, Tuple

import numpy as np

from ..errors import CommitmentError
from ..field.multilinear import eq_table
from ..field.prime_field import PrimeField
from ..field.primes import MERSENNE61
from ..kernels.dispatch import kernels_enabled
from ..hashing.hashers import Hasher, get_hasher
from ..hashing.transcript import Transcript
from ..kernels.field_kernels import combine_rows, pack_vector
from ..kernels.profile import stage as _stage
from ..kernels.spec_cache import cached_encoder
from ..kernels.field_kernels import eq_table_lanes
from ..field import fast61 as _f61
from ..merkle.multiproof import MerkleMultiProof, open_multi
from ..merkle.proof import MerklePath
from ..merkle.tree import MerkleTree, build_forest
from ..encoder.spielman import EncoderParams

DEFAULT_COLUMN_CHECKS = 24


@dataclass(frozen=True)
class PcsParams:
    """Static parameters shared by prover and verifier."""

    num_vars: int
    row_vars: int
    col_vars: int
    encoder_seed: int
    encoder_params: EncoderParams
    num_col_checks: int = DEFAULT_COLUMN_CHECKS
    #: Authenticate all opened columns with one shared Merkle multiproof
    #: instead of independent per-column paths (smaller proofs).
    compress_openings: bool = False

    @property
    def num_rows(self) -> int:
        return 1 << self.row_vars

    @property
    def num_cols(self) -> int:
        return 1 << self.col_vars

    @property
    def codeword_length(self) -> int:
        return self.encoder_params.codeword_length(self.num_cols)


@dataclass(frozen=True)
class Commitment:
    """The public commitment: a Merkle root plus the shape parameters."""

    root: bytes
    params: PcsParams


@dataclass
class ProverState:
    """Everything the prover retains between commit and open."""

    matrix: List[List[int]]  # R×C coefficient matrix
    encoded: List[List[int]]  # R×(qC) codeword matrix U
    tree: MerkleTree
    params: PcsParams


@dataclass
class EncodedRows:
    """The encode half of a commit: codeword rows awaiting the Merkle half.

    Produced by :meth:`BrakedownPCS.encode_rows` and consumed by
    :meth:`BrakedownPCS.commit_encoded` — the boundary the pipelined
    executor schedules across, so proof *i+1* can be encoding while
    proof *i* hashes.  ``codewords`` carries the fast path's uint64
    matrix so the Merkle half packs leaves without a round-trip through
    Python ints.
    """

    matrix: List[List[int]]  # R×C coefficient matrix
    encoded: List[List[int]]  # R×(qC) codeword matrix U
    codewords: Optional["np.ndarray"] = None  # fast-path uint64 view of U


@dataclass
class LanedState:
    """Prover state for a lane-group commit (S31).

    The per-lane coefficient and codeword matrices stay stacked as
    ``uint64`` arrays (``[L, R, C]`` / ``[L, R, Q]``) so the open stage
    can combine rows for every lane in one kernel dispatch; only the
    Merkle trees are per-lane objects (their roots differ, which is
    where the lanes' transcripts — and all later challenges — diverge).
    """

    matrices: "np.ndarray"   # [L, R, C] coefficient matrices
    codewords: "np.ndarray"  # [L, R, Q] codeword matrices
    trees: List[MerkleTree]
    params: PcsParams

    @property
    def lanes(self) -> int:
        return len(self.trees)


@dataclass(frozen=True)
class ColumnOpening:
    """One opened codeword column.

    ``path`` is its individual Merkle authentication path, or ``None``
    when the whole proof authenticates columns with one shared
    :class:`~repro.merkle.MerkleMultiProof` (compressed mode).
    """

    index: int
    values: List[int]  # the column across all R rows
    path: Optional[MerklePath]


@dataclass(frozen=True)
class EvalProof:
    """Proof that the committed polynomial evaluates to ``value`` at ``point``.

    ``multiproof`` is set in compressed-openings mode (see
    :class:`PcsParams.compress_openings`): the opened columns' leaves are
    then authenticated jointly, deduplicating shared interior nodes.
    """

    proximity_row: List[int]
    evaluation_row: List[int]
    columns: List[ColumnOpening]
    multiproof: Optional["MerkleMultiProof"] = None

    def size_field_elements(self) -> int:
        return (
            len(self.proximity_row)
            + len(self.evaluation_row)
            + sum(len(c.values) for c in self.columns)
        )

    def size_bytes(self, field: PrimeField) -> int:
        fe = self.size_field_elements() * field.byte_length
        paths = sum(
            c.path.size_bytes() for c in self.columns if c.path is not None
        )
        if self.multiproof is not None:
            paths += self.multiproof.size_bytes()
        return fe + paths


def split_num_vars(num_vars: int, row_vars: Optional[int] = None) -> Tuple[int, int]:
    """Choose the row/column split; default is the balanced √N shape."""
    if num_vars < 2:
        raise CommitmentError("need at least 2 variables to commit")
    if row_vars is None:
        row_vars = num_vars // 2
    col_vars = num_vars - row_vars
    if row_vars < 1 or col_vars < 1:
        raise CommitmentError(
            f"invalid split: {row_vars} row vars, {col_vars} col vars"
        )
    return row_vars, col_vars


class BrakedownPCS:
    """A complete commit/open/verify polynomial commitment scheme.

    >>> from repro.field import DEFAULT_FIELD
    >>> from repro.hashing import Transcript
    >>> pcs = BrakedownPCS(DEFAULT_FIELD, num_vars=6, seed=1)
    >>> evals = DEFAULT_FIELD.rand_vector(64)
    >>> com, state = pcs.commit(evals)
    >>> point = DEFAULT_FIELD.rand_vector(6)
    >>> value = pcs.evaluate(state, point)
    >>> proof = pcs.open(state, point, Transcript(b"x"))
    >>> pcs.verify(com, point, value, proof, Transcript(b"x"))
    True
    """

    def __init__(
        self,
        field: PrimeField,
        num_vars: int,
        row_vars: Optional[int] = None,
        encoder_params: Optional[EncoderParams] = None,
        seed: int = 0,
        hasher: Optional[Hasher] = None,
        num_col_checks: int = DEFAULT_COLUMN_CHECKS,
        compress_openings: bool = False,
    ):
        row_vars, col_vars = split_num_vars(num_vars, row_vars)
        self.field = field
        self.hasher = hasher or get_hasher("sha256-hw")
        self.params = PcsParams(
            num_vars=num_vars,
            row_vars=row_vars,
            col_vars=col_vars,
            encoder_seed=seed,
            encoder_params=encoder_params or EncoderParams(),
            num_col_checks=num_col_checks,
            compress_openings=compress_openings,
        )
        # Expander graphs are deterministic in (modulus, length, params,
        # seed); the memo shares them across prover/verifier instances.
        self.encoder = cached_encoder(
            field,
            self.params.num_cols,
            self.params.encoder_params,
            seed,
        )

    # -- commit ---------------------------------------------------------------

    def commit(self, evals: Sequence[int]) -> Tuple[Commitment, ProverState]:
        """Commit to a multilinear polynomial given its hypercube table.

        Composition of :meth:`encode_rows` and :meth:`commit_encoded`
        (the stage boundary the pipelined executor drives separately) —
        byte-identical to the historical monolithic commit.
        """
        return self.commit_encoded(self.encode_rows(evals))

    def encode_rows(self, evals: Sequence[int]) -> EncodedRows:
        """The encode half of a commit: shape into rows and encode each."""
        params = self.params
        expected = 1 << params.num_vars
        if len(evals) != expected:
            raise CommitmentError(
                f"expected {expected} evaluations, got {len(evals)}"
            )
        p = self.field.modulus
        cols = params.num_cols
        matrix = [
            [v % p for v in evals[r * cols : (r + 1) * cols]]
            for r in range(params.num_rows)
        ]
        if self._fast_path():
            # Batched fast path: one 2-D SpMV sweep per encoder stage
            # (bit-identical to per-row encode).
            with _stage("encode"):
                cw = self.encoder._encode_batch61(
                    np.asarray(matrix, dtype=np.uint64)
                )
            return EncodedRows(matrix=matrix, encoded=cw.tolist(), codewords=cw)
        with _stage("encode"):
            encoded = [self.encoder.encode(row) for row in matrix]
        return EncodedRows(matrix=matrix, encoded=encoded)

    def commit_encoded(
        self, rows: EncodedRows
    ) -> Tuple[Commitment, ProverState]:
        """The Merkle half of a commit: hash the codeword columns."""
        params = self.params
        if rows.codewords is not None:
            # Leaf packing straight out of the transposed codeword matrix
            # (bit-identical to per-column pack_vector).
            cw = rows.codewords
            with _stage("merkle"):
                raw = np.ascontiguousarray(cw.T).astype("<u8", copy=False).tobytes()
                stride = 8 * params.num_rows
                blocks = [
                    raw[i * stride : (i + 1) * stride]
                    for i in range(cw.shape[1])
                ]
                tree = MerkleTree(self.hasher.hash_many(blocks), self.hasher)
        else:
            with _stage("merkle"):
                columns = list(zip(*rows.encoded))
                tree = MerkleTree.from_field_vectors(
                    self.field, columns, self.hasher
                )
        commitment = Commitment(root=tree.root, params=params)
        return commitment, ProverState(
            matrix=rows.matrix, encoded=rows.encoded, tree=tree, params=params
        )

    def _fast_path(self) -> bool:
        return (
            kernels_enabled()
            and self.field.modulus == MERSENNE61
            and self.params.num_rows >= 2
        )

    # -- laned commit/open (S31) ----------------------------------------------

    def encode_rows_lanes(self, evals_lanes: "np.ndarray") -> Tuple["np.ndarray", "np.ndarray"]:
        """Encode ``L`` lanes' evaluation tables in one batched SpMV sweep.

        ``evals_lanes`` is ``[L, 2^num_vars]`` uint64; the lanes' row
        matrices are stacked to ``(L·R, C)`` so each encoder stage runs
        once for the whole lane-group.  Row-independence of the encoder
        makes the stacked pass bit-identical to encoding each lane alone.
        Returns ``(matrices [L, R, C], codewords [L, R, Q])``.
        """
        params = self.params
        if not self._fast_path():
            raise CommitmentError("encode_rows_lanes requires the fast61 path")
        evals_lanes = np.asarray(evals_lanes, dtype=np.uint64)
        expected = 1 << params.num_vars
        if evals_lanes.ndim != 2 or evals_lanes.shape[1] != expected:
            raise CommitmentError(
                f"lane evals shape {evals_lanes.shape} != (L, {expected})"
            )
        lanes = evals_lanes.shape[0]
        rows, cols = params.num_rows, params.num_cols
        matrices = evals_lanes.reshape(lanes, rows, cols)
        with _stage("encode"):
            flat = self.encoder._encode_batch61(
                matrices.reshape(lanes * rows, cols)
            )
            codewords = flat.reshape(lanes, rows, flat.shape[1])
        return matrices, codewords

    def commit_encoded_lanes(
        self, matrices: "np.ndarray", codewords: "np.ndarray"
    ) -> Tuple[List[Commitment], LanedState]:
        """The Merkle half of a lane-group commit: one forest, one pass.

        All lanes' column blocks are packed from the stacked codeword
        array and leaf-hashed with a single :meth:`Hasher.hash_many`
        call; :func:`~repro.merkle.tree.build_forest` then compresses
        every lane's tree level in one batched dispatch per level.
        """
        params = self.params
        lanes, rows, q_len = codewords.shape
        with _stage("merkle"):
            # [L, Q, R] → every lane's column-major bytes, one tobytes().
            raw = (
                np.ascontiguousarray(codewords.transpose(0, 2, 1))
                .astype("<u8", copy=False)
                .tobytes()
            )
            stride = 8 * rows
            blocks = [
                raw[i * stride : (i + 1) * stride] for i in range(lanes * q_len)
            ]
            leaves = self.hasher.hash_many(blocks)
            trees = build_forest(
                [leaves[lane * q_len : (lane + 1) * q_len] for lane in range(lanes)],
                self.hasher,
            )
        commitments = [Commitment(root=tree.root, params=params) for tree in trees]
        return commitments, LanedState(
            matrices=matrices, codewords=codewords, trees=trees, params=params
        )

    def lane_state(self, state: LanedState, lane: int) -> ProverState:
        """Materialize one lane of a :class:`LanedState` as a scalar state.

        Used when a single lane's proof must be re-driven through the
        per-proof path (retries, diagnostics); the int conversion is
        paid only then.
        """
        return ProverState(
            matrix=state.matrices[lane].tolist(),
            encoded=state.codewords[lane].tolist(),
            tree=state.trees[lane],
            params=state.params,
        )

    # -- evaluation -----------------------------------------------------------------

    def _split_point(self, point: Sequence[int]) -> Tuple[List[int], List[int]]:
        params = self.params
        if len(point) != params.num_vars:
            raise CommitmentError(
                f"point has {len(point)} coordinates, expected {params.num_vars}"
            )
        return (
            list(point[: params.col_vars]),  # low vars index columns
            list(point[params.col_vars :]),  # high vars index rows
        )

    def evaluate(self, state: ProverState, point: Sequence[int]) -> int:
        """Honest evaluation ``q_rowᵀ·M·q_col`` from the prover's matrix."""
        z_lo, z_hi = self._split_point(point)
        q_col = eq_table(self.field, z_lo)
        q_row = eq_table(self.field, z_hi)
        combined = combine_rows(self.field, state.matrix, q_row)
        return self.field.dot(combined, q_col)

    def evaluate_lanes(
        self, state: LanedState, points: Sequence[Sequence[int]]
    ) -> List[int]:
        """Honest per-lane evaluations at per-lane points, one kernel pass.

        Value-identical to calling :meth:`evaluate` per lane (all fast61
        arithmetic is exact), with the row combination and final dot
        product batched across the lane-group.
        """
        splits = [self._split_point(point) for point in points]
        q_cols = eq_table_lanes(self.field, [lo for lo, _ in splits])
        q_rows = eq_table_lanes(self.field, [hi for _, hi in splits])
        combined = combine_rows(self.field, state.matrices, q_rows)
        return [int(v) for v in _f61.f61_rows_dot(combined, q_cols)]

    # -- open -------------------------------------------------------------------------

    def open(
        self, state: ProverState, point: Sequence[int], transcript: Transcript
    ) -> EvalProof:
        """Produce an evaluation proof bound to ``transcript``."""
        params = state.params
        field = self.field
        z_lo, z_hi = self._split_point(point)
        transcript.absorb_bytes(b"pcs/root", state.tree.root)
        transcript.absorb_field_vector(b"pcs/point", field, list(point))

        # Proximity test: random row combination.
        r_coeffs = transcript.challenge_field_vector(
            b"pcs/proximity", field, params.num_rows
        )
        proximity_row = combine_rows(field, state.matrix, r_coeffs)
        transcript.absorb_field_vector(b"pcs/prox-row", field, proximity_row)

        # Evaluation row: eq(z_hi)ᵀ · M.
        q_row = eq_table(field, z_hi)
        evaluation_row = combine_rows(field, state.matrix, q_row)
        transcript.absorb_field_vector(b"pcs/eval-row", field, evaluation_row)

        # Column spot checks.
        indices = transcript.challenge_indices(
            b"pcs/columns", params.codeword_length, params.num_col_checks
        )
        opened = sorted(set(indices))
        if params.compress_openings:
            columns = [
                ColumnOpening(
                    index=j, values=[row[j] for row in state.encoded], path=None
                )
                for j in opened
            ]
            multiproof = open_multi(state.tree, opened)
        else:
            columns = [
                ColumnOpening(
                    index=j,
                    values=[row[j] for row in state.encoded],
                    path=state.tree.open(j),
                )
                for j in opened
            ]
            multiproof = None
        return EvalProof(
            proximity_row=proximity_row,
            evaluation_row=evaluation_row,
            columns=columns,
            multiproof=multiproof,
        )

    def open_lanes(
        self,
        state: LanedState,
        points: Sequence[Sequence[int]],
        transcripts: Sequence[Transcript],
    ) -> List[EvalProof]:
        """Produce one evaluation proof per lane, row math batched.

        Each lane keeps its own transcript (roots differ, so challenges
        differ lane-for-lane), but the two row combinations — the only
        O(R·C) work — run once for the whole group.  The emitted proofs
        are byte-identical to per-lane :meth:`open` calls.
        """
        params = state.params
        field = self.field
        lanes = state.lanes
        splits = [self._split_point(point) for point in points]
        for lane in range(lanes):
            transcripts[lane].absorb_bytes(b"pcs/root", state.trees[lane].root)
            transcripts[lane].absorb_field_vector(
                b"pcs/point", field, list(points[lane])
            )

        r_lanes = np.asarray(
            [
                transcripts[lane].challenge_field_vector(
                    b"pcs/proximity", field, params.num_rows
                )
                for lane in range(lanes)
            ],
            dtype=np.uint64,
        )
        proximity_rows = combine_rows(field, state.matrices, r_lanes)
        prox_lists = [[int(v) for v in row] for row in proximity_rows]
        for lane in range(lanes):
            transcripts[lane].absorb_field_vector(
                b"pcs/prox-row", field, prox_lists[lane]
            )

        q_rows = eq_table_lanes(field, [hi for _, hi in splits])
        evaluation_rows = combine_rows(field, state.matrices, q_rows)
        eval_lists = [[int(v) for v in row] for row in evaluation_rows]
        for lane in range(lanes):
            transcripts[lane].absorb_field_vector(
                b"pcs/eval-row", field, eval_lists[lane]
            )

        proofs = []
        for lane in range(lanes):
            indices = transcripts[lane].challenge_indices(
                b"pcs/columns", params.codeword_length, params.num_col_checks
            )
            opened = sorted(set(indices))
            col_values = state.codewords[lane][:, opened].T.tolist()
            tree = state.trees[lane]
            if params.compress_openings:
                columns = [
                    ColumnOpening(index=j, values=values, path=None)
                    for j, values in zip(opened, col_values)
                ]
                multiproof = open_multi(tree, opened)
            else:
                columns = [
                    ColumnOpening(index=j, values=values, path=tree.open(j))
                    for j, values in zip(opened, col_values)
                ]
                multiproof = None
            proofs.append(
                EvalProof(
                    proximity_row=prox_lists[lane],
                    evaluation_row=eval_lists[lane],
                    columns=columns,
                    multiproof=multiproof,
                )
            )
        return proofs

    # -- verify ---------------------------------------------------------------------------

    def verify(
        self,
        commitment: Commitment,
        point: Sequence[int],
        value: int,
        proof: EvalProof,
        transcript: Transcript,
    ) -> bool:
        """Check an evaluation proof.  Returns False on any failed check."""
        params = commitment.params
        field = self.field
        if params != self.params:
            raise CommitmentError("commitment parameters do not match this PCS")
        try:
            z_lo, z_hi = self._split_point(point)
        except CommitmentError:
            return False
        if len(proof.proximity_row) != params.num_cols:
            return False
        if len(proof.evaluation_row) != params.num_cols:
            return False

        transcript.absorb_bytes(b"pcs/root", commitment.root)
        transcript.absorb_field_vector(b"pcs/point", field, list(point))
        r_coeffs = transcript.challenge_field_vector(
            b"pcs/proximity", field, params.num_rows
        )
        transcript.absorb_field_vector(b"pcs/prox-row", field, proof.proximity_row)
        q_row = eq_table(field, z_hi)
        transcript.absorb_field_vector(b"pcs/eval-row", field, proof.evaluation_row)
        indices = transcript.challenge_indices(
            b"pcs/columns", params.codeword_length, params.num_col_checks
        )
        expected_indices = sorted(set(indices))
        if [c.index for c in proof.columns] != expected_indices:
            return False

        # The verifier re-encodes the two claimed rows (O(C) work).
        prox_code = self.encoder.encode(proof.proximity_row)
        eval_code = self.encoder.encode(proof.evaluation_row)

        for opening in proof.columns:
            if len(opening.values) != params.num_rows:
                return False
        # Restrict the codeword matrix U to the opened columns and run both
        # linear checks as row combinations (one shared kernel pass each):
        # row i of the restriction is U[i][j] for each opened j.
        restricted = [
            [opening.values[i] for opening in proof.columns]
            for i in range(params.num_rows)
        ]
        prox_combined = combine_rows(field, restricted, r_coeffs)
        eval_combined = combine_rows(field, restricted, q_row)
        for pos, opening in enumerate(proof.columns):
            j = opening.index
            if prox_combined[pos] != prox_code[j]:
                return False
            if eval_combined[pos] != eval_code[j]:
                return False

        expected_leaves = self.hasher.hash_many(
            [pack_vector(field, c.values) for c in proof.columns]
        )
        if params.compress_openings:
            mp = proof.multiproof
            if mp is None:
                return False
            if list(mp.indices) != expected_indices:
                return False
            if list(mp.leaves) != expected_leaves:
                return False
            if not mp.verify(commitment.root, self.hasher):
                return False
        else:
            if proof.multiproof is not None:
                return False
            for opening, leaf in zip(proof.columns, expected_leaves):
                if opening.path is None:
                    return False
                if opening.path.leaf != leaf:
                    return False
                if opening.path.index != opening.index:
                    return False
                if not opening.path.verify(commitment.root, self.hasher):
                    return False

        q_col = eq_table(field, z_lo)
        return field.dot(proof.evaluation_row, q_col) == value % field.modulus
