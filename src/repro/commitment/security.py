"""Soundness-budget estimates for the commitment and the Fiat–Shamir SNARK.

The paper's protocols get their security from three knobs this module
quantifies:

* **column checks** — the probability that a far-from-code matrix slips
  past ``t`` random column spot-checks is ``(1 − δ/3)^t`` for relative
  code distance δ (Brakedown's proximity analysis, constants simplified);
* **field size** — every sum-check round and the proximity combination
  union-bound a ``d/|F|`` term (Schwartz–Zippel);
* **query amplification** — how many checks are needed for a target
  security level.

These are *estimates under an assumed code distance* — the pseudorandom
expanders are not certified (see README caveats) — but they let a user
size ``num_col_checks`` and the field the same way the real systems do.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from ..errors import CommitmentError
from ..field.prime_field import PrimeField
from .brakedown import PcsParams

#: Default assumed relative distance of the rate-1/2 expander code.  The
#: Brakedown paper proves constants in this regime for its parameters;
#: ours is an assumption, surfaced explicitly in every API below.
DEFAULT_ASSUMED_DISTANCE = 0.2


@dataclass(frozen=True)
class SecurityEstimate:
    """Bits of security per error source, and the binding minimum."""

    column_check_bits: float
    sumcheck_bits: float
    proximity_combination_bits: float

    @property
    def total_bits(self) -> float:
        """Overall soundness ≈ the weakest link (union bound ≈ min)."""
        return min(
            self.column_check_bits,
            self.sumcheck_bits,
            self.proximity_combination_bits,
        )


def column_check_error(num_checks: int, assumed_distance: float) -> float:
    """Pr[all t spot-checks miss] = (1 − δ/3)^t."""
    if not 0.0 < assumed_distance < 1.0:
        raise CommitmentError("assumed distance must be in (0, 1)")
    if num_checks < 1:
        raise CommitmentError("need at least one column check")
    return (1.0 - assumed_distance / 3.0) ** num_checks


def checks_for_security(bits: float, assumed_distance: float) -> int:
    """Smallest t with column_check_error <= 2^-bits."""
    if bits <= 0:
        raise CommitmentError("security target must be positive")
    per_check = -math.log2(1.0 - assumed_distance / 3.0)
    return math.ceil(bits / per_check)


def sumcheck_error_bits(
    field: PrimeField, num_rounds: int, degree: int
) -> float:
    """Schwartz–Zippel bits: each round risks degree/|F|."""
    if num_rounds < 1:
        raise CommitmentError("need at least one round")
    per_round = degree / field.modulus
    total = min(1.0, num_rounds * per_round)
    return -math.log2(total)


def estimate(
    field: PrimeField,
    params: PcsParams,
    num_sumcheck_rounds: int,
    sumcheck_degree: int = 3,
    assumed_distance: float = DEFAULT_ASSUMED_DISTANCE,
) -> SecurityEstimate:
    """Security estimate for one proof under the given assumptions."""
    col_err = column_check_error(params.num_col_checks, assumed_distance)
    # Proximity: the random row-combination collapses with prob ~ R/|F|.
    prox_err = min(1.0, params.num_rows / field.modulus)
    return SecurityEstimate(
        column_check_bits=-math.log2(col_err),
        sumcheck_bits=sumcheck_error_bits(
            field, num_sumcheck_rounds, sumcheck_degree
        ),
        proximity_combination_bits=-math.log2(prox_err),
    )


def recommended_parameters(
    field: PrimeField,
    target_bits: float,
    assumed_distance: float = DEFAULT_ASSUMED_DISTANCE,
) -> dict:
    """What it takes to hit ``target_bits`` with this field.

    Returns the column-check count, and whether the field itself is large
    enough for the algebraic terms (a 61-bit field caps algebraic
    soundness near 60 bits per challenge — fine for demos, short of
    production 100+-bit targets without challenge repetition).
    """
    field_bits = math.log2(field.modulus)
    return {
        "num_col_checks": checks_for_security(target_bits, assumed_distance),
        "field_bits": field_bits,
        "field_sufficient": field_bits >= target_bits + 10,
        "assumed_distance": assumed_distance,
    }
