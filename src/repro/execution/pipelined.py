"""Stage-pipelined execution backend (S27).

The paper's Figure 4 contrast: task-granular parallelism (one worker =
one whole proof, Figure 4b) leaves every per-stage unit idle while the
other stages of *its* proof run; the pipelined design (Figure 4a)
streams each stage's kernel across many proofs so proof *i* is in
sum-check while proof *i+1* is in Merkle and *i+2* is encoding.
:class:`PipelinedBackend` is that discipline on the S24 backend seam,
driving the :class:`~repro.core.StagedProof` checkpoints
(``encode → merkle → sumcheck → open``) through per-stage worker queues.

Sizing follows the paper's measured-cost methodology: a warmup slice of
the first batch is proved inline under stage profiling, the measured
fractions go through the same :func:`~repro.gpu.costs.stage_cost_fractions`
calibration the GPU simulator uses (its residue arithmetic *is* the
exclusive :meth:`~repro.kernels.profile.StageProfile.exclusive` view —
``commit`` never double-counts its ``encode``/``merkle`` children), and
:func:`plan_stage_workers` turns the fractions into a worker-per-stage
plan: with fewer workers than stages, adjacent stages merge into
contiguous groups balancing the bottleneck; with more, the heaviest
stages get the extra workers.

Every hand-off is on the correlated span schema — ``stage_enqueue`` /
``stage_start`` / ``stage_done`` events under the task span — so one
JSONL trace replays the pipeline's interleaving exactly.  Proofs are
byte-identical to :class:`~repro.execution.SerialBackend` (the staged
machine runs the same code split at checkpoints), and the backend
carries the standard chaos hooks (``fault_injector``, ``max_retries``)
so ``apply_fault_plan`` walks it and ``resilient:pipelined:4`` composes.
"""

from __future__ import annotations

import os
import queue
import threading
import time
from dataclasses import dataclass
from typing import Dict, List, Mapping, Optional, Sequence, Tuple

from ..core.batch import ProofTask
from ..core.proof import SnarkProof
from ..core.prover import PIPELINE_STAGES, StagedProof
from ..errors import ExecutionError, ProofError
from ..gpu.costs import stage_cost_fractions
from ..kernels.profile import StageProfile, collect_into
from ..kernels.spec_cache import default_spec_cache
from ..runtime.spec import ProverSpec
from ..runtime.stats import RuntimeStats, TaskRecord
from ..runtime.trace import JsonlTraceSink
from .backend import _PerSpecCache, _span_for

__all__ = ["PipelinedBackend", "StageGroup", "plan_stage_workers"]

#: Which :func:`stage_cost_fractions` key weighs each pipeline stage.
#: ``open`` maps to ``other`` (commit residue + opening — the opening
#: dominates that bucket in practice).
_STAGE_WEIGHT_KEYS: Dict[str, str] = {
    "encode": "encoder",
    "merkle": "merkle",
    "sumcheck": "sumcheck",
    "open": "other",
}


@dataclass(frozen=True)
class StageGroup:
    """One pipeline station: contiguous stages served by one queue."""

    stages: Tuple[str, ...]
    workers: int


def plan_stage_workers(
    fractions: Mapping[str, float], workers: int
) -> List[StageGroup]:
    """Partition the pipeline stages across ``workers`` worker threads.

    ``fractions`` is a :func:`~repro.gpu.costs.stage_cost_fractions`
    mapping (``merkle`` / ``sumcheck`` / ``encoder`` / ``other``) —
    exclusive shares of proving time.  With ``workers < 4`` the stages
    are merged into that many *contiguous* groups minimizing the
    heaviest group (the pipeline's bottleneck station); with
    ``workers >= 4`` every stage gets its own queue and the surplus
    workers go to the heaviest stages by largest remainder.

    >>> plan_stage_workers({}, 2)  # no measurements → balanced halves
    [StageGroup(stages=('encode', 'merkle'), workers=1), \
StageGroup(stages=('sumcheck', 'open'), workers=1)]
    """
    from .sharding import largest_remainder_shares

    if workers < 1:
        raise ExecutionError(f"workers must be >= 1, got {workers}")
    stages = list(PIPELINE_STAGES)
    weights = [
        max(1e-9, float(fractions.get(_STAGE_WEIGHT_KEYS[s], 0.0)))
        for s in stages
    ]
    if workers >= len(stages):
        extra = workers - len(stages)
        bonus = (
            largest_remainder_shares(extra, weights)
            if extra > 0
            else [0] * len(stages)
        )
        return [
            StageGroup(stages=(s,), workers=1 + b)
            for s, b in zip(stages, bonus)
        ]
    # Fewer workers than stages: choose the contiguous partition into
    # `workers` groups whose heaviest group is lightest.  Only C(3, k-1)
    # split-point sets exist for 4 stages — enumerate them.
    from itertools import combinations

    best: Optional[List[StageGroup]] = None
    best_cost = float("inf")
    for cuts in combinations(range(1, len(stages)), workers - 1):
        bounds = [0, *cuts, len(stages)]
        cost = max(
            sum(weights[lo:hi]) for lo, hi in zip(bounds, bounds[1:])
        )
        if cost < best_cost:
            best_cost = cost
            best = [
                StageGroup(stages=tuple(stages[lo:hi]), workers=1)
                for lo, hi in zip(bounds, bounds[1:])
            ]
    assert best is not None
    return best


class _Unit:
    """One pipeline traveller: a task — or a lane group of tasks (S31).

    A unit owns a staged machine (:class:`StagedProof` for a single
    task, :class:`~repro.core.lanes.LanedProof` for a group — the two
    share the checkpoint interface) plus retry/profiling bookkeeping.
    Stage events are emitted on the *lead* task's span; completion
    records fan out per lane.
    """

    __slots__ = (
        "indices", "tasks", "staged", "attempt", "profile",
        "submitted", "prove_seconds",
    )

    def __init__(
        self, indices: List[int], tasks: List[ProofTask], staged
    ):
        self.indices = indices
        self.tasks = tasks
        self.staged = staged
        self.attempt = 1
        self.profile = StageProfile()
        self.submitted = time.perf_counter()
        self.prove_seconds = 0.0

    @property
    def task(self) -> ProofTask:
        """The lead task — the span stage events hang off."""
        return self.tasks[0]

    @property
    def laned(self) -> bool:
        return len(self.tasks) > 1


_SENTINEL = object()


class PipelinedBackend:
    """Stage-pipelined in-process execution on the backend seam.

    ``workers`` is the total thread count (``"auto"`` sizes from the
    host CPU count, clamped to the stage count); the first
    ``warmup_tasks`` proofs of a spec's first batch are proved inline
    under profiling to measure the stage split, after which the plan is
    cached per spec and batches stream straight into the queues.

    Retry semantics mirror :class:`~repro.execution.SerialBackend`: a
    failed attempt restarts the whole staged proof from ``encode``
    (never mid-pipeline — a half-run transcript is unusable), and an
    exhausted task raises :class:`~repro.errors.ProofError` so the
    resilience layer can attribute and quarantine.
    """

    def __init__(
        self,
        workers: "int | str | None" = "auto",
        *,
        max_retries: int = 0,
        retry_backoff_seconds: float = 0.05,
        fault_injector=None,
        warmup_tasks: int = 2,
        lane_width: Optional[int] = None,
    ) -> None:
        auto = workers in (None, "auto")
        if auto:
            resolved = max(2, min(len(PIPELINE_STAGES), os.cpu_count() or 1))
        else:
            resolved = int(workers)  # type: ignore[arg-type]
            if resolved < 1:
                raise ExecutionError(
                    f"workers must be >= 1, got {resolved}"
                )
        if max_retries < 0:
            raise ExecutionError(
                f"max_retries must be >= 0, got {max_retries}"
            )
        if warmup_tasks < 1:
            raise ExecutionError(
                f"warmup_tasks must be >= 1, got {warmup_tasks}"
            )
        if lane_width is not None and lane_width < 1:
            raise ExecutionError(
                f"lane_width must be >= 1, got {lane_width}"
            )
        self.lane_width = lane_width
        self.workers = resolved
        self.parallelism = resolved
        self.name = "pipelined:auto" if auto else f"pipelined:{resolved}"
        self.max_retries = max_retries
        self.retry_backoff_seconds = retry_backoff_seconds
        self.fault_injector = fault_injector
        self.warmup_tasks = warmup_tasks
        self._provers = _PerSpecCache()
        self._plans = _PerSpecCache()

    def adopt_prover(self, spec: ProverSpec, prover) -> None:
        """Seed the prover cache (same contract as ``SerialBackend``)."""
        self._provers._entries[id(spec)] = (spec, prover)

    # -- proving --------------------------------------------------------------

    def prove_tasks(
        self,
        spec: ProverSpec,
        tasks: Sequence[ProofTask],
        *,
        trace: Optional[JsonlTraceSink] = None,
        parent: Optional[str] = None,
    ) -> Tuple[List[SnarkProof], RuntimeStats]:
        tasks = list(tasks)
        ctx = _span_for(trace, parent)
        prover = self._provers.get_or_build(
            spec, lambda s: default_spec_cache().get_prover(s)
        )
        stats = RuntimeStats(workers=self.workers)
        start = time.perf_counter()
        ctx.emit(
            "run_start", backend=self.name, tasks=len(tasks),
            workers=self.workers,
        )
        proofs: List[Optional[SnarkProof]] = [None] * len(tasks)
        corrupt = getattr(self.fault_injector, "maybe_corrupt", None)

        # Calibration: prove a warmup slice inline (still staged, still
        # emitting stage events) and size the stage groups from its
        # measured fractions.  Cached per spec — later batches skip it.
        warmed = 0
        entry = self._plans._entries.get(id(spec))
        plan: Optional[List[StageGroup]] = (
            entry[1] if entry is not None and entry[0] is spec else None
        )
        if plan is None and tasks:
            warm_profile = StageProfile()
            n_warm = min(self.warmup_tasks, len(tasks))
            for index in range(n_warm):
                proof = self._prove_inline(
                    prover, tasks[index], ctx, stats, corrupt, warm_profile
                )
                proofs[index] = proof
            warmed = n_warm
            # stage_cost_fractions consumes the raw inclusive profile;
            # its commit-residue arithmetic is exactly the exclusive
            # view, so no stage is double-weighted.
            fractions = stage_cost_fractions(warm_profile.as_dict())
            plan = plan_stage_workers(fractions, self.workers)
            self._plans._entries[id(spec)] = (spec, plan)
            ctx.emit(
                "pipeline_plan",
                fractions=fractions,
                groups=[
                    {"stages": list(g.stages), "workers": g.workers}
                    for g in plan
                ],
            )

        pending = len(tasks) - warmed
        if pending > 0:
            assert plan is not None
            error = self._run_pipeline(
                plan, prover, tasks, warmed, proofs, stats, ctx, corrupt
            )
            if error is not None:
                raise error

        stats.total_seconds = time.perf_counter() - start
        ctx.emit(
            "run_end", proofs=len(tasks), retries=stats.retries,
            seconds=stats.total_seconds,
        )
        if ctx.sink is not None:
            ctx.sink.flush()
        return proofs, stats  # type: ignore[return-value]

    # -- warmup (inline, serial) ----------------------------------------------

    def _prove_inline(
        self, prover, task: ProofTask, ctx, stats: RuntimeStats,
        corrupt, warm_profile: StageProfile,
    ) -> SnarkProof:
        injector = self.fault_injector
        task_ctx = ctx.child("task", span=f"{ctx.span}/t{task.task_id}")
        submitted = time.perf_counter()
        attempt = 1
        while True:
            profile = StageProfile()
            try:
                if injector is not None:
                    injector(task.task_id, attempt)
                staged = prover.begin_proof(task.witness, task.public_values)
                prove_seconds = 0.0
                while (name := staged.next_stage) is not None:
                    task_ctx.emit(
                        "stage_start", task_id=task.task_id, stage=name,
                        attempt=attempt,
                    )
                    t0 = time.perf_counter()
                    with collect_into(profile):
                        staged.run_next()
                    dt = time.perf_counter() - t0
                    prove_seconds += dt
                    task_ctx.emit(
                        "stage_done", task_id=task.task_id, stage=name,
                        seconds=dt, attempt=attempt,
                    )
                proof = staged.proof
                break
            except Exception as exc:
                if attempt > self.max_retries:
                    raise ProofError(
                        f"task {task.task_id} failed after {attempt} "
                        f"attempts: {exc}"
                    ) from exc
                stats.retries += 1
                task_ctx.emit(
                    "retry", task_id=task.task_id, attempt=attempt,
                    reason=repr(exc),
                )
                time.sleep(self.retry_backoff_seconds * (2 ** (attempt - 1)))
                attempt += 1
        if corrupt is not None:
            proof = corrupt(proof, task.task_id)
        stats.busy_seconds += prove_seconds
        stages = profile.as_dict()
        warm_profile.merge(stages)
        stats.records.append(
            TaskRecord(
                task_id=task.task_id,
                attempts=attempt,
                prove_seconds=prove_seconds,
                latency_seconds=time.perf_counter() - submitted,
                worker=None,
                stage_seconds=stages or None,
            )
        )
        task_ctx.emit(
            "complete", task_id=task.task_id, attempt=attempt,
            seconds=prove_seconds,
        )
        if stages:
            task_ctx.emit(
                "stage_timing", task_id=task.task_id,
                seconds=prove_seconds, stages=stages,
            )
        return proof

    # -- the pipeline proper ---------------------------------------------------

    def _run_pipeline(
        self,
        plan: List[StageGroup],
        prover,
        tasks: List[ProofTask],
        warmed: int,
        proofs: List[Optional[SnarkProof]],
        stats: RuntimeStats,
        ctx,
        corrupt,
    ) -> Optional[ProofError]:
        injector = self.fault_injector
        queues: List["queue.Queue"] = [queue.Queue() for _ in plan]
        lock = threading.Lock()
        done = threading.Event()
        failures: List[ProofError] = []
        pending = [len(tasks) - warmed]

        def task_ctx_for(task_id: int):
            return ctx.child("task", span=f"{ctx.span}/t{task_id}")

        def finalize(unit: _Unit) -> None:
            # A laned unit fans out per-lane proofs and amortizes its
            # wall time and stage buckets uniformly over the lanes, so
            # each record still satisfies the S27 stage invariant.
            n_real = len(unit.tasks)
            if unit.laned:
                unit_proofs = list(unit.staged.proofs)[:n_real]
            else:
                unit_proofs = [unit.staged.proof]
            if corrupt is not None:
                unit_proofs = [
                    corrupt(proof, task.task_id)
                    for proof, task in zip(unit_proofs, unit.tasks)
                ]
            per_seconds = unit.prove_seconds / n_real
            stages = unit.profile.as_dict()
            stages = {k: v / n_real for k, v in stages.items()}
            latency = time.perf_counter() - unit.submitted
            with lock:
                stats.busy_seconds += unit.prove_seconds
                for index, task, proof in zip(
                    unit.indices, unit.tasks, unit_proofs
                ):
                    stats.records.append(
                        TaskRecord(
                            task_id=task.task_id,
                            attempts=unit.attempt,
                            prove_seconds=per_seconds,
                            latency_seconds=latency,
                            worker=None,
                            stage_seconds=stages or None,
                        )
                    )
                    proofs[index] = proof
                pending[0] -= n_real
                finished = pending[0] == 0
            for task in unit.tasks:
                tctx = task_ctx_for(task.task_id)
                tctx.emit(
                    "complete", task_id=task.task_id, attempt=unit.attempt,
                    seconds=per_seconds,
                )
                if stages:
                    tctx.emit(
                        "stage_timing", task_id=task.task_id,
                        seconds=per_seconds, stages=stages,
                    )
            if finished:
                done.set()

        def fail_or_retry(unit: _Unit, exc: Exception) -> None:
            tctx = task_ctx_for(unit.task.task_id)
            if unit.attempt > self.max_retries:
                with lock:
                    failures.append(
                        ProofError(
                            f"task {unit.task.task_id} failed after "
                            f"{unit.attempt} attempts: {exc}"
                        )
                    )
                done.set()
                return
            with lock:
                stats.retries += 1
            tctx.emit(
                "retry", task_id=unit.task.task_id, attempt=unit.attempt,
                reason=repr(exc),
            )
            time.sleep(
                self.retry_backoff_seconds * (2 ** (unit.attempt - 1))
            )
            # A retry restarts the whole proof: fresh staged machine,
            # fresh profile, back to the head of the pipeline.
            unit.attempt += 1
            if unit.laned:
                unit.staged = prover.begin_lanes(
                    [t.witness for t in unit.tasks],
                    [t.public_values for t in unit.tasks],
                )
            else:
                unit.staged = prover.begin_proof(
                    unit.task.witness, unit.task.public_values
                )
            unit.profile = StageProfile()
            unit.prove_seconds = 0.0
            tctx.emit(
                "stage_enqueue", task_id=unit.task.task_id,
                stage=PIPELINE_STAGES[0], attempt=unit.attempt,
            )
            queues[0].put(unit)

        def worker(group_index: int) -> None:
            group = plan[group_index]
            q = queues[group_index]
            while True:
                unit = q.get()
                if unit is _SENTINEL:
                    break
                if failures or (done.is_set() and pending[0] <= 0):
                    continue  # draining after abort/completion
                tctx = task_ctx_for(unit.task.task_id)
                try:
                    for name in group.stages:
                        if unit.staged.next_stage != name:
                            # Retried units restart at encode; skip the
                            # stages this group doesn't own this pass.
                            continue
                        if name == PIPELINE_STAGES[0] and injector is not None:
                            for lane_task in unit.tasks:
                                injector(lane_task.task_id, unit.attempt)
                        tctx.emit(
                            "stage_start", task_id=unit.task.task_id,
                            stage=name, attempt=unit.attempt,
                        )
                        t0 = time.perf_counter()
                        with collect_into(unit.profile):
                            unit.staged.run_next()
                        dt = time.perf_counter() - t0
                        unit.prove_seconds += dt
                        tctx.emit(
                            "stage_done", task_id=unit.task.task_id,
                            stage=name, seconds=dt, attempt=unit.attempt,
                        )
                except Exception as exc:
                    fail_or_retry(unit, exc)
                    continue
                if unit.staged.done:
                    finalize(unit)
                else:
                    next_stage = unit.staged.next_stage
                    target = next(
                        gi for gi, g in enumerate(plan)
                        if next_stage in g.stages
                    )
                    tctx.emit(
                        "stage_enqueue", task_id=unit.task.task_id,
                        stage=next_stage, attempt=unit.attempt,
                    )
                    queues[target].put(unit)

        threads: List[threading.Thread] = []
        for gi, group in enumerate(plan):
            for _ in range(group.workers):
                t = threading.Thread(
                    target=worker, args=(gi,), daemon=True,
                    name=f"pipelined-{'+'.join(group.stages)}",
                )
                t.start()
                threads.append(t)

        width = self.lane_width or 1
        for lo in range(warmed, len(tasks), width):
            indices = list(range(lo, min(lo + width, len(tasks))))
            group = [tasks[i] for i in indices]
            if len(group) > 1:
                staged = prover.begin_lanes(
                    [t.witness for t in group],
                    [t.public_values for t in group],
                )
            else:
                staged = prover.begin_proof(
                    group[0].witness, group[0].public_values
                )
            unit = _Unit(indices, group, staged)
            task_ctx_for(group[0].task_id).emit(
                "stage_enqueue", task_id=group[0].task_id,
                stage=PIPELINE_STAGES[0], attempt=1,
            )
            with lock:
                stats.queue_depth_samples.append(queues[0].qsize())
            queues[0].put(unit)

        done.wait()
        for gi, group in enumerate(plan):
            for _ in range(group.workers):
                queues[gi].put(_SENTINEL)
        for t in threads:
            t.join()
        return failures[0] if failures else None
