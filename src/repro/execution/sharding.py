"""Rate-proportional work splitting shared by the farm layers.

The same arithmetic serves two layers: the GPU-farm simulator
(:meth:`~repro.pipeline.multigpu.MultiGpuBatchSystem.shard` splits a
batch across heterogeneous devices by steady-state throughput) and the
functional :class:`~repro.execution.ShardedBackend` (splits a task list
across child backends by parallelism).  Keeping one implementation here
guarantees the simulated and functional halves make identical placement
decisions for identical rates.
"""

from __future__ import annotations

from typing import List, Sequence

from ..errors import ExecutionError


def largest_remainder_shares(
    total: int, weights: Sequence[float]
) -> List[int]:
    """Split ``total`` units into integer shares proportional to ``weights``.

    Largest-remainder rounding: floors first, then each leftover unit
    goes to the entry with the largest fractional share (ties broken
    toward earlier entries), so shares always sum to ``total`` and no
    entry is more than one unit above its exact proportion.  All-zero
    (or degenerate non-positive) weights fall back to an even split
    rather than dividing by zero.

    >>> largest_remainder_shares(10, [3.0, 1.0])
    [8, 2]
    >>> largest_remainder_shares(5, [0.0, 0.0])
    [3, 2]
    """
    if total < 0:
        raise ExecutionError(f"cannot split a negative total: {total}")
    if not weights:
        raise ExecutionError("need at least one weight to split over")
    if any(w < 0 for w in weights):
        raise ExecutionError(f"weights must be non-negative, got {list(weights)}")
    scaled = [float(w) for w in weights]
    total_weight = sum(scaled)
    if total_weight <= 0:
        scaled = [1.0] * len(scaled)
        total_weight = float(len(scaled))
    raw = [total * w / total_weight for w in scaled]
    shares = [int(x) for x in raw]
    remainder = total - sum(shares)
    order = sorted(
        range(len(raw)), key=lambda i: raw[i] - int(raw[i]), reverse=True
    )
    for i in range(remainder):
        shares[order[i % len(order)]] += 1
    return shares
