"""Unified execution layer (system S24 in DESIGN.md).

BatchZK's system half is a scheduling discipline: proof tasks flow
through interchangeable execution resources.  This package is that seam
for the functional half — one :class:`ProvingBackend` abstraction
(``prove_tasks(spec, tasks) -> (proofs, RuntimeStats)``) behind which
every proving entry point in the repository runs, with three stock
substrates (:class:`SerialBackend`, the process-pool
:class:`PoolBackend`, the composable :class:`ShardedBackend`), a string
registry (:func:`resolve_backend` understands ``"serial"``,
``"pool:8"``, ``"sharded:pool:4,pool:4"``) so CLIs, benches, and
services select substrates by name, and the replay side of the
correlated trace schema (:func:`request_lineage` rebuilds a request's
service → batch → backend → task span tree from one JSONL file).

The rate-proportional shard arithmetic
(:func:`largest_remainder_shares`) is shared with the multi-GPU farm
simulator, so the functional and simulated halves place work
identically for identical rates.
"""

from .backend import (
    PoolBackend,
    ProvingBackend,
    SerialBackend,
    ShardedBackend,
)
from .laned import (
    AUTO_LANE_WIDTH,
    LanedBackend,
    lane_selector,
    resolve_lane_width,
)
from .pipelined import PipelinedBackend, StageGroup, plan_stage_workers
from .registry import (
    available_backends,
    register_backend,
    resolve_backend,
)
from .sharding import largest_remainder_shares
from .trace import (
    RequestLineage,
    SpanNode,
    format_lineage,
    lineage_of,
    load_trace,
    request_lineage,
    span_index,
    stage_breakdown,
    stage_breakdown_of,
)

__apidoc__ = """\
**The backend contract.** A backend executes one uniform batch:
`prove_tasks(spec, tasks)` takes a picklable
`ProverSpec` (the circuit recipe — per-spec setup is cached inside the
backend, paid once per backend lifetime) and a list of `ProofTask`s, and
returns the proofs in task order plus a `RuntimeStats` report.  Optional
`trace=`/`parent=` keywords join the run to a correlated trace; both
default to the ambient span, so backends dispatched from inside the
proof service inherit the service's sink and batch span automatically.

**Selector strings.** `resolve_backend("serial")` proves inline;
`"pool"`/`"pool:8"` shard across a process pool;
`"lanes:64"`/`"lanes:auto"` prove same-circuit tasks in fused numpy
lane groups (S31; `"lanes:16:pool:4"` / `"lanes:16:pipelined:4"` give a
parallel substrate lane-group-sized dispatch units);
`"sharded:pool:4,pool:4"` splits each batch across concurrent children
proportionally to their parallelism (largest-remainder rounding — the
same placement arithmetic as the multi-GPU farm simulator).  Instances
pass through unchanged, and `register_backend("gpu", factory)` adds new
selector heads.

**Correlated traces.** Every event in a shared JSONL sink carries
`span`, `parent`, and `kind` (`service` | `request` | `batch` |
`backend` | `task`).  `request_lineage(events, request_id)` (or
`lineage_of(path, id)`) reconstructs one request's full lifecycle —
which batch it rode, which backend run proved it, which task span timed
it — from that single file; `format_lineage` renders the chain for a
terminal.
"""

__all__ = [
    "AUTO_LANE_WIDTH",
    "LanedBackend",
    "PipelinedBackend",
    "PoolBackend",
    "ProvingBackend",
    "RequestLineage",
    "SerialBackend",
    "ShardedBackend",
    "SpanNode",
    "StageGroup",
    "available_backends",
    "format_lineage",
    "lane_selector",
    "largest_remainder_shares",
    "lineage_of",
    "plan_stage_workers",
    "load_trace",
    "register_backend",
    "request_lineage",
    "resolve_backend",
    "resolve_lane_width",
    "span_index",
    "stage_breakdown",
    "stage_breakdown_of",
]
