"""Lane-vectorized execution backend (S31).

The paper's batch setting hands the prover many instances of *one*
circuit (§2.1 — an MLaaS service proving the same model for many
clients).  At small gate counts the per-proof cost here is dominated by
per-dispatch kernel overhead, not arithmetic; :class:`LanedBackend`
amortizes it by proving ``lane_width`` same-circuit tasks in lockstep
through :meth:`~repro.core.prover.SnarkProver.begin_lanes` — every hot
kernel sees one ``[lanes, n]`` array instead of ``lanes`` separate
vectors.

Grouping and parity:

* One :class:`~repro.runtime.spec.ProverSpec` per ``prove_tasks`` call
  means every task in a batch shares a circuit digest by construction —
  the S24 seam already groups per spec, so lane groups are just
  contiguous ``lane_width``-sized windows of the task list.
* The ragged final group is padded back to full width by cycling the
  group's own tasks; pad-lane proofs are discarded.  Every dispatch
  therefore has one shape, mirroring the fixed-geometry kernel launches
  of the paper's pipeline (§3).
* Proofs are byte-identical to :class:`~repro.execution.SerialBackend`
  lane for lane — each lane keeps its own transcript; only the array
  arithmetic is shared (see :mod:`repro.core.lanes`).

Stage accounting: one :func:`~repro.kernels.profile.collect_stages`
window wraps each group, and the group's wall time and stage dict are
amortized uniformly over its *real* lanes, so per-task
``stage_seconds`` still satisfy the S27 invariant
``Σ exclusive(stages) <= prove_seconds`` (division is linear).

Chaos hooks (``fault_injector``, ``max_retries``) follow the standard
contract so ``apply_fault_plan`` walks this backend and
``resilient:lanes:8`` composes: the injector fires once per real task
per attempt, and a failed group attempt falls back to per-task serial
proving — byte-identical by the parity property — so one poisoned lane
cannot sink its group-mates.
"""

from __future__ import annotations

import time
from typing import List, Optional, Sequence, Tuple

from ..core.batch import ProofTask
from ..core.proof import SnarkProof
from ..errors import ExecutionError, ProofError
from ..kernels.profile import collect_stages
from ..kernels.spec_cache import default_spec_cache
from ..runtime.spec import ProverSpec
from ..runtime.stats import RuntimeStats, TaskRecord
from ..runtime.trace import JsonlTraceSink
from .backend import _PerSpecCache, _span_for

__all__ = [
    "LanedBackend",
    "AUTO_LANE_WIDTH",
    "lane_selector",
    "resolve_lane_width",
]

#: Widest group ``lanes:auto`` will form.  64 lanes is past the knee of
#: the amortization curve at bench sizes (see benchmarks/bench_lanes.py)
#: while keeping the per-group working set modest.
AUTO_LANE_WIDTH = 64


def resolve_lane_width(width, n_tasks: int) -> int:
    """Concrete lane count for a batch: ``"auto"`` adapts to the batch.

    ``width`` is an integer lane count or the string ``"auto"``.

    ``auto`` never pads a batch smaller than the cap — it shrinks to the
    batch size instead, so a 3-task batch is one 3-lane dispatch rather
    than a 64-lane dispatch proving 61 discarded pads.
    """
    if width == "auto":
        return max(1, min(AUTO_LANE_WIDTH, n_tasks))
    width = int(width)
    if width < 1:
        raise ExecutionError(f"lane width must be >= 1, got {width}")
    return width


def lane_selector(lanes, workers: int = 1) -> str:
    """Selector string for lane proving, pooled when ``workers > 1``.

    ``lanes`` is an integer width or ``"auto"``; the pooled composition
    needs a concrete chunk size, so ``"auto"`` hardens to
    :data:`AUTO_LANE_WIDTH` there.  This is the one place the CLI and
    the services translate a ``--lanes`` request into grammar, so they
    all spell the composition identically.
    """
    if workers > 1:
        width = AUTO_LANE_WIDTH if lanes == "auto" else int(lanes)
        return f"lanes:{width}:pool:{workers}"
    return f"lanes:{lanes}"


class LanedBackend:
    """Prove same-circuit tasks in lockstep lanes (S31).

    ``lane_width`` is the group size (``"auto"`` sizes from the batch,
    capped at :data:`AUTO_LANE_WIDTH`).  Execution is in-process and
    serial across groups — parallel substrates compose around it
    (``lanes:8:pool:4`` gives each pool worker a lane-group per
    dispatch) or outside it (``resilient:lanes:8``).
    """

    def __init__(
        self,
        lane_width: "int | str" = "auto",
        *,
        max_retries: int = 0,
        retry_backoff_seconds: float = 0.05,
        fault_injector=None,
    ) -> None:
        if lane_width != "auto":
            lane_width = int(lane_width)
            if lane_width < 1:
                raise ExecutionError(
                    f"lane_width must be >= 1 or 'auto', got {lane_width}"
                )
        if max_retries < 0:
            raise ExecutionError(
                f"max_retries must be >= 0, got {max_retries}"
            )
        self.lane_width = lane_width
        self.name = f"lanes:{lane_width}"
        self.parallelism = 1
        self.max_retries = max_retries
        self.retry_backoff_seconds = retry_backoff_seconds
        self.fault_injector = fault_injector
        self._provers = _PerSpecCache()

    def adopt_prover(self, spec: ProverSpec, prover) -> None:
        """Seed the prover cache (same contract as ``SerialBackend``)."""
        self._provers._entries[id(spec)] = (spec, prover)

    def prove_tasks(
        self,
        spec: ProverSpec,
        tasks: Sequence[ProofTask],
        *,
        trace: Optional[JsonlTraceSink] = None,
        parent: Optional[str] = None,
    ) -> Tuple[List[SnarkProof], RuntimeStats]:
        tasks = list(tasks)
        ctx = _span_for(trace, parent)
        prover = self._provers.get_or_build(
            spec, lambda s: default_spec_cache().get_prover(s)
        )
        width = resolve_lane_width(self.lane_width, len(tasks))
        stats = RuntimeStats(workers=1)
        start = time.perf_counter()
        ctx.emit(
            "run_start", backend=self.name, tasks=len(tasks), workers=1,
            lane_width=width,
        )
        corrupt = getattr(self.fault_injector, "maybe_corrupt", None)
        proofs: List[SnarkProof] = []
        for lo in range(0, len(tasks), width):
            group = tasks[lo : lo + width]
            group_proofs, group_seconds, stages, attempts = (
                self._prove_group(prover, group, width, ctx, stats)
            )
            # Uniform amortization over the real lanes: the group ran as
            # one fused dispatch, so each lane owns an equal slice of the
            # wall time and of every stage bucket.
            n_real = len(group)
            per_task = group_seconds / n_real
            per_stages = {k: v / n_real for k, v in stages.items()}
            now = time.perf_counter()
            for task, proof, attempt in zip(group, group_proofs, attempts):
                if corrupt is not None:
                    proof = corrupt(proof, task.task_id)
                stats.records.append(
                    TaskRecord(
                        task_id=task.task_id,
                        attempts=attempt,
                        prove_seconds=per_task,
                        latency_seconds=now - start,
                        worker=None,
                        stage_seconds=per_stages or None,
                    )
                )
                task_ctx = ctx.child(
                    "task", span=f"{ctx.span}/t{task.task_id}"
                )
                task_ctx.emit(
                    "complete", task_id=task.task_id, attempt=attempt,
                    seconds=per_task,
                )
                if per_stages:
                    task_ctx.emit(
                        "stage_timing", task_id=task.task_id,
                        seconds=per_task, stages=per_stages,
                    )
                proofs.append(proof)
            stats.busy_seconds += group_seconds
        stats.total_seconds = time.perf_counter() - start
        ctx.emit(
            "run_end", proofs=len(proofs), retries=stats.retries,
            seconds=stats.total_seconds,
        )
        if ctx.sink is not None:
            ctx.sink.flush()
        return proofs, stats

    # -- group proving ---------------------------------------------------------

    def _prove_group(
        self, prover, group: List[ProofTask], width: int, ctx, stats
    ) -> Tuple[List[SnarkProof], float, dict, List[int]]:
        """One fused lane dispatch; falls back to per-task on failure.

        Returns ``(proofs, wall_seconds, stage_dict, attempts)`` with one
        proof/attempt per *real* task.  The ragged final group is padded
        back to ``width`` by cycling its own tasks; pad proofs never
        leave this method.
        """
        injector = self.fault_injector
        padded = [group[i % len(group)] for i in range(width)]
        witnesses = [task.witness for task in padded]
        publics = [task.public_values for task in padded]
        try:
            if injector is not None:
                for task in group:
                    injector(task.task_id, 1)
            t0 = time.perf_counter()
            with collect_stages() as profile:
                lane_proofs = prover.prove_lanes(witnesses, publics)
            wall = time.perf_counter() - t0
            return (
                lane_proofs[: len(group)],
                wall,
                profile.as_dict(),
                [1] * len(group),
            )
        except Exception as exc:
            if self.max_retries == 0:
                raise ProofError(
                    f"lane group of {len(group)} task(s) starting at task "
                    f"{group[0].task_id} failed: {exc}"
                ) from exc
            stats.retries += 1
            ctx.emit(
                "lane_group_retry",
                tasks=[task.task_id for task in group],
                reason=repr(exc),
            )
            time.sleep(self.retry_backoff_seconds)
            return self._prove_group_serial(prover, group, ctx, stats)

    def _prove_group_serial(
        self, prover, group: List[ProofTask], ctx, stats
    ) -> Tuple[List[SnarkProof], float, dict, List[int]]:
        """Per-task fallback after a failed fused attempt.

        Byte-identical to the fused path (the lane parity property), so
        a group that hit one injected fault still delivers the same
        proofs — only slower.  Each task gets its own retry budget, the
        same semantics as ``SerialBackend``.
        """
        injector = self.fault_injector
        proofs: List[SnarkProof] = []
        attempts: List[int] = []
        total = 0.0
        merged: dict = {}
        for task in group:
            attempt = 1
            while True:
                try:
                    if injector is not None:
                        injector(task.task_id, attempt)
                    t0 = time.perf_counter()
                    with collect_stages() as profile:
                        proof = prover.prove(task.witness, task.public_values)
                    total += time.perf_counter() - t0
                    break
                except Exception as exc:
                    if attempt > self.max_retries:
                        raise ProofError(
                            f"task {task.task_id} failed after {attempt} "
                            f"attempts: {exc}"
                        ) from exc
                    stats.retries += 1
                    ctx.child(
                        "task", span=f"{ctx.span}/t{task.task_id}"
                    ).emit(
                        "retry", task_id=task.task_id, attempt=attempt,
                        reason=repr(exc),
                    )
                    time.sleep(
                        self.retry_backoff_seconds * (2 ** (attempt - 1))
                    )
                    attempt += 1
            for key, value in profile.as_dict().items():
                merged[key] = merged.get(key, 0.0) + value
            proofs.append(proof)
            attempts.append(attempt + 1)  # the fused attempt counts
        return proofs, total, merged, attempts
