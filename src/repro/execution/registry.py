"""String registry: select an execution backend by name.

The CLI, the benches, and the services all accept a backend *selector*
string so operators choose the execution substrate without touching
code::

    serial                      in-process, one cached prover
    pool                        process pool sized to the host
    pool:8                      process pool, 8 workers
    lanes:64                    lane-vectorized: 64 same-circuit tasks
                                proved per fused numpy dispatch (S31)
    lanes:auto                  lane width sized from the batch
    lanes:16:pool:4             4-worker pool, each dispatch proving a
                                16-lane group
    lanes:16:pipelined:4        stage-pipelined over 16-lane groups
    pipelined:4                 stage-pipelined threads, 4 workers
    pipelined:auto              stage-pipelined, sized from the host
    sharded:pool:4,pool:4       two concurrent 4-worker pools
    sharded:pool:4,serial       heterogeneous children (weights default
                                to each child's parallelism)
    resilient:sharded:pool:2,pool:2
                                the same two pools behind per-child
                                circuit breakers with failover and
                                poison-task quarantine (S25)
    remote:127.0.0.1:9100       one proving node over TCP (S28)
    cluster:remote:h1:9100,remote:h2:9100
                                digest-routed fleet of nodes with
                                cache-affinity consistent hashing (S28)

:func:`resolve_backend` also passes through an already-constructed
:class:`~repro.execution.ProvingBackend` unchanged, so programmatic
callers and string-driven callers share one code path.  New substrates
plug in through :func:`register_backend` — the extension point the
multi-backend scaling items on the roadmap build on.
"""

from __future__ import annotations

import difflib
from typing import Callable, Dict, List, Union

from ..errors import ExecutionError
from .backend import PoolBackend, ProvingBackend, SerialBackend, ShardedBackend

#: Factories keyed by selector head; each receives the text after the
#: first ``:`` (possibly empty) and returns a backend.
_FACTORIES: Dict[str, Callable[[str], ProvingBackend]] = {}

BackendSelector = Union[str, ProvingBackend]


def register_backend(
    head: str, factory: Callable[[str], ProvingBackend]
) -> None:
    """Register a selector head (e.g. ``"gpu"``) for :func:`resolve_backend`.

    ``factory`` receives the selector's argument text — everything after
    the first ``:``, which is empty when no argument was given.
    """
    key = head.strip().lower()
    if not key:
        raise ExecutionError("backend selector head must be non-empty")
    _FACTORIES[key] = factory


def available_backends() -> List[str]:
    """The registered selector heads, sorted (for CLI help and errors)."""
    return sorted(_FACTORIES)


def resolve_backend(selector: BackendSelector) -> ProvingBackend:
    """Turn a selector string (or a backend instance) into a backend.

    >>> resolve_backend("pool:2").name
    'pool:2'
    >>> resolve_backend("sharded:pool:2,serial").parallelism
    3
    """
    if not isinstance(selector, str):
        if isinstance(selector, ProvingBackend):
            return selector
        raise ExecutionError(
            f"backend selector must be a string or ProvingBackend, "
            f"got {type(selector).__name__}"
        )
    text = selector.strip()
    if not text:
        raise ExecutionError("empty backend selector")
    head, _, rest = text.partition(":")
    key = head.strip().lower()
    factory = _FACTORIES.get(key)
    if factory is None:
        message = (
            f"unknown backend {head!r}; available: "
            + ", ".join(available_backends())
        )
        close = difflib.get_close_matches(key, available_backends(), n=1)
        if close:
            message += f" (did you mean {close[0]!r}?)"
        raise ExecutionError(message)
    return factory(rest.strip())


# -- stock factories -----------------------------------------------------------


def _make_serial(rest: str) -> SerialBackend:
    if rest:
        raise ExecutionError(f"'serial' takes no argument, got {rest!r}")
    return SerialBackend()


def _make_pool(rest: str) -> PoolBackend:
    if not rest:
        return PoolBackend()
    try:
        workers = int(rest)
    except ValueError:
        raise ExecutionError(
            f"'pool' wants an integer worker count, got {rest!r}"
        ) from None
    return PoolBackend(workers)


def _make_sharded(rest: str) -> ShardedBackend:
    if not rest:
        raise ExecutionError(
            "'sharded' needs comma-separated children, e.g. "
            "'sharded:pool:4,pool:4'"
        )
    parts = [part.strip() for part in rest.split(",")]
    if any(not part for part in parts):
        raise ExecutionError(f"empty child in sharded selector {rest!r}")
    if any(part.split(":", 1)[0].lower() == "sharded" for part in parts):
        raise ExecutionError(
            "nested 'sharded' selectors are not expressible in the flat "
            "string form; compose ShardedBackend instances directly"
        )
    return ShardedBackend([resolve_backend(part) for part in parts])


def _make_pipelined(rest: str) -> ProvingBackend:
    # Imported lazily: the pipelined module pulls in gpu.costs for its
    # sizer, which this registry's importers don't otherwise need.
    from .pipelined import PipelinedBackend

    if not rest or rest == "auto":
        return PipelinedBackend("auto")
    try:
        workers = int(rest)
    except ValueError:
        raise ExecutionError(
            f"'pipelined' wants an integer worker count or 'auto', "
            f"got {rest!r}"
        ) from None
    return PipelinedBackend(workers)


def _make_lanes(rest: str) -> ProvingBackend:
    # Imported lazily for symmetry with the other optional substrates.
    from .laned import LanedBackend

    if not rest or rest == "auto":
        return LanedBackend("auto")
    head, _, inner = rest.partition(":")
    try:
        width = int(head)
    except ValueError:
        raise ExecutionError(
            f"'lanes' wants an integer lane width or 'auto', got {head!r}"
        ) from None
    if width < 1:
        raise ExecutionError(f"lane width must be >= 1, got {width}")
    if not inner:
        return LanedBackend(width)
    # Composition: 'lanes:W:pool:N' / 'lanes:W:pipelined:N' hand the
    # inner substrate lane-group-sized dispatch units.
    inner_head = inner.split(":", 1)[0].strip().lower()
    backend: ProvingBackend
    if inner_head == "pool":
        backend = _make_pool(inner.partition(":")[2].strip())
        backend.runtime_options["lane_width"] = width
        backend.runtime_options.setdefault("chunk_size", width)
    elif inner_head == "pipelined":
        from .pipelined import PipelinedBackend

        arg = inner.partition(":")[2].strip()
        backend = (
            PipelinedBackend("auto", lane_width=width)
            if not arg or arg == "auto"
            else PipelinedBackend(int(arg), lane_width=width)
        )
    else:
        raise ExecutionError(
            f"'lanes:{width}:' composes with 'pool' or 'pipelined', "
            f"got {inner!r}"
        )
    backend.name = f"lanes:{width}:{inner}"
    return backend


def _make_resilient(rest: str) -> ProvingBackend:
    # Imported lazily: repro.resilience imports this package for the
    # backend protocol, so a module-level import would be a cycle.
    from ..resilience import ResilientBackend

    if not rest:
        raise ExecutionError(
            "'resilient' wraps an inner selector, e.g. "
            "'resilient:sharded:pool:2,pool:2' or 'resilient:pool:4'"
        )
    return ResilientBackend(resolve_backend(rest))


def _make_remote(rest: str) -> ProvingBackend:
    # Imported lazily: repro.cluster imports this package for the
    # backend protocol and selector resolution (a node resolves its own
    # wrapped backend), so a module-level import would be a cycle.
    from ..cluster import RemoteBackend

    host, sep, port = rest.rpartition(":")
    if not sep or not host or not port.isdigit():
        raise ExecutionError(
            f"'remote' wants host:port, e.g. 'remote:127.0.0.1:9100', "
            f"got {rest!r}"
        )
    return RemoteBackend(host, int(port))


def _make_cluster(rest: str) -> ProvingBackend:
    from ..cluster import ClusterBackend

    if not rest:
        raise ExecutionError(
            "'cluster' needs comma-separated node selectors, e.g. "
            "'cluster:remote:127.0.0.1:9100,remote:127.0.0.1:9101'"
        )
    parts = [part.strip() for part in rest.split(",")]
    if any(not part for part in parts):
        raise ExecutionError(f"empty node in cluster selector {rest!r}")
    if any(part.split(":", 1)[0].lower() == "cluster" for part in parts):
        raise ExecutionError(
            "nested 'cluster' selectors are not expressible in the flat "
            "string form; compose ClusterBackend instances directly"
        )
    return ClusterBackend([resolve_backend(part) for part in parts])


register_backend("serial", _make_serial)
register_backend("pool", _make_pool)
register_backend("pipelined", _make_pipelined)
register_backend("lanes", _make_lanes)
register_backend("sharded", _make_sharded)
register_backend("resilient", _make_resilient)
register_backend("remote", _make_remote)
register_backend("cluster", _make_cluster)
