"""Replay side of the correlated trace schema: one JSONL file in, span
trees out.

The emitting side (:mod:`repro.runtime.trace`) stamps every event with
``span`` / ``parent`` / ``kind``; this module reconstructs lifecycles
from those stamps.  :func:`request_lineage` answers the operator's
question — "what happened to request N?" — by walking one file from the
request's submission through the batch it rode, the backend run (or
runs, under a sharded backend) that proved it, down to the per-task
span, without any other data source.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field as dc_field
from typing import Dict, Iterable, List, Optional, Union

from ..errors import ExecutionError


def load_trace(source: Union[str, Iterable[str]]) -> List[dict]:
    """Parse trace events from a JSONL path (or an iterable of lines)."""
    if isinstance(source, str):
        with open(source, "r", encoding="utf-8") as handle:
            lines = handle.readlines()
    else:
        lines = list(source)
    return [json.loads(line) for line in lines if line.strip()]


@dataclass
class SpanNode:
    """One reconstructed span: its identity, events, and children."""

    span: str
    kind: str
    parent: Optional[str]
    events: List[dict] = dc_field(default_factory=list)
    children: List[str] = dc_field(default_factory=list)


def span_index(events: Iterable[dict]) -> Dict[str, SpanNode]:
    """``{span id: SpanNode}`` over every span-stamped event.

    Events without a ``span`` field (pre-schema traces, foreign lines)
    are ignored.  Child lists preserve first-appearance order.
    """
    nodes: Dict[str, SpanNode] = {}
    for event in events:
        span = event.get("span")
        if span is None:
            continue
        node = nodes.get(span)
        if node is None:
            node = nodes[span] = SpanNode(
                span=span,
                kind=event.get("kind", "unknown"),
                parent=event.get("parent"),
            )
        node.events.append(event)
    for node in nodes.values():
        if node.parent is not None and node.parent in nodes:
            parent = nodes[node.parent]
            if node.span not in parent.children:
                parent.children.append(node.span)
    return nodes


def _descendants_of_kind(
    nodes: Dict[str, SpanNode], root: str, kind: str
) -> List[str]:
    """Spans of ``kind`` in the subtree under ``root`` (preorder)."""
    found: List[str] = []
    stack = [root]
    while stack:
        span = stack.pop()
        node = nodes[span]
        if node.kind == kind and span != root:
            found.append(span)
        stack.extend(reversed(node.children))
    return found


@dataclass
class RequestLineage:
    """The full span chain one request travelled, service → … → task."""

    request_id: int
    service: str
    request: str
    batch: Optional[str]
    backends: List[str]
    tasks: List[str]
    #: How the request resolved: "proved", "cache", or "coalesced" —
    #: inferred from which lifecycle events its spans carry.
    resolution: str


def request_lineage(
    events: Iterable[dict], request_id: int
) -> RequestLineage:
    """Reconstruct one request's lifecycle from a shared trace file.

    Raises :class:`~repro.errors.ExecutionError` when the request never
    appears in the trace.  Cache hits and coalesced requests legitimately
    have no batch/backend/task spans; a proved request has all three.
    """
    events = list(events)
    nodes = span_index(events)

    request_span: Optional[str] = None
    resolution = "unknown"
    for event in events:
        if (
            event.get("kind") == "request"
            and event.get("request_id") == request_id
        ):
            request_span = event["span"]
            if event.get("event") == "svc_cache_hit":
                resolution = "cache"
            elif event.get("event") == "svc_coalesce":
                resolution = "coalesced"
            elif event.get("event") == "svc_submit":
                resolution = "proved"
            break
    if request_span is None:
        raise ExecutionError(
            f"request {request_id} does not appear in the trace"
        )
    service_span = nodes[request_span].parent
    if service_span is None:
        raise ExecutionError(
            f"request {request_id} has no parent service span"
        )

    batch_span: Optional[str] = None
    for event in events:
        if (
            event.get("kind") == "batch"
            and event.get("event") == "batch_form"
            and request_id in event.get("request_ids", [])
        ):
            batch_span = event["span"]
            break

    backends: List[str] = []
    tasks: List[str] = []
    if batch_span is not None and batch_span in nodes:
        backends = _descendants_of_kind(nodes, batch_span, "backend")
        tasks = [
            span
            for span in _descendants_of_kind(nodes, batch_span, "task")
            if any(
                e.get("task_id") == request_id for e in nodes[span].events
            )
        ]
    return RequestLineage(
        request_id=request_id,
        service=service_span,
        request=request_span,
        batch=batch_span,
        backends=backends,
        tasks=tasks,
        resolution=resolution,
    )


def format_lineage(lineage: RequestLineage) -> str:
    """A one-request flamegraph line for terminals and bug reports."""
    chain: List[str] = [lineage.service, lineage.request]
    if lineage.batch is not None:
        chain.append(lineage.batch)
    chain.extend(lineage.backends)
    chain.extend(lineage.tasks)
    arrow = " → ".join(chain)
    return f"request {lineage.request_id} [{lineage.resolution}]: {arrow}"


def lineage_of(path: str, request_id: int) -> RequestLineage:
    """Convenience: :func:`load_trace` + :func:`request_lineage`."""
    return request_lineage(load_trace(path), request_id)


def stage_breakdown(
    events: Iterable[dict],
    task_id: Optional[int] = None,
    *,
    exclusive: bool = True,
) -> Dict[str, float]:
    """Per-stage proving seconds replayed from ``stage_timing`` events.

    Answers the paper's §4 question — where does a proof's time go? —
    from one JSONL trace file: each ``stage_timing`` event carries a
    ``stages`` mapping (commit ⊃ encode + merkle, sumcheck1, sumcheck2,
    open); this sums them across the trace, or for a single proof when
    ``task_id`` is given.  By default the result is the *exclusive* view
    (``commit`` replaced by its residue, values disjoint and summable);
    ``exclusive=False`` returns the raw nested totals.  Raises
    :class:`~repro.errors.ExecutionError` when a requested task has no
    stage events (e.g. a pre-profiling trace).
    """
    from ..kernels.profile import StageProfile

    totals = StageProfile()
    matched = False
    for event in events:
        if event.get("event") != "stage_timing":
            continue
        if task_id is not None and event.get("task_id") != task_id:
            continue
        matched = True
        totals.merge(event.get("stages") or {})
    if task_id is not None and not matched:
        raise ExecutionError(
            f"task {task_id} has no stage_timing events in the trace"
        )
    return totals.exclusive() if exclusive else totals.inclusive()


def stage_breakdown_of(
    path: str, task_id: Optional[int] = None, *, exclusive: bool = True
) -> Dict[str, float]:
    """Convenience: :func:`load_trace` + :func:`stage_breakdown`."""
    return stage_breakdown(load_trace(path), task_id, exclusive=exclusive)
