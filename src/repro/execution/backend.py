"""The unified proving-backend abstraction (S24).

Every proving entry point in the repository — ``BatchProver``, the MLaaS
service, the zkBridge prover, the streaming ``ProofService``, the CLI —
reduces a workload to the same shape: *a picklable prover recipe plus a
list of independent tasks*.  A :class:`ProvingBackend` is anything that
executes that shape::

    proofs, stats = backend.prove_tasks(spec, tasks)

with proofs in task order and a :class:`~repro.runtime.RuntimeStats`
report.  Three concrete substrates ship here:

* :class:`SerialBackend` — in-process, one cached prover per spec; the
  zero-overhead floor every other backend must beat.
* :class:`PoolBackend` — the process-pool
  :class:`~repro.runtime.ParallelProvingRuntime` (chunked dispatch,
  retries, timeouts), one cached runtime per spec.
* :class:`ShardedBackend` — splits a batch across child backends with
  the same rate-proportional largest-remainder arithmetic the GPU-farm
  simulator uses, runs the shards concurrently, and merges their
  reports.  Backends compose: a shard's child may itself be sharded.

All three stamp their trace events with the shared correlated schema
(``span`` / ``parent`` / ``kind``; see :mod:`repro.runtime.trace`), so a
backend dispatched from inside a service batch appears as a ``backend``
span under that batch's span in one JSONL file.
"""

from __future__ import annotations

import os
import time
from concurrent.futures import ThreadPoolExecutor
from typing import (
    Any,
    Dict,
    List,
    Optional,
    Protocol,
    Sequence,
    Tuple,
    runtime_checkable,
)

from ..core.batch import ProofTask
from ..core.proof import SnarkProof
from ..errors import ExecutionError, ProofError
from ..kernels.profile import collect_stages
from ..kernels.spec_cache import default_spec_cache
from ..runtime.pool import ParallelProvingRuntime
from ..runtime.spec import ProverSpec
from ..runtime.stats import RuntimeStats, TaskRecord, merge_runtime_stats
from ..runtime.trace import JsonlTraceSink, SpanContext, ambient_span


@runtime_checkable
class ProvingBackend(Protocol):
    """Structural interface of an execution substrate for proof batches.

    ``name`` is the registry spelling (``"serial"``, ``"pool:8"``, …);
    ``parallelism`` is the nominal concurrent capacity, used as the
    default sharding weight when backends compose.
    """

    name: str
    parallelism: int

    def prove_tasks(
        self,
        spec: ProverSpec,
        tasks: Sequence[ProofTask],
        *,
        trace: Optional[JsonlTraceSink] = None,
        parent: Optional[str] = None,
    ) -> Tuple[List[SnarkProof], RuntimeStats]:
        """Prove every task (proofs in task order) and report the run."""
        ...  # pragma: no cover - protocol stub


def _span_for(
    trace: Optional[JsonlTraceSink], parent: Optional[str]
) -> SpanContext:
    """The backend span for one run, falling back to the ambient span.

    Explicit arguments win; when the caller passed neither, the ambient
    span set by an enclosing layer (e.g. the proof service around a
    batch dispatch) supplies the sink and the parent id.
    """
    ambient = ambient_span()
    if ambient is not None:
        if trace is None:
            trace = ambient.sink
        if parent is None:
            parent = ambient.span
    return SpanContext(trace, "backend", parent=parent)


class _PerSpecCache:
    """Identity-keyed cache of one derived object per :class:`ProverSpec`.

    Keyed by object identity (with a strong reference held, so ids are
    never recycled underneath us): the long-lived callers — the service
    backend, a CLI run, the benches — pass the same spec instance for
    every batch of a circuit, which makes the expensive per-spec setup
    (expander generation, digesting) a one-time cost per backend.
    """

    def __init__(self) -> None:
        self._entries: Dict[int, Tuple[ProverSpec, Any]] = {}

    def get_or_build(self, spec: ProverSpec, build) -> Any:
        entry = self._entries.get(id(spec))
        if entry is not None and entry[0] is spec:
            return entry[1]
        value = build(spec)
        self._entries[id(spec)] = (spec, value)
        return value


class SerialBackend:
    """In-process serial execution: the floor, and the reference oracle.

    No pool, no IPC — each task is proved inline on the calling thread
    with a prover cached per spec.  Every other backend's proofs must be
    byte-identical to this one's (the parity property the execution
    tests pin down).

    Retries default *off* (``max_retries=0``): the oracle fails loudly.
    The resilience layer turns them on so an injected transient crash is
    absorbed the same way the pooled runtime absorbs it, and installs
    ``fault_injector`` — the ``(task_id, attempt) -> None`` worker hook
    plus, when present, a ``maybe_corrupt(proof, task_id)`` delivery
    hook — via :func:`~repro.resilience.apply_fault_plan`.
    """

    name = "serial"
    parallelism = 1

    def __init__(
        self,
        *,
        max_retries: int = 0,
        retry_backoff_seconds: float = 0.05,
        fault_injector=None,
    ) -> None:
        if max_retries < 0:
            raise ExecutionError(
                f"max_retries must be >= 0, got {max_retries}"
            )
        self._provers = _PerSpecCache()
        self.max_retries = max_retries
        self.retry_backoff_seconds = retry_backoff_seconds
        self.fault_injector = fault_injector

    def adopt_prover(self, spec: ProverSpec, prover) -> None:
        """Seed the cache with an already-built prover for ``spec``.

        Lets a caller that owns a live prover (e.g. ``BatchProver``)
        route through the backend seam without paying a rebuild.
        """
        self._provers._entries[id(spec)] = (spec, prover)

    def prove_tasks(
        self,
        spec: ProverSpec,
        tasks: Sequence[ProofTask],
        *,
        trace: Optional[JsonlTraceSink] = None,
        parent: Optional[str] = None,
    ) -> Tuple[List[SnarkProof], RuntimeStats]:
        tasks = list(tasks)
        ctx = _span_for(trace, parent)
        # Identity cache first (adopted provers win), then the process-wide
        # value-keyed SpecCache, so two backends over the same circuit
        # share one derivation.
        prover = self._provers.get_or_build(
            spec, lambda s: default_spec_cache().get_prover(s)
        )
        stats = RuntimeStats(workers=1)
        start = time.perf_counter()
        ctx.emit("run_start", backend=self.name, tasks=len(tasks), workers=1)
        injector = self.fault_injector
        corrupt = getattr(injector, "maybe_corrupt", None)
        proofs: List[SnarkProof] = []
        for task in tasks:
            submitted = time.perf_counter()
            attempt = 1
            while True:
                try:
                    if injector is not None:
                        injector(task.task_id, attempt)
                    t0 = time.perf_counter()
                    with collect_stages() as profile:
                        proof = prover.prove(task.witness, task.public_values)
                    prove_seconds = time.perf_counter() - t0
                    break
                except Exception as exc:
                    if attempt > self.max_retries:
                        raise ProofError(
                            f"task {task.task_id} failed after {attempt} "
                            f"attempts: {exc}"
                        ) from exc
                    stats.retries += 1
                    ctx.child(
                        "task", span=f"{ctx.span}/t{task.task_id}"
                    ).emit(
                        "retry", task_id=task.task_id, attempt=attempt,
                        reason=repr(exc),
                    )
                    time.sleep(
                        self.retry_backoff_seconds * (2 ** (attempt - 1))
                    )
                    attempt += 1
            if corrupt is not None:
                proof = corrupt(proof, task.task_id)
            stats.busy_seconds += prove_seconds
            stages = profile.as_dict()
            stats.records.append(
                TaskRecord(
                    task_id=task.task_id,
                    attempts=attempt,
                    prove_seconds=prove_seconds,
                    latency_seconds=time.perf_counter() - submitted,
                    worker=None,
                    stage_seconds=stages or None,
                )
            )
            task_ctx = ctx.child("task", span=f"{ctx.span}/t{task.task_id}")
            task_ctx.emit(
                "complete", task_id=task.task_id, attempt=attempt,
                seconds=prove_seconds,
            )
            if stages:
                task_ctx.emit(
                    "stage_timing", task_id=task.task_id,
                    seconds=prove_seconds, stages=stages,
                )
            proofs.append(proof)
        stats.total_seconds = time.perf_counter() - start
        ctx.emit(
            "run_end", proofs=len(proofs), retries=stats.retries,
            seconds=stats.total_seconds,
        )
        if ctx.sink is not None:
            ctx.sink.flush()
        return proofs, stats


class PoolBackend:
    """Process-pool execution on :class:`ParallelProvingRuntime`.

    One runtime (and therefore one per-worker prover setup recipe) is
    cached per spec; retries, per-task timeouts, chunking, and the
    bounded in-flight window are the runtime's, configured through
    ``runtime_options``.

    Args:
        workers:         Pool size; ``None`` → ``os.cpu_count()``.
        fault_injector:  Optional picklable ``(task_id, attempt)`` worker
                         hook (see :class:`ParallelProvingRuntime`);
                         a :class:`~repro.resilience.FaultInjector` also
                         gets its ``maybe_corrupt`` delivery hook applied
                         to returned proofs.  Must be set before the
                         first ``prove_tasks`` for a spec — the worker
                         initializer captures it when the runtime is
                         built.
        runtime_options: Extra keyword arguments forwarded to
                         :class:`ParallelProvingRuntime`
                         (``chunk_size``, ``max_retries``, …).
    """

    def __init__(
        self,
        workers: Optional[int] = None,
        *,
        fault_injector=None,
        **runtime_options,
    ):
        if workers is None:
            workers = os.cpu_count() or 1
        if workers < 1:
            raise ExecutionError(f"workers must be >= 1, got {workers}")
        self.workers = workers
        self.parallelism = workers
        self.name = f"pool:{workers}"
        self.fault_injector = fault_injector
        self.runtime_options = dict(runtime_options)
        self._runtimes = _PerSpecCache()

    def prove_tasks(
        self,
        spec: ProverSpec,
        tasks: Sequence[ProofTask],
        *,
        trace: Optional[JsonlTraceSink] = None,
        parent: Optional[str] = None,
    ) -> Tuple[List[SnarkProof], RuntimeStats]:
        tasks = list(tasks)
        runtime: ParallelProvingRuntime = self._runtimes.get_or_build(
            spec,
            lambda s: ParallelProvingRuntime(
                s,
                workers=self.workers,
                fault_injector=self.fault_injector,
                **self.runtime_options,
            ),
        )
        proofs, stats = runtime.prove_tasks(tasks, trace=trace, parent=parent)
        corrupt = getattr(self.fault_injector, "maybe_corrupt", None)
        if corrupt is not None:
            proofs = [
                corrupt(proof, task.task_id)
                for proof, task in zip(proofs, tasks)
            ]
        return proofs, stats


class ShardedBackend:
    """Composite execution: split one batch across child backends.

    The shard sizes are proportional to each child's weight (its
    ``parallelism`` by default) via the same largest-remainder rounding
    the multi-GPU farm simulator uses, so a ``sharded:pool:4,pool:4``
    backend places tasks exactly as a two-device farm with equal rates
    would.  Shards run concurrently on threads (each child does its own
    process-level parallelism; the threads only wait), proofs come back
    in input order, and the merged :class:`RuntimeStats` reports the
    combined worker count against the sharded wall-clock envelope.
    """

    def __init__(
        self,
        children: Sequence[ProvingBackend],
        weights: Optional[Sequence[float]] = None,
    ):
        children = list(children)
        if not children:
            raise ExecutionError("ShardedBackend needs at least one child")
        if weights is None:
            weights = [
                float(max(1, getattr(child, "parallelism", 1)))
                for child in children
            ]
        weights = [float(w) for w in weights]
        if len(weights) != len(children):
            raise ExecutionError(
                f"{len(weights)} weights for {len(children)} children"
            )
        if any(w < 0 for w in weights):
            raise ExecutionError(f"weights must be non-negative: {weights}")
        self.children = children
        self.weights = weights
        self.parallelism = sum(
            max(1, getattr(child, "parallelism", 1)) for child in children
        )
        self.name = "sharded:" + ",".join(child.name for child in children)

    def shard(self, n_tasks: int) -> List[int]:
        """Per-child task counts for a batch of ``n_tasks``."""
        from .sharding import largest_remainder_shares

        if n_tasks == 0:
            return [0] * len(self.children)
        return largest_remainder_shares(n_tasks, self.weights)

    def prove_tasks(
        self,
        spec: ProverSpec,
        tasks: Sequence[ProofTask],
        *,
        trace: Optional[JsonlTraceSink] = None,
        parent: Optional[str] = None,
    ) -> Tuple[List[SnarkProof], RuntimeStats]:
        tasks = list(tasks)
        ctx = _span_for(trace, parent)
        shares = self.shard(len(tasks))
        bounds: List[Tuple[int, int]] = []
        lo = 0
        for share in shares:
            bounds.append((lo, lo + share))
            lo += share
        start = time.perf_counter()
        ctx.emit(
            "shard_start", backend=self.name, tasks=len(tasks), shares=shares,
        )
        proofs: List[Optional[SnarkProof]] = [None] * len(tasks)
        part_stats: List[RuntimeStats] = []
        active = [
            (index, self.children[index], span)
            for index, span in enumerate(bounds)
            if span[1] > span[0]
        ]

        def run_shard(child: ProvingBackend, lo: int, hi: int):
            # Children receive the sink and parent explicitly — ambient
            # context is thread-local and does not cross into the pool.
            return child.prove_tasks(
                spec, tasks[lo:hi], trace=ctx.sink, parent=ctx.span
            )

        if not active:
            outcomes: List[Tuple[List[SnarkProof], RuntimeStats]] = []
        elif len(active) == 1:
            _, child, (s_lo, s_hi) = active[0]
            outcomes = [run_shard(child, s_lo, s_hi)]
        else:
            with ThreadPoolExecutor(max_workers=len(active)) as pool:
                futures = [
                    pool.submit(run_shard, child, s_lo, s_hi)
                    for _, child, (s_lo, s_hi) in active
                ]
                outcomes = [future.result() for future in futures]
        for (_, _, (s_lo, s_hi)), (shard_proofs, shard_stats) in zip(
            active, outcomes
        ):
            proofs[s_lo:s_hi] = shard_proofs
            part_stats.append(shard_stats)
        stats = merge_runtime_stats(
            part_stats, total_seconds=time.perf_counter() - start
        )
        ctx.emit(
            "shard_end", proofs=len(tasks), seconds=stats.total_seconds,
        )
        if ctx.sink is not None:
            ctx.sink.flush()
        return proofs, stats  # type: ignore[return-value]
