"""Merkle tree module (system S3 in DESIGN.md; paper §2.2, §3.1).

* :class:`MerkleTree` — full tree, authentication paths.
* :class:`MerklePath` — verifiable openings.
* :func:`merkle_root_streaming` — the paper's layer-streaming construction.
* Layer-size / hash-count helpers consumed by the pipeline scheduler.
"""

from .multiproof import (
    MerkleMultiProof,
    individual_paths_size,
    open_multi,
)
from .proof import MerklePath
from .tree import (
    BLOCK_SIZE,
    MerkleTree,
    iter_layer_sizes,
    merkle_root_streaming,
    pad_leaves,
    roots_over_roots,
    total_hashes,
)

__all__ = [
    "MerkleTree",
    "MerklePath",
    "MerkleMultiProof",
    "open_multi",
    "individual_paths_size",
    "merkle_root_streaming",
    "roots_over_roots",
    "iter_layer_sizes",
    "total_hashes",
    "pad_leaves",
    "BLOCK_SIZE",
]
