"""Merkle trees over 512-bit data blocks (paper §2.2, §3.1).

The paper's construction: split input data into 512-bit (64-byte) blocks,
hash each block to a 256-bit leaf, then iteratively compress pairs of
digests until a single Merkle root remains.  Every layer halves, so a tree
over ``N`` blocks performs ``2N − 1 ≈ N + N/2 + … + 1`` hashes — the count
the paper uses to size its per-layer kernel thread allocations (§4).

This module provides:

* :class:`MerkleTree` — full in-memory tree with authentication paths.
* :func:`merkle_root_streaming` — layer-at-a-time construction that keeps
  only the live layer, mirroring the paper's dynamic load/store discipline
  (only ~2N blocks of device memory, §3.1).
* Helpers to build trees over field-element matrices (the commitment
  scheme Merkle-izes codeword *columns*).
"""

from __future__ import annotations

from typing import Iterable, Iterator, List, Optional, Sequence

from ..errors import MerkleError
from ..hashing.hashers import DIGEST_SIZE, Hasher, get_hasher
from ..kernels.field_kernels import pack_vector
from .proof import MerklePath

BLOCK_SIZE = 64  # 512-bit input blocks, as in the paper.


def _is_power_of_two(n: int) -> bool:
    return n > 0 and (n & (n - 1)) == 0


def pad_leaves(leaves: Sequence[bytes], hasher: Hasher) -> List[bytes]:
    """Pad a digest list to the next power of two.

    Padding repeats the hash of an all-zero block; the padded width is part
    of what the root commits to, so padding cannot be abused to forge.
    """
    n = len(leaves)
    if n == 0:
        raise MerkleError("cannot build a Merkle tree over zero leaves")
    if _is_power_of_two(n):
        return list(leaves)
    target = 1 << n.bit_length()
    filler = hasher.zero_digest(BLOCK_SIZE)
    return list(leaves) + [filler] * (target - n)


class MerkleTree:
    """An in-memory Merkle tree retaining every layer.

    ``layers[0]`` is the list of leaf digests; ``layers[-1]`` is ``[root]``.

    >>> tree = MerkleTree.from_blocks([bytes([i]) * 64 for i in range(8)])
    >>> path = tree.open(3)
    >>> path.verify(tree.root, hasher=tree.hasher)
    True
    """

    __slots__ = ("hasher", "layers", "num_leaves")

    def __init__(self, leaf_digests: Sequence[bytes], hasher: Optional[Hasher] = None):
        self.hasher = hasher or get_hasher("sha256")
        for d in leaf_digests:
            if len(d) != DIGEST_SIZE:
                raise MerkleError(
                    f"leaf digests must be {DIGEST_SIZE} bytes, got {len(d)}"
                )
        padded = pad_leaves(leaf_digests, self.hasher)
        self.num_leaves = len(leaf_digests)
        self.layers: List[List[bytes]] = [padded]
        current = padded
        while len(current) > 1:
            current = self.hasher.compress_layer(current)
            self.layers.append(current)

    # -- constructors -------------------------------------------------------

    @classmethod
    def _from_layers(
        cls, layers: List[List[bytes]], num_leaves: int, hasher: Hasher
    ) -> "MerkleTree":
        """Adopt pre-computed layers (see :func:`build_forest`).

        The layers must already satisfy the class invariants: padded
        power-of-two leaf layer, each subsequent layer the pairwise
        compression of the one below, topped by a single root.
        """
        tree = cls.__new__(cls)
        tree.hasher = hasher
        tree.layers = layers
        tree.num_leaves = num_leaves
        return tree

    @classmethod
    def from_blocks(
        cls, blocks: Sequence[bytes], hasher: Optional[Hasher] = None
    ) -> "MerkleTree":
        """Build a tree from raw data blocks (hashed to form the leaves).

        Blocks may be any length; the paper's canonical input is 64-byte
        (512-bit) blocks.
        """
        hasher = hasher or get_hasher("sha256")
        leaves = hasher.hash_many(blocks)
        return cls(leaves, hasher)

    @classmethod
    def from_field_vectors(
        cls,
        field,
        columns: Sequence[Sequence[int]],
        hasher: Optional[Hasher] = None,
    ) -> "MerkleTree":
        """Build a tree whose leaves are hashes of field-element vectors.

        Used by the Brakedown commitment: each leaf commits to one codeword
        *column* across all rows of the coefficient matrix.
        """
        hasher = hasher or get_hasher("sha256")
        leaves = hasher.hash_many([pack_vector(field, col) for col in columns])
        return cls(leaves, hasher)

    # -- queries ------------------------------------------------------------------

    @property
    def root(self) -> bytes:
        return self.layers[-1][0]

    @property
    def depth(self) -> int:
        """Number of compression layers (0 for a single-leaf tree)."""
        return len(self.layers) - 1

    @property
    def padded_leaves(self) -> int:
        return len(self.layers[0])

    def leaf(self, index: int) -> bytes:
        if not 0 <= index < self.num_leaves:
            raise MerkleError(f"leaf index {index} out of range [0, {self.num_leaves})")
        return self.layers[0][index]

    def open(self, index: int) -> MerklePath:
        """Produce the authentication path for leaf ``index``."""
        if not 0 <= index < self.padded_leaves:
            raise MerkleError(
                f"leaf index {index} out of range [0, {self.padded_leaves})"
            )
        siblings = []
        pos = index
        for layer in self.layers[:-1]:
            siblings.append(layer[pos ^ 1])
            pos >>= 1
        return MerklePath(index=index, leaf=self.layers[0][index], siblings=siblings)

    def open_many(self, indices: Iterable[int]) -> List[MerklePath]:
        return [self.open(i) for i in indices]

    def hash_count(self) -> int:
        """Total compressions performed — the paper's ≈2N work metric."""
        return sum(len(layer) for layer in self.layers[1:])

    def __repr__(self) -> str:
        return (
            f"MerkleTree(leaves={self.num_leaves}, depth={self.depth}, "
            f"hasher={self.hasher.name})"
        )


def build_forest(
    leaf_lists: Sequence[Sequence[bytes]], hasher: Optional[Hasher] = None
) -> List[MerkleTree]:
    """Build one :class:`MerkleTree` per lane with *batched* compressions.

    All lanes of a laned prover commit matrices of identical shape, so
    their trees share a geometry.  Padding each lane's leaves and
    concatenating them lets every level of every tree be produced by a
    single :meth:`Hasher.compress_layer` call over the whole forest —
    ``depth`` batched dispatches for ``L`` trees instead of ``L·depth``.
    Each lane's slice of a level is a self-contained even-length
    power-of-two segment, so the pairwise compression never mixes lanes
    and each resulting tree is byte-identical to building it alone.
    """
    hasher = hasher or get_hasher("sha256")
    leaf_lists = [list(leaves) for leaves in leaf_lists]
    if not leaf_lists:
        return []
    padded = [pad_leaves(leaves, hasher) for leaves in leaf_lists]
    width = len(padded[0])
    if any(len(lane) != width for lane in padded):
        raise MerkleError("build_forest lanes must share one leaf count")
    lanes = len(padded)
    per_lane_layers: List[List[List[bytes]]] = [[lane] for lane in padded]
    current: List[bytes] = [d for lane in padded for d in lane]
    while width > 1:
        current = hasher.compress_layer(current)
        width //= 2
        for lane in range(lanes):
            per_lane_layers[lane].append(
                current[lane * width : (lane + 1) * width]
            )
    return [
        MerkleTree._from_layers(layers, len(leaves), hasher)
        for layers, leaves in zip(per_lane_layers, leaf_lists)
    ]


def merkle_root_streaming(
    blocks: Iterable[bytes], hasher: Optional[Hasher] = None
) -> bytes:
    """Compute a Merkle root holding only one live layer at a time.

    This is the memory discipline of the paper's pipelined Merkle module
    (§3.1): layers are produced, consumed by the next stage, and released —
    the working set is ≈2N digests rather than all layers of all trees.
    The root is identical to :class:`MerkleTree`'s.
    """
    hasher = hasher or get_hasher("sha256")
    # Leaf-hash in bounded chunks: the batched kernels get full lanes while
    # the block iterable is still consumed incrementally.
    layer: List[bytes] = []
    chunk: List[bytes] = []
    for block in blocks:
        chunk.append(block)
        if len(chunk) >= 256:
            layer.extend(hasher.hash_many(chunk))
            chunk = []
    if chunk:
        layer.extend(hasher.hash_many(chunk))
    if not layer:
        raise MerkleError("cannot build a Merkle tree over zero leaves")
    layer = pad_leaves(layer, hasher)
    while len(layer) > 1:
        layer = hasher.compress_layer(layer)
    return layer[0]


def iter_layer_sizes(num_blocks: int) -> Iterator[int]:
    """Yield layer sizes of the padded tree from leaves (N) down to the root.

    The pipeline scheduler allocates one kernel per layer with threads
    proportional to these sizes (the ``M/2, M/4, …`` allocation of §4).
    """
    if num_blocks <= 0:
        raise MerkleError("num_blocks must be positive")
    n = num_blocks if _is_power_of_two(num_blocks) else 1 << num_blocks.bit_length()
    while n >= 1:
        yield n
        if n == 1:
            return
        n //= 2


def total_hashes(num_blocks: int) -> int:
    """Closed-form ≈2N hash count for one tree over ``num_blocks`` blocks."""
    return sum(iter_layer_sizes(num_blocks))


def roots_over_roots(roots: Sequence[bytes], hasher: Optional[Hasher] = None) -> bytes:
    """Combine multiple Merkle roots into one by a second-level tree.

    The paper's system (§4) feeds the roots of per-segment trees as leaves
    of another Merkle tree module, "ultimately yielding a single final
    root".
    """
    hasher = hasher or get_hasher("sha256")
    tree = MerkleTree(list(roots), hasher)
    return tree.root
