"""Batch Merkle openings with shared-path deduplication.

The Brakedown commitment opens ``t`` codeword columns per evaluation
(§6's proofs "reach several MB" largely because of these paths).  Opening
each column with an independent authentication path wastes space: paths
of nearby leaves share most of their upper interior nodes.  A
*multiproof* sends each needed node exactly once — the minimal hash set
from which the verifier can recompute the root given the opened leaves.

Construction (standard): walk level by level; at each level the *known*
set is the nodes derivable so far.  For every known node whose sibling is
not known, emit the sibling hash.  Emission order is deterministic
(ascending node index per level), so verification consumes the same
stream without any index metadata beyond the leaf set itself.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

from ..errors import MerkleError
from ..hashing.hashers import DIGEST_SIZE, Hasher, get_hasher
from .tree import MerkleTree


@dataclass(frozen=True)
class MerkleMultiProof:
    """A deduplicated batch opening.

    Attributes:
        indices: Sorted, distinct leaf positions being opened.
        leaves:  Their leaf digests, in the same order.
        nodes:   The shared sibling hashes, in verification order.
        depth:   Tree depth (number of levels above the leaves).
    """

    indices: Tuple[int, ...]
    leaves: Tuple[bytes, ...]
    nodes: Tuple[bytes, ...]
    depth: int

    def size_bytes(self) -> int:
        return DIGEST_SIZE * (len(self.leaves) + len(self.nodes)) + 8 * len(
            self.indices
        )

    def verify(self, root: bytes, hasher: Optional[Hasher] = None) -> bool:
        """Recompute the root from leaves + shared nodes."""
        hasher = hasher or get_hasher("sha256")
        try:
            computed = _fold_multiproof(self, hasher)
        except MerkleError:
            return False
        return computed == root


def _sibling_plan(indices: Sequence[int], depth: int) -> List[List[int]]:
    """Per level, the sorted node indices whose hashes the proof must carry."""
    plan: List[List[int]] = []
    known = sorted(set(indices))
    for _ in range(depth):
        needed = []
        known_set = set(known)
        for idx in known:
            sib = idx ^ 1
            if sib not in known_set and (idx % 2 == 0 or (idx - 1) not in known_set):
                needed.append(sib)
        # Deduplicate (both children known handles itself; sibling appears
        # once because we iterate known ascending and guard above).
        plan.append(sorted(set(needed)))
        known = sorted({idx >> 1 for idx in known})
    return plan


def open_multi(
    tree: MerkleTree, indices: Sequence[int]
) -> MerkleMultiProof:
    """Open several leaves of ``tree`` with one deduplicated proof."""
    if not indices:
        raise MerkleError("must open at least one leaf")
    distinct = sorted(set(indices))
    for idx in distinct:
        if not 0 <= idx < tree.padded_leaves:
            raise MerkleError(f"leaf index {idx} out of range")
    depth = tree.depth
    plan = _sibling_plan(distinct, depth)
    nodes: List[bytes] = []
    for level, needed in enumerate(plan):
        layer = tree.layers[level]
        for idx in needed:
            nodes.append(layer[idx])
    return MerkleMultiProof(
        indices=tuple(distinct),
        leaves=tuple(tree.layers[0][idx] for idx in distinct),
        nodes=tuple(nodes),
        depth=depth,
    )


def _fold_multiproof(proof: MerkleMultiProof, hasher: Hasher) -> bytes:
    """Recompute the root; raises MerkleError on malformed proofs."""
    if len(proof.indices) != len(proof.leaves):
        raise MerkleError("index/leaf count mismatch")
    if not proof.indices:
        raise MerkleError("empty multiproof")
    for leaf in proof.leaves:
        if len(leaf) != DIGEST_SIZE:
            raise MerkleError("bad leaf digest size")
    current: Dict[int, bytes] = dict(zip(proof.indices, proof.leaves))
    if len(current) != len(proof.indices):
        raise MerkleError("duplicate leaf indices")
    plan = _sibling_plan(proof.indices, proof.depth)
    cursor = 0
    for level in range(proof.depth):
        for idx in plan[level]:
            if cursor >= len(proof.nodes):
                raise MerkleError("multiproof node stream exhausted")
            current[idx] = proof.nodes[cursor]
            cursor += 1
        parents: Dict[int, bytes] = {}
        for idx in sorted(current):
            if idx % 2 == 1 and (idx - 1) in current:
                continue  # handled with its left sibling
            sib = idx ^ 1
            if sib not in current:
                raise MerkleError(f"missing sibling for node {idx}")
            left = current[min(idx, sib)]
            right = current[max(idx, sib)]
            parents[idx >> 1] = hasher.compress(left, right)
        current = parents
    if cursor != len(proof.nodes):
        raise MerkleError("unconsumed multiproof nodes")
    if list(current.keys()) != [0]:
        raise MerkleError("multiproof did not converge to a single root")
    return current[0]


def individual_paths_size(tree: MerkleTree, indices: Sequence[int]) -> int:
    """Total bytes of independent per-leaf paths (for savings reporting)."""
    return sum(tree.open(i).size_bytes() for i in sorted(set(indices)))
