"""Merkle authentication paths.

A path proves that a given leaf digest sits at a given index under a given
root: the verifier re-compresses the leaf with each sibling, choosing the
left/right order from the index bits, and compares against the root
(§2.2: "any change in the input data will alter the corresponding hash
value and propagate up, ultimately changing the Merkle root").
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional

from ..errors import MerkleError
from ..hashing.hashers import DIGEST_SIZE, Hasher, get_hasher


@dataclass(frozen=True)
class MerklePath:
    """Authentication path for one leaf.

    Attributes:
        index:    Leaf position in the (padded) tree.
        leaf:     The leaf digest being authenticated.
        siblings: Sibling digests from the leaf layer up to (excluding) the
                  root.
    """

    index: int
    leaf: bytes
    siblings: List[bytes]

    def __post_init__(self) -> None:
        if self.index < 0:
            raise MerkleError(f"negative leaf index {self.index}")
        if len(self.leaf) != DIGEST_SIZE:
            raise MerkleError(f"leaf must be {DIGEST_SIZE} bytes")
        for s in self.siblings:
            if len(s) != DIGEST_SIZE:
                raise MerkleError(f"sibling must be {DIGEST_SIZE} bytes")
        if self.index >> len(self.siblings) not in (0,):
            raise MerkleError(
                f"index {self.index} too large for depth {len(self.siblings)}"
            )

    @property
    def depth(self) -> int:
        return len(self.siblings)

    def compute_root(self, hasher: Optional[Hasher] = None) -> bytes:
        """Fold the path upward and return the implied root."""
        hasher = hasher or get_hasher("sha256")
        node = self.leaf
        pos = self.index
        for sibling in self.siblings:
            if pos & 1:
                node = hasher.compress(sibling, node)
            else:
                node = hasher.compress(node, sibling)
            pos >>= 1
        return node

    def verify(self, root: bytes, hasher: Optional[Hasher] = None) -> bool:
        """Check the path authenticates ``self.leaf`` under ``root``."""
        return self.compute_root(hasher) == root

    def size_bytes(self) -> int:
        """Serialized size — contributes to the several-MB proof sizes the
        paper notes for the second category of ZKP protocols (§2.1)."""
        return DIGEST_SIZE * (1 + len(self.siblings)) + 8

    def to_bytes(self) -> bytes:
        out = self.index.to_bytes(8, "little") + self.leaf
        for s in self.siblings:
            out += s
        return out

    @classmethod
    def from_bytes(cls, data: bytes) -> "MerklePath":
        if len(data) < 8 + DIGEST_SIZE or (len(data) - 8) % DIGEST_SIZE:
            raise MerkleError("malformed MerklePath serialization")
        index = int.from_bytes(data[:8], "little")
        leaf = data[8 : 8 + DIGEST_SIZE]
        rest = data[8 + DIGEST_SIZE :]
        siblings = [
            rest[i : i + DIGEST_SIZE] for i in range(0, len(rest), DIGEST_SIZE)
        ]
        return cls(index=index, leaf=leaf, siblings=siblings)
