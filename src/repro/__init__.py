"""BatchZK reproduction — a fully pipelined (simulated) GPU system for
batch generation of zero-knowledge proofs.

Reproduces *BatchZK* (ASPLOS 2025): real implementations of every
cryptographic component (prime fields, SHA-256, Merkle trees, sum-check,
Spielman linear-time encoder, Brakedown commitment, a Spartan-style
SNARK, verifiable ML) plus a calibrated GPU simulator that regenerates
every table and figure of the paper's evaluation.

Subpackages (see DESIGN.md for the full inventory):

==============  ======================================================
``field``       prime-field arithmetic, polynomials, multilinear/eq
``hashing``     from-scratch SHA-256, Fiat–Shamir transcripts
``merkle``      Merkle trees and authentication paths
``sumcheck``    Algorithm 1, product sum-check, Figure 5 buffers
``encoder``     Spielman/Brakedown expander code, warp scheduling
``commitment``  Brakedown polynomial commitment
``core``        circuits, R1CS, the SNARK, batch proving
``gpu``         device catalog, cost models, the cycle simulator
``pipeline``    module stage graphs, the Figure 7 system
``runtime``     process-pool parallel proving with retries + metrics
``execution``   unified proving backends (serial/pool/sharded), traces
``cluster``     multi-node proving: wire protocol, ring routing,
                autoscaling (``remote:``/``cluster:`` selectors)
``baselines``   NTT, MSM, Groth-like prover, vendor models
``zkml``        quantized CNNs, VGG-16, the MLaaS service
``bench``       table/figure regeneration runners
==============  ======================================================
"""

from .field import DEFAULT_FIELD, PrimeField

__version__ = "1.0.0"

__all__ = ["DEFAULT_FIELD", "PrimeField", "__version__"]
