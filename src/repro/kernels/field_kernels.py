"""Batched field-vector kernels for the proving hot path.

The paper's discipline is to split each module into per-stage kernels and
size them to measured costs (§3, §4).  The functional prover's analogue of
a "kernel" is a whole-vector pass written so the Python interpreter does
as little per-element work as possible:

* iterate with ``zip`` over slices instead of indexing (one bytecode per
  element instead of four);
* accumulate products *lazily* as unbounded ints and reduce mod p once
  per output, not once per term;
* special-case the coefficients the protocol actually produces (zero
  coefficients from sparse eq-tables, the degree-2/3 round polynomials of
  the two sum-checks).

Every kernel has a ``_reference_*`` twin — the naive per-element loop the
codebase used before this layer — selected by
:func:`repro.kernels.dispatch.use_reference_kernels`.  The twins are the
oracle for the golden-parity tests and the baseline for
``benchmarks/bench_hotpath.py``.

All functions take and return *raw ints already reduced mod p* (the
:class:`~repro.field.PrimeField` hot-loop convention).
"""

from __future__ import annotations

from typing import TYPE_CHECKING, List, Sequence, Tuple

from .dispatch import kernels_enabled

try:  # The Mersenne-61 numpy layer; ``fast61`` only needs errors/primes,
    # so this import keeps the kernels package cycle-free.
    import numpy as _np

    from ..field import fast61 as _f61
except ImportError:  # pragma: no cover - numpy is part of the base image
    _np = None
    _f61 = None

if TYPE_CHECKING:  # pragma: no cover - type-only; kernels must stay an
    # import leaf so field/, hashing/, encoder/ can import it cycle-free.
    from ..field.prime_field import PrimeField

__all__ = [
    "fold_table",
    "fold_product_tables",
    "eq_table",
    "eq_table_lanes",
    "combine_rows",
    "spmv",
    "product_round_quadratic",
    "constraint_round_cubic",
    "constraint_claimed_sum",
    "constraint_violation",
    "product_pair_sum",
    "evaluate_table",
    "evaluate_table_bits",
    "pack_vector",
]

# Below this size the numpy fixed costs (array creation, ufunc dispatch)
# exceed the pure-Python loop; both sub-paths are exact, so the switch
# never changes a result.
_NP_MIN = 32


def _np_ok(field: "PrimeField", n: int) -> bool:
    """True when the vectorised Mersenne-61 path applies."""
    return _f61 is not None and n >= _NP_MIN and field.modulus == _f61._P61_INT


# -- lane dimension (S31) -----------------------------------------------------
#
# The hot-path kernels additionally accept *laned* inputs: a uint64 array
# of shape ``[lanes, n]`` holding the same table for ``lanes`` independent
# proofs of one circuit.  One ufunc dispatch then advances every lane at
# once, which is what amortizes numpy's fixed per-call cost across a
# whole batch of same-circuit instances.  Lane detection is structural
# (``ndim``), so it must run *before* any ``len()``/truthiness logic that
# assumes a flat table.


def _is_lanes(x: object, ndim: int = 2) -> bool:
    """True when ``x`` is a lane-batched ndarray of rank ``ndim``."""
    return _np is not None and isinstance(x, _np.ndarray) and x.ndim == ndim


def _lane_challenges(r: object, lanes: int, p: int) -> List[int]:
    """Normalize a scalar-or-per-lane challenge to ``lanes`` reduced ints.

    Laned sum-checks draw an independent Fiat–Shamir challenge per lane
    (transcripts diverge after the commitment roots), so folds take a
    vector of challenges; a scalar is broadcast for convenience.
    """
    if isinstance(r, (list, tuple)):
        rs = [int(v) % p for v in r]
    elif _np is not None and isinstance(r, _np.ndarray):
        rs = [int(v) % p for v in r.tolist()]
    else:
        rs = [int(r) % p] * lanes
    if len(rs) != lanes:
        raise ValueError(f"{len(rs)} challenges for {lanes} lanes")
    return rs


# -- sum-check folds ---------------------------------------------------------


def _reference_fold_table(field: PrimeField, table: Sequence[int], r: int) -> List[int]:
    """Naive fold: ``A[b] ← A[b] + r·(A[b+half] − A[b])`` by index.

    A ``[lanes, n]`` array folds each lane at its own challenge (``r``
    may be per-lane), returning a ``[lanes, n//2]`` array.
    """
    p = field.modulus
    if _is_lanes(table):
        rs = _lane_challenges(r, table.shape[0], p)
        return _np.asarray(
            [
                _reference_fold_table(field, [int(v) for v in lane], ri)
                for lane, ri in zip(table, rs)
            ],
            dtype=_np.uint64,
        )
    r %= p
    half = len(table) // 2
    return [(table[b] + r * (table[b + half] - table[b])) % p for b in range(half)]


def fold_table(field: PrimeField, table: Sequence[int], r: int) -> List[int]:
    """One sum-check fold (Algorithm 1 line 6) over a half-table.

    Pairs entry ``b`` with ``b + half`` — the most-significant live
    variable is bound, matching every sum-check prover in the repo.
    Laned form: a ``[lanes, n]`` array with a per-lane challenge vector
    folds every lane in one pass → ``[lanes, n//2]``.
    """
    if not kernels_enabled():
        return _reference_fold_table(field, table, r)
    p = field.modulus
    if _is_lanes(table):
        if field.modulus != _f61._P61_INT:
            return _reference_fold_table(field, table, r)
        arr = _f61.as_f61(table)
        half = arr.shape[1] // 2
        lo, hi = arr[:, :half], arr[:, half:]
        r_col = _f61.as_f61(_lane_challenges(r, arr.shape[0], p))[:, None]
        return _f61.f61_add(lo, _f61.f61_mul(r_col, _f61.f61_sub(hi, lo)))
    r %= p
    half = len(table) // 2
    is_arr = _np is not None and isinstance(table, _np.ndarray)
    if is_arr or _np_ok(field, half):
        arr = _f61.as_f61(table)
        lo, hi = arr[:half], arr[half:]
        out = _f61.f61_add(lo, _f61.f61_scale(r, _f61.f61_sub(hi, lo)))
        # Container-preserving: array-state provers keep arrays across
        # rounds (no per-round conversion); list callers get lists back.
        return out if is_arr else out.tolist()
    # zip of the table against its own upper half stops at `half` pairs;
    # no per-element index arithmetic survives in the loop body.
    return [(lo + r * (hi - lo)) % p for lo, hi in zip(table, table[half:])]


def fold_product_tables(
    field: PrimeField, tables: Sequence[Sequence[int]], r: int
) -> List[List[int]]:
    """Fold every factor table of a product sum-check at the same challenge."""
    return [fold_table(field, table, r) for table in tables]


# -- eq-table doubling -------------------------------------------------------


def _reference_eq_table(field: PrimeField, point: Sequence[int]) -> List[int]:
    """Naive doubling construction with indexed writes."""
    p = field.modulus
    table = [1]
    for r in point:
        r %= p
        one_minus = (1 - r) % p
        nxt = [0] * (2 * len(table))
        for b, t in enumerate(table):
            nxt[b] = (t * one_minus) % p
            nxt[b + len(table)] = (t * r) % p
        table = nxt
    return table


def eq_table(field: PrimeField, point: Sequence[int]) -> List[int]:
    """Table of ``eq(point, b)`` for all ``b ∈ {0,1}^n`` (doubling kernel).

    Each doubling round is two whole-table comprehensions (scale by
    ``1−r`` and by ``r``) concatenated — the same O(2^n) work as the
    naive construction with none of the per-element index bookkeeping.
    """
    if not kernels_enabled():
        return _reference_eq_table(field, point)
    p = field.modulus
    if _np_ok(field, 1 << len(point)):
        arr = _np.ones(1, dtype=_np.uint64)
        for r in point:
            r %= p
            arr = _np.concatenate(
                [_f61.f61_scale((1 - r) % p, arr), _f61.f61_scale(r, arr)]
            )
        return arr.tolist()
    table = [1]
    for r in point:
        r %= p
        one_minus = (1 - r) % p
        table = [t * one_minus % p for t in table] + [t * r % p for t in table]
    return table


def _reference_eq_table_lanes(
    field: PrimeField, points: Sequence[Sequence[int]]
) -> "_np.ndarray":
    """Naive laned eq-tables: one per-lane doubling construction each."""
    return _np.asarray(
        [_reference_eq_table(field, point) for point in points],
        dtype=_np.uint64,
    )


def eq_table_lanes(
    field: PrimeField, points: Sequence[Sequence[int]]
) -> "_np.ndarray":
    """Eq-tables for ``lanes`` points at once: ``[L, m] → [L, 2^m]``.

    Each doubling round scales the whole lane block by the per-lane
    ``1−r`` and ``r`` columns and concatenates along the table axis —
    ``m`` dispatches total for all lanes, versus ``L·m`` for per-lane
    construction.  Lanes carry *different* points (their transcripts
    diverge at the commitment roots), which is why this is a separate
    entry point rather than a broadcast of :func:`eq_table`.
    """
    points = [list(point) for point in points]
    if not points:
        return _np.zeros((0, 1), dtype=_np.uint64)
    m = len(points[0])
    if any(len(point) != m for point in points):
        raise ValueError("eq_table_lanes points must share one length")
    p = field.modulus
    if not (kernels_enabled() and _np_ok(field, 1 << m)):
        return _reference_eq_table_lanes(field, points)
    arr = _np.ones((len(points), 1), dtype=_np.uint64)
    for i in range(m):
        r_col = _f61.as_f61([point[i] % p for point in points])[:, None]
        om_col = _f61.as_f61([(1 - point[i]) % p for point in points])[:, None]
        arr = _np.concatenate(
            [_f61.f61_mul(arr, om_col), _f61.f61_mul(arr, r_col)], axis=1
        )
    return arr


# -- row combination (Brakedown commit/open/verify) --------------------------


def _reference_combine_rows(
    field: PrimeField, matrix: Sequence[Sequence[int]], coeffs: Sequence[int]
) -> List[int]:
    """The original per-element indexed accumulation.

    Laned form: a ``[L, R, C]`` matrix stack with ``[L, R]`` coefficients
    combines each lane independently → ``[L, C]`` array.
    """
    p = field.modulus
    if _is_lanes(matrix, ndim=3):
        return _np.asarray(
            [
                _reference_combine_rows(
                    field,
                    [[int(v) for v in row] for row in lane],
                    [int(c) for c in lane_coeffs],
                )
                for lane, lane_coeffs in zip(matrix, coeffs)
            ],
            dtype=_np.uint64,
        )
    width = len(matrix[0]) if matrix else 0
    out = [0] * width
    for coeff, row in zip(coeffs, matrix):
        if coeff % p == 0:
            continue
        for j, v in enumerate(row):
            out[j] += coeff * v
    return [v % p for v in out]


def combine_rows(
    field: PrimeField, matrix: Sequence[Sequence[int]], coeffs: Sequence[int]
) -> List[int]:
    """Coefficient-sparse, lazily reduced ``Σ_i coeffs[i] · matrix[i]``.

    The workhorse of the Brakedown commitment: the proximity row, the
    evaluation row, and the verifier's per-column checks are all row
    combinations.  Zero coefficients (common: boolean-point eq-tables
    are one-hot) skip their row entirely; unit coefficients skip the
    multiply; reduction happens once per output column.

    Laned form: ``[L, R, C]`` matrix stack × ``[L, R]`` coefficient
    array → ``[L, C]`` — one 3-D multiply plus an exact axis-1 limb sum
    combines the rows of all lanes in a single dispatch.
    """
    if not kernels_enabled():
        return _reference_combine_rows(field, matrix, coeffs)
    p = field.modulus
    if _is_lanes(matrix, ndim=3):
        if field.modulus != _f61._P61_INT:
            return _reference_combine_rows(field, matrix, coeffs)
        mats = _f61.as_f61(matrix)
        c_arr = _f61.as_f61(coeffs)
        return _f61.f61_axis_sum(_f61.f61_mul(mats, c_arr[:, :, None]), axis=1)
    width = len(matrix[0]) if matrix else 0
    if matrix and _np_ok(field, width):
        k = min(len(matrix), len(coeffs))
        rows = _np.asarray(matrix[:k], dtype=_np.uint64)
        c_arr = _np.asarray([c % p for c in coeffs[:k]], dtype=_np.uint64)
        # One 2-D modular multiply, then exact column sums via 32-bit
        # limb splitting (row counts far below the 2^29 overflow bound).
        contrib = _f61.f61_mul(rows, c_arr[:, None])
        return _f61.f61_columns_sum(contrib).tolist()
    out = [0] * width
    for coeff, row in zip(coeffs, matrix):
        coeff %= p
        if coeff == 0:
            continue
        if coeff == 1:
            out = [acc + v for acc, v in zip(out, row)]
        else:
            out = [acc + coeff * v for acc, v in zip(out, row)]
    return [v % p for v in out]


# -- sparse matrix-vector multiply (encoder) ---------------------------------


def _reference_spmv(
    field: PrimeField,
    rows: Sequence[Sequence[Tuple[int, int]]],
    x: Sequence[int],
    n_out: int,
) -> List[int]:
    """The original adjacency-list scatter loop."""
    p = field.modulus
    y = [0] * n_out
    for xi, row in zip(x, rows):
        if xi == 0:
            continue
        for j, w in row:
            y[j] += xi * w
    return [v % p for v in y]


def spmv(
    field: PrimeField,
    rows: Sequence[Sequence[Tuple[int, int]]],
    x: Sequence[int],
    n_out: int,
) -> List[int]:
    """``y = x · A`` for an adjacency-list sparse matrix (encoder SpMV).

    Lazy accumulation with a single reduction pass; zero inputs skip
    their whole adjacency row (systematic padding makes these common).
    """
    if not kernels_enabled():
        return _reference_spmv(field, rows, x, n_out)
    p = field.modulus
    y = [0] * n_out
    for xi, row in zip(x, rows):
        if not xi:
            continue
        if xi == 1:
            for j, w in row:
                y[j] += w
        else:
            for j, w in row:
                y[j] += xi * w
    return [v % p for v in y]


# -- specialized sum-check round polynomials ---------------------------------


def _reference_product_round_quadratic(
    field: PrimeField, ta: Sequence[int], tb: Sequence[int]
) -> List[int]:
    """The generic interpolation loop specialized to two factors.

    Laned form: ``[L, n]`` half-tables → one ``[g0, g1, g2]`` per lane.
    """
    p = field.modulus
    if _is_lanes(ta):
        return [
            _reference_product_round_quadratic(
                field, [int(v) for v in a], [int(v) for v in b]
            )
            for a, b in zip(ta, tb)
        ]
    half = len(ta) // 2
    evals = [0, 0, 0]
    for b in range(half):
        a_lo, a_hi = ta[b], ta[b + half]
        b_lo, b_hi = tb[b], tb[b + half]
        da = (a_hi - a_lo) % p
        db = (b_hi - b_lo) % p
        cur_a, cur_b = a_lo, b_lo
        for t in range(3):
            evals[t] = (evals[t] + cur_a * cur_b) % p
            if t < 2:
                cur_a = (cur_a + da) % p
                cur_b = (cur_b + db) % p
    return evals


def product_round_quadratic(
    field: PrimeField, ta: Sequence[int], tb: Sequence[int]
) -> List[int]:
    """Round polynomial ``g(t) = Σ_b (a_lo + t·Δa)(b_lo + t·Δb)`` at t=0,1,2.

    One fused pass over both half-tables: ``g(0) = Σ lo·lo``,
    ``g(1) = Σ hi·hi``, ``g(2) = Σ (2hi−lo)(2hi−lo)`` — accumulated as
    unbounded ints and reduced once per evaluation point.

    Laned form: ``[L, n]`` tables → ``L`` evaluation triples from three
    per-lane dot products (one fused pass over the whole lane block).
    """
    if not kernels_enabled():
        return _reference_product_round_quadratic(field, ta, tb)
    p = field.modulus
    if _is_lanes(ta):
        if field.modulus != _f61._P61_INT:
            return _reference_product_round_quadratic(field, ta, tb)
        a = _f61.as_f61(ta)
        b = _f61.as_f61(tb)
        half = a.shape[1] // 2
        a_lo, a_hi = a[:, :half], a[:, half:]
        b_lo, b_hi = b[:, :half], b[:, half:]
        a2 = _f61.f61_sub(_f61.f61_add(a_hi, a_hi), a_lo)
        b2 = _f61.f61_sub(_f61.f61_add(b_hi, b_hi), b_lo)
        g0 = _f61.f61_rows_dot(a_lo, b_lo)
        g1 = _f61.f61_rows_dot(a_hi, b_hi)
        g2 = _f61.f61_rows_dot(a2, b2)
        return [
            [int(g0[lane]), int(g1[lane]), int(g2[lane])]
            for lane in range(a.shape[0])
        ]
    half = len(ta) // 2
    if (_np is not None and isinstance(ta, _np.ndarray)) or _np_ok(field, half):
        a = _f61.as_f61(ta)
        b = _f61.as_f61(tb)
        a_lo, a_hi = a[:half], a[half:]
        b_lo, b_hi = b[:half], b[half:]
        a2 = _f61.f61_sub(_f61.f61_add(a_hi, a_hi), a_lo)
        b2 = _f61.f61_sub(_f61.f61_add(b_hi, b_hi), b_lo)
        return [
            _f61.f61_dot(a_lo, b_lo),
            _f61.f61_dot(a_hi, b_hi),
            _f61.f61_dot(a2, b2),
        ]
    g0 = g1 = g2 = 0
    for a_lo, a_hi, b_lo, b_hi in zip(ta, ta[half:], tb, tb[half:]):
        g0 += a_lo * b_lo
        g1 += a_hi * b_hi
        g2 += (2 * a_hi - a_lo) * (2 * b_hi - b_lo)
    return [g0 % p, g1 % p, g2 % p]


def _reference_constraint_round_cubic(
    field: PrimeField,
    eq: Sequence[int],
    az: Sequence[int],
    bz: Sequence[int],
    cz: Sequence[int],
) -> List[int]:
    """The original stepped-interpolation loop of the constraint prover.

    Laned form: ``[L, n]`` tables → one ``[g0..g3]`` quadruple per lane.
    """
    p = field.modulus
    if _is_lanes(eq):
        return [
            _reference_constraint_round_cubic(
                field, *([int(v) for v in t] for t in tables)
            )
            for tables in zip(eq, az, bz, cz)
        ]
    half = len(eq) // 2
    evals = [0, 0, 0, 0]
    for b in range(half):
        e_lo, e_hi = eq[b], eq[b + half]
        a_lo, a_hi = az[b], az[b + half]
        b_lo, b_hi = bz[b], bz[b + half]
        c_lo, c_hi = cz[b], cz[b + half]
        de = e_hi - e_lo
        da = a_hi - a_lo
        db = b_hi - b_lo
        dc = c_hi - c_lo
        e_t, a_t, b_t, c_t = e_lo, a_lo, b_lo, c_lo
        for t in range(4):
            evals[t] = (evals[t] + e_t * (a_t * b_t - c_t)) % p
            if t < 3:
                e_t += de
                a_t += da
                b_t += db
                c_t += dc
    return evals


def constraint_round_cubic(
    field: PrimeField,
    eq: Sequence[int],
    az: Sequence[int],
    bz: Sequence[int],
    cz: Sequence[int],
) -> List[int]:
    """Round polynomial of ``Σ eq·(az·bz − cz)`` at t = 0, 1, 2, 3.

    Direct extrapolation: the linear interpolant of a table pair at
    t = 2 is ``2·hi − lo`` and at t = 3 is ``3·hi − 2·lo``, so all four
    evaluations come out of one zip pass with lazy reduction.

    Laned form: ``[L, n]`` tables → ``L`` evaluation quadruples; the
    four interpolation points are evaluated as whole-lane-block row
    sums, so the per-round kernel cost is flat in the lane count.
    """
    if not kernels_enabled():
        return _reference_constraint_round_cubic(field, eq, az, bz, cz)
    p = field.modulus
    if _is_lanes(eq):
        if field.modulus != _f61._P61_INT:
            return _reference_constraint_round_cubic(field, eq, az, bz, cz)
        half = eq.shape[1] // 2
        splits = []
        for table in (eq, az, bz, cz):
            arr = _f61.as_f61(table)
            lo, hi = arr[:, :half], arr[:, half:]
            d = _f61.f61_sub(hi, lo)
            t2 = _f61.f61_add(hi, d)
            splits.append((lo, hi, t2, _f61.f61_add(t2, d)))
        e, a, b, c = splits
        evals = [
            _f61.f61_rows_sum(
                _f61.f61_mul(e[t], _f61.f61_sub(_f61.f61_mul(a[t], b[t]), c[t]))
            )
            for t in range(4)
        ]
        return [
            [int(evals[t][lane]) for t in range(4)]
            for lane in range(eq.shape[0])
        ]
    half = len(eq) // 2
    if (_np is not None and isinstance(eq, _np.ndarray)) or _np_ok(field, half):
        splits = []
        for table in (eq, az, bz, cz):
            arr = _f61.as_f61(table)
            lo, hi = arr[:half], arr[half:]
            d = _f61.f61_sub(hi, lo)
            # Linear interpolant at t = 2 is hi + Δ, at t = 3 is hi + 2Δ.
            t2 = _f61.f61_add(hi, d)
            splits.append((lo, hi, t2, _f61.f61_add(t2, d)))
        e, a, b, c = splits
        return [
            _f61.f61_sum(
                _f61.f61_mul(e[t], _f61.f61_sub(_f61.f61_mul(a[t], b[t]), c[t]))
            )
            for t in range(4)
        ]
    g0 = g1 = g2 = g3 = 0
    for e_lo, e_hi, a_lo, a_hi, b_lo, b_hi, c_lo, c_hi in zip(
        eq, eq[half:], az, az[half:], bz, bz[half:], cz, cz[half:]
    ):
        g0 += e_lo * (a_lo * b_lo - c_lo)
        g1 += e_hi * (a_hi * b_hi - c_hi)
        e2 = 2 * e_hi - e_lo
        a2 = 2 * a_hi - a_lo
        b2 = 2 * b_hi - b_lo
        c2 = 2 * c_hi - c_lo
        g2 += e2 * (a2 * b2 - c2)
        g3 += (e2 + e_hi - e_lo) * ((a2 + a_hi - a_lo) * (b2 + b_hi - b_lo) - (c2 + c_hi - c_lo))
    return [g0 % p, g1 % p, g2 % p, g3 % p]


def constraint_claimed_sum(
    field: PrimeField,
    eq: Sequence[int],
    az: Sequence[int],
    bz: Sequence[int],
    cz: Sequence[int],
) -> int:
    """``Σ_b eq[b]·(az[b]·bz[b] − cz[b]) mod p`` (sum-check #1's claim).

    Laned form: ``[L, n]`` tables → one claimed sum per lane.
    """
    p = field.modulus
    if _is_lanes(eq):
        if kernels_enabled() and field.modulus == _f61._P61_INT:
            e = _f61.as_f61(eq)
            a = _f61.as_f61(az)
            b = _f61.as_f61(bz)
            c = _f61.as_f61(cz)
            sums = _f61.f61_rows_sum(
                _f61.f61_mul(e, _f61.f61_sub(_f61.f61_mul(a, b), c))
            )
            return [int(v) for v in sums]
        return [
            sum(int(e) * (int(a) * int(b) - int(c)) for e, a, b, c in zip(*tables))
            % p
            for tables in zip(eq, az, bz, cz)
        ]
    if not kernels_enabled():
        return sum(e * (a * b - c) for e, a, b, c in zip(eq, az, bz, cz)) % p
    if (_np is not None and isinstance(eq, _np.ndarray)) or _np_ok(field, len(eq)):
        e = _f61.as_f61(eq)
        a = _f61.as_f61(az)
        b = _f61.as_f61(bz)
        c = _f61.as_f61(cz)
        return _f61.f61_sum(_f61.f61_mul(e, _f61.f61_sub(_f61.f61_mul(a, b), c)))
    return sum(e * (a * b - c) for e, a, b, c in zip(eq, az, bz, cz)) % p


def constraint_violation(
    field: PrimeField,
    az: Sequence[int],
    bz: Sequence[int],
    cz: Sequence[int],
) -> bool:
    """True when some constraint fails ``az·bz = cz`` (satisfaction check).

    Laned form: ``[L, n]`` tables → one boolean per lane, so a single
    bad witness in a lane-group is attributable to its lane.
    """
    p = field.modulus
    if _is_lanes(az):
        if kernels_enabled() and field.modulus == _f61._P61_INT:
            a = _f61.as_f61(az)
            b = _f61.as_f61(bz)
            c = _f61.as_f61(cz)
            bad = _f61.f61_sub(_f61.f61_mul(a, b), c).any(axis=1)
            return [bool(v) for v in bad]
        return [
            any((int(a) * int(b) - int(c)) % p for a, b, c in zip(*tables))
            for tables in zip(az, bz, cz)
        ]
    if not kernels_enabled():
        return any((a * b - c) % p for a, b, c in zip(az, bz, cz))
    if (_np is not None and isinstance(az, _np.ndarray)) or _np_ok(field, len(az)):
        a = _f61.as_f61(az)
        b = _f61.as_f61(bz)
        c = _f61.as_f61(cz)
        return bool(_f61.f61_sub(_f61.f61_mul(a, b), c).any())
    return any((a * b - c) % p for a, b, c in zip(az, bz, cz))


def product_pair_sum(field: PrimeField, ta: Sequence[int], tb: Sequence[int]) -> int:
    """``Σ_b ta[b]·tb[b]`` with one final reduction (claimed-sum kernel).

    Laned form: ``[L, n]`` tables → one pair sum per lane.
    """
    if _is_lanes(ta):
        if kernels_enabled() and field.modulus == _f61._P61_INT:
            sums = _f61.f61_rows_dot(_f61.as_f61(ta), _f61.as_f61(tb))
            return [int(v) for v in sums]
        p = field.modulus
        return [
            sum(int(a) * int(b) for a, b in zip(la, lb)) % p
            for la, lb in zip(ta, tb)
        ]
    if not kernels_enabled():
        p = field.modulus
        total = 0
        for a, b in zip(ta, tb):
            total = (total + a * b) % p
        return total
    if (_np is not None and isinstance(ta, _np.ndarray)) or _np_ok(field, len(ta)):
        return _f61.f61_dot(_f61.as_f61(ta), _f61.as_f61(tb))
    return sum(a * b for a, b in zip(ta, tb)) % field.modulus


# -- multilinear point evaluation --------------------------------------------


def evaluate_table_bits(
    field: PrimeField, table: Sequence[int], point: Sequence[int]
) -> int:
    """Naive per-index evaluation: materialize every index's bits.

    ``Σ_b table[b] · ∏_i (b_i·r_i + (1−b_i)(1−r_i))`` — O(n·2^n)
    multiplications.  Kept as the oracle for the fold-based evaluation's
    equivalence test; never used on the hot path.
    """
    p = field.modulus
    n = len(point)
    total = 0
    for b, v in enumerate(table):
        term = v % p
        for i in range(n):
            bit = (b >> i) & 1
            r = point[i] % p
            term = (term * (r if bit else (1 - r))) % p
        total = (total + term) % p
    return total


def evaluate_table(
    field: PrimeField, table: Sequence[int], point: Sequence[int]
) -> int:
    """Fold-based multilinear-extension evaluation: O(2^n) multiplies.

    Folds the most-significant variable each pass (the table is
    LSB-first, so the two *halves* are paired), consuming the point from
    its last coordinate — identical binding order to the sum-check
    provers.
    """
    if kernels_enabled() and _np_ok(field, len(table)):
        p = field.modulus
        arr = _f61.as_f61(table)
        for r in reversed(point):
            half = arr.size // 2
            lo, hi = arr[:half], arr[half:]
            arr = _f61.f61_add(lo, _f61.f61_scale(r % p, _f61.f61_sub(hi, lo)))
        return int(arr[0])
    current = list(table)
    for r in reversed(point):
        current = fold_table(field, current, r)
    return current[0] % field.modulus


# -- vector serialization ----------------------------------------------------


def _reference_pack_vector(field: PrimeField, values: Sequence[int]) -> bytes:
    """The original per-element serialization loop."""
    return b"".join(field.to_bytes(v) for v in values)


def pack_vector(field: PrimeField, values: Sequence[int]) -> bytes:
    """Serialize a residue vector to little-endian fixed-width bytes.

    For 8-byte fields (the default M61) a whole vector packs as one
    ``uint64`` array dump — byte-for-byte what per-element ``to_bytes``
    produces.  Non-canonical or oversized inputs fall back to the
    reference path, which reduces mod p exactly like ``to_bytes``.
    """
    if not kernels_enabled():
        return _reference_pack_vector(field, values)
    if _np is not None and field.byte_length == 8 and values:
        try:
            arr = _np.asarray(values, dtype="<u8")
        except (OverflowError, TypeError):
            return _reference_pack_vector(field, values)
        if not bool((arr >= _np.uint64(field.modulus)).any()):
            return arr.tobytes()
    return _reference_pack_vector(field, values)
