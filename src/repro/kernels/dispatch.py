"""Fast/reference kernel dispatch.

Every hot-path kernel in :mod:`repro.kernels` ships in two forms: the
*fast* implementation (batched, lazily reduced, SWAR-packed) and a
*reference* twin written as the naive per-element loop the rest of the
codebase used before the kernel layer existed.  The two must agree
element-for-element — the golden-parity test suite pins that down — and
the fast path must produce byte-identical serialized proofs.

This module owns the switch.  It exists for three consumers:

* the parity tests, which run both forms on the same inputs;
* ``benchmarks/bench_hotpath.py``, which measures the end-to-end speedup
  of the kernelized prover against the reference path and enforces a
  perf-regression floor;
* debugging — when a proof mismatch is suspected, rerunning under
  :func:`use_reference_kernels` isolates whether a kernel is at fault.

The flag is process-global (not thread-local) on purpose: the reference
path is a measurement/debug mode, not a per-request feature, and the
pooled runtime's worker processes each inherit their own copy.
"""

from __future__ import annotations

from contextlib import contextmanager
from typing import Iterator

_ENABLED = True


def kernels_enabled() -> bool:
    """True when the fast kernel implementations are active."""
    return _ENABLED


def set_kernels_enabled(enabled: bool) -> None:
    """Globally enable or disable the fast kernels (see module doc)."""
    global _ENABLED
    _ENABLED = bool(enabled)


@contextmanager
def use_reference_kernels() -> Iterator[None]:
    """Run the enclosed block on the naive reference implementations.

    >>> from repro.kernels import dispatch
    >>> with dispatch.use_reference_kernels():
    ...     dispatch.kernels_enabled()
    False
    """
    global _ENABLED
    previous = _ENABLED
    _ENABLED = False
    try:
        yield
    finally:
        _ENABLED = previous
