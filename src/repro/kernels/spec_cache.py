"""Per-worker memoization of prover setup (the batch workload's fixed half).

The paper's workload is "one circuit, many witnesses" (§1): every proof in
a batch shares the constraint system, the expander graphs, and the PCS
parameters.  SZKP (arXiv:2408.05890) makes the same observation for
hardware provers — precompute the per-circuit structure once, stream the
witnesses.  Our pooled runtime previously paid the whole derivation
(``ProverSpec.build_prover()``: expander sampling, matrix shaping) once
per *worker initialization*, and the serial/sharded paths once per
*backend construction*, keyed by spec object identity — so logically
identical specs (same circuit, new object) re-derived everything.

:class:`SpecCache` keys by *value* — the circuit digest plus every PCS
knob — so any spec describing the same prover hits.  A module-level
default instance gives worker processes, serial backends, and repeated
runtime constructions one shared cache per process.

:func:`cached_encoder` is the lower-level half: Spielman encoder graphs
are deterministic in ``(field modulus, message length, params, seed)``,
so the PCS routes construction through this memo and a prover, a
verifier, and a resilience probe for the same circuit share one encoder.
"""

from __future__ import annotations

import threading
from collections import OrderedDict
from typing import TYPE_CHECKING, Optional, Tuple

if TYPE_CHECKING:  # pragma: no cover - type-only; kernels must stay an
    # import leaf so the modules it accelerates can import it cycle-free.
    from ..commitment.brakedown import BrakedownPCS
    from ..core.prover import SnarkProver
    from ..encoder.spielman import EncoderParams, SpielmanEncoder
    from ..field.prime_field import PrimeField
    from ..runtime.spec import ProverSpec

__all__ = [
    "EncoderCache",
    "SpecCache",
    "cached_encoder",
    "default_encoder_cache",
    "default_spec_cache",
    "spec_cache_key",
]


def spec_cache_key(spec: "ProverSpec") -> Tuple:
    """Value key identifying the prover a spec builds.

    Two specs with equal keys build provers that emit byte-identical
    proofs for the same task: the circuit digest pins the R1CS, the
    remaining fields pin every PCS/encoder derivation knob.
    """
    return (
        spec.r1cs.digest(),
        spec.r1cs.field.modulus,
        tuple(spec.public_indices),
        spec.pcs_seed,
        spec.num_col_checks,
        spec.compress_openings,
        spec.row_vars,
        spec.encoder_params,
        spec.hasher_name,
    )


class SpecCache:
    """An LRU memo of built provers/PCS instances, keyed by spec *value*.

    Thread-safe (the sharded backend builds shards from threads).  Cached
    provers are reused across tasks — safe because ``SnarkProver.prove``
    keeps no mutable per-proof state on the instance.
    """

    def __init__(self, maxsize: int = 8):
        self._maxsize = max(1, maxsize)
        self._provers: "OrderedDict[Tuple, SnarkProver]" = OrderedDict()
        self._lock = threading.Lock()
        #: Number of lookups served from the cache.
        self.hits = 0
        #: Number of lookups that had to build a prover.
        self.misses = 0

    def __len__(self) -> int:
        return len(self._provers)

    def get_prover(self, spec: "ProverSpec") -> "SnarkProver":
        """The memoized prover for ``spec`` (built on first use)."""
        key = spec_cache_key(spec)
        with self._lock:
            prover = self._provers.get(key)
            if prover is not None:
                self.hits += 1
                self._provers.move_to_end(key)
                return prover
        # Build outside the lock — derivation is the expensive part and
        # two racing builders produce equivalent provers.
        built = spec.build_prover()
        with self._lock:
            prover = self._provers.get(key)
            if prover is not None:
                self.hits += 1
                self._provers.move_to_end(key)
                return prover
            self.misses += 1
            self._provers[key] = built
            while len(self._provers) > self._maxsize:
                self._provers.popitem(last=False)
        return built

    def get_pcs(self, spec: "ProverSpec") -> "BrakedownPCS":
        """The memoized prover's PCS (shares the cached encoder graph)."""
        return self.get_prover(spec).pcs

    def clear(self) -> None:
        """Drop every cached prover (hit/miss counters are kept)."""
        with self._lock:
            self._provers.clear()


_DEFAULT = SpecCache()


def default_spec_cache() -> SpecCache:
    """The process-wide cache shared by workers and backends."""
    return _DEFAULT


# -- encoder graph memo ------------------------------------------------------


class EncoderCache:
    """An LRU memo of :class:`SpielmanEncoder` graphs with hit/miss stats.

    The earlier module-level memo was a plain dict with first-in
    eviction: long-lived services proving a rotating set of circuit
    shapes evicted their *hottest* graphs (insertion order never
    updated on hit) and exposed no occupancy or hit-rate signal.  This
    mirrors :class:`SpecCache`: recency-ordered, thread-safe, builds
    outside the lock, counts hits/misses/evictions.
    """

    def __init__(self, maxsize: int = 32):
        self._maxsize = max(1, maxsize)
        self._encoders: "OrderedDict[Tuple, SpielmanEncoder]" = OrderedDict()
        self._lock = threading.Lock()
        #: Number of lookups served from the cache.
        self.hits = 0
        #: Number of lookups that had to build an encoder.
        self.misses = 0
        #: Number of entries dropped to honor the LRU bound.
        self.evictions = 0

    def __len__(self) -> int:
        return len(self._encoders)

    def get(
        self,
        field: "PrimeField",
        message_length: int,
        params: "Optional[EncoderParams]",
        seed: int,
    ) -> "SpielmanEncoder":
        """The memoized encoder for the key (built on first use).

        Graphs are a pure function of ``(modulus, message length,
        params, seed)`` — the ``field`` *instance* is deliberately not
        part of the key, so equivalent field objects share one encoder.
        """
        from ..encoder.spielman import EncoderParams, SpielmanEncoder

        key = (field.modulus, message_length, params or EncoderParams(), seed)
        with self._lock:
            encoder = self._encoders.get(key)
            if encoder is not None:
                self.hits += 1
                self._encoders.move_to_end(key)
                return encoder
        # Build outside the lock — graph sampling is the expensive part
        # and two racing builders produce equivalent encoders.
        built = SpielmanEncoder(field, message_length, params=params, seed=seed)
        with self._lock:
            encoder = self._encoders.get(key)
            if encoder is not None:
                self.hits += 1
                self._encoders.move_to_end(key)
                return encoder
            self.misses += 1
            self._encoders[key] = built
            while len(self._encoders) > self._maxsize:
                self._encoders.popitem(last=False)
                self.evictions += 1
        return built

    def clear(self) -> None:
        """Drop every cached encoder (hit/miss counters are kept)."""
        with self._lock:
            self._encoders.clear()


_DEFAULT_ENCODERS = EncoderCache()


def default_encoder_cache() -> EncoderCache:
    """The process-wide encoder memo shared by every PCS instance."""
    return _DEFAULT_ENCODERS


def cached_encoder(
    field: "PrimeField",
    message_length: int,
    params: "Optional[EncoderParams]",
    seed: int,
) -> "SpielmanEncoder":
    """Memoized :class:`SpielmanEncoder` construction (the default cache)."""
    return _DEFAULT_ENCODERS.get(field, message_length, params, seed)
