"""Per-proof stage profiling (the paper's measured per-stage costs, §4).

The paper sizes its pipeline stages from *measured* per-stage costs; this
module is the functional prover's measuring tape.  Instrumented code
wraps each pipeline stage in :func:`stage`, and a caller that wants the
breakdown wraps the whole proof in :func:`collect_stages`:

>>> from repro.kernels.profile import collect_stages, stage
>>> with collect_stages() as profile:
...     with stage("merkle"):
...         pass
>>> sorted(profile.seconds) == ["merkle"]
True

When no collector is active the :func:`stage` context manager is a no-op
(one ContextVar read), so the instrumentation stays in production code.
The collector is a ContextVar, so concurrent proofs in different threads
(the sharded backend) each see their own profile.

Stages may nest: ``encode`` and ``merkle`` run inside ``commit``, and
every stage accumulates its own wall time independently — so ``commit``
includes its children, and ``commit − encode − merkle`` is the
commit-phase residue (transposes, padding, transcript absorption).
"""

from __future__ import annotations

import time
from contextlib import contextmanager
from contextvars import ContextVar
from dataclasses import dataclass, field as dc_field
from typing import Dict, Iterator, Optional, Tuple

__all__ = ["StageProfile", "collect_stages", "stage", "STAGE_NAMES"]

#: Canonical stage names emitted by the instrumented proving pipeline, in
#: pipeline order.  ``commit`` contains ``encode`` and ``merkle``.
STAGE_NAMES: Tuple[str, ...] = (
    "commit",
    "encode",
    "merkle",
    "sumcheck1",
    "sumcheck2",
    "open",
)


@dataclass
class StageProfile:
    """Accumulated wall-clock seconds per pipeline stage for one proof."""

    seconds: Dict[str, float] = dc_field(default_factory=dict)

    def add(self, name: str, elapsed: float) -> None:
        """Accumulate ``elapsed`` seconds into stage ``name``."""
        self.seconds[name] = self.seconds.get(name, 0.0) + elapsed

    def as_dict(self) -> Dict[str, float]:
        """A plain dict copy in canonical-then-insertion order."""
        ordered = {n: self.seconds[n] for n in STAGE_NAMES if n in self.seconds}
        for name, value in self.seconds.items():
            if name not in ordered:
                ordered[name] = value
        return ordered

    def merge(self, other: Dict[str, float]) -> None:
        """Accumulate another profile's stage seconds into this one."""
        for name, value in other.items():
            self.add(name, value)


_ACTIVE: ContextVar[Optional[StageProfile]] = ContextVar(
    "repro_stage_profile", default=None
)


@contextmanager
def collect_stages() -> Iterator[StageProfile]:
    """Collect stage timings from everything proved inside the block."""
    profile = StageProfile()
    token = _ACTIVE.set(profile)
    try:
        yield profile
    finally:
        _ACTIVE.reset(token)


@contextmanager
def stage(name: str) -> Iterator[None]:
    """Attribute the enclosed block's wall time to stage ``name``.

    Free (a single ContextVar read) when no collector is active.
    """
    profile = _ACTIVE.get()
    if profile is None:
        yield
        return
    start = time.perf_counter()
    try:
        yield
    finally:
        profile.add(name, time.perf_counter() - start)
