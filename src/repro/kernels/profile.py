"""Per-proof stage profiling (the paper's measured per-stage costs, §4).

The paper sizes its pipeline stages from *measured* per-stage costs; this
module is the functional prover's measuring tape.  Instrumented code
wraps each pipeline stage in :func:`stage`, and a caller that wants the
breakdown wraps the whole proof in :func:`collect_stages`:

>>> from repro.kernels.profile import collect_stages, stage
>>> with collect_stages() as profile:
...     with stage("merkle"):
...         pass
>>> sorted(profile.seconds) == ["merkle"]
True

When no collector is active the :func:`stage` context manager is a no-op
(one ContextVar read), so the instrumentation stays in production code.
The collector is a ContextVar, so concurrent proofs in different threads
(the sharded backend) each see their own profile.

Stages may nest: ``encode`` and ``merkle`` run inside ``commit``, and
every stage accumulates its own wall time independently — so ``commit``
includes its children, and ``commit − encode − merkle`` is the
commit-phase residue (transposes, padding, transcript absorption).

Because of that containment the raw dict is *not* safe to sum: adding
``commit`` to ``encode`` and ``merkle`` counts the commit phase twice.
:meth:`StageProfile.exclusive` is the summable view — ``commit`` is
replaced by its residue, so the values partition wall time and their
total never exceeds it; :meth:`StageProfile.inclusive` is the raw
as-measured view for consumers that understand the nesting.
"""

from __future__ import annotations

import time
from contextlib import contextmanager
from contextvars import ContextVar
from dataclasses import dataclass, field as dc_field
from typing import Dict, Iterator, Mapping, Optional, Tuple

__all__ = [
    "StageProfile",
    "collect_stages",
    "collect_into",
    "exclusive_stage_seconds",
    "stage",
    "STAGE_NAMES",
    "STAGE_CHILDREN",
]

#: Canonical stage names emitted by the instrumented proving pipeline, in
#: pipeline order.  ``commit`` contains ``encode`` and ``merkle``.
STAGE_NAMES: Tuple[str, ...] = (
    "commit",
    "encode",
    "merkle",
    "sumcheck1",
    "sumcheck2",
    "open",
)

#: Containment between stages: a container's measured time includes its
#: children's.  The exclusive view subtracts children from containers so
#: the result partitions wall time.
STAGE_CHILDREN: Dict[str, Tuple[str, ...]] = {
    "commit": ("encode", "merkle"),
}


def exclusive_stage_seconds(
    stage_seconds: Mapping[str, float],
) -> Dict[str, float]:
    """The summable view of a (possibly nested) stage-seconds mapping.

    Each container stage (per :data:`STAGE_CHILDREN`) is replaced by its
    residue — its time minus its recorded children's, clamped at zero —
    so the returned values are disjoint and sum to at most the proof's
    wall time.  Stages absent from the input stay absent.
    """
    out: Dict[str, float] = {}
    ordered = [n for n in STAGE_NAMES if n in stage_seconds]
    ordered += [n for n in stage_seconds if n not in STAGE_NAMES]
    for name in ordered:
        value = stage_seconds[name]
        for child in STAGE_CHILDREN.get(name, ()):
            value -= stage_seconds.get(child, 0.0)
        out[name] = max(0.0, value)
    return out


@dataclass
class StageProfile:
    """Accumulated wall-clock seconds per pipeline stage for one proof."""

    seconds: Dict[str, float] = dc_field(default_factory=dict)

    def add(self, name: str, elapsed: float) -> None:
        """Accumulate ``elapsed`` seconds into stage ``name``."""
        self.seconds[name] = self.seconds.get(name, 0.0) + elapsed

    def as_dict(self) -> Dict[str, float]:
        """A plain dict copy in canonical-then-insertion order.

        This is the *inclusive* (as-measured) view — ``commit`` contains
        ``encode``/``merkle`` — and is not safe to sum across keys; use
        :meth:`exclusive` for a partition of wall time.
        """
        ordered = {n: self.seconds[n] for n in STAGE_NAMES if n in self.seconds}
        for name, value in self.seconds.items():
            if name not in ordered:
                ordered[name] = value
        return ordered

    #: Explicit name for the raw nested view, so call sites that really
    #: want containment say so.
    inclusive = as_dict

    def exclusive(self) -> Dict[str, float]:
        """The summable view: containers replaced by their residue.

        ``commit`` becomes ``commit − encode − merkle`` (clamped at
        zero), so the returned values are disjoint shares of the proof's
        wall time and their sum never exceeds it.
        """
        return exclusive_stage_seconds(self.as_dict())

    def merge(self, other: Dict[str, float]) -> None:
        """Accumulate another profile's stage seconds into this one."""
        for name, value in other.items():
            self.add(name, value)


_ACTIVE: ContextVar[Optional[StageProfile]] = ContextVar(
    "repro_stage_profile", default=None
)


@contextmanager
def collect_stages() -> Iterator[StageProfile]:
    """Collect stage timings from everything proved inside the block."""
    profile = StageProfile()
    token = _ACTIVE.set(profile)
    try:
        yield profile
    finally:
        _ACTIVE.reset(token)


@contextmanager
def collect_into(profile: StageProfile) -> Iterator[StageProfile]:
    """Collect stage timings into an *existing* profile.

    The pipelined executor runs one proof's stages on different worker
    threads; each thread has its own ContextVar state, so the per-task
    profile must travel with the task.  Wrapping each stage execution in
    ``collect_into(task_profile)`` accumulates every thread's timings
    into the one shared profile (stage hand-offs serialize the writes,
    so no lock is needed).
    """
    token = _ACTIVE.set(profile)
    try:
        yield profile
    finally:
        _ACTIVE.reset(token)


@contextmanager
def stage(name: str) -> Iterator[None]:
    """Attribute the enclosed block's wall time to stage ``name``.

    Free (a single ContextVar read) when no collector is active.
    """
    profile = _ACTIVE.get()
    if profile is None:
        yield
        return
    start = time.perf_counter()
    try:
        yield
    finally:
        profile.add(name, time.perf_counter() - start)
