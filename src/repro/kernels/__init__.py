"""Hot-path proving kernels (system S26 in DESIGN.md).

The paper's discipline is per-stage kernels sized to measured stage
costs; this package is the functional prover's analogue.  Three pieces:

* **Batch primitives** — whole-vector field kernels
  (:mod:`~repro.kernels.field_kernels`: sum-check folds, the eq-table
  doubling kernel, coefficient-sparse row combination, encoder SpMV,
  specialized degree-2/3 round polynomials) and SWAR-batched SHA-256
  (:mod:`~repro.kernels.hash_kernels`: whole Merkle layers compressed
  per call).  Every kernel has a naive reference twin selected by
  :func:`use_reference_kernels`, and the fast path is byte-identical.
* **Setup memoization** — :class:`SpecCache` keys built provers by
  circuit digest + PCS knobs so the batch workload ("one circuit, many
  witnesses") pays derivation once per process, and
  :func:`cached_encoder` shares expander graphs across prover/verifier
  construction.
* **Stage profiling** — :func:`collect_stages`/:func:`stage` record
  per-proof wall time for commit/encode/merkle/sumcheck/open, feeding
  ``stage_timing`` trace events and the GPU cost model.
"""

from .dispatch import kernels_enabled, set_kernels_enabled, use_reference_kernels
from .field_kernels import (
    combine_rows,
    constraint_claimed_sum,
    constraint_round_cubic,
    constraint_violation,
    eq_table,
    evaluate_table,
    evaluate_table_bits,
    fold_product_tables,
    fold_table,
    pack_vector,
    product_pair_sum,
    product_round_quadratic,
    spmv,
)
from .hash_kernels import (
    SWAR_MAX_LANES,
    SWAR_MIN_LANES,
    sha256_compress_many,
    sha256_many,
)
from .profile import (
    STAGE_CHILDREN,
    STAGE_NAMES,
    StageProfile,
    collect_into,
    collect_stages,
    exclusive_stage_seconds,
    stage,
)
from .spec_cache import (
    EncoderCache,
    SpecCache,
    cached_encoder,
    default_encoder_cache,
    default_spec_cache,
    spec_cache_key,
)

__all__ = [
    # dispatch
    "kernels_enabled",
    "set_kernels_enabled",
    "use_reference_kernels",
    # field kernels
    "fold_table",
    "fold_product_tables",
    "eq_table",
    "combine_rows",
    "spmv",
    "product_round_quadratic",
    "constraint_round_cubic",
    "constraint_claimed_sum",
    "constraint_violation",
    "product_pair_sum",
    "evaluate_table",
    "evaluate_table_bits",
    "pack_vector",
    # hash kernels
    "sha256_compress_many",
    "sha256_many",
    "SWAR_MIN_LANES",
    "SWAR_MAX_LANES",
    # spec cache
    "SpecCache",
    "default_spec_cache",
    "spec_cache_key",
    "cached_encoder",
    "EncoderCache",
    "default_encoder_cache",
    # profiling
    "StageProfile",
    "collect_stages",
    "stage",
    "STAGE_NAMES",
    "STAGE_CHILDREN",
    "collect_into",
    "exclusive_stage_seconds",
]

__apidoc__ = """\
**Fast vs reference.** Every kernel dispatches on a process-global flag:
the fast form (lazy reduction, zip-slice iteration, SWAR lane packing)
runs by default; `use_reference_kernels()` switches the whole process to
the naive per-element loops the codebase used before this layer.  The
two are element-for-element identical — the golden-parity suite pins
this — so proofs serialize to the same bytes either way.  The reference
path exists for parity testing, for `benchmarks/bench_hotpath.py`'s
before/after measurement, and for bisecting a suspected kernel bug.

**SWAR SHA-256.** Merkle interior nodes need the *raw* 64-byte block
compression (no padding), which `hashlib` cannot compute — so batches of
blocks are packed one 32-bit word per 64-bit big-int lane and compressed
together; `&`/`|`/`^` act lane-parallel, masked shifts implement
rotations, and 32 guard bits absorb carries.  ~12x over the scalar loop
at 64 lanes, byte-identical output.

**SpecCache.** `default_spec_cache().get_prover(spec)` memoizes
`ProverSpec.build_prover()` by *value* (circuit digest, field modulus,
public indices, every PCS/encoder knob) — not object identity — so
pooled workers, serial backends, and repeated runtime constructions for
the same circuit reuse one prover.  LRU-bounded, thread-safe; `hits` /
`misses` counters expose effectiveness.

**Stage profiling.** Wrap a proof in `collect_stages()` to receive a
`StageProfile` with per-stage seconds (`commit` ⊃ `encode` + `merkle`,
then `sumcheck1`, `sumcheck2`, `open`).  The runtime attaches these to
`TaskRecord.stage_seconds`, aggregates them in
`RuntimeStats.stage_totals()`, and emits them as `stage_timing` trace
events on the S24 span schema.
"""
