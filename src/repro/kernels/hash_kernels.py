"""Batched SHA-256 kernels (SWAR lane packing over Python big ints).

The Merkle stage of the pipeline performs thousands of *raw* SHA-256
compressions per proof (each interior node is ``compress(left ‖ right)``,
no padding — see :func:`repro.hashing.sha256.compress_block`).  ``hashlib``
cannot compute that operation, so even the ``sha256-hw`` hasher runs the
from-scratch compression per node, one Python call at a time.

This module batches it the way the paper's per-layer GPU kernels do
(§3.1: one thread per node, whole layers per launch), using
SIMD-within-a-register on Python's arbitrary-precision ints:

* word ``j`` of each of ``k`` blocks is packed into the low 32 bits of a
  64-bit lane of a single big int (32 guard bits above each value);
* ``&``, ``|``, ``^`` act lane-parallel for free;
* rotations are two masked shifts — shifted-out bits land in a
  neighbour's *guard* zone and are cleared by the lane mask;
* additions stay in-lane because every sum of ≤5 masked terms is below
  2^35 ≪ 2^64, and ``& mask`` is exactly per-lane ``mod 2^32``;
* ``~x`` is ``mask ^ x`` (guard bits stay zero).

One 64-round pass then compresses all ``k`` blocks.  Interpreter overhead
amortizes across lanes: ~7x at 16 lanes, ~12-14x at 64+, verified
byte-identical to the scalar :func:`compress_block`.
"""

from __future__ import annotations

from typing import Dict, List, Sequence, Tuple

from ..errors import HashError
from .dispatch import kernels_enabled

# NOTE: repro.hashing.sha256 is imported lazily inside the kernels below.
# hashers.py builds its batched backends from this module, so a module-level
# import here would be circular; kernels stays an import leaf instead.

__all__ = ["sha256_compress_many", "sha256_many", "SWAR_MIN_LANES", "SWAR_MAX_LANES"]

#: Below this many blocks the scalar loop wins (packing overhead dominates).
SWAR_MIN_LANES = 4
#: Chunk width — speedup plateaus past ~64 lanes while per-int cost keeps
#: growing linearly, so wider batches are split.
SWAR_MAX_LANES = 64

# k -> (lane mask, splatted round constants, splatted initial state).
_LANE_CACHE: Dict[int, Tuple[int, Tuple[int, ...], Tuple[int, ...]]] = {}


def _splat(value: int, k: int) -> int:
    """Repeat a 32-bit constant into the low half of each of ``k`` lanes."""
    return int.from_bytes((value.to_bytes(4, "little") + b"\x00" * 4) * k, "little")


def _lane_constants(k: int) -> Tuple[int, Tuple[int, ...], Tuple[int, ...]]:
    try:
        return _LANE_CACHE[k]
    except KeyError:
        from ..hashing.sha256 import _H0, _K

        mask = int.from_bytes(b"\xff\xff\xff\xff\x00\x00\x00\x00" * k, "little")
        ksplat = tuple(_splat(c, k) for c in _K)
        h0splat = tuple(_splat(c, k) for c in _H0)
        _LANE_CACHE[k] = (mask, ksplat, h0splat)
        return _LANE_CACHE[k]


def _pack_words(blocks: Sequence[bytes], k: int) -> List[int]:
    """Pack big-endian word ``j`` of every block into lane ``b`` of int ``j``."""
    return [
        int.from_bytes(
            b"".join(blk[j : j + 4][::-1] + b"\x00\x00\x00\x00" for blk in blocks),
            "little",
        )
        for j in range(0, 64, 4)
    ]


def _compress_lanes(
    state: Sequence[int],
    blocks: Sequence[bytes],
    k: int,
    mask: int,
    ksplat: Sequence[int],
) -> List[int]:
    """One SHA-256 compression of ``k`` blocks against ``k`` packed states."""
    w = _pack_words(blocks, k)
    for i in range(16, 64):
        x = w[i - 15]
        s0 = (((x >> 7) | (x << 25)) ^ ((x >> 18) | (x << 14)) ^ (x >> 3)) & mask
        y = w[i - 2]
        s1 = (((y >> 17) | (y << 15)) ^ ((y >> 19) | (y << 13)) ^ (y >> 10)) & mask
        w.append((w[i - 16] + s0 + w[i - 7] + s1) & mask)

    a, b, c, d, e, f, g, h = state
    for i in range(64):
        s1 = (((e >> 6) | (e << 26)) ^ ((e >> 11) | (e << 21)) ^ ((e >> 25) | (e << 7))) & mask
        ch = (e & f) ^ ((mask ^ e) & g)
        temp1 = h + s1 + ch + ksplat[i] + w[i]
        s0 = (((a >> 2) | (a << 30)) ^ ((a >> 13) | (a << 19)) ^ ((a >> 22) | (a << 10))) & mask
        maj = (a & b) ^ (a & c) ^ (b & c)
        temp2 = s0 + maj
        h = g
        g = f
        f = e
        e = (d + temp1) & mask
        d = c
        c = b
        b = a
        a = (temp1 + temp2) & mask

    return [(s + r) & mask for s, r in zip(state, (a, b, c, d, e, f, g, h))]


def _unpack_digests(state: Sequence[int], k: int) -> List[bytes]:
    """Extract ``k`` 32-byte big-endian digests from eight packed registers."""
    reg_bytes = [r.to_bytes(8 * k, "little") for r in state]
    return [
        b"".join(rb[8 * b : 8 * b + 4][::-1] for rb in reg_bytes) for b in range(k)
    ]


def sha256_compress_many(blocks: Sequence[bytes]) -> List[bytes]:
    """Raw-compress many independent 64-byte blocks (batched ``compress_block``).

    Byte-identical to ``[compress_block(b) for b in blocks]``; that scalar
    loop is also the reference twin and the small-batch fallback.
    """
    from ..hashing.sha256 import compress_block

    for blk in blocks:
        if len(blk) != 64:
            raise HashError(
                f"sha256_compress_many needs 64-byte blocks, got {len(blk)}"
            )
    if not kernels_enabled() or len(blocks) < SWAR_MIN_LANES:
        return [compress_block(blk) for blk in blocks]
    out: List[bytes] = []
    for start in range(0, len(blocks), SWAR_MAX_LANES):
        chunk = blocks[start : start + SWAR_MAX_LANES]
        k = len(chunk)
        if k < SWAR_MIN_LANES:
            out.extend(compress_block(blk) for blk in chunk)
            continue
        mask, ksplat, h0splat = _lane_constants(k)
        state = _compress_lanes(h0splat, chunk, k, mask, ksplat)
        out.extend(_unpack_digests(state, k))
    return out


def sha256_many(messages: Sequence[bytes]) -> List[bytes]:
    """Full SHA-256 (with FIPS padding) over many messages, SWAR-batched.

    Messages are grouped by padded block count; within a group the packed
    state is carried across block positions, so equal-length batches (the
    Merkle-leaf case) run entirely in wide lanes.  Byte-identical to
    ``[sha256(m) for m in messages]``.
    """
    from ..hashing.sha256 import _pad, sha256

    if not kernels_enabled() or len(messages) < SWAR_MIN_LANES:
        return [sha256(m) for m in messages]
    padded = [m + _pad(len(m)) for m in messages]
    out: List[bytes] = [b""] * len(messages)
    groups: Dict[int, List[int]] = {}
    for idx, pm in enumerate(padded):
        groups.setdefault(len(pm) // 64, []).append(idx)
    for nblocks, idxs in groups.items():
        if len(idxs) < SWAR_MIN_LANES:
            for i in idxs:
                out[i] = sha256(messages[i])
            continue
        for start in range(0, len(idxs), SWAR_MAX_LANES):
            chunk = idxs[start : start + SWAR_MAX_LANES]
            k = len(chunk)
            if k < SWAR_MIN_LANES:
                for i in chunk:
                    out[i] = sha256(messages[i])
                continue
            mask, ksplat, h0splat = _lane_constants(k)
            state: Sequence[int] = h0splat
            for bpos in range(nblocks):
                layer = [padded[i][64 * bpos : 64 * bpos + 64] for i in chunk]
                state = _compress_lanes(state, layer, k, mask, ksplat)
            for i, digest in zip(chunk, _unpack_digests(state, k)):
                out[i] = digest
    return out
