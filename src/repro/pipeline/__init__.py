"""Pipeline engine (system S9 in DESIGN.md; paper §3–§4).

* Stage-graph builders for the three modules (:mod:`repro.pipeline.stages`).
* The composite fully-pipelined ZKP system of Figure 7
  (:mod:`repro.pipeline.system`).
* The schedulers themselves live in :mod:`repro.gpu.simulator`
  (:func:`run_pipelined` / :func:`run_naive`) and are re-exported here.
"""

from ..gpu.simulator import run_cpu, run_naive, run_pipelined
from .frontier import (
    FrontierPoint,
    HybridResult,
    fuse_stages,
    latency_throughput_frontier,
    run_hybrid,
)
from .multigpu import (
    MultiGpuBatchSystem,
    MultiGpuResult,
    ShardResult,
    farm_throughput,
)
from .stages import (
    BLOCK_BYTES,
    DIGEST_BYTES,
    FIELD_BYTES,
    encoder_graph,
    encoder_stage_sizes,
    gkr_graph,
    merkle_graph,
    sumcheck_graph,
)
from .timeline import (
    Occupancy,
    busy_stage_counts,
    occupancy_by_beat,
    pipeline_timeline,
    render_gantt,
    steady_state_beats,
    validate_timeline,
)
from .system import (
    BatchZkpSystem,
    COMM_BYTES_PER_GATE,
    DEFAULT_STAGE_CAPS,
    ENCODER_MACS_PER_GATE,
    HASHES_PER_GATE,
    SUMCHECK_ENTRIES_PER_GATE,
    SystemResult,
    build_module_graphs,
    zkp_system_graph,
)

__all__ = [
    "merkle_graph",
    "sumcheck_graph",
    "encoder_graph",
    "encoder_stage_sizes",
    "gkr_graph",
    "BLOCK_BYTES",
    "DIGEST_BYTES",
    "FIELD_BYTES",
    "BatchZkpSystem",
    "SystemResult",
    "build_module_graphs",
    "zkp_system_graph",
    "HASHES_PER_GATE",
    "SUMCHECK_ENTRIES_PER_GATE",
    "ENCODER_MACS_PER_GATE",
    "COMM_BYTES_PER_GATE",
    "DEFAULT_STAGE_CAPS",
    "run_pipelined",
    "run_naive",
    "run_cpu",
    "MultiGpuBatchSystem",
    "MultiGpuResult",
    "ShardResult",
    "farm_throughput",
    "fuse_stages",
    "latency_throughput_frontier",
    "FrontierPoint",
    "run_hybrid",
    "HybridResult",
    "pipeline_timeline",
    "occupancy_by_beat",
    "busy_stage_counts",
    "steady_state_beats",
    "validate_timeline",
    "render_gantt",
    "Occupancy",
]
