"""The latency–throughput frontier (the paper's stated future work).

Table 6 shows the cost of the paper's design: pipelining multiplies
per-item latency by the pipeline depth.  §6.2 closes with "exploring the
possibility of improving the throughput without losing too much latency
would be an important research direction in the future."  This module
implements two such mechanisms and maps the frontier:

* **Stage fusion** — merge adjacent stages into super-stages.  Work is
  conserved, so the steady beat (throughput) barely moves, but latency
  = depth × beat drops with the depth.  The §4 tail-merge is the special
  case of fusing only the tiny layers; here fusion is swept from
  fully-split to fully-fused (which degenerates to kernel-per-task).
* **Express lanes** — partition the thread pool: a slice runs the
  kernel-per-task discipline for latency-critical tasks while the rest
  pipelines the bulk stream.  Useful when a fraction of requests have
  deadlines (the MLaaS setting).

Both return plot-ready points; the bench prints the frontier and asserts
its shape (latency falls steeply before throughput pays).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence

from ..errors import PipelineError
from ..gpu.costs import GpuCostModel
from ..gpu.device import GpuSpec
from ..gpu.kernel import KernelStage, ModuleGraph
from ..gpu.simulator import run_naive, run_pipelined


class FusedStage(KernelStage):
    """A super-stage whose kernel runs several member stages serially.

    The crucial modelling choice: within a fused kernel the member stages
    execute back to back on the *group's* threads, so a thread idles once
    its member stage's work runs out — exactly the Figure 4a decay, but
    confined to the group.  Fusing everything therefore degenerates to the
    kernel-per-task discipline, and the latency–throughput frontier is a
    genuine trade-off rather than a free lunch.
    """

    def __init__(self, *args, members: List[KernelStage], **kwargs):
        object.__setattr__(self, "_members", list(members))
        super().__init__(*args, **kwargs)

    @property
    def members(self) -> List[KernelStage]:
        return list(self._members)

    def duration_cycles(self, threads: int) -> float:
        if threads <= 0:
            raise PipelineError(f"stage {self.name}: no threads allocated")
        return sum(m.duration_cycles(threads) for m in self._members)


def fuse_stages(graph: ModuleGraph, num_super_stages: int) -> ModuleGraph:
    """Merge adjacent stages into (at most) ``num_super_stages`` groups.

    Work, bytes and memory are conserved.  Group boundaries balance
    per-group cycles (greedy prefix partition with an exact-count
    backstop); each group becomes a :class:`FusedStage` whose duration is
    the serial sum of its members' durations on the shared threads.
    """
    stages = [s for s in graph.stages if s.work_units > 0]
    if num_super_stages < 1:
        raise PipelineError("need at least one super-stage")
    if num_super_stages >= len(stages):
        return ModuleGraph(name=graph.name, stages=stages)
    total = sum(s.total_cycles for s in stages)
    target = total / num_super_stages
    groups: List[List[KernelStage]] = [[]]
    acc = 0.0
    for idx, stage in enumerate(stages):
        remaining_stages = len(stages) - idx
        remaining_groups = num_super_stages - len(groups)
        must_split = groups[-1] and remaining_groups >= remaining_stages
        want_split = acc >= target and groups[-1] and remaining_groups > 0
        if must_split or want_split:
            groups.append([])
            acc = 0.0
        groups[-1].append(stage)
        acc += stage.total_cycles
    fused = []
    for i, group in enumerate(groups):
        work = sum(s.work_units for s in group)
        cycles = sum(s.total_cycles for s in group)
        fused.append(
            FusedStage(
                name=f"{graph.name}/fused{i}",
                work_units=work,
                cycles_per_unit=cycles / work,
                bytes_in=sum(s.bytes_in for s in group),
                bytes_out=sum(s.bytes_out for s in group),
                memory_bytes=sum(s.memory_bytes for s in group),
                unit=group[0].unit,
                members=group,
            )
        )
    return ModuleGraph(name=f"{graph.name}/fused", stages=fused)


@dataclass(frozen=True)
class FrontierPoint:
    """One (depth, latency, throughput) operating point."""

    super_stages: int
    latency_seconds: float
    throughput_per_second: float


def latency_throughput_frontier(
    device: GpuSpec,
    graph: ModuleGraph,
    depths: Optional[Sequence[int]] = None,
    batch_size: int = 64,
    costs: Optional[GpuCostModel] = None,
) -> List[FrontierPoint]:
    """Sweep stage fusion from fully split to nearly fused."""
    stages = len([s for s in graph.stages if s.work_units > 0])
    if depths is None:
        depths = sorted(
            {d for d in (stages, stages // 2, stages // 4, 4, 2, 1) if d >= 1},
            reverse=True,
        )
    points = []
    for depth in depths:
        fused = fuse_stages(graph, depth)
        res = run_pipelined(
            device, fused, batch_size, costs=costs, include_transfers=False
        )
        points.append(
            FrontierPoint(
                super_stages=len(fused.stages),
                latency_seconds=res.latency_seconds,
                throughput_per_second=res.steady_throughput_per_second,
            )
        )
    return points


@dataclass(frozen=True)
class HybridResult:
    """Outcome of an express-lane split."""

    express_fraction: float
    express_latency_seconds: float
    bulk_latency_seconds: float
    bulk_throughput_per_second: float
    express_throughput_per_second: float

    @property
    def total_throughput_per_second(self) -> float:
        return self.bulk_throughput_per_second + self.express_throughput_per_second


def run_hybrid(
    device: GpuSpec,
    graph: ModuleGraph,
    batch_size: int = 64,
    express_fraction: float = 0.25,
    costs: Optional[GpuCostModel] = None,
) -> HybridResult:
    """Split the device: an express kernel-per-task lane plus a bulk
    pipeline, each on its own thread slice.

    The express lane trades aggregate throughput for per-task latency —
    quantifying exactly the trade the paper leaves to future work.
    """
    if not 0.0 < express_fraction < 1.0:
        raise PipelineError("express fraction must be in (0, 1)")
    stages = [s for s in graph.stages if s.work_units > 0]
    express_threads = max(1, int(device.cuda_cores * express_fraction))
    bulk_threads = device.cuda_cores - express_threads
    if bulk_threads < len(stages):
        raise PipelineError("bulk slice too small for the stage count")

    # Express lane: a dedicated slice runs one task at a time, all stages
    # serially (naive discipline on a narrower device).
    import dataclasses as _dc

    express_device = _dc.replace(device, cuda_cores=express_threads)
    express = run_naive(express_device, graph, max(1, batch_size // 4), costs=costs)

    bulk = run_pipelined(
        device,
        graph,
        batch_size,
        costs=costs,
        total_threads=bulk_threads,
        include_transfers=False,
    )
    return HybridResult(
        express_fraction=express_fraction,
        express_latency_seconds=express.latency_seconds,
        bulk_latency_seconds=bulk.latency_seconds,
        bulk_throughput_per_second=bulk.steady_throughput_per_second,
        express_throughput_per_second=express.steady_throughput_per_second,
    )
