"""Stage-graph builders for the three ZKP modules (paper §3).

These translate each module's computation into the :class:`KernelStage`
lists the simulator schedules — one stage per Merkle layer (§3.1), one per
sum-check round (§3.2), and one per encoder pipeline stage (§3.3,
Figure 6).  Graphs are built analytically from the closed-form work counts
so that 2^22-scale workloads cost microseconds to construct.

Byte fields implement the dynamic load/store traffic of §3.1/§4: a task's
inputs enter at its first stage, and intermediate results stream back to
host memory as soon as the next layer is computed.

A ``max_stages`` knob merges the small tail stages into one, mirroring §4:
"Other 3 threads handle the remaining layers" — the real system does not
dedicate a kernel to each of the last single-digit-size layers.
"""

from __future__ import annotations

import math
from typing import List, Optional

from ..errors import PipelineError
from ..gpu.costs import GpuCostModel
from ..gpu.kernel import KernelStage, ModuleGraph

DIGEST_BYTES = 32
BLOCK_BYTES = 64
FIELD_BYTES = 32  # 256-bit elements, as benchmarked in the paper (§3.3)


def _merge_tail(stages: List[KernelStage], max_stages: Optional[int]) -> List[KernelStage]:
    """Merge trailing stages into one (keeps total work/bytes/memory)."""
    if max_stages is None or len(stages) <= max_stages:
        return stages
    if max_stages < 2:
        raise PipelineError("max_stages must be at least 2")
    head = stages[: max_stages - 1]
    tail = stages[max_stages - 1 :]
    merged = KernelStage(
        name=f"{tail[0].name}+tail",
        work_units=sum(s.work_units for s in tail),
        cycles_per_unit=tail[0].cycles_per_unit,
        bytes_in=sum(s.bytes_in for s in tail),
        bytes_out=sum(s.bytes_out for s in tail),
        memory_bytes=sum(s.memory_bytes for s in tail),
        unit=tail[0].unit,
    )
    return head + [merged]


def merkle_graph(
    num_blocks: int,
    costs: Optional[GpuCostModel] = None,
    max_stages: Optional[int] = None,
    name: str = "merkle",
) -> ModuleGraph:
    """Per-layer stage graph for one Merkle tree over ``num_blocks`` blocks.

    Layer 0 hashes the N data blocks into leaves (input: 64N bytes); layer
    k compresses N/2^k digests.  Each finished layer streams its digests
    back to the host (§3.1), and the resident footprint per stage is the
    stage's input layer — summing to the paper's ≈2N blocks.
    """
    if num_blocks < 2:
        raise PipelineError("a Merkle tree needs at least 2 blocks")
    costs = costs or GpuCostModel()
    stages: List[KernelStage] = []
    layer = 0
    work = num_blocks  # non-power-of-two inputs hash ceil(n/2^k) per layer
    while work >= 1:
        stages.append(
            KernelStage(
                name=f"{name}/layer{layer}",
                work_units=work,
                cycles_per_unit=costs.hash_cycles,
                bytes_in=BLOCK_BYTES * num_blocks if layer == 0 else 0,
                bytes_out=DIGEST_BYTES * work,
                memory_bytes=(BLOCK_BYTES if layer == 0 else 2 * DIGEST_BYTES)
                * work,
                unit="hash",
            )
        )
        if work == 1:
            break
        work = -(-work // 2)
        layer += 1
    return ModuleGraph(name=name, stages=_merge_tail(stages, max_stages))


def sumcheck_graph(
    num_vars: int,
    costs: Optional[GpuCostModel] = None,
    instances: int = 1,
    max_stages: Optional[int] = None,
    name: str = "sumcheck",
) -> ModuleGraph:
    """Per-round stage graph for sum-check over a 2^n table (§3.2).

    Round i updates 2^{n−i} entries (each: two reads, one multiply-add,
    one write — priced by the memory-bound effective entry cost).  The
    input table streams in at round 1; each stage's double-buffered
    working set is its read+write tables (Figure 5).

    ``instances`` scales per-round work for protocols that run many
    sum-check instances per proof (the paper's GKR-style layered proving).
    """
    if num_vars < 1:
        raise PipelineError("sum-check needs at least one variable")
    costs = costs or GpuCostModel()
    stages: List[KernelStage] = []
    table = 1 << num_vars
    for i in range(num_vars):
        # Work is counted in table-entry *reads* (the module is memory
        # bound, §3.2): round i touches all 2^{n−i} live entries.
        work = table >> i
        stages.append(
            KernelStage(
                name=f"{name}/round{i}",
                work_units=max(1, work) * instances,
                cycles_per_unit=costs.sumcheck_entry_cycles,
                bytes_in=FIELD_BYTES * table * instances if i == 0 else 0,
                bytes_out=2 * FIELD_BYTES * instances,  # the (π_i1, π_i2) pair
                # Read table + half-size write table (Figure 5's buffers).
                memory_bytes=(FIELD_BYTES * 3 * max(1, work) // 2) * instances,
                unit="entry",
            )
        )
    return ModuleGraph(name=name, stages=_merge_tail(stages, max_stages))


def encoder_stage_sizes(
    message_length: int,
    alpha: float = 0.25,
    inv_rate: int = 2,
    base_size: int = 32,
) -> List[dict]:
    """Closed-form stage sizes mirroring ``SpielmanEncoder._build``.

    Returns forward stages (message lengths), the base stage, and backward
    stages (parity lengths) in pipeline order.
    """
    if message_length < 1:
        raise PipelineError("message length must be positive")
    forward = []
    n = message_length
    while n > base_size:
        shrunk = max(1, math.ceil(alpha * n))
        parity = inv_rate * n - n - inv_rate * shrunk
        if parity <= 0:
            break
        forward.append({"n": n, "shrunk": shrunk, "parity": parity})
        n = shrunk
    out: List[dict] = []
    for k, st in enumerate(forward):
        out.append({"kind": "forward", "stage": k, "in": st["n"], "out": st["shrunk"]})
    out.append({"kind": "base", "stage": len(forward), "in": n, "out": (inv_rate - 1) * n})
    for k in range(len(forward) - 1, -1, -1):
        st = forward[k]
        out.append(
            {"kind": "backward", "stage": k, "in": st["shrunk"] * inv_rate, "out": st["parity"]}
        )
    return out


def gkr_graph(
    circuit,
    costs: Optional[GpuCostModel] = None,
    max_stages_per_layer: Optional[int] = None,
    name: str = "gkr",
) -> ModuleGraph:
    """Stage graph for a GKR proof of a :class:`~repro.gkr.LayeredCircuit`.

    Each circuit layer contributes two sum-check phases (the Libra
    two-phase prover); phase rounds map to pipeline stages exactly like
    the standalone sum-check module (§3.2), with per-round work equal to
    the live table size, plus an O(#gates) table-build stage per phase.
    This connects the GKR extension (DESIGN.md S13) to the pipeline
    scheduler (S9): a batch of GKR proofs streams through per-round
    kernels the same way the paper's sum-check module does.
    """
    costs = costs or GpuCostModel()
    stages: List[KernelStage] = []
    for i, gates in enumerate(circuit.layers):
        k_next = circuit.layer_vars(i + 1)
        table = 1 << k_next
        for phase in (1, 2):
            stages.append(
                KernelStage(
                    name=f"{name}/L{i}/p{phase}/build",
                    work_units=len(gates),
                    cycles_per_unit=costs.sumcheck_entry_cycles,
                    memory_bytes=FIELD_BYTES * 3 * table,
                    unit="entry",
                )
            )
            layer_stages: List[KernelStage] = []
            for r in range(k_next):
                layer_stages.append(
                    KernelStage(
                        name=f"{name}/L{i}/p{phase}/round{r}",
                        # Three tables (V, P1, P2) are touched per round.
                        work_units=3 * max(1, table >> r),
                        cycles_per_unit=costs.sumcheck_entry_cycles,
                        bytes_out=3 * FIELD_BYTES,
                        memory_bytes=FIELD_BYTES * 3 * max(1, table >> r),
                        unit="entry",
                    )
                )
            stages.extend(_merge_tail(layer_stages, max_stages_per_layer))
    return ModuleGraph(name=name, stages=stages)


def encoder_graph(
    message_length: int,
    costs: Optional[GpuCostModel] = None,
    row_weight: int = 8,
    alpha: float = 0.25,
    inv_rate: int = 2,
    base_size: int = 32,
    max_stages: Optional[int] = None,
    name: str = "encoder",
) -> ModuleGraph:
    """Stage graph for the two-pass pipelined encoder (§3.3, Figure 6).

    Forward stages do ``row_weight · n_k`` sparse MACs, the base stage a
    dense ``n_base × (q−1)n_base`` multiply, and backward stages
    ``row_weight · |z_k|`` MACs.  The message streams in at the first
    stage; the codeword leaves from the last.
    """
    costs = costs or GpuCostModel()
    sizes = encoder_stage_sizes(message_length, alpha, inv_rate, base_size)
    stages: List[KernelStage] = []
    for spec in sizes:
        if spec["kind"] == "base":
            work = spec["in"] * spec["out"]  # dense generator
        else:
            work = row_weight * spec["in"]
        is_first = spec is sizes[0]
        is_last = spec is sizes[-1]
        stages.append(
            KernelStage(
                name=f"{name}/{spec['kind']}{spec['stage']}",
                work_units=max(1, work),
                cycles_per_unit=costs.encoder_mac_cycles,
                bytes_in=FIELD_BYTES * message_length if is_first else 0,
                bytes_out=FIELD_BYTES * inv_rate * message_length if is_last else 0,
                memory_bytes=FIELD_BYTES * (spec["in"] + spec["out"]),
                unit="mac",
            )
        )
    return ModuleGraph(name=name, stages=_merge_tail(stages, max_stages))
