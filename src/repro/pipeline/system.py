"""The fully pipelined ZKP system (paper §4, Figure 7) on the simulator.

Composes the three module stage-graphs into one pipeline — linear-time
encoder → Merkle trees → sum-check modules — sized for a circuit with S
multiplication gates, and simulates batch proof generation under the
paper's scheduling discipline.

Workload calibration (per gate, from Table 7's "Ours" breakdown on GH200
at S = 2^20 — amortized 0.535 ms Merkle / 3.699 ms sum-check / 1.597 ms
encoder per proof):

* Merkle:    ≈ 7.2 hashes/gate  (the protocol commits the witness plus
  auxiliary polynomials: ≈ 3.6 S blocks across its segment trees).
* Sum-check: ≈ 42.3 entry-updates/gate (≈ 10.6 instances over 2S-entry
  tables — the layered, GKR-style proving of the underlying protocol).
* Encoder:   ≈ 18.3 sparse MACs/gate (≈ 1.14 S field elements encoded at
  ≈ 16 MACs/element).
* Host↔device traffic: 320 B/gate per pipeline beat (Table 9 measures
  320 MB at S = 2^20).

Note §4's V100 example quotes a 35:12:113 module ratio; Table 7's measured
GH200 breakdown gives ≈ 35:12:81 — we calibrate to the measured table.
"""

from __future__ import annotations

from dataclasses import dataclass, field as dc_field
from typing import Dict, Optional

from ..errors import PipelineError
from ..gpu.costs import GpuCostModel
from ..gpu.device import GpuSpec, get_gpu
from ..gpu.kernel import KernelStage, ModuleGraph, allocate_threads_proportional
from ..gpu.simulator import SimResult, run_pipelined
from .stages import encoder_graph, merkle_graph, sumcheck_graph

#: Calibrated per-gate workloads (see module docstring).
HASHES_PER_GATE = 7.17
SUMCHECK_ENTRIES_PER_GATE = 42.3
ENCODER_MACS_PER_GATE = 18.26
COMM_BYTES_PER_GATE = 320

#: Per-module share of the beat's host↔device traffic.
COMM_SPLIT = {"encoder": 0.115, "merkle": 0.36, "sumcheck": 0.525}

#: Per-module resident device memory, bytes per gate (≈ 150 B/gate total —
#: Table 10's 0.15 GB at S = 2^20; the 2N-blocks discipline of §3.1 keeps
#: this linear in S and far below the preloading baselines).
MEMORY_SPLIT_BYTES_PER_GATE = {"encoder": 25, "merkle": 55, "sumcheck": 70}

#: Stage-count caps per module (§4 merges the tiny tail layers: "Other 3
#: threads handle the remaining layers").
DEFAULT_STAGE_CAPS = {"encoder": 11, "merkle": 9, "sumcheck": 9}


def _rescale_bytes(
    graph: ModuleGraph, bytes_in_total: int, bytes_out_total: int
) -> ModuleGraph:
    """Rescale a graph's byte traffic to calibrated per-module totals."""
    cur_in = graph.total_bytes_in() or 1
    cur_out = graph.total_bytes_out() or 1
    stages = [
        KernelStage(
            name=s.name,
            work_units=s.work_units,
            cycles_per_unit=s.cycles_per_unit,
            bytes_in=int(s.bytes_in * bytes_in_total / cur_in),
            bytes_out=int(s.bytes_out * bytes_out_total / cur_out),
            memory_bytes=s.memory_bytes,
            unit=s.unit,
        )
        for s in graph.stages
    ]
    return ModuleGraph(name=graph.name, stages=stages)


def _rescale_memory(graph: ModuleGraph, memory_total: int) -> ModuleGraph:
    cur = graph.peak_memory_bytes() or 1
    stages = [
        KernelStage(
            name=s.name,
            work_units=s.work_units,
            cycles_per_unit=s.cycles_per_unit,
            bytes_in=s.bytes_in,
            bytes_out=s.bytes_out,
            memory_bytes=int(s.memory_bytes * memory_total / cur),
            unit=s.unit,
        )
        for s in graph.stages
    ]
    return ModuleGraph(name=graph.name, stages=stages)


def _next_pow2(n: int) -> int:
    return 1 << max(1, (int(n) - 1).bit_length())


def build_module_graphs(
    scale: int,
    costs: Optional[GpuCostModel] = None,
    stage_caps: Optional[Dict[str, int]] = None,
) -> Dict[str, ModuleGraph]:
    """The three calibrated module graphs for a circuit of ``scale`` gates."""
    if scale < 1024:
        raise PipelineError("system workloads start at S >= 1024 gates")
    costs = costs or GpuCostModel()
    caps = dict(DEFAULT_STAGE_CAPS)
    if stage_caps:
        caps.update(stage_caps)

    # Encoder: 1.14·S elements at ~16 MACs/element.
    n_encode = int(ENCODER_MACS_PER_GATE / 16.0 * scale)
    enc = encoder_graph(n_encode, costs, max_stages=caps["encoder"])

    # Merkle: trees over ≈ 3.6·S blocks (half the hash count is leaves).
    n_blocks = int(HASHES_PER_GATE / 2.0 * scale)
    mer = merkle_graph(n_blocks, costs, max_stages=caps["merkle"])

    # Sum-check: instances over 2S-entry tables to hit the entry budget.
    table_vars = max(1, (_next_pow2(2 * scale)).bit_length() - 1)
    # One instance reads Σ_i 2^{n−i} ≈ 2·table entries across its rounds.
    per_instance_entries = 2 * (1 << table_vars)
    instances = max(1, round(SUMCHECK_ENTRIES_PER_GATE * scale / per_instance_entries))
    sc = sumcheck_graph(
        table_vars, costs, instances=instances, max_stages=caps["sumcheck"]
    )

    # Calibrated traffic and memory.
    comm_total = COMM_BYTES_PER_GATE * scale
    enc = _rescale_bytes(enc, int(comm_total * COMM_SPLIT["encoder"]), 0)
    mer = _rescale_bytes(mer, 0, int(comm_total * COMM_SPLIT["merkle"]))
    sc = _rescale_bytes(sc, int(comm_total * COMM_SPLIT["sumcheck"]), 0)
    enc = _rescale_memory(enc, MEMORY_SPLIT_BYTES_PER_GATE["encoder"] * scale)
    mer = _rescale_memory(mer, MEMORY_SPLIT_BYTES_PER_GATE["merkle"] * scale)
    sc = _rescale_memory(sc, MEMORY_SPLIT_BYTES_PER_GATE["sumcheck"] * scale)
    return {"encoder": enc, "merkle": mer, "sumcheck": sc}


def zkp_system_graph(
    scale: int,
    costs: Optional[GpuCostModel] = None,
    stage_caps: Optional[Dict[str, int]] = None,
) -> ModuleGraph:
    """The Figure 7 composite: encoder → Merkle → sum-check stages."""
    graphs = build_module_graphs(scale, costs, stage_caps)
    stages = (
        graphs["encoder"].stages + graphs["merkle"].stages + graphs["sumcheck"].stages
    )
    return ModuleGraph(name=f"zkp-system/S={scale}", stages=stages)


@dataclass
class SystemResult:
    """Batch simulation outcome with the Table 7 per-module breakdown."""

    sim: SimResult
    scale: int
    module_amortized_seconds: Dict[str, float] = dc_field(default_factory=dict)

    @property
    def amortized_seconds(self) -> float:
        return self.sim.amortized_seconds

    @property
    def throughput_per_second(self) -> float:
        return self.sim.throughput_per_second

    @property
    def latency_seconds(self) -> float:
        return self.sim.latency_seconds

    @property
    def memory_high_water_gb(self) -> float:
        return self.sim.memory_high_water_bytes / (1 << 30)


class BatchZkpSystem:
    """The fully pipelined BatchZK system on one simulated device.

    >>> system = BatchZkpSystem("GH200", scale=1 << 20)
    >>> result = system.simulate(batch_size=256)
    >>> result.amortized_seconds > 0
    True
    """

    def __init__(
        self,
        device: str | GpuSpec,
        scale: int,
        costs: Optional[GpuCostModel] = None,
        total_threads: Optional[int] = None,
        stage_caps: Optional[Dict[str, int]] = None,
    ):
        self.device = device if isinstance(device, GpuSpec) else get_gpu(device)
        self.scale = scale
        self.costs = costs or GpuCostModel()
        self.total_threads = total_threads or self.device.cuda_cores
        self.module_graphs = build_module_graphs(scale, self.costs, stage_caps)
        self.graph = ModuleGraph(
            name=f"zkp-system/S={scale}",
            stages=self.module_graphs["encoder"].stages
            + self.module_graphs["merkle"].stages
            + self.module_graphs["sumcheck"].stages,
        )

    def thread_allocation(self) -> Dict[str, int]:
        """§4's proportional module-level thread split (the 35:12:113 rule)."""
        alloc = allocate_threads_proportional(self.graph.stages, self.total_threads)
        out: Dict[str, int] = {}
        offset = 0
        for name in ("encoder", "merkle", "sumcheck"):
            count = len(self.module_graphs[name].stages)
            out[name] = sum(alloc[offset : offset + count])
            offset += count
        return out

    def simulate(
        self, batch_size: int = 256, multi_stream: bool = True
    ) -> SystemResult:
        sim = run_pipelined(
            self.device,
            self.graph,
            batch_size,
            costs=self.costs,
            total_threads=self.total_threads,
            multi_stream=multi_stream,
        )
        # Per-module amortized time: the module's wall-clock share of one
        # beat (its cycles spread over the full thread pool).
        breakdown: Dict[str, float] = {}
        for name, graph in self.module_graphs.items():
            wall_cycles = graph.total_work_cycles() / self.total_threads
            breakdown[name] = self.device.cycles_to_seconds(wall_cycles) * (
                1.0 + self.costs.pipeline_sync_fraction
            )
        return SystemResult(
            sim=sim, scale=self.scale, module_amortized_seconds=breakdown
        )
