"""Explicit pipeline timelines: who computes what, each beat.

The analytic scheduler (:func:`repro.gpu.simulator.run_pipelined`) reports
aggregates; this module materializes the underlying schedule — the
(beat, stage, task) occupancy grid of Figure 4b — so users can render
Gantt charts and tests can check the scheduling invariants directly:

* every task visits every stage exactly once, in stage order;
* a task advances exactly one stage per beat (no skips, no stalls);
* each stage hosts at most one task per beat;
* steady state (all stages busy) spans ``batch − depth + 1`` beats.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterator, List, Tuple

from ..errors import PipelineError


@dataclass(frozen=True)
class Occupancy:
    """One cell of the schedule: task ``task`` in stage ``stage`` at beat
    ``beat``."""

    beat: int
    stage: int
    task: int


def pipeline_timeline(num_stages: int, batch_size: int) -> Iterator[Occupancy]:
    """Yield the full occupancy grid of a linear pipeline.

    Task ``t`` occupies stage ``s`` during beat ``t + s`` — the paper's
    "at the end of each cycle, all ongoing tasks flow to their next
    stage" (§4).
    """
    if num_stages < 1:
        raise PipelineError("need at least one stage")
    if batch_size < 1:
        raise PipelineError("need at least one task")
    for beat in range(batch_size + num_stages - 1):
        for stage in range(num_stages):
            task = beat - stage
            if 0 <= task < batch_size:
                yield Occupancy(beat=beat, stage=stage, task=task)


def occupancy_by_beat(
    num_stages: int, batch_size: int
) -> List[List[Tuple[int, int]]]:
    """Per-beat list of (stage, task) pairs — Gantt-ready."""
    total_beats = batch_size + num_stages - 1
    grid: List[List[Tuple[int, int]]] = [[] for _ in range(total_beats)]
    for occ in pipeline_timeline(num_stages, batch_size):
        grid[occ.beat].append((occ.stage, occ.task))
    return grid


def busy_stage_counts(num_stages: int, batch_size: int) -> List[int]:
    """Number of busy stages per beat: the ramp/steady/drain profile."""
    return [len(cells) for cells in occupancy_by_beat(num_stages, batch_size)]


def steady_state_beats(num_stages: int, batch_size: int) -> int:
    """Beats with every stage busy: max(0, batch − depth + 1)."""
    return max(0, batch_size - num_stages + 1)


def validate_timeline(num_stages: int, batch_size: int) -> Dict[str, bool]:
    """Check every scheduling invariant; returns a named-checks dict.

    Used by the test suite and available to users as an executable
    specification of the pipeline discipline.
    """
    visits: Dict[int, List[Tuple[int, int]]] = {t: [] for t in range(batch_size)}
    per_beat_stage: Dict[Tuple[int, int], int] = {}
    for occ in pipeline_timeline(num_stages, batch_size):
        visits[occ.task].append((occ.beat, occ.stage))
        key = (occ.beat, occ.stage)
        if key in per_beat_stage:
            return {"stage_exclusive": False}
        per_beat_stage[key] = occ.task

    each_task_all_stages = all(
        sorted(s for _, s in v) == list(range(num_stages))
        for v in visits.values()
    )
    one_stage_per_beat = all(
        [b for b, _ in sorted(v)] == list(range(v[0][0], v[0][0] + num_stages))
        for v in visits.values()
        if v
    )
    in_order = all(
        [s for _, s in sorted(v)] == list(range(num_stages))
        for v in visits.values()
    )
    counts = busy_stage_counts(num_stages, batch_size)
    steady = steady_state_beats(num_stages, batch_size)
    steady_ok = sum(1 for c in counts if c == min(num_stages, batch_size)) >= steady

    return {
        "stage_exclusive": True,
        "each_task_all_stages": each_task_all_stages,
        "one_stage_per_beat": one_stage_per_beat,
        "stages_in_order": in_order,
        "steady_state_length": steady_ok,
    }


def render_gantt(num_stages: int, batch_size: int, max_width: int = 70) -> str:
    """ASCII Gantt chart of the pipeline (stages as rows, beats as cols)."""
    total_beats = batch_size + num_stages - 1
    if total_beats > max_width:
        raise PipelineError(
            f"{total_beats} beats exceed max_width={max_width}; "
            f"render a smaller batch"
        )
    glyphs = "0123456789abcdefghijklmnopqrstuvwxyz"
    rows = []
    for stage in range(num_stages):
        cells = []
        for beat in range(total_beats):
            task = beat - stage
            if 0 <= task < batch_size:
                cells.append(glyphs[task % len(glyphs)])
            else:
                cells.append("·")
        rows.append(f"stage {stage:2d} |{''.join(cells)}|")
    return "\n".join(rows)
