"""Multi-GPU batch scaling (extension; cf. the multi-GPU MSM systems the
paper cites [29] and its CPU-cluster relatives [34, 58]).

BatchZK's pipeline fills one device; a proving farm runs one pipeline per
device and shards the task stream across them.  Because tasks are
independent, sharding is embarrassingly parallel — the interesting part
is *proportional* sharding across heterogeneous devices and the resulting
efficiency accounting, both implemented here.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Union

from ..errors import PipelineError
from ..execution.sharding import largest_remainder_shares
from ..gpu.costs import GpuCostModel
from ..gpu.device import GpuSpec
from .system import BatchZkpSystem, SystemResult


@dataclass
class ShardResult:
    """One device's share of the batch."""

    device_name: str
    tasks: int
    result: Optional[SystemResult]
    #: The device's steady-state throughput (proofs/s), recorded even for
    #: idle shards so efficiency accounting can charge unused capacity.
    steady_rate: float = 0.0


@dataclass
class MultiGpuResult:
    """Aggregate outcome of a multi-device batch run."""

    shards: List[ShardResult]
    total_seconds: float
    batch_size: int

    @property
    def throughput_per_second(self) -> float:
        if self.total_seconds <= 0:
            return 0.0
        return self.batch_size / self.total_seconds

    @property
    def ideal_throughput_per_second(self) -> float:
        """Sum of every device's steady-state throughput.

        Devices that received zero tasks still contribute their steady
        rate: an idle GPU is paid-for capacity, and skipping it would
        overstate :attr:`scaling_efficiency` exactly when shard rounding
        idles a device.
        """
        if any(s.steady_rate > 0 for s in self.shards):
            return sum(s.steady_rate for s in self.shards)
        # Backward compatibility for hand-built results without rates.
        return sum(
            s.result.sim.steady_throughput_per_second
            for s in self.shards
            if s.result is not None
        )

    @property
    def scaling_efficiency(self) -> float:
        """Achieved aggregate throughput over the ideal sum (≤ 1; lost to
        pipeline fill/drain, shard rounding, and idled devices)."""
        ideal = self.ideal_throughput_per_second
        if ideal <= 0:
            return 0.0
        return min(1.0, self.throughput_per_second / ideal)

    def tasks_by_device(self) -> Dict[str, int]:
        return {s.device_name: s.tasks for s in self.shards}


class MultiGpuBatchSystem:
    """Shards a proof batch across several (possibly heterogeneous) GPUs.

    >>> farm = MultiGpuBatchSystem(["V100", "A100"], scale=1 << 16)
    >>> res = farm.simulate(batch_size=128)
    >>> res.batch_size
    128
    """

    def __init__(
        self,
        devices: Sequence[Union[str, GpuSpec]],
        scale: int,
        costs: Optional[GpuCostModel] = None,
    ):
        if not devices:
            raise PipelineError("need at least one device")
        self.costs = costs or GpuCostModel()
        self.systems: List[BatchZkpSystem] = [
            BatchZkpSystem(dev, scale=scale, costs=self.costs) for dev in devices
        ]
        self.scale = scale
        self._rates_cache: Optional[List[float]] = None

    def _device_rates(self, batch_probe: int = 64) -> List[float]:
        """Steady-state throughput of each device's pipeline.

        Rates depend only on (device, scale, costs) — all fixed at
        construction — so the probe simulation runs once per device and
        the result is cached for every later ``shard()``/``simulate()``.
        """
        if self._rates_cache is None:
            self._rates_cache = [
                system.simulate(
                    batch_size=batch_probe
                ).sim.steady_throughput_per_second
                for system in self.systems
            ]
        return self._rates_cache

    def device_rates(self) -> List[float]:
        """Public copy of the cached per-device steady rates (proofs/s)."""
        return list(self._device_rates())

    def shard(self, batch_size: int) -> List[int]:
        """Split a batch proportionally to device throughput.

        Largest-remainder rounding via the shared
        :func:`~repro.execution.sharding.largest_remainder_shares` (the
        same arithmetic the functional
        :class:`~repro.execution.ShardedBackend` uses): shares always sum
        to ``batch_size``, no device lands more than one task above its
        exact proportion, and an all-zero rate vector (degenerate cost
        model) falls back to an even split.
        """
        if batch_size < 1:
            raise PipelineError("batch_size must be positive")
        return largest_remainder_shares(batch_size, self._device_rates())

    def simulate(
        self, batch_size: int, multi_stream: bool = True
    ) -> MultiGpuResult:
        """Run every shard; wall time is the slowest device's shard time."""
        shares = self.shard(batch_size)
        rates = self._device_rates()
        shards: List[ShardResult] = []
        slowest = 0.0
        for system, tasks, rate in zip(self.systems, shares, rates):
            if tasks == 0:
                shards.append(
                    ShardResult(
                        device_name=system.device.name,
                        tasks=0,
                        result=None,
                        steady_rate=rate,
                    )
                )
                continue
            result = system.simulate(batch_size=tasks, multi_stream=multi_stream)
            slowest = max(slowest, result.sim.total_seconds)
            shards.append(
                ShardResult(
                    device_name=system.device.name,
                    tasks=tasks,
                    result=result,
                    steady_rate=rate,
                )
            )
        return MultiGpuResult(
            shards=shards, total_seconds=slowest, batch_size=batch_size
        )


def farm_throughput(
    device_names: Sequence[str], scale: int, batch_size: int = 512
) -> float:
    """Convenience: aggregate proofs/second of a named device farm."""
    farm = MultiGpuBatchSystem(list(device_names), scale=scale)
    return farm.simulate(batch_size=batch_size).throughput_per_second
