"""Multi-GPU batch scaling (extension; cf. the multi-GPU MSM systems the
paper cites [29] and its CPU-cluster relatives [34, 58]).

BatchZK's pipeline fills one device; a proving farm runs one pipeline per
device and shards the task stream across them.  Because tasks are
independent, sharding is embarrassingly parallel — the interesting part
is *proportional* sharding across heterogeneous devices and the resulting
efficiency accounting, both implemented here.
"""

from __future__ import annotations

from dataclasses import dataclass, field as dc_field
from typing import Dict, List, Optional, Sequence, Union

from ..errors import PipelineError
from ..gpu.costs import GpuCostModel
from ..gpu.device import GpuSpec, get_gpu
from .system import BatchZkpSystem, SystemResult


@dataclass
class ShardResult:
    """One device's share of the batch."""

    device_name: str
    tasks: int
    result: Optional[SystemResult]


@dataclass
class MultiGpuResult:
    """Aggregate outcome of a multi-device batch run."""

    shards: List[ShardResult]
    total_seconds: float
    batch_size: int

    @property
    def throughput_per_second(self) -> float:
        if self.total_seconds <= 0:
            return 0.0
        return self.batch_size / self.total_seconds

    @property
    def ideal_throughput_per_second(self) -> float:
        """Sum of every device's steady-state throughput."""
        return sum(
            s.result.sim.steady_throughput_per_second
            for s in self.shards
            if s.result is not None
        )

    @property
    def scaling_efficiency(self) -> float:
        """Achieved aggregate throughput over the ideal sum (≤ 1; lost to
        pipeline fill/drain and shard rounding)."""
        ideal = self.ideal_throughput_per_second
        if ideal <= 0:
            return 0.0
        return min(1.0, self.throughput_per_second / ideal)

    def tasks_by_device(self) -> Dict[str, int]:
        return {s.device_name: s.tasks for s in self.shards}


class MultiGpuBatchSystem:
    """Shards a proof batch across several (possibly heterogeneous) GPUs.

    >>> farm = MultiGpuBatchSystem(["V100", "A100"], scale=1 << 16)
    >>> res = farm.simulate(batch_size=128)
    >>> res.batch_size
    128
    """

    def __init__(
        self,
        devices: Sequence[Union[str, GpuSpec]],
        scale: int,
        costs: Optional[GpuCostModel] = None,
    ):
        if not devices:
            raise PipelineError("need at least one device")
        self.costs = costs or GpuCostModel()
        self.systems: List[BatchZkpSystem] = [
            BatchZkpSystem(dev, scale=scale, costs=self.costs) for dev in devices
        ]
        self.scale = scale

    def _device_rates(self, batch_probe: int = 64) -> List[float]:
        """Steady-state throughput of each device's pipeline."""
        return [
            system.simulate(batch_size=batch_probe).sim.steady_throughput_per_second
            for system in self.systems
        ]

    def shard(self, batch_size: int) -> List[int]:
        """Split a batch proportionally to device throughput.

        Largest-remainder rounding; every extra task goes to the fastest
        devices so the slowest shard (the critical path) stays short.
        """
        if batch_size < 1:
            raise PipelineError("batch_size must be positive")
        rates = self._device_rates()
        total_rate = sum(rates)
        raw = [batch_size * r / total_rate for r in rates]
        shares = [int(x) for x in raw]
        remainder = batch_size - sum(shares)
        order = sorted(
            range(len(raw)), key=lambda i: raw[i] - int(raw[i]), reverse=True
        )
        for i in range(remainder):
            shares[order[i % len(order)]] += 1
        return shares

    def simulate(
        self, batch_size: int, multi_stream: bool = True
    ) -> MultiGpuResult:
        """Run every shard; wall time is the slowest device's shard time."""
        shares = self.shard(batch_size)
        shards: List[ShardResult] = []
        slowest = 0.0
        for system, tasks in zip(self.systems, shares):
            if tasks == 0:
                shards.append(
                    ShardResult(
                        device_name=system.device.name, tasks=0, result=None
                    )
                )
                continue
            result = system.simulate(batch_size=tasks, multi_stream=multi_stream)
            slowest = max(slowest, result.sim.total_seconds)
            shards.append(
                ShardResult(
                    device_name=system.device.name, tasks=tasks, result=result
                )
            )
        return MultiGpuResult(
            shards=shards, total_seconds=slowest, batch_size=batch_size
        )


def farm_throughput(
    device_names: Sequence[str], scale: int, batch_size: int = 512
) -> float:
    """Convenience: aggregate proofs/second of a named device farm."""
    farm = MultiGpuBatchSystem(list(device_names), scale=scale)
    return farm.simulate(batch_size=batch_size).throughput_per_second
