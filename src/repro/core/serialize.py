"""Binary serialization for SNARK proofs.

Proofs in the paper's second protocol category travel over networks
(zkBridge fees, MLaaS responses) and "reach several MB" (§2.1), so a
production system needs a wire format.  This module provides a compact
tag-free binary encoding with explicit length prefixes:

* little-endian ``u32``/``u64`` integers for counts and indices,
* fixed-width field elements (``field.byte_length`` bytes each),
* a 4-byte magic + version header so stale blobs fail loudly.

``deserialize_proof`` needs the verifier's public context (the field and
PCS parameters) — the proof blob carries only prover messages, never
parameters, so a malicious blob cannot redefine the commitment scheme.
"""

from __future__ import annotations

import struct
from typing import List, Sequence

from ..commitment.brakedown import ColumnOpening, Commitment, EvalProof, PcsParams
from ..errors import ProofError
from ..field.prime_field import PrimeField
from ..merkle.proof import MerklePath
from ..sumcheck.noninteractive import SumcheckProof
from .proof import PublicBinding, SnarkProof

MAGIC = b"RPZK"
VERSION = 1


class ByteWriter:
    """Append-only binary writer."""

    def __init__(self) -> None:
        self._parts: List[bytes] = []

    def u32(self, value: int) -> None:
        self._parts.append(struct.pack("<I", value))

    def u64(self, value: int) -> None:
        self._parts.append(struct.pack("<Q", value))

    def raw(self, data: bytes) -> None:
        self._parts.append(data)

    def blob(self, data: bytes) -> None:
        self.u32(len(data))
        self.raw(data)

    def field_element(self, field: PrimeField, value: int) -> None:
        self.raw(field.to_bytes(value))

    def field_vector(self, field: PrimeField, values: Sequence[int]) -> None:
        self.u32(len(values))
        for v in values:
            self.field_element(field, v)

    def getvalue(self) -> bytes:
        return b"".join(self._parts)


class ByteReader:
    """Bounds-checked binary reader."""

    def __init__(self, data: bytes) -> None:
        self._data = data
        self._pos = 0

    def _take(self, n: int) -> bytes:
        if self._pos + n > len(self._data):
            raise ProofError(
                f"truncated proof: need {n} bytes at offset {self._pos}"
            )
        out = self._data[self._pos : self._pos + n]
        self._pos += n
        return out

    def u32(self) -> int:
        return struct.unpack("<I", self._take(4))[0]

    def u64(self) -> int:
        return struct.unpack("<Q", self._take(8))[0]

    def raw(self, n: int) -> bytes:
        return self._take(n)

    def blob(self) -> bytes:
        return self.raw(self.u32())

    def field_element(self, field: PrimeField) -> int:
        return field.from_bytes(self.raw(field.byte_length))

    def field_vector(self, field: PrimeField) -> List[int]:
        n = self.u32()
        if n > 1 << 28:
            raise ProofError(f"implausible vector length {n}")
        return [self.field_element(field) for _ in range(n)]

    def expect_end(self) -> None:
        if self._pos != len(self._data):
            raise ProofError(
                f"{len(self._data) - self._pos} trailing bytes in proof"
            )


# -- component codecs ----------------------------------------------------------


def _write_sumcheck(w: ByteWriter, field: PrimeField, sc: SumcheckProof) -> None:
    w.field_element(field, sc.claimed_sum)
    w.u32(sc.degree)
    w.field_element(field, sc.final_value)
    w.u32(len(sc.round_polys))
    for row in sc.round_polys:
        w.field_vector(field, row)


def _read_sumcheck(r: ByteReader, field: PrimeField) -> SumcheckProof:
    claimed = r.field_element(field)
    degree = r.u32()
    final = r.field_element(field)
    rounds = r.u32()
    if rounds > 1 << 20:
        raise ProofError(f"implausible round count {rounds}")
    round_polys = [r.field_vector(field) for _ in range(rounds)]
    return SumcheckProof(
        claimed_sum=claimed,
        round_polys=round_polys,
        degree=degree,
        final_value=final,
    )


def _write_merkle_path(w: ByteWriter, path: MerklePath) -> None:
    w.u64(path.index)
    w.raw(path.leaf)
    w.u32(len(path.siblings))
    for s in path.siblings:
        w.raw(s)


def _read_merkle_path(r: ByteReader) -> MerklePath:
    index = r.u64()
    leaf = r.raw(32)
    n = r.u32()
    if n > 64:
        raise ProofError(f"implausible Merkle depth {n}")
    siblings = [r.raw(32) for _ in range(n)]
    return MerklePath(index=index, leaf=leaf, siblings=siblings)


def _write_multiproof(w: ByteWriter, mp) -> None:
    w.u32(len(mp.indices))
    for idx in mp.indices:
        w.u64(idx)
    for leaf in mp.leaves:
        w.raw(leaf)
    w.u32(len(mp.nodes))
    for node in mp.nodes:
        w.raw(node)
    w.u32(mp.depth)


def _read_multiproof(r: ByteReader):
    from ..merkle.multiproof import MerkleMultiProof

    n = r.u32()
    if n > 1 << 16:
        raise ProofError(f"implausible multiproof leaf count {n}")
    indices = tuple(r.u64() for _ in range(n))
    leaves = tuple(r.raw(32) for _ in range(n))
    num_nodes = r.u32()
    if num_nodes > 1 << 20:
        raise ProofError(f"implausible multiproof node count {num_nodes}")
    nodes = tuple(r.raw(32) for _ in range(num_nodes))
    depth = r.u32()
    if depth > 64:
        raise ProofError(f"implausible multiproof depth {depth}")
    return MerkleMultiProof(indices=indices, leaves=leaves, nodes=nodes, depth=depth)


def _write_eval_proof(w: ByteWriter, field: PrimeField, ep: EvalProof) -> None:
    w.field_vector(field, ep.proximity_row)
    w.field_vector(field, ep.evaluation_row)
    w.u32(1 if ep.multiproof is not None else 0)
    w.u32(len(ep.columns))
    for col in ep.columns:
        w.u64(col.index)
        w.field_vector(field, col.values)
        if ep.multiproof is None:
            if col.path is None:
                raise ProofError("uncompressed opening misses a Merkle path")
            _write_merkle_path(w, col.path)
    if ep.multiproof is not None:
        _write_multiproof(w, ep.multiproof)


def _read_eval_proof(r: ByteReader, field: PrimeField) -> EvalProof:
    proximity = r.field_vector(field)
    evaluation = r.field_vector(field)
    mode = r.u32()
    if mode not in (0, 1):
        raise ProofError(f"unknown opening mode {mode}")
    compressed = mode == 1
    ncols = r.u32()
    if ncols > 1 << 16:
        raise ProofError(f"implausible column count {ncols}")
    columns = []
    for _ in range(ncols):
        index = r.u64()
        values = r.field_vector(field)
        path = None if compressed else _read_merkle_path(r)
        columns.append(ColumnOpening(index=index, values=values, path=path))
    multiproof = _read_multiproof(r) if compressed else None
    return EvalProof(
        proximity_row=proximity,
        evaluation_row=evaluation,
        columns=columns,
        multiproof=multiproof,
    )


# -- public API ---------------------------------------------------------------------


def serialize_proof(proof: SnarkProof, field: PrimeField) -> bytes:
    """Encode a :class:`SnarkProof` to bytes."""
    w = ByteWriter()
    w.raw(MAGIC)
    w.u32(VERSION)
    w.raw(proof.commitment.root)
    _write_sumcheck(w, field, proof.constraint_sumcheck)
    w.field_element(field, proof.va)
    w.field_element(field, proof.vb)
    w.field_element(field, proof.vc)
    _write_sumcheck(w, field, proof.witness_sumcheck)
    w.field_element(field, proof.vz)
    _write_eval_proof(w, field, proof.witness_opening)
    w.u32(len(proof.public_bindings))
    for binding in proof.public_bindings:
        w.u64(binding.var_index)
        w.field_element(field, binding.value)
        _write_eval_proof(w, field, binding.opening)
    return w.getvalue()


def serialize_proof_bundle(
    proofs: Sequence[SnarkProof], field: PrimeField
) -> bytes:
    """Encode a batch of proofs into one length-prefixed blob.

    The natural wire unit of the paper's batch system: the service ships
    its per-cycle proof output as a single message.
    """
    w = ByteWriter()
    w.raw(MAGIC)
    w.u32(VERSION)
    w.u32(len(proofs))
    for proof in proofs:
        w.blob(serialize_proof(proof, field))
    return w.getvalue()


def deserialize_proof_bundle(
    data: bytes, field: PrimeField, params: PcsParams
) -> List[SnarkProof]:
    """Decode a bundle produced by :func:`serialize_proof_bundle`."""
    r = ByteReader(data)
    if r.raw(4) != MAGIC:
        raise ProofError("bad magic: not a repro proof bundle")
    version = r.u32()
    if version != VERSION:
        raise ProofError(f"unsupported bundle version {version}")
    count = r.u32()
    if count > 1 << 20:
        raise ProofError(f"implausible bundle size {count}")
    proofs = [deserialize_proof(r.blob(), field, params) for _ in range(count)]
    r.expect_end()
    return proofs


def deserialize_proof(
    data: bytes, field: PrimeField, params: PcsParams
) -> SnarkProof:
    """Decode a proof blob against the verifier's public parameters.

    Raises :class:`~repro.errors.ProofError` on any malformed input.
    """
    r = ByteReader(data)
    if r.raw(4) != MAGIC:
        raise ProofError("bad magic: not a repro proof blob")
    version = r.u32()
    if version != VERSION:
        raise ProofError(f"unsupported proof version {version}")
    root = r.raw(32)
    constraint_sc = _read_sumcheck(r, field)
    va = r.field_element(field)
    vb = r.field_element(field)
    vc = r.field_element(field)
    witness_sc = _read_sumcheck(r, field)
    vz = r.field_element(field)
    opening = _read_eval_proof(r, field)
    nbind = r.u32()
    if nbind > 1 << 16:
        raise ProofError(f"implausible binding count {nbind}")
    bindings = []
    for _ in range(nbind):
        idx = r.u64()
        value = r.field_element(field)
        bindings.append(
            PublicBinding(
                var_index=idx, value=value, opening=_read_eval_proof(r, field)
            )
        )
    r.expect_end()
    return SnarkProof(
        commitment=Commitment(root=root, params=params),
        constraint_sumcheck=constraint_sc,
        va=va,
        vb=vb,
        vc=vc,
        witness_sumcheck=witness_sc,
        vz=vz,
        witness_opening=opening,
        public_bindings=bindings,
    )
