"""R1CS gadget library: the standard building blocks over CircuitBuilder.

The verifiable-ML gate accounting charges ``RESCALE_BITS`` multiplication
gates per activation for range proofs and comparisons (paper §5's cited
zkCNN/ZENO compilation).  This module implements those gadgets for real:

* :func:`to_bits` / :func:`from_bits` — constrained binary decomposition
  (the range proof: n boolean constraints + 1 recomposition).
* :func:`is_zero` — zero test with an inverse witness.
* :func:`mux` — conditional selection.
* :func:`less_than` — unsigned comparison via decomposition of the
  difference.
* :func:`relu` / :func:`abs_value` — the signed non-linearities the CNN
  circuits need, built on an offset decomposition.

Signed convention: a wire "is" a signed integer ``v`` with
``|v| < 2^{bits-1}``, embedded in the field as ``v mod p``.  Gadgets that
need signs shift by ``2^{bits-1}`` first, so the range proof also enforces
the magnitude bound — exactly why each activation costs ~``bits`` gates.
"""

from __future__ import annotations

from typing import List, Tuple

from ..errors import CircuitError
from .circuit import CircuitBuilder, Wire


def to_bits(cb: CircuitBuilder, wire: Wire, bits: int) -> List[Wire]:
    """Decompose ``wire`` into ``bits`` constrained boolean wires (LSB
    first) and enforce ``Σ b_i·2^i == wire``.

    The witness value must already lie in ``[0, 2^bits)`` — otherwise the
    builder raises (an honest prover would have no valid assignment).
    Cost: ``bits`` multiplication gates (the booleanity checks).
    """
    if bits < 1:
        raise CircuitError("need at least one bit")
    value = cb.wire_value(wire)
    if value >= (1 << bits):
        raise CircuitError(
            f"value {value} does not fit in {bits} bits (range violation)"
        )
    bit_wires: List[Wire] = []
    for i in range(bits):
        b = cb.private_input((value >> i) & 1)
        cb.assert_boolean(b)
        bit_wires.append(b)
    recomposed = cb.linear_combination(
        [(b, 1 << i) for i, b in enumerate(bit_wires)]
    )
    cb.assert_equal(recomposed, wire)
    return bit_wires


def from_bits(cb: CircuitBuilder, bit_wires: List[Wire]) -> Wire:
    """Recompose bits (assumed already boolean-constrained) into a wire."""
    if not bit_wires:
        raise CircuitError("need at least one bit")
    return cb.linear_combination([(b, 1 << i) for i, b in enumerate(bit_wires)])


def is_zero(cb: CircuitBuilder, wire: Wire) -> Wire:
    """Return a boolean wire that is 1 iff ``wire == 0``.

    Standard inverse-witness construction: the prover supplies
    ``inv = x^{-1}`` (or 0), with constraints ``x·inv = 1 − out`` and
    ``x·out = 0``.  Cost: 2 gates.
    """
    value = cb.wire_value(wire)
    field = cb.field
    inv_value = field.inv(value) if value else 0
    out_value = 0 if value else 1
    inv = cb.private_input(inv_value)
    out = cb.private_input(out_value)
    # x * inv == 1 - out
    prod = cb.mul(wire, inv)
    cb.assert_equal(prod, cb.sub(cb.constant(1), out))
    # x * out == 0
    zero = cb.mul(wire, out)
    cb.assert_equal(zero, cb.constant(0))
    return out


def mux(cb: CircuitBuilder, selector: Wire, if_one: Wire, if_zero: Wire) -> Wire:
    """``selector ? if_one : if_zero`` (selector must be boolean).

    One gate: ``out = if_zero + selector·(if_one − if_zero)``.
    """
    if cb.wire_value(selector) not in (0, 1):
        raise CircuitError("mux selector must be boolean")
    diff = cb.sub(if_one, if_zero)
    scaled = cb.mul(selector, diff)
    return cb.add(if_zero, scaled)


def assert_in_range(cb: CircuitBuilder, wire: Wire, bits: int) -> None:
    """Range proof: ``0 <= wire < 2^bits`` (the rescale-cost workhorse)."""
    to_bits(cb, wire, bits)


def _signed_value(cb: CircuitBuilder, wire: Wire, bits: int) -> int:
    """Interpret a wire's field value as a signed ``bits``-bit integer."""
    p = cb.field.modulus
    value = cb.wire_value(wire)
    signed = value if value <= p // 2 else value - p
    if not -(1 << (bits - 1)) <= signed < (1 << (bits - 1)):
        raise CircuitError(
            f"witness value {signed} outside signed {bits}-bit range"
        )
    return signed


def sign_bit(cb: CircuitBuilder, wire: Wire, bits: int) -> Tuple[Wire, List[Wire]]:
    """Return (non_negative, bit_wires) for a signed ``bits``-bit wire.

    Shifts by ``2^{bits-1}`` so the decomposition target is unsigned; the
    MSB of the shifted value is 1 iff the original is >= 0.  Cost:
    ``bits + 1`` gates — this is the per-activation cost the zkml layer
    model charges as ``RESCALE_BITS``.
    """
    _signed_value(cb, wire, bits)  # range-validate the witness
    offset = 1 << (bits - 1)
    shifted = cb.add_constant(wire, offset)
    bit_wires = to_bits(cb, shifted, bits)
    return bit_wires[-1], bit_wires


def relu(cb: CircuitBuilder, wire: Wire, bits: int) -> Wire:
    """max(wire, 0) for a signed ``bits``-bit wire.

    ``relu(x) = non_negative(x) · x`` — one mux-style gate on top of the
    sign extraction.
    """
    non_negative, _ = sign_bit(cb, wire, bits)
    return cb.mul(non_negative, wire)


def abs_value(cb: CircuitBuilder, wire: Wire, bits: int) -> Wire:
    """|wire| for a signed ``bits``-bit wire: ``(2·nonneg − 1)·x``."""
    non_negative, _ = sign_bit(cb, wire, bits)
    sign = cb.add_constant(cb.scale(non_negative, 2), -1)  # ±1
    return cb.mul(sign, wire)


def less_than(cb: CircuitBuilder, a: Wire, b: Wire, bits: int) -> Wire:
    """Boolean wire: 1 iff ``a < b`` (both unsigned ``bits``-bit values).

    Decomposes ``a − b + 2^bits`` into ``bits + 1`` bits; the carry-out
    (MSB) is 0 exactly when ``a < b``.
    """
    for w in (a, b):
        if cb.wire_value(w) >= (1 << bits):
            raise CircuitError(f"comparison operand exceeds {bits} bits")
    shifted = cb.add_constant(cb.sub(a, b), 1 << bits)
    bit_wires = to_bits(cb, shifted, bits + 1)
    carry = bit_wires[-1]  # 1 iff a >= b
    return cb.sub(cb.constant(1), carry)


def max_gadget(cb: CircuitBuilder, a: Wire, b: Wire, bits: int) -> Wire:
    """max(a, b) for unsigned ``bits``-bit wires (3 comparisons worth of
    gates per max — the MaxPool2d accounting)."""
    a_lt_b = less_than(cb, a, b, bits)
    return mux(cb, a_lt_b, b, a)
