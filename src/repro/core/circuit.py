"""Arithmetic-circuit frontend compiling to R1CS.

A :class:`CircuitBuilder` exposes the usual gate vocabulary — public and
private inputs, multiplication (one R1CS constraint each), free linear
operations (add/sub/scale/constants), and equality assertions.  Values are
assigned eagerly, so after building, the builder yields both the
:class:`~repro.core.r1cs.R1CS` structure and a satisfying witness.

Wires are linear combinations over witness variables, with variable 0
pinned to the constant 1.  Multiplying two wires allocates a fresh
variable for the product; everything linear stays constraint-free, which
is why the paper's scale S counts only multiplication gates.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

from ..errors import CircuitError
from ..field.prime_field import PrimeField
from .r1cs import R1CS, SparseRow


@dataclass(frozen=True)
class Wire:
    """A linear combination ``Σ coeff_j · z_j`` of witness variables."""

    terms: Tuple[Tuple[int, int], ...]  # sorted (var_index, coeff)

    @classmethod
    def of_var(cls, index: int) -> "Wire":
        return cls(terms=((index, 1),))

    @classmethod
    def constant_one(cls) -> "Wire":
        return cls.of_var(0)


class CircuitBuilder:
    """Builds a circuit and its witness simultaneously.

    >>> from repro.field import DEFAULT_FIELD
    >>> cb = CircuitBuilder(DEFAULT_FIELD)
    >>> x = cb.private_input(3)
    >>> y = cb.private_input(4)
    >>> out = cb.mul(x, y)
    >>> cb.expose_public(out)
    >>> r1cs, witness, public = cb.finalize()
    >>> r1cs.is_satisfied(witness)
    True
    >>> public
    [12]
    """

    def __init__(self, field: PrimeField):
        self.field = field
        self._values: List[int] = [1]  # z[0] = 1
        self._a_rows: List[SparseRow] = []
        self._b_rows: List[SparseRow] = []
        self._c_rows: List[SparseRow] = []
        self._public_outputs: List[Wire] = []
        self._num_inputs = 0
        self._finalized = False

    # -- wires & values ------------------------------------------------------

    def _alloc(self, value: int) -> int:
        index = len(self._values)
        self._values.append(value % self.field.modulus)
        return index

    def wire_value(self, wire: Wire) -> int:
        p = self.field.modulus
        return sum(coeff * self._values[j] for j, coeff in wire.terms) % p

    def constant(self, value: int) -> Wire:
        value %= self.field.modulus
        if value == 0:
            return Wire(terms=())
        return Wire(terms=((0, value),))

    def private_input(self, value: int) -> Wire:
        self._num_inputs += 1
        return Wire.of_var(self._alloc(value))

    def private_inputs(self, values: Sequence[int]) -> List[Wire]:
        return [self.private_input(v) for v in values]

    # -- linear operations (free) -----------------------------------------------

    def _combine(self, pairs: Sequence[Tuple[Wire, int]]) -> Wire:
        p = self.field.modulus
        acc: Dict[int, int] = {}
        for wire, scale in pairs:
            scale %= p
            if scale == 0:
                continue
            for j, coeff in wire.terms:
                acc[j] = (acc.get(j, 0) + scale * coeff) % p
        terms = tuple(sorted((j, c) for j, c in acc.items() if c))
        return Wire(terms=terms)

    def add(self, a: Wire, b: Wire) -> Wire:
        return self._combine([(a, 1), (b, 1)])

    def sub(self, a: Wire, b: Wire) -> Wire:
        return self._combine([(a, 1), (b, -1)])

    def scale(self, a: Wire, c: int) -> Wire:
        return self._combine([(a, c)])

    def add_constant(self, a: Wire, c: int) -> Wire:
        return self._combine([(a, 1), (self.constant(c), 1)])

    def linear_combination(self, pairs: Sequence[Tuple[Wire, int]]) -> Wire:
        return self._combine(pairs)

    def sum_wires(self, wires: Sequence[Wire]) -> Wire:
        return self._combine([(w, 1) for w in wires])

    # -- multiplication (one constraint each) --------------------------------------

    def _row(self, wire: Wire) -> SparseRow:
        return [(j, c) for j, c in wire.terms]

    def mul(self, a: Wire, b: Wire) -> Wire:
        """Multiply two wires: allocates the product and one R1CS row."""
        if self._finalized:
            raise CircuitError("builder already finalized")
        value = (self.wire_value(a) * self.wire_value(b)) % self.field.modulus
        out_index = self._alloc(value)
        self._a_rows.append(self._row(a))
        self._b_rows.append(self._row(b))
        self._c_rows.append([(out_index, 1)])
        return Wire.of_var(out_index)

    def square(self, a: Wire) -> Wire:
        return self.mul(a, a)

    def assert_equal(self, a: Wire, b: Wire) -> None:
        """Constrain a == b via the multiplicative row (a−b)·1 = 0."""
        diff = self.sub(a, b)
        if self.wire_value(diff) != 0:
            raise CircuitError("assert_equal on unequal wires (bad witness)")
        self._a_rows.append(self._row(diff))
        self._b_rows.append(self._row(Wire.constant_one()))
        self._c_rows.append([])
        # C row must be non-empty-compatible: empty row means 0, allowed.

    def assert_boolean(self, a: Wire) -> None:
        """Constrain a ∈ {0,1} via a·(a−1) = 0."""
        value = self.wire_value(a)
        if value not in (0, 1):
            raise CircuitError(f"assert_boolean on non-boolean value {value}")
        self._a_rows.append(self._row(a))
        self._b_rows.append(self._row(self.add_constant(a, -1)))
        self._c_rows.append([])

    def expose_public(self, wire: Wire) -> None:
        """Mark a wire's value as a public output of the circuit."""
        self._public_outputs.append(wire)

    # -- finalize ---------------------------------------------------------------------

    @property
    def num_multiplications(self) -> int:
        """The paper's scale S (constraints added so far)."""
        return len(self._a_rows)

    def finalize(self) -> Tuple[R1CS, List[int], List[int]]:
        """Freeze into (R1CS, witness, public outputs).

        Public outputs are bound by extra equality constraints pinning each
        exposed wire to a dedicated tail variable; the verifier recomputes
        those tail positions from the R1CS and checks them against the
        claimed outputs through the commitment (see
        :mod:`repro.core.prover`).
        """
        if self._finalized:
            raise CircuitError("builder already finalized")
        self._finalized = True
        public_values = []
        self.public_indices: List[int] = []
        for wire in self._public_outputs:
            value = self.wire_value(wire)
            idx = self._alloc(value)
            # (wire − z_idx) · 1 = 0
            pinned = self._combine([(wire, 1), (Wire.of_var(idx), -1)])
            self._a_rows.append(self._row(pinned))
            self._b_rows.append(self._row(Wire.constant_one()))
            self._c_rows.append([])
            public_values.append(value)
            self.public_indices.append(idx)
        # Remove empty C rows' zero coefficients is implicit (empty list = 0).
        # Filter zero coefficients defensively.
        def clean(rows: List[SparseRow]) -> List[SparseRow]:
            p = self.field.modulus
            return [[(j, c % p) for j, c in row if c % p] for row in rows]

        r1cs = R1CS(
            self.field,
            num_vars=len(self._values),
            a_rows=clean(self._a_rows),
            b_rows=clean(self._b_rows),
            c_rows=clean(self._c_rows),
        )
        return r1cs, list(self._values), public_values


@dataclass(frozen=True)
class CompiledCircuit:
    """A finalized circuit: structure, a satisfying witness, and the
    public-output bookkeeping the prover/verifier pair needs."""

    r1cs: R1CS
    witness: List[int]
    public_values: List[int]
    public_indices: List[int]


def compile_builder(builder: CircuitBuilder) -> CompiledCircuit:
    """Finalize a builder into a :class:`CompiledCircuit`."""
    r1cs, witness, public_values = builder.finalize()
    return CompiledCircuit(
        r1cs=r1cs,
        witness=witness,
        public_values=public_values,
        public_indices=list(builder.public_indices),
    )


def random_circuit(
    field: PrimeField,
    num_gates: int,
    num_inputs: int = 8,
    seed: int = 0,
    input_values: Optional[Sequence[int]] = None,
) -> CompiledCircuit:
    """A pseudorandom circuit with exactly ``num_gates`` multiplications.

    Used by benchmarks where the paper sweeps the scale S: each gate
    multiplies two random linear combinations of earlier wires, so the
    wiring is dense enough to be non-trivial but nnz stays O(S).

    ``input_values`` overrides the seeded input assignment while leaving
    the topology draws untouched (the seeded values are still consumed
    from the RNG), so every ``input_values`` variant of the same
    ``(seed, num_gates, num_inputs)`` compiles to a *digest-identical*
    R1CS with a distinct witness — the paper's one-circuit/many-witness
    batch shape (§1) without sharing a single witness across tasks.
    """
    if num_gates < 2:
        raise CircuitError("need at least two gates")
    rng = random.Random(f"random-circuit/{seed}/{num_gates}")
    cb = CircuitBuilder(field)
    inputs = field.rand_vector(max(1, num_inputs), rng)
    if input_values is not None:
        if len(input_values) != len(inputs):
            raise CircuitError(
                f"{len(input_values)} input values for {len(inputs)} inputs"
            )
        inputs = [v % field.modulus for v in input_values]
    wires = cb.private_inputs(inputs)
    for _ in range(num_gates - 1):
        a = rng.choice(wires)
        b = rng.choice(wires)
        # Mix in a second term half the time to exercise linear combos.
        if rng.random() < 0.5 and len(wires) >= 2:
            a = cb.linear_combination(
                [(a, rng.randrange(1, 97)), (rng.choice(wires), 1)]
            )
        wires.append(cb.mul(a, b))
        if len(wires) > 64:
            wires = wires[-64:]
    out = cb.mul(wires[-1], wires[0])
    cb.expose_public(out)
    return compile_builder(cb)
