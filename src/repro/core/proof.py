"""Proof objects for the core SNARK.

A :class:`SnarkProof` bundles exactly the artifacts §4 of the paper
assembles: "the proof is assembled using the final Merkle root, sum-check
proofs, and a linear combination of linear-time codes" — here the Merkle
root lives inside the witness commitment, the two sum-check transcripts
are explicit, and the PCS openings carry the linear combinations of
codeword rows plus Merkle column openings.
"""

from __future__ import annotations

from dataclasses import dataclass, field as dc_field
from typing import Dict, List

from ..commitment.brakedown import Commitment, EvalProof
from ..field.prime_field import PrimeField
from ..sumcheck.noninteractive import SumcheckProof


@dataclass(frozen=True)
class PublicBinding:
    """Opens the committed witness at one boolean point (a public value)."""

    var_index: int
    value: int
    opening: EvalProof


@dataclass(frozen=True)
class SnarkProof:
    """A complete non-interactive proof for one R1CS statement."""

    commitment: Commitment
    constraint_sumcheck: SumcheckProof  # sum-check #1 (degree 3)
    va: int  # Ãz(r_x)
    vb: int  # B̃z(r_x)
    vc: int  # C̃z(r_x)
    witness_sumcheck: SumcheckProof  # sum-check #2 (degree 2)
    vz: int  # z̃(r_y)
    witness_opening: EvalProof  # PCS opening of z̃ at r_y
    public_bindings: List[PublicBinding] = dc_field(default_factory=list)

    def size_field_elements(self) -> int:
        total = self.constraint_sumcheck.size_field_elements()
        total += self.witness_sumcheck.size_field_elements()
        total += 4  # va, vb, vc, vz
        total += self.witness_opening.size_field_elements()
        for binding in self.public_bindings:
            total += 1 + binding.opening.size_field_elements()
        return total

    def size_bytes(self, field: PrimeField) -> int:
        fe_bytes = field.byte_length
        total = (
            self.constraint_sumcheck.size_field_elements()
            + self.witness_sumcheck.size_field_elements()
            + 4
        ) * fe_bytes
        total += len(self.commitment.root)
        total += self.witness_opening.size_bytes(field)
        for binding in self.public_bindings:
            total += fe_bytes + binding.opening.size_bytes(field)
        return total

    def component_sizes(self, field: PrimeField) -> Dict[str, int]:
        """Byte sizes per component — feeds the proof-size reporting."""
        return {
            "merkle_root": len(self.commitment.root),
            "sumchecks": (
                self.constraint_sumcheck.size_field_elements()
                + self.witness_sumcheck.size_field_elements()
                + 4
            )
            * field.byte_length,
            "pcs_openings": self.witness_opening.size_bytes(field)
            + sum(
                field.byte_length + b.opening.size_bytes(field)
                for b in self.public_bindings
            ),
        }
