"""Batch proof generation (the system-level API of the paper's Figure 7).

The paper's headline setting is a *stream* of proof tasks: "service
providers need to continuously process customer inputs that come in like a
flowing stream" (§1).  :class:`BatchProver` is the functional counterpart
of that pipeline: it accepts tasks, generates proofs for all of them on a
fixed R1CS instance, and reports throughput statistics.  The GPU pipeline
*simulation* of the same workload lives in :mod:`repro.pipeline`; this
class produces the actual, verifiable proofs.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field as dc_field
from typing import Iterable, Iterator, List, Optional, Sequence, Tuple

from ..errors import ProofError
from .proof import SnarkProof
from .prover import SnarkProver
from .verifier import SnarkVerifier


@dataclass(frozen=True)
class ProofTask:
    """One unit of the proof stream: a witness and its public outputs."""

    task_id: int
    witness: List[int]
    public_values: List[int]


@dataclass
class BatchStats:
    """Aggregate statistics over one batch run."""

    proofs_generated: int = 0
    total_seconds: float = 0.0
    per_proof_seconds: List[float] = dc_field(default_factory=list)

    @property
    def throughput_per_second(self) -> float:
        if self.total_seconds <= 0:
            return 0.0
        return self.proofs_generated / self.total_seconds

    @property
    def amortized_seconds(self) -> float:
        if not self.proofs_generated:
            return 0.0
        return self.total_seconds / self.proofs_generated


class BatchProver:
    """Generates proofs for a stream of tasks on one circuit.

    >>> # doctest-style sketch; see examples/quickstart.py for a real run
    >>> # batch = BatchProver(prover)
    >>> # proofs, stats = batch.prove_all(tasks)
    """

    def __init__(self, prover: SnarkProver):
        self.prover = prover
        self.stats = BatchStats()

    def prove_all(
        self, tasks: Sequence[ProofTask]
    ) -> Tuple[List[SnarkProof], BatchStats]:
        """Prove every task; returns the proofs and fresh statistics."""
        stats = BatchStats()
        proofs: List[SnarkProof] = []
        batch_start = time.perf_counter()
        for task in tasks:
            start = time.perf_counter()
            proofs.append(self.prover.prove(task.witness, task.public_values))
            stats.per_proof_seconds.append(time.perf_counter() - start)
        stats.total_seconds = time.perf_counter() - batch_start
        stats.proofs_generated = len(proofs)
        self.stats = stats
        return proofs, stats

    def prove_stream(self, tasks: Iterable[ProofTask]) -> Iterator[SnarkProof]:
        """Lazily prove tasks as they arrive (the MLaaS streaming shape)."""
        for task in tasks:
            start = time.perf_counter()
            proof = self.prover.prove(task.witness, task.public_values)
            self.stats.per_proof_seconds.append(time.perf_counter() - start)
            self.stats.proofs_generated += 1
            self.stats.total_seconds += self.stats.per_proof_seconds[-1]
            yield proof


def verify_all(
    verifier: SnarkVerifier,
    proofs: Sequence[SnarkProof],
    tasks: Sequence[ProofTask],
) -> bool:
    """Verify a batch of proofs against their tasks' public values."""
    if len(proofs) != len(tasks):
        raise ProofError(f"{len(proofs)} proofs for {len(tasks)} tasks")
    return all(
        verifier.verify(proof, task.public_values)
        for proof, task in zip(proofs, tasks)
    )
