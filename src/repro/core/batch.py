"""Batch proof generation (the system-level API of the paper's Figure 7).

The paper's headline setting is a *stream* of proof tasks: "service
providers need to continuously process customer inputs that come in like a
flowing stream" (§1).  :class:`BatchProver` is the functional counterpart
of that pipeline: it accepts tasks, generates proofs for all of them on a
fixed R1CS instance, and reports throughput statistics.  The GPU pipeline
*simulation* of the same workload lives in :mod:`repro.pipeline`; this
class produces the actual, verifiable proofs.

Statistics lifecycle: ``BatchProver.stats`` is created once and never
rebound, so references held by callers stay live; every run
(:meth:`~BatchProver.prove_all` or :meth:`~BatchProver.prove_stream`)
begins by resetting it in place, so each run's numbers are fresh rather
than merged with the previous run's.  :meth:`~BatchProver.prove_all`
returns an immutable-by-convention *snapshot* that later runs do not
touch.

Execution is delegated to the unified backend layer
(:mod:`repro.execution`): ``workers > 1`` selects the process-pool
backend, and any :class:`~repro.execution.ProvingBackend` — or selector
string like ``"sharded:pool:4,pool:4"`` — can be passed explicitly; the
richer per-run report (percentile latencies, retries, utilization) then
lands in :attr:`BatchProver.last_runtime_stats`.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field as dc_field
from typing import (
    TYPE_CHECKING,
    Iterable,
    Iterator,
    List,
    Optional,
    Sequence,
    Tuple,
    Union,
)

from ..errors import ProofError
from .proof import SnarkProof
from .prover import SnarkProver
from .verifier import SnarkVerifier

if TYPE_CHECKING:  # pragma: no cover - import cycle guard, typing only
    from ..execution import ProvingBackend
    from ..runtime.stats import RuntimeStats

    BackendLike = Union[str, ProvingBackend]


@dataclass(frozen=True)
class ProofTask:
    """One unit of the proof stream: a witness and its public outputs."""

    task_id: int
    witness: List[int]
    public_values: List[int]


@dataclass
class BatchStats:
    """Aggregate statistics over one batch run."""

    proofs_generated: int = 0
    total_seconds: float = 0.0
    per_proof_seconds: List[float] = dc_field(default_factory=list)

    @property
    def throughput_per_second(self) -> float:
        if self.total_seconds <= 0:
            return 0.0
        return self.proofs_generated / self.total_seconds

    @property
    def amortized_seconds(self) -> float:
        if not self.proofs_generated:
            return 0.0
        return self.total_seconds / self.proofs_generated

    def reset(self) -> None:
        """Zero every counter in place (start of a new run)."""
        self.proofs_generated = 0
        self.total_seconds = 0.0
        self.per_proof_seconds.clear()

    def snapshot(self) -> "BatchStats":
        """An independent copy, frozen at the current values."""
        return BatchStats(
            proofs_generated=self.proofs_generated,
            total_seconds=self.total_seconds,
            per_proof_seconds=list(self.per_proof_seconds),
        )


class BatchProver:
    """Generates proofs for a stream of tasks on one circuit.

    >>> # doctest-style sketch; see examples/quickstart.py for a real run
    >>> # batch = BatchProver(prover)
    >>> # proofs, stats = batch.prove_all(tasks)

    Args:
        prover:  The fixed-instance SNARK prover.
        workers: Default worker count for :meth:`prove_all`; ``1`` proves
                 inline, ``> 1`` shards across a process pool.
        backend: Default execution backend — a selector string
                 (``"serial"``, ``"pool:8"``, ``"sharded:pool:4,pool:4"``)
                 or a :class:`~repro.execution.ProvingBackend` instance.
                 When given, it wins over ``workers``.
    """

    def __init__(
        self,
        prover: SnarkProver,
        workers: int = 1,
        backend: Optional["BackendLike"] = None,
    ):
        self.prover = prover
        self.workers = workers
        self.backend = backend
        self.stats = BatchStats()
        #: The :class:`~repro.runtime.RuntimeStats` of the most recent
        #: backend-routed run (None until a parallel or explicit-backend
        #: batch completes).
        self.last_runtime_stats: Optional["RuntimeStats"] = None
        self._spec = None  # lazy ProverSpec, derived once per prover

    def prove_all(
        self,
        tasks: Sequence[ProofTask],
        workers: Optional[int] = None,
        backend: Optional["BackendLike"] = None,
    ) -> Tuple[List[SnarkProof], BatchStats]:
        """Prove every task; returns the proofs and this run's statistics.

        ``workers`` / ``backend`` override the constructor defaults for
        this call only; an explicit ``backend`` wins over ``workers``.
        The returned stats object is a snapshot: later runs reset
        ``self.stats`` in place but never mutate a returned snapshot.
        """
        tasks = list(tasks)
        effective_backend = backend if backend is not None else self.backend
        effective_workers = self.workers if workers is None else workers
        self.stats.reset()
        if effective_backend is not None:
            proofs = self._prove_all_backend(tasks, effective_backend)
        elif effective_workers > 1 and len(tasks) > 1:
            proofs = self._prove_all_backend(
                tasks, f"pool:{effective_workers}"
            )
        else:
            proofs = self._prove_all_serial(tasks)
        return proofs, self.stats.snapshot()

    def _prove_all_serial(self, tasks: Sequence[ProofTask]) -> List[SnarkProof]:
        proofs: List[SnarkProof] = []
        batch_start = time.perf_counter()
        for task in tasks:
            start = time.perf_counter()
            proofs.append(self.prover.prove(task.witness, task.public_values))
            self.stats.per_proof_seconds.append(time.perf_counter() - start)
        self.stats.total_seconds = time.perf_counter() - batch_start
        self.stats.proofs_generated = len(proofs)
        return proofs

    def _prove_all_backend(
        self, tasks: Sequence[ProofTask], backend: "BackendLike"
    ) -> List[SnarkProof]:
        from ..execution import SerialBackend, resolve_backend
        from ..runtime import ProverSpec

        resolved = resolve_backend(backend)
        if self._spec is None:
            self._spec = ProverSpec.from_prover(self.prover)
        if isinstance(resolved, SerialBackend):
            # Reuse the live prover instead of rebuilding it from the spec.
            resolved.adopt_prover(self._spec, self.prover)
        proofs, runtime_stats = resolved.prove_tasks(self._spec, tasks)
        self.last_runtime_stats = runtime_stats
        self.stats.proofs_generated = len(proofs)
        self.stats.total_seconds = runtime_stats.total_seconds
        self.stats.per_proof_seconds.extend(
            record.prove_seconds for record in runtime_stats.records
        )
        return proofs

    def prove_stream(self, tasks: Iterable[ProofTask]) -> Iterator[SnarkProof]:
        """Lazily prove tasks as they arrive (the MLaaS streaming shape).

        Statistics are reset when iteration begins, so each stream run —
        like each :meth:`prove_all` run — reports only its own tasks.
        ``total_seconds`` sums proving time only (the stream may spend
        arbitrary time waiting for arrivals, which would make wall-clock
        throughput meaningless).
        """
        self.stats.reset()
        for task in tasks:
            start = time.perf_counter()
            proof = self.prover.prove(task.witness, task.public_values)
            self.stats.per_proof_seconds.append(time.perf_counter() - start)
            self.stats.proofs_generated += 1
            self.stats.total_seconds += self.stats.per_proof_seconds[-1]
            yield proof


def verify_all(
    verifier: SnarkVerifier,
    proofs: Sequence[SnarkProof],
    tasks: Sequence[ProofTask],
) -> bool:
    """Verify a batch of proofs against their tasks' public values."""
    if len(proofs) != len(tasks):
        raise ProofError(f"{len(proofs)} proofs for {len(tasks)} tasks")
    return all(
        verifier.verify(proof, task.public_values)
        for proof, task in zip(proofs, tasks)
    )
