"""The core SNARK verifier.

Replays the prover's transcript schedule, checks both sum-checks round by
round, evaluates the public R1CS matrices at the bound point (O(nnz)), and
verifies every PCS opening — including the boolean-point openings that pin
the constant-one slot and the public outputs to the committed witness.
"""

from __future__ import annotations

from typing import List, Optional, Sequence

from ..commitment.brakedown import BrakedownPCS
from ..errors import CommitmentError, SumcheckError
from ..field.multilinear import eq_eval
from ..hashing.transcript import Transcript
from ..sumcheck.prover import evaluation_point
from ..sumcheck.verifier import verify_product_rounds
from .constraint import DEGREE as CONSTRAINT_DEGREE
from .proof import SnarkProof
from .prover import TRANSCRIPT_LABEL, _bits_point, make_pcs
from .r1cs import R1CS


class SnarkVerifier:
    """Verifies proofs for a fixed R1CS instance."""

    def __init__(
        self,
        r1cs: R1CS,
        pcs: Optional[BrakedownPCS] = None,
        public_indices: Optional[Sequence[int]] = None,
    ):
        self.r1cs = r1cs
        self.field = r1cs.field
        self.pcs = pcs or make_pcs(self.field, r1cs)
        self.public_indices = list(public_indices or [])
        self._r1cs_digest = r1cs.digest()

    def verify(self, proof: SnarkProof, public_values: Sequence[int]) -> bool:
        """Return True iff ``proof`` validates against ``public_values``."""
        field = self.field
        r1cs = self.r1cs
        p = field.modulus
        if len(public_values) != len(self.public_indices):
            return False

        transcript = Transcript(TRANSCRIPT_LABEL)
        transcript.absorb_bytes(b"r1cs", self._r1cs_digest)
        transcript.absorb_field_vector(b"public", field, list(public_values))
        transcript.absorb_bytes(b"commitment", proof.commitment.root)

        # -- sum-check #1 -----------------------------------------------------
        m = r1cs.constraint_vars
        if proof.constraint_sumcheck.claimed_sum % p != 0:
            return False
        if proof.constraint_sumcheck.num_rounds != m:
            return False
        if proof.constraint_sumcheck.degree != CONSTRAINT_DEGREE:
            return False
        tau = transcript.challenge_field_vector(b"tau", field, m)
        transcript.absorb_int(b"sumcheck/n", m)
        transcript.absorb_int(b"sumcheck/deg", CONSTRAINT_DEGREE)
        transcript.absorb_field(b"sumcheck/H", field, 0)
        challenges_x: List[int] = []
        for i, evals in enumerate(proof.constraint_sumcheck.round_polys):
            transcript.absorb_field_vector(b"sumcheck/round", field, list(evals))
            challenges_x.append(
                transcript.challenge_field(b"sumcheck/r/%d" % i, field)
            )
        try:
            final1 = verify_product_rounds(
                field,
                0,
                proof.constraint_sumcheck.round_polys,
                challenges_x,
                CONSTRAINT_DEGREE,
            )
        except SumcheckError:
            return False
        if final1 != proof.constraint_sumcheck.final_value % p:
            return False
        transcript.absorb_field(
            b"sumcheck/final", field, proof.constraint_sumcheck.final_value
        )
        # Structural check: final claim must equal eq(τ, r_x)·(va·vb − vc).
        point_x = evaluation_point(challenges_x)
        eq_val = eq_eval(field, tau, point_x)
        if final1 != (eq_val * (proof.va * proof.vb - proof.vc)) % p:
            return False
        transcript.absorb_field_vector(
            b"abc-claims", field, [proof.va, proof.vb, proof.vc]
        )

        # -- sum-check #2 -----------------------------------------------------
        coeff_a = transcript.challenge_field(b"batch/a", field)
        coeff_b = transcript.challenge_field(b"batch/b", field)
        coeff_c = transcript.challenge_field(b"batch/c", field)
        expected_claim2 = (
            coeff_a * proof.va + coeff_b * proof.vb + coeff_c * proof.vc
        ) % p
        if proof.witness_sumcheck.claimed_sum % p != expected_claim2:
            return False
        s = r1cs.witness_vars
        if proof.witness_sumcheck.num_rounds != s:
            return False
        if proof.witness_sumcheck.degree != 2:
            return False
        transcript.absorb_int(b"sumcheck/n", s)
        transcript.absorb_int(b"sumcheck/deg", 2)
        transcript.absorb_field(
            b"sumcheck/H", field, proof.witness_sumcheck.claimed_sum
        )
        challenges_y: List[int] = []
        for i, evals in enumerate(proof.witness_sumcheck.round_polys):
            transcript.absorb_field_vector(b"sumcheck/round", field, list(evals))
            challenges_y.append(
                transcript.challenge_field(b"sumcheck/r/%d" % i, field)
            )
        try:
            final2 = verify_product_rounds(
                field,
                proof.witness_sumcheck.claimed_sum,
                proof.witness_sumcheck.round_polys,
                challenges_y,
                2,
            )
        except SumcheckError:
            return False
        if final2 != proof.witness_sumcheck.final_value % p:
            return False
        transcript.absorb_field(
            b"sumcheck/final", field, proof.witness_sumcheck.final_value
        )

        # -- final algebraic check: M̃(r_x, r_y)·z̃(r_y) --------------------------
        point_y = evaluation_point(challenges_y)
        ma, mb, mc = r1cs.mle_evals_abc(point_x, point_y)
        combined = (coeff_a * ma + coeff_b * mb + coeff_c * mc) % p
        if final2 != (combined * proof.vz) % p:
            return False
        transcript.absorb_field(b"vz", field, proof.vz)

        # -- PCS openings -----------------------------------------------------------
        try:
            pcs_ok = self.pcs.verify(
                proof.commitment, point_y, proof.vz, proof.witness_opening, transcript
            )
        except CommitmentError:
            # Mismatched public parameters (e.g. a different encoder seed).
            return False
        if not pcs_ok:
            return False

        expected_bindings = list(zip([0] + self.public_indices, [1] + list(public_values)))
        if len(proof.public_bindings) != len(expected_bindings):
            return False
        for binding, (idx, value) in zip(proof.public_bindings, expected_bindings):
            if binding.var_index != idx or binding.value % p != value % p:
                return False
            point = _bits_point(idx, s)
            if not self.pcs.verify(
                proof.commitment, point, binding.value, binding.opening, transcript
            ):
                return False
        return True
