"""Core ZKP protocol (system S7 in DESIGN.md).

A Spartan/Brakedown-style SNARK assembled from the paper's three
computational modules: witness commitment through the linear-time encoder
and Merkle trees, constraint proving through two sum-checks, and
tensor-point PCS openings.

Public surface:

* :class:`CircuitBuilder` / :func:`random_circuit` — gate-level frontend.
* :class:`R1CS` — the constraint system (scale S = multiplication gates).
* :class:`SnarkProver` / :class:`SnarkVerifier` — prove and verify.
* :class:`BatchProver` — the streaming batch API of the paper's Figure 7.
"""

from .batch import BatchProver, BatchStats, ProofTask, verify_all
from .circuit import (
    CircuitBuilder,
    CompiledCircuit,
    Wire,
    compile_builder,
    random_circuit,
)
from .constraint import ConstraintSumcheckProver
from .lanes import LanedProof
from .gadgets import (
    abs_value,
    assert_in_range,
    from_bits,
    is_zero,
    less_than,
    max_gadget,
    mux,
    relu,
    sign_bit,
    to_bits,
)
from .proof import PublicBinding, SnarkProof
from .prover import PIPELINE_STAGES, SnarkProver, StagedProof, make_pcs
from .r1cs import R1CS, next_power_of_two
from .serialize import (
    deserialize_proof,
    deserialize_proof_bundle,
    serialize_proof,
    serialize_proof_bundle,
)
from .verifier import SnarkVerifier

__all__ = [
    "CircuitBuilder",
    "CompiledCircuit",
    "compile_builder",
    "Wire",
    "random_circuit",
    "R1CS",
    "next_power_of_two",
    "ConstraintSumcheckProver",
    "SnarkProver",
    "StagedProof",
    "LanedProof",
    "PIPELINE_STAGES",
    "SnarkVerifier",
    "make_pcs",
    "SnarkProof",
    "PublicBinding",
    "BatchProver",
    "BatchStats",
    "ProofTask",
    "verify_all",
    "serialize_proof",
    "deserialize_proof",
    "serialize_proof_bundle",
    "deserialize_proof_bundle",
    "to_bits",
    "from_bits",
    "is_zero",
    "mux",
    "assert_in_range",
    "sign_bit",
    "relu",
    "abs_value",
    "less_than",
    "max_gadget",
]
