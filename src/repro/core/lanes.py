"""Lane-vectorised proving: many same-circuit proofs in one numpy pass (S31).

The S26 kernels vectorise *within* one proof; at small gate counts the
dominant cost is then numpy's fixed per-dispatch overhead, paid once per
kernel call per proof.  Batch workloads (MLaaS, zkbridge) prove many
instances of the *same* circuit with different witnesses, so the lane
dimension of the SZKP / zkPHIRE SIMD framing applies directly: stack
``L`` proofs' tables into ``[lanes, n]`` arrays and drive every lane
through encode → merkle → sumcheck → open in lockstep.  Each kernel call
then advances all ``L`` proofs, amortising the dispatch overhead ``L``-fold.

Byte parity is the design constraint, and it falls out of two facts:

* every fast61 operation is *exact* — bit-for-bit equal to big-int
  arithmetic — so laned routes produce the same integers as per-proof
  routes; and
* each lane keeps its **own** scalar :class:`~repro.hashing.Transcript`.
  Transcripts diverge at the commitment roots, so all Fiat–Shamir
  challenges are per-lane; only the heavy array math is shared.

:class:`LanedProof` mirrors the :class:`~repro.core.prover.StagedProof`
interface (``stages`` / ``next_stage`` / ``run_next`` / ``done``), which
lets the pipelined executor stream lane-groups through its stage queues
unchanged.  When the fast path does not apply (non-Mersenne-61 field,
reference kernels forced, degenerate shapes) the group degrades to
per-lane ``StagedProof``s driven in lockstep — byte-identical by
construction, so callers never need to care which mode ran.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, List, Optional, Sequence

import numpy as np

from ..errors import ProofError
from ..field import fast61 as _f61
from ..field.primes import MERSENNE61
from ..kernels import field_kernels as _kernels
from ..kernels.dispatch import kernels_enabled
from ..kernels.profile import stage as _stage
from ..sumcheck.noninteractive import SumcheckProof
from ..sumcheck.prover import evaluation_point
from .constraint import DEGREE as CONSTRAINT_DEGREE
from .proof import PublicBinding, SnarkProof
from .prover import PIPELINE_STAGES, _bits_point

if TYPE_CHECKING:  # pragma: no cover - import cycle guard (prover imports us)
    from .prover import SnarkProver


class LanedProof:
    """A lane-group of same-circuit proofs advancing stage-by-stage.

    One instance owns ``L`` independent ``(witness, public_values)``
    pairs for the prover's fixed circuit and produces ``L`` finished
    :class:`SnarkProof`s, each byte-identical to what
    ``prover.prove(witness, public_values)`` would emit alone.
    """

    stages = PIPELINE_STAGES

    def __init__(
        self,
        prover: "SnarkProver",
        witnesses: Sequence[Sequence[int]],
        public_values_list: Sequence[Sequence[int]],
    ):
        witnesses = [list(w) for w in witnesses]
        public_values_list = [list(pv) for pv in public_values_list]
        if not witnesses:
            raise ProofError("a lane-group needs at least one witness")
        if len(witnesses) != len(public_values_list):
            raise ProofError(
                f"{len(witnesses)} witnesses for "
                f"{len(public_values_list)} public-value vectors"
            )
        self.prover = prover
        self.witnesses = witnesses
        self.public_values_list = public_values_list
        self.lanes = len(witnesses)
        self._stage_index = 0
        self._proofs: Optional[List[SnarkProof]] = None
        #: Lockstep per-lane fallback when the laned fast path is off.
        self._fallback: Optional[list] = None
        if not self._fast_mode():
            self._fallback = [
                prover.begin_proof(w, pv)
                for w, pv in zip(witnesses, public_values_list)
            ]

    def _fast_mode(self) -> bool:
        prover = self.prover
        return (
            _f61 is not None
            and kernels_enabled()
            and prover.field.modulus == MERSENNE61
            and prover.pcs._fast_path()
        )

    # -- StagedProof-compatible surface -------------------------------------

    @property
    def next_stage(self) -> Optional[str]:
        if self._stage_index >= len(self.stages):
            return None
        return self.stages[self._stage_index]

    @property
    def done(self) -> bool:
        return self._stage_index >= len(self.stages)

    @property
    def proofs(self) -> List[SnarkProof]:
        """The finished per-lane proofs (raises until every stage ran)."""
        if self._proofs is None:
            raise ProofError(
                f"lane-group not finished: next stage is {self.next_stage!r}"
            )
        return self._proofs

    def run_next(self) -> Optional[str]:
        """Execute the next pending stage for every lane; None when done."""
        name = self.next_stage
        if name is None:
            return None
        if self._fallback is not None:
            for staged in self._fallback:
                staged.run_next()
            if all(staged.done for staged in self._fallback):
                self._proofs = [staged.proof for staged in self._fallback]
        else:
            getattr(self, f"_run_{name}")()
        self._stage_index += 1
        return name

    def run_all(self) -> List[SnarkProof]:
        """Run every remaining stage on the calling thread."""
        while self.run_next() is not None:
            pass
        return self.proofs

    # -- the four laned stage bodies ----------------------------------------

    def _run_encode(self) -> None:
        prover = self.prover
        field = prover.field
        r1cs = prover.r1cs
        for lane, public_values in enumerate(self.public_values_list):
            if len(public_values) != len(prover.public_indices):
                raise ProofError(
                    f"{len(public_values)} public values for "
                    f"{len(prover.public_indices)} public indices"
                )
        self._z_lanes = np.asarray(
            [r1cs.pad_witness(w) for w in self.witnesses], dtype=np.uint64
        )
        self._az, self._bz, self._cz = r1cs.matvec_tables_lanes(self._z_lanes)
        violations = _kernels.constraint_violation(
            field, self._az, self._bz, self._cz
        )
        for lane, bad in enumerate(violations):
            if bad:
                raise ProofError(
                    f"witness does not satisfy the R1CS "
                    f"(violations at {r1cs.violations(self.witnesses[lane])[:5]}…)"
                )
        with _stage("commit"):
            self._matrices, self._codewords = prover.pcs.encode_rows_lanes(
                self._z_lanes
            )

    def _run_merkle(self) -> None:
        prover = self.prover
        with _stage("commit"):
            self._commitments, self._state = prover.pcs.commit_encoded_lanes(
                self._matrices, self._codewords
            )
        del self._matrices, self._codewords
        self._transcripts = []
        for lane in range(self.lanes):
            transcript = prover._init_transcript(self.public_values_list[lane])
            transcript.absorb_bytes(
                b"commitment", self._commitments[lane].root
            )
            self._transcripts.append(transcript)

    def _run_sumcheck(self) -> None:
        prover = self.prover
        field = prover.field
        p = field.modulus
        r1cs = prover.r1cs
        lanes = self.lanes
        transcripts = self._transcripts

        # 2. Sum-check #1 over the constraint polynomial, all lanes per round.
        with _stage("sumcheck1"):
            m = r1cs.constraint_vars
            taus = [
                transcripts[lane].challenge_field_vector(b"tau", field, m)
                for lane in range(lanes)
            ]
            eq = _kernels.eq_table_lanes(field, taus)
            az, bz, cz = self._az, self._bz, self._cz
            claimed = _kernels.constraint_claimed_sum(field, eq, az, bz, cz)
            if any(claimed):
                raise ProofError(
                    "constraint sum is nonzero on a satisfying witness"
                )
            for transcript in transcripts:
                transcript.absorb_int(b"sumcheck/n", m)
                transcript.absorb_int(b"sumcheck/deg", CONSTRAINT_DEGREE)
                transcript.absorb_field(b"sumcheck/H", field, 0)
            round_polys: List[List[List[int]]] = [[] for _ in range(lanes)]
            challenges_x: List[List[int]] = [[] for _ in range(lanes)]
            for i in range(m):
                evals = _kernels.constraint_round_cubic(field, eq, az, bz, cz)
                rs: List[int] = []
                for lane in range(lanes):
                    transcript = transcripts[lane]
                    transcript.absorb_field_vector(
                        b"sumcheck/round", field, evals[lane]
                    )
                    r = transcript.challenge_field(b"sumcheck/r/%d" % i, field)
                    rs.append(r)
                    round_polys[lane].append(evals[lane])
                    challenges_x[lane].append(r)
                eq = _kernels.fold_table(field, eq, rs)
                az = _kernels.fold_table(field, az, rs)
                bz = _kernels.fold_table(field, bz, rs)
                cz = _kernels.fold_table(field, cz, rs)
            self._constraint_proofs: List[SumcheckProof] = []
            self._abc_claims: List[tuple] = []
            for lane in range(lanes):
                e_f = int(eq[lane, 0])
                va = int(az[lane, 0])
                vb = int(bz[lane, 0])
                vc = int(cz[lane, 0])
                final1 = (e_f * (va * vb - vc)) % p
                transcript = transcripts[lane]
                transcript.absorb_field(b"sumcheck/final", field, final1)
                self._constraint_proofs.append(
                    SumcheckProof(
                        claimed_sum=0,
                        round_polys=round_polys[lane],
                        degree=CONSTRAINT_DEGREE,
                        final_value=final1,
                    )
                )
                transcript.absorb_field_vector(
                    b"abc-claims", field, [va, vb, vc]
                )
                self._abc_claims.append((va, vb, vc))

        # 3. Sum-check #2: the laned replica of ``prove_product`` over
        #    (combined row table, witness) with per-lane coefficients.
        with _stage("sumcheck2"):
            points_x = [
                evaluation_point(challenges_x[lane]) for lane in range(lanes)
            ]
            coeffs_a = [
                transcripts[lane].challenge_field(b"batch/a", field)
                for lane in range(lanes)
            ]
            coeffs_b = [
                transcripts[lane].challenge_field(b"batch/b", field)
                for lane in range(lanes)
            ]
            coeffs_c = [
                transcripts[lane].challenge_field(b"batch/c", field)
                for lane in range(lanes)
            ]
            eq_x = _kernels.eq_table_lanes(field, points_x)
            ta = r1cs.combined_row_table_lanes(eq_x, coeffs_a, coeffs_b, coeffs_c)
            tb = self._z_lanes
            n = r1cs.witness_vars
            claimed2 = _kernels.product_pair_sum(field, ta, tb)
            for lane in range(lanes):
                va, vb, vc = self._abc_claims[lane]
                expected = (
                    coeffs_a[lane] * va + coeffs_b[lane] * vb + coeffs_c[lane] * vc
                ) % p
                if claimed2[lane] != expected:
                    raise ProofError(
                        "sum-check #2 claim mismatch (internal error)"
                    )
                transcript = transcripts[lane]
                transcript.absorb_int(b"sumcheck/n", n)
                transcript.absorb_int(b"sumcheck/deg", 2)
                transcript.absorb_field(b"sumcheck/H", field, claimed2[lane])
            round_polys2: List[List[List[int]]] = [[] for _ in range(lanes)]
            challenges_y: List[List[int]] = [[] for _ in range(lanes)]
            for i in range(n):
                evals = _kernels.product_round_quadratic(field, ta, tb)
                rs = []
                for lane in range(lanes):
                    transcript = transcripts[lane]
                    transcript.absorb_field_vector(
                        b"sumcheck/round", field, evals[lane]
                    )
                    r = transcript.challenge_field(b"sumcheck/r/%d" % i, field)
                    rs.append(r)
                    round_polys2[lane].append(evals[lane])
                    challenges_y[lane].append(r)
                ta = _kernels.fold_table(field, ta, rs)
                tb = _kernels.fold_table(field, tb, rs)
            self._witness_proofs: List[SumcheckProof] = []
            self._challenges_y = challenges_y
            for lane in range(lanes):
                final2 = (int(ta[lane, 0]) * int(tb[lane, 0])) % p
                transcripts[lane].absorb_field(b"sumcheck/final", field, final2)
                self._witness_proofs.append(
                    SumcheckProof(
                        claimed_sum=claimed2[lane],
                        round_polys=round_polys2[lane],
                        degree=2,
                        final_value=final2,
                    )
                )

    def _run_open(self) -> None:
        prover = self.prover
        field = prover.field
        r1cs = prover.r1cs
        lanes = self.lanes
        transcripts = self._transcripts
        with _stage("open"):
            # 4. Open the witness commitment at each lane's bound point.
            points_y = [
                evaluation_point(self._challenges_y[lane])
                for lane in range(lanes)
            ]
            vzs = prover.pcs.evaluate_lanes(self._state, points_y)
            for lane in range(lanes):
                transcripts[lane].absorb_field(b"vz", field, vzs[lane])
            witness_openings = prover.pcs.open_lanes(
                self._state, points_y, transcripts
            )

            # 5. Bind the constant-one slot and each public output.  The
            # binding points are shared across lanes (boolean points of
            # the same indices), but every open still runs against its
            # lane's transcript, so column challenges stay per-lane.
            s = r1cs.witness_vars
            bindings: List[List[PublicBinding]] = [[] for _ in range(lanes)]
            for pos, idx in enumerate([0] + prover.public_indices):
                point = _bits_point(idx, s)
                openings = prover.pcs.open_lanes(
                    self._state, [point] * lanes, transcripts
                )
                for lane in range(lanes):
                    value = (
                        1
                        if pos == 0
                        else self.public_values_list[lane][pos - 1]
                    )
                    bindings[lane].append(
                        PublicBinding(
                            var_index=idx,
                            value=value,
                            opening=openings[lane],
                        )
                    )

        self._proofs = [
            SnarkProof(
                commitment=self._commitments[lane],
                constraint_sumcheck=self._constraint_proofs[lane],
                va=self._abc_claims[lane][0],
                vb=self._abc_claims[lane][1],
                vc=self._abc_claims[lane][2],
                witness_sumcheck=self._witness_proofs[lane],
                vz=vzs[lane],
                witness_opening=witness_openings[lane],
                public_bindings=bindings[lane],
            )
            for lane in range(lanes)
        ]
