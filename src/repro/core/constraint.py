"""Sum-check prover for the R1CS constraint polynomial.

Sum-check #1 of the Spartan-style protocol proves

    0 = Σ_{x ∈ {0,1}^m}  eq(τ, x) · ( Ãz(x)·B̃z(x) − C̃z(x) )

The summand is a product-minus-product of multilinears: degree 3 per
variable.  Each round emits the round polynomial's evaluations at
``t = 0, 1, 2, 3`` and folds all four tables at the verifier's challenge.
The generic degree-3 round checks of
:func:`repro.sumcheck.verifier.verify_product_rounds` verify it — the
verifier never needs to know the summand's internal structure, only its
degree.
"""

from __future__ import annotations

from typing import List, Sequence, Tuple

from ..errors import SumcheckError
from ..field.prime_field import PrimeField
from ..kernels import field_kernels as _kernels
from ..kernels.dispatch import kernels_enabled

try:
    import numpy as _np

    from ..field import fast61 as _f61
except ImportError:  # pragma: no cover - numpy is part of the base image
    _np = None
    _f61 = None

DEGREE = 3


class ConstraintSumcheckProver:
    """Round-at-a-time prover for ``Σ eq·(az·bz − cz)``."""

    def __init__(
        self,
        field: PrimeField,
        eq_tab: Sequence[int],
        az: Sequence[int],
        bz: Sequence[int],
        cz: Sequence[int],
    ):
        length = len(eq_tab)
        n = length.bit_length() - 1
        if length != 1 << n or n == 0:
            raise SumcheckError(f"table length must be 2^n with n >= 1, got {length}")
        if not (len(az) == len(bz) == len(cz) == length):
            raise SumcheckError("all four tables must have equal length")
        p = field.modulus
        self.field = field
        self.num_vars = n
        state = None
        if (
            _f61 is not None
            and kernels_enabled()
            and p == _f61._P61_INT
            and length >= 32
        ):
            # Array state: the four tables live as uint64 arrays for the
            # whole sum-check, so rounds never convert list↔array.
            try:
                state = [
                    _np.asarray(t, dtype=_np.uint64) for t in (eq_tab, az, bz, cz)
                ]
                state = [a % _f61.P61 if (a >= _f61.P61).any() else a for a in state]
            except (OverflowError, TypeError, ValueError):
                state = None  # negative / oversized entries: take the int path
        if state is not None:
            self._eq, self._az, self._bz, self._cz = state
        else:
            self._eq = [v % p for v in eq_tab]
            self._az = [v % p for v in az]
            self._bz = [v % p for v in bz]
            self._cz = [v % p for v in cz]
        self._round = 0
        self.claimed_sum = _kernels.constraint_claimed_sum(
            field, self._eq, self._az, self._bz, self._cz
        )

    @property
    def rounds_remaining(self) -> int:
        return self.num_vars - self._round

    def round_polynomial(self) -> List[int]:
        """Evaluations of this round's g at t = 0, 1, 2, 3."""
        if self._round >= self.num_vars:
            raise SumcheckError("sum-check already complete")
        return _kernels.constraint_round_cubic(
            self.field, self._eq, self._az, self._bz, self._cz
        )

    def fold(self, r: int) -> None:
        if self._round >= self.num_vars:
            raise SumcheckError("sum-check already complete")
        self._eq, self._az, self._bz, self._cz = _kernels.fold_product_tables(
            self.field, (self._eq, self._az, self._bz, self._cz), r
        )
        self._round += 1

    def final_values(self) -> Tuple[int, int, int, int]:
        """(eq, Ãz, B̃z, C̃z) at the fully bound point."""
        if self._round != self.num_vars:
            raise SumcheckError(
                f"{self.rounds_remaining} rounds remaining; cannot finalize"
            )
        # int() unwraps numpy scalars from array state — callers do big-int
        # arithmetic, and Python math on np.uint64 silently wraps mod 2^64.
        return (
            int(self._eq[0]),
            int(self._az[0]),
            int(self._bz[0]),
            int(self._cz[0]),
        )

    def final_value(self) -> int:
        e, a, b, c = self.final_values()
        return (e * (a * b - c)) % self.field.modulus
