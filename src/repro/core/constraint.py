"""Sum-check prover for the R1CS constraint polynomial.

Sum-check #1 of the Spartan-style protocol proves

    0 = Σ_{x ∈ {0,1}^m}  eq(τ, x) · ( Ãz(x)·B̃z(x) − C̃z(x) )

The summand is a product-minus-product of multilinears: degree 3 per
variable.  Each round emits the round polynomial's evaluations at
``t = 0, 1, 2, 3`` and folds all four tables at the verifier's challenge.
The generic degree-3 round checks of
:func:`repro.sumcheck.verifier.verify_product_rounds` verify it — the
verifier never needs to know the summand's internal structure, only its
degree.
"""

from __future__ import annotations

from typing import List, Sequence, Tuple

from ..errors import SumcheckError
from ..field.prime_field import PrimeField

DEGREE = 3


class ConstraintSumcheckProver:
    """Round-at-a-time prover for ``Σ eq·(az·bz − cz)``."""

    def __init__(
        self,
        field: PrimeField,
        eq_tab: Sequence[int],
        az: Sequence[int],
        bz: Sequence[int],
        cz: Sequence[int],
    ):
        length = len(eq_tab)
        n = length.bit_length() - 1
        if length != 1 << n or n == 0:
            raise SumcheckError(f"table length must be 2^n with n >= 1, got {length}")
        if not (len(az) == len(bz) == len(cz) == length):
            raise SumcheckError("all four tables must have equal length")
        p = field.modulus
        self.field = field
        self.num_vars = n
        self._eq = [v % p for v in eq_tab]
        self._az = [v % p for v in az]
        self._bz = [v % p for v in bz]
        self._cz = [v % p for v in cz]
        self._round = 0
        self.claimed_sum = (
            sum(e * (a * b - c) for e, a, b, c in zip(self._eq, az, bz, cz)) % p
        )

    @property
    def rounds_remaining(self) -> int:
        return self.num_vars - self._round

    def round_polynomial(self) -> List[int]:
        """Evaluations of this round's g at t = 0, 1, 2, 3."""
        if self._round >= self.num_vars:
            raise SumcheckError("sum-check already complete")
        p = self.field.modulus
        half = len(self._eq) // 2
        evals = [0, 0, 0, 0]
        eq, az, bz, cz = self._eq, self._az, self._bz, self._cz
        for b in range(half):
            e_lo, e_hi = eq[b], eq[b + half]
            a_lo, a_hi = az[b], az[b + half]
            b_lo, b_hi = bz[b], bz[b + half]
            c_lo, c_hi = cz[b], cz[b + half]
            de = e_hi - e_lo
            da = a_hi - a_lo
            db = b_hi - b_lo
            dc = c_hi - c_lo
            e_t, a_t, b_t, c_t = e_lo, a_lo, b_lo, c_lo
            for t in range(DEGREE + 1):
                evals[t] = (evals[t] + e_t * (a_t * b_t - c_t)) % p
                if t < DEGREE:
                    e_t += de
                    a_t += da
                    b_t += db
                    c_t += dc
        return evals

    def fold(self, r: int) -> None:
        if self._round >= self.num_vars:
            raise SumcheckError("sum-check already complete")
        p = self.field.modulus
        half = len(self._eq) // 2
        r %= p
        for name in ("_eq", "_az", "_bz", "_cz"):
            tab = getattr(self, name)
            setattr(
                self,
                name,
                [(tab[b] + r * (tab[b + half] - tab[b])) % p for b in range(half)],
            )
        self._round += 1

    def final_values(self) -> Tuple[int, int, int, int]:
        """(eq, Ãz, B̃z, C̃z) at the fully bound point."""
        if self._round != self.num_vars:
            raise SumcheckError(
                f"{self.rounds_remaining} rounds remaining; cannot finalize"
            )
        return (self._eq[0], self._az[0], self._bz[0], self._cz[0])

    def final_value(self) -> int:
        e, a, b, c = self.final_values()
        return (e * (a * b - c)) % self.field.modulus
