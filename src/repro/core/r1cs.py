"""Rank-1 constraint systems (R1CS) over prime fields.

The paper reports circuit scale as "the number of multiplication gates in
the circuit compiled from the function to be proved" (§6.3).  Each
multiplication gate compiles to exactly one R1CS constraint
``⟨A_i, z⟩ · ⟨B_i, z⟩ = ⟨C_i, z⟩`` (addition gates fold into the linear
combinations for free), so R1CS constraint count is the paper's scale S.

Matrices are sparse (list of ``(column, coeff)`` per row).  Beyond plain
satisfaction checking, this module implements the two algebraic queries
the Spartan-style protocol needs:

* ``matvec`` — the tables Az, Bz, Cz feeding sum-check #1.
* ``combined_row_table`` / ``mle_eval`` — the O(nnz) computations of
  ``Σ_i eq(r_x, i)·M[i][·]`` and ``M̃(r_x, r_y)`` for sum-check #2 and the
  verifier's final check.

Constraint and variable counts are padded to powers of two (hypercube
domains); index 0 of the witness vector is pinned to the constant 1.
"""

from __future__ import annotations

from typing import List, Sequence, Tuple

from ..errors import CircuitError
from ..field import fast61 as _f61
from ..field.multilinear import eq_table
from ..field.prime_field import PrimeField
from ..field.primes import MERSENNE61
from ..kernels.dispatch import kernels_enabled

SparseRow = List[Tuple[int, int]]


def next_power_of_two(n: int) -> int:
    """Smallest power of two >= n (with next_power_of_two(0) == 1)."""
    if n <= 1:
        return 1
    return 1 << (n - 1).bit_length()


class R1CS:
    """A sparse R1CS instance ``(Az) ∘ (Bz) = Cz``.

    Attributes:
        field:            The prime field.
        num_constraints:  Logical (unpadded) constraint count — the scale S.
        num_vars:         Logical witness length (including the leading 1).
        a_rows/b_rows/c_rows: Sparse rows, one triple per constraint.
    """

    def __init__(
        self,
        field: PrimeField,
        num_vars: int,
        a_rows: List[SparseRow],
        b_rows: List[SparseRow],
        c_rows: List[SparseRow],
    ):
        if not (len(a_rows) == len(b_rows) == len(c_rows)):
            raise CircuitError("A, B, C must have equal row counts")
        if num_vars < 1:
            raise CircuitError("witness must contain at least the constant 1")
        self.field = field
        self.num_constraints = len(a_rows)
        self.num_vars = num_vars
        self.a_rows = a_rows
        self.b_rows = b_rows
        self.c_rows = c_rows
        for rows in (a_rows, b_rows, c_rows):
            for i, row in enumerate(rows):
                for j, coeff in row:
                    if not 0 <= j < num_vars:
                        raise CircuitError(f"constraint {i}: column {j} out of range")
                    if coeff % field.modulus == 0:
                        raise CircuitError(f"constraint {i}: zero coefficient stored")

    # -- padded shapes --------------------------------------------------------

    @property
    def padded_constraints(self) -> int:
        return next_power_of_two(max(2, self.num_constraints))

    @property
    def constraint_vars(self) -> int:
        """m such that constraints live on {0,1}^m."""
        return self.padded_constraints.bit_length() - 1

    @property
    def padded_vars(self) -> int:
        return next_power_of_two(max(4, self.num_vars))

    @property
    def witness_vars(self) -> int:
        """s such that the witness lives on {0,1}^s."""
        return self.padded_vars.bit_length() - 1

    def nnz(self) -> int:
        return sum(
            len(r)
            for rows in (self.a_rows, self.b_rows, self.c_rows)
            for r in rows
        )

    # -- evaluation -----------------------------------------------------------------

    def pad_witness(self, z: Sequence[int]) -> List[int]:
        if len(z) != self.num_vars:
            raise CircuitError(
                f"witness length {len(z)} != num_vars {self.num_vars}"
            )
        p = self.field.modulus
        if z[0] % p != 1:
            raise CircuitError("witness[0] must be the constant 1")
        padded = [v % p for v in z] + [0] * (self.padded_vars - len(z))
        return padded

    def _matvec(self, rows: List[SparseRow], z: Sequence[int]) -> List[int]:
        p = self.field.modulus
        out = [0] * self.padded_constraints
        for i, row in enumerate(rows):
            acc = 0
            for j, coeff in row:
                acc += coeff * z[j]
            out[i] = acc % p
        return out

    def _f61_ops(self, transpose: bool) -> Tuple[_f61.F61SpMV, ...]:
        """Cached vectorised edge sets for A, B, C (built on first use).

        ``transpose=False`` maps witness → constraints (matvec);
        ``transpose=True`` maps constraints → witness (row combination).
        """
        attr = "_f61_cols" if transpose else "_f61_rows"
        cached = getattr(self, attr, None)
        if cached is None:
            n_vars, n_cons = self.padded_vars, self.padded_constraints
            ops = []
            for rows in (self.a_rows, self.b_rows, self.c_rows):
                src: List[int] = []
                dst: List[int] = []
                wval: List[int] = []
                for i, row in enumerate(rows):
                    for j, v in row:
                        src.append(i if transpose else j)
                        dst.append(j if transpose else i)
                        wval.append(v)
                if transpose:
                    ops.append(_f61.F61SpMV(src, dst, wval, n_cons, n_vars))
                else:
                    ops.append(_f61.F61SpMV(src, dst, wval, n_vars, n_cons))
            cached = tuple(ops)
            setattr(self, attr, cached)
        return cached

    def _use_f61(self) -> bool:
        return kernels_enabled() and self.field.modulus == MERSENNE61

    def matvec_tables(
        self, z: Sequence[int]
    ) -> Tuple[List[int], List[int], List[int]]:
        """Return (Az, Bz, Cz) over the padded constraint domain."""
        padded = self.pad_witness(z) if len(z) == self.num_vars else list(z)
        if self._use_f61():
            x = _f61.as_f61(padded)
            op_a, op_b, op_c = self._f61_ops(transpose=False)
            return (
                op_a.apply(x).tolist(),
                op_b.apply(x).tolist(),
                op_c.apply(x).tolist(),
            )
        return (
            self._matvec(self.a_rows, padded),
            self._matvec(self.b_rows, padded),
            self._matvec(self.c_rows, padded),
        )

    def matvec_tables_lanes(self, z_lanes) -> Tuple[object, object, object]:
        """Laned matvec: ``[L, padded_vars] → three [L, padded_constraints]``.

        One batched SpMV per matrix pushes every lane's witness through
        the edge set together (S31).  Requires the vectorised Mersenne-61
        path; callers gate on :meth:`_use_f61` before building lanes.
        """
        if not self._use_f61():
            raise CircuitError("matvec_tables_lanes requires the fast61 path")
        x = _f61.as_f61(z_lanes)
        op_a, op_b, op_c = self._f61_ops(transpose=False)
        return (op_a.apply_batch(x), op_b.apply_batch(x), op_c.apply_batch(x))

    def is_satisfied(self, z: Sequence[int]) -> bool:
        p = self.field.modulus
        az, bz, cz = self.matvec_tables(z)
        return all((a * b - c) % p == 0 for a, b, c in zip(az, bz, cz))

    def violations(self, z: Sequence[int]) -> List[int]:
        """Indices of unsatisfied constraints (diagnostic helper)."""
        p = self.field.modulus
        az, bz, cz = self.matvec_tables(z)
        return [
            i
            for i, (a, b, c) in enumerate(zip(az, bz, cz))
            if (a * b - c) % p != 0
        ]

    # -- multilinear-extension queries ---------------------------------------------------

    def combined_row_table(
        self,
        eq_x: Sequence[int],
        coeff_a: int,
        coeff_b: int,
        coeff_c: int,
    ) -> List[int]:
        """Table ``T[j] = Σ_i eq_x[i]·(cA·A + cB·B + cC·C)[i][j]``.

        O(nnz) — this is the second sum-check's left factor.
        ``eq_x`` must cover the padded constraint domain.
        """
        if len(eq_x) != self.padded_constraints:
            raise CircuitError(
                f"eq_x length {len(eq_x)} != padded constraints "
                f"{self.padded_constraints}"
            )
        p = self.field.modulus
        if self._use_f61():
            # Vectorised: scale the eq-table by each batching coefficient
            # and push it through the transposed edge sets.
            eq_arr = _f61.as_f61(list(eq_x))
            total = None
            for coeff, op in zip(
                (coeff_a, coeff_b, coeff_c), self._f61_ops(transpose=True)
            ):
                coeff %= p
                if coeff == 0:
                    continue
                part = op.apply(_f61.f61_scale(coeff, eq_arr))
                total = part if total is None else _f61.f61_add(total, part)
            if total is None:
                return [0] * self.padded_vars
            return total.tolist()
        out = [0] * self.padded_vars
        for coeff, rows in (
            (coeff_a, self.a_rows),
            (coeff_b, self.b_rows),
            (coeff_c, self.c_rows),
        ):
            coeff %= p
            if coeff == 0:
                continue
            for i, row in enumerate(rows):
                scale = (coeff * eq_x[i]) % p
                if scale == 0:
                    continue
                for j, v in row:
                    out[j] = (out[j] + scale * v) % p
        return out

    def combined_row_table_lanes(
        self,
        eq_lanes,
        coeffs_a: Sequence[int],
        coeffs_b: Sequence[int],
        coeffs_c: Sequence[int],
    ):
        """Laned :meth:`combined_row_table`: per-lane eq-tables/coefficients.

        ``eq_lanes`` is ``[L, padded_constraints]``; each coefficient
        sequence holds one batching challenge per lane.  Returns a
        ``[L, padded_vars]`` array.  A zero coefficient contributes a
        zero row through the edge set, so (unlike the scalar path's
        skip) no lane-dependent branching is needed — the result is
        identical value-for-value.
        """
        if not self._use_f61():
            raise CircuitError("combined_row_table_lanes requires the fast61 path")
        p = self.field.modulus
        eq_arr = _f61.as_f61(eq_lanes)
        if eq_arr.ndim != 2 or eq_arr.shape[1] != self.padded_constraints:
            raise CircuitError(
                f"eq_lanes shape {eq_arr.shape} != (L, {self.padded_constraints})"
            )
        total = None
        for coeffs, op in zip(
            (coeffs_a, coeffs_b, coeffs_c), self._f61_ops(transpose=True)
        ):
            c_col = _f61.as_f61([c % p for c in coeffs])[:, None]
            part = op.apply_batch(_f61.f61_mul(eq_arr, c_col))
            total = part if total is None else _f61.f61_add(total, part)
        return total

    def mle_eval(
        self, rows: List[SparseRow], eq_x: Sequence[int], eq_y: Sequence[int]
    ) -> int:
        """``M̃(r_x, r_y) = Σ_{(i,j,v)} v·eq_x[i]·eq_y[j]`` in O(nnz)."""
        p = self.field.modulus
        total = 0
        for i, row in enumerate(rows):
            ex = eq_x[i]
            if ex == 0:
                continue
            acc = 0
            for j, v in row:
                acc += v * eq_y[j]
            total = (total + ex * acc) % p
        return total

    def mle_evals_abc(
        self, point_x: Sequence[int], point_y: Sequence[int]
    ) -> Tuple[int, int, int]:
        """Evaluate Ã, B̃, C̃ at ``(point_x, point_y)`` (verifier's check)."""
        eq_x = eq_table(self.field, point_x)
        eq_y = eq_table(self.field, point_y)
        return (
            self.mle_eval(self.a_rows, eq_x, eq_y),
            self.mle_eval(self.b_rows, eq_x, eq_y),
            self.mle_eval(self.c_rows, eq_x, eq_y),
        )

    # -- pickling -------------------------------------------------------------------------

    def __getstate__(self) -> dict:
        """Drop the vectorised edge-set caches — they rebuild on first use
        and would otherwise inflate worker-bound spec pickles by O(nnz)."""
        state = dict(self.__dict__)
        state.pop("_f61_rows", None)
        state.pop("_f61_cols", None)
        return state

    def __setstate__(self, state: dict) -> None:
        self.__dict__.update(state)

    # -- identity -------------------------------------------------------------------------

    def digest(self, hasher=None) -> bytes:
        """A hash binding the constraint system (absorbed into transcripts).

        O(nnz) to serialize, so the default-hasher digest is memoized on
        the instance — the spec cache and transcripts request it per
        proof.  (Rows are never mutated after construction.)
        """
        from ..hashing.hashers import get_hasher

        if hasher is None:
            cached = getattr(self, "_default_digest", None)
            if cached is not None:
                return cached
            digest = self.digest(get_hasher("sha256-hw"))
            self._default_digest = digest
            return digest
        parts = [
            self.field.modulus.to_bytes(64, "little"),
            self.num_constraints.to_bytes(8, "little"),
            self.num_vars.to_bytes(8, "little"),
        ]
        for rows in (self.a_rows, self.b_rows, self.c_rows):
            for i, row in enumerate(rows):
                for j, v in row:
                    parts.append(
                        i.to_bytes(8, "little")
                        + j.to_bytes(8, "little")
                        + self.field.to_bytes(v)
                    )
        return hasher.hash_bytes(b"".join(parts))

    def __repr__(self) -> str:
        return (
            f"R1CS(S={self.num_constraints}, vars={self.num_vars}, "
            f"nnz={self.nnz()}, field={self.field.name})"
        )
