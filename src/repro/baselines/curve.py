"""Short-Weierstrass elliptic-curve arithmetic for the MSM baseline.

The first category of ZKP protocols (Groth16, Plonk — the paper's
Libsnark/Bellperson baselines) spends most of its prover time in
multi-scalar multiplication over an elliptic-curve group.  This module
implements generic affine/Jacobian point arithmetic so the MSM baseline
runs a real group law; the default instantiation is secp256k1 (a standard
256-bit curve — the baselines' BN254/BLS12-381 differ only in constants).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Tuple

from ..errors import FieldError
from ..field.prime_field import PrimeField


@dataclass(frozen=True)
class CurveParams:
    """y² = x³ + a·x + b over GF(p), with a generator of prime order n."""

    name: str
    p: int
    a: int
    b: int
    gx: int
    gy: int
    order: int


SECP256K1 = CurveParams(
    name="secp256k1",
    p=0xFFFFFFFFFFFFFFFFFFFFFFFFFFFFFFFFFFFFFFFFFFFFFFFFFFFFFFFEFFFFFC2F,
    a=0,
    b=7,
    gx=0x79BE667EF9DCBBAC55A06295CE870B07029BFCDB2DCE28D959F2815B16F81798,
    gy=0x483ADA7726A3C4655DA4FBFC0E1108A8FD17B448A68554199C47D08FFB10D4B8,
    order=0xFFFFFFFFFFFFFFFFFFFFFFFFFFFFFFFEBAAEDCE6AF48A03BBFD25E8CD0364141,
)


class EllipticCurve:
    """A short-Weierstrass curve with affine point operations.

    Points are ``(x, y)`` tuples of raw ints; ``None`` is the identity.

    >>> curve = EllipticCurve(SECP256K1)
    >>> g = curve.generator
    >>> curve.add(g, curve.neg(g)) is None
    True
    """

    def __init__(self, params: CurveParams = SECP256K1):
        self.params = params
        self.field = PrimeField(params.p, name=f"{params.name}-base", check=False)
        self.generator: Tuple[int, int] = (params.gx, params.gy)
        if not self.is_on_curve(self.generator):
            raise FieldError(f"generator not on curve {params.name}")

    def is_on_curve(self, point: Optional[Tuple[int, int]]) -> bool:
        if point is None:
            return True
        x, y = point
        p = self.params.p
        return (y * y - (x * x * x + self.params.a * x + self.params.b)) % p == 0

    def neg(self, point: Optional[Tuple[int, int]]) -> Optional[Tuple[int, int]]:
        if point is None:
            return None
        x, y = point
        return (x, (-y) % self.params.p)

    def add(
        self,
        p1: Optional[Tuple[int, int]],
        p2: Optional[Tuple[int, int]],
    ) -> Optional[Tuple[int, int]]:
        """Full affine addition (handles identity and doubling)."""
        if p1 is None:
            return p2
        if p2 is None:
            return p1
        p = self.params.p
        x1, y1 = p1
        x2, y2 = p2
        if x1 == x2:
            if (y1 + y2) % p == 0:
                return None
            # Doubling: λ = (3x² + a) / 2y.
            lam = (3 * x1 * x1 + self.params.a) * pow(2 * y1, p - 2, p) % p
        else:
            lam = (y2 - y1) * pow(x2 - x1, p - 2, p) % p
        x3 = (lam * lam - x1 - x2) % p
        y3 = (lam * (x1 - x3) - y1) % p
        return (x3, y3)

    def double(self, point: Optional[Tuple[int, int]]) -> Optional[Tuple[int, int]]:
        return self.add(point, point)

    def scalar_mul(
        self, k: int, point: Optional[Tuple[int, int]]
    ) -> Optional[Tuple[int, int]]:
        """Double-and-add scalar multiplication."""
        k %= self.params.order
        result: Optional[Tuple[int, int]] = None
        addend = point
        while k:
            if k & 1:
                result = self.add(result, addend)
            addend = self.double(addend)
            k >>= 1
        return result

    def random_points(self, count: int, seed: int = 0):
        """Deterministic pseudorandom points (multiples of the generator)."""
        import random

        rng = random.Random(f"curve-points/{seed}")
        points = []
        current = self.generator
        for _ in range(count):
            step = rng.randrange(1, 1 << 64)
            current = self.add(current, self.scalar_mul(step, self.generator))
            points.append(current)
        return points
