"""Vendor performance models for the paper's closed/corpus baselines.

We implement every baseline *algorithm* in this repository (sequential CPU
proving, naive GPU scheduling, NTT+MSM pipelines).  For the baselines whose
absolute performance cannot be re-measured without their exact software
stacks (Bellperson, Libsnark, zkCNN, ZKML, ZENO), the tables price our
operation counts with models fit to the paper's own measurements — each fit
documented in :mod:`repro.gpu.costs` or here.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict

from ..errors import SimulationError
from ..gpu.costs import (
    BELLPERSON_MEMORY_GB,
    BELLPERSON_MSM,
    BELLPERSON_NTT,
    BELLPERSON_TOTAL,
    LIBSNARK_MSM,
    LIBSNARK_NTT,
    LIBSNARK_TOTAL,
)

#: Bellperson per-device slowdown relative to GH200, from Tables 7–8
#: (latency column: 6.579 / 3.817 / 2.967 / 2.703 s at S = 2^20 versus the
#: 2.204 s GH200 row of Table 7).
BELLPERSON_DEVICE_FACTOR: Dict[str, float] = {
    "GH200": 1.0,
    "V100": 2.985,
    "A100": 1.732,
    "3090Ti": 1.346,
    "H100": 1.226,
}


@dataclass(frozen=True)
class SystemTimes:
    """One system's per-proof times at one scale (a Table 7 row slice)."""

    msm_seconds: float
    ntt_seconds: float
    total_seconds: float


def libsnark_times(scale: int) -> SystemTimes:
    """Libsnark (CPU, Groth16) amortized per-proof times at scale S."""
    return SystemTimes(
        msm_seconds=LIBSNARK_MSM.time_seconds(scale),
        ntt_seconds=max(0.0, LIBSNARK_NTT.time_seconds(scale)),
        total_seconds=LIBSNARK_TOTAL.time_seconds(scale),
    )


def bellperson_times(scale: int, device: str = "GH200") -> SystemTimes:
    """Bellperson (GPU, Groth16) amortized per-proof times at scale S."""
    try:
        factor = BELLPERSON_DEVICE_FACTOR[device]
    except KeyError:
        raise SimulationError(
            f"no Bellperson factor for device {device!r}"
        ) from None
    return SystemTimes(
        msm_seconds=BELLPERSON_MSM.time_seconds(scale) * factor,
        ntt_seconds=BELLPERSON_NTT.time_seconds(scale) * factor,
        total_seconds=BELLPERSON_TOTAL.time_seconds(scale) * factor,
    )


def bellperson_memory_gb(scale: int) -> float:
    """Table 10's Bellperson per-proof device memory (interpolated)."""
    log_s = scale.bit_length() - 1
    if log_s in BELLPERSON_MEMORY_GB:
        return BELLPERSON_MEMORY_GB[log_s]
    keys = sorted(BELLPERSON_MEMORY_GB)
    if log_s < keys[0]:
        return BELLPERSON_MEMORY_GB[keys[0]] * scale / (1 << keys[0])
    if log_s > keys[-1]:
        return BELLPERSON_MEMORY_GB[keys[-1]] * scale / (1 << keys[-1])
    lo = max(k for k in keys if k <= log_s)
    hi = min(k for k in keys if k >= log_s)
    if lo == hi:
        return BELLPERSON_MEMORY_GB[lo]
    frac = (log_s - lo) / (hi - lo)
    return BELLPERSON_MEMORY_GB[lo] * (1 - frac) + BELLPERSON_MEMORY_GB[hi] * frac


@dataclass(frozen=True)
class ZkmlBaseline:
    """A verifiable-ML system's Table 11 row."""

    name: str
    throughput_per_second: float
    latency_seconds: float
    accuracy_percent: float


#: Table 11: CPU-based verifiable CNN systems on VGG-16 / CIFAR-10.
ZKML_BASELINES: Dict[str, ZkmlBaseline] = {
    "zkCNN": ZkmlBaseline("zkCNN", 0.0113, 88.3, 90.30),
    "ZKML": ZkmlBaseline("ZKML", 0.0017, 637.0, 90.37),
    "ZENO": ZkmlBaseline("ZENO", 0.0208, 48.0, 84.19),
}

#: The paper's own VGG-16 model accuracy (they trained it themselves).
OURS_ACCURACY_PERCENT = 93.93
