"""Baselines (system S10 in DESIGN.md).

Functional implementations of every baseline *category* in the paper's
evaluation plus calibrated vendor models for their absolute performance:

* NTT (radix-2, Goldilocks) and elliptic-curve MSM (naive + Pippenger) —
  the first-category workload (Libsnark/Bellperson).
* :class:`GrothLikeProver` — the NTT+MSM prover pipeline, runnable.
* :class:`SequentialCpuProver` / Orion&Arkworks rates — the same-modules
  CPU baseline.
* Vendor models (Table 7/8/10/11 fits) in :mod:`repro.baselines.vendor`.
"""

from .cpu_prover import (
    CpuModuleTimes,
    SequentialCpuProver,
    TABLE7_CPU_COSTS,
    orion_arkworks_times,
)
from .curve import SECP256K1, CurveParams, EllipticCurve
from .groth_like import (
    GrothLikeProver,
    GrothProofArtifact,
    GrothWorkload,
    groth_memory_bytes,
)
from .msm import msm_naive, msm_pippenger, msm_work_units
from .ntt import (
    GOLDILOCKS_FIELD,
    GOLDILOCKS_GENERATOR,
    NTT,
    ntt_work_units,
    polymul_ntt,
    root_of_unity,
    two_adicity,
)
from .vendor import (
    BELLPERSON_DEVICE_FACTOR,
    OURS_ACCURACY_PERCENT,
    SystemTimes,
    ZKML_BASELINES,
    ZkmlBaseline,
    bellperson_memory_gb,
    bellperson_times,
    libsnark_times,
)

__all__ = [
    "NTT",
    "polymul_ntt",
    "root_of_unity",
    "two_adicity",
    "ntt_work_units",
    "GOLDILOCKS_FIELD",
    "GOLDILOCKS_GENERATOR",
    "EllipticCurve",
    "CurveParams",
    "SECP256K1",
    "msm_naive",
    "msm_pippenger",
    "msm_work_units",
    "GrothLikeProver",
    "GrothWorkload",
    "GrothProofArtifact",
    "groth_memory_bytes",
    "SequentialCpuProver",
    "CpuModuleTimes",
    "orion_arkworks_times",
    "TABLE7_CPU_COSTS",
    "SystemTimes",
    "libsnark_times",
    "bellperson_times",
    "bellperson_memory_gb",
    "BELLPERSON_DEVICE_FACTOR",
    "ZkmlBaseline",
    "ZKML_BASELINES",
    "OURS_ACCURACY_PERCENT",
]
