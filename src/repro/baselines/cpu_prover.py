"""The "Orion & Arkworks" CPU baseline.

The paper's closest-algorithm baseline is a CPU implementation using the
*same* modules as the accelerated system — Orion for the linear-time
encoder and Merkle trees, Arkworks for sum-check.  In this reproduction
that baseline is simply our own functional prover executed sequentially on
the host: :class:`SequentialCpuProver` wraps
:class:`~repro.core.prover.SnarkProver` with per-module timing, and
:func:`orion_arkworks_times` prices the calibrated system workload at the
Table 3–5 CPU rates for table-scale runs.
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import Dict, Optional, Sequence

from ..core.prover import SnarkProver
from ..gpu.costs import CpuCostModel
from ..pipeline.system import (
    ENCODER_MACS_PER_GATE,
    HASHES_PER_GATE,
    SUMCHECK_ENTRIES_PER_GATE,
)


#: CPU rates fit to Table 7's Orion&Arkworks column at S = 2^20 (249.8 ms
#: Merkle / 2810.8 ms sum-check / 623.3 ms encoder per proof).  These are
#: faster than the rates Tables 3–5 imply — the paper's own CPU baselines
#: are not mutually consistent across tables (different workload shapes);
#: we calibrate each experiment against its own table.
TABLE7_CPU_COSTS = CpuCostModel(
    hash_seconds=33.2e-9,
    sumcheck_entry_seconds=63.4e-9,
    encoder_mac_seconds=32.5e-9,
)


@dataclass(frozen=True)
class CpuModuleTimes:
    """Per-module amortized times of the CPU baseline (a Table 7 row)."""

    merkle_seconds: float
    sumcheck_seconds: float
    encoder_seconds: float

    @property
    def total_seconds(self) -> float:
        return self.merkle_seconds + self.sumcheck_seconds + self.encoder_seconds


def orion_arkworks_times(
    scale: int, costs: Optional[CpuCostModel] = None
) -> CpuModuleTimes:
    """Price the calibrated per-gate workload at the CPU baseline rates."""
    costs = costs or TABLE7_CPU_COSTS
    return CpuModuleTimes(
        merkle_seconds=HASHES_PER_GATE * scale * costs.hash_seconds,
        sumcheck_seconds=SUMCHECK_ENTRIES_PER_GATE
        * scale
        * costs.sumcheck_entry_seconds,
        encoder_seconds=ENCODER_MACS_PER_GATE * scale * costs.encoder_mac_seconds,
    )


class SequentialCpuProver:
    """Times the real Python prover module-by-module (functional baseline).

    This is what actually runs when you benchmark the repository on a
    laptop: real field arithmetic, real hashing — the CPU category of the
    paper made concrete.
    """

    def __init__(self, prover: SnarkProver):
        self.prover = prover

    def prove_timed(
        self, witness: Sequence[int], public_values: Sequence[int]
    ) -> Dict[str, float]:
        """Prove once, returning {'total_seconds': …} wall-clock stats."""
        start = time.perf_counter()
        proof = self.prover.prove(witness, public_values)
        total = time.perf_counter() - start
        return {
            "total_seconds": total,
            "proof_bytes": float(proof.size_bytes(self.prover.field)),
        }
