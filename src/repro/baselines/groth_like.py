"""A Groth16-shaped prover pipeline (the Libsnark/Bellperson workload).

This is a *workload-faithful* baseline, not a secure SNARK: it performs the
same computational pipeline as a Groth16 prover — witness polynomial
interpolation and quotient computation via NTTs, then multi-scalar
multiplications over an elliptic-curve group — using our real NTT and MSM
implementations, and reports the operation counts the GPU cost model
prices.  (A sound Groth16 needs a pairing and a trusted setup, neither of
which affects prover-side performance shape.)
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import Optional, Sequence

from ..errors import ProofError
from ..field.prime_field import PrimeField
from .curve import EllipticCurve, SECP256K1
from .msm import msm_pippenger, msm_work_units
from .ntt import GOLDILOCKS_FIELD, NTT, ntt_work_units


def _next_pow2(n: int) -> int:
    return 1 << max(1, (n - 1).bit_length())


@dataclass(frozen=True)
class GrothWorkload:
    """Operation counts of one Groth16-style proof at scale S.

    Groth16 over an S-gate QAP performs:

    * 7 NTTs of size ≈ 2S (witness evaluation + quotient computation);
    * 3 G1 MSMs of size ≈ S and 1 G2 MSM of size ≈ S (G2 ≈ 3× G1 cost).
    """

    scale: int

    @property
    def domain(self) -> int:
        return _next_pow2(2 * self.scale)

    @property
    def ntt_count(self) -> int:
        return 7

    @property
    def ntt_butterflies(self) -> int:
        return self.ntt_count * ntt_work_units(self.domain)

    @property
    def msm_group_adds(self) -> int:
        g1 = 3 * msm_work_units(self.scale)
        g2 = 3 * msm_work_units(self.scale)  # one G2 MSM at ~3x G1 cost
        return g1 + g2


@dataclass
class GrothProofArtifact:
    """The three group elements a Groth16-shaped proof carries, plus
    timing/operation metadata from actually running the pipeline."""

    pi_a: object
    pi_b: object
    pi_c: object
    ntt_seconds: float
    msm_seconds: float
    total_seconds: float
    workload: GrothWorkload


class GrothLikeProver:
    """Runs the NTT+MSM pipeline for real at small scales.

    Used by the functional microbenchmarks; at table scales (2^18+) the
    vendor models in :mod:`repro.gpu.costs` price the same
    :class:`GrothWorkload` operation counts.
    """

    def __init__(
        self,
        field: Optional[PrimeField] = None,
        curve: Optional[EllipticCurve] = None,
    ):
        self.field = field or GOLDILOCKS_FIELD
        self.curve = curve or EllipticCurve(SECP256K1)

    def prove(self, witness: Sequence[int]) -> GrothProofArtifact:
        """Run the full pipeline on a witness of length S."""
        scale = len(witness)
        if scale < 2:
            raise ProofError("witness must have at least 2 entries")
        workload = GrothWorkload(scale=scale)
        domain = workload.domain
        p = self.field.modulus
        padded = [w % p for w in witness] + [0] * (domain - scale)

        t0 = time.perf_counter()
        ntt = NTT(domain, self.field)
        evals = ntt.forward(padded)
        # Quotient-style round trips (structure of the 7-NTT pipeline).
        coeffs = ntt.inverse(evals)
        shifted = ntt.forward([(c * 7) % p for c in coeffs])
        prod = [(a * b) % p for a, b in zip(evals, shifted)]
        quotient = ntt.inverse(prod)
        _ = ntt.forward(quotient)
        _ = ntt.inverse(evals)
        t1 = time.perf_counter()

        points = self.curve.random_points(scale, seed=scale)
        scalars = [w % self.curve.params.order or 1 for w in witness]
        pi_a = msm_pippenger(self.curve, scalars, points)
        pi_b = msm_pippenger(self.curve, scalars[::-1], points)
        pi_c = msm_pippenger(
            self.curve, [(s * 3 + 1) % self.curve.params.order for s in scalars], points
        )
        t2 = time.perf_counter()

        return GrothProofArtifact(
            pi_a=pi_a,
            pi_b=pi_b,
            pi_c=pi_c,
            ntt_seconds=t1 - t0,
            msm_seconds=t2 - t1,
            total_seconds=t2 - t0,
            workload=workload,
        )


def groth_memory_bytes(scale: int) -> int:
    """Device memory a Groth16 GPU prover keeps resident per proof.

    The MSM bases (4 sets of S affine points, 64 B each) plus NTT buffers
    (7 × 2S × 32 B) — the preloading working set that Table 10 contrasts
    with the paper's ≈0.4 KB/gate streaming footprint.
    """
    domain = _next_pow2(2 * scale)
    msm_bases = 4 * scale * 64
    ntt_buffers = 7 * domain * 32
    return msm_bases + ntt_buffers
