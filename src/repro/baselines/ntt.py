"""Number-theoretic transform — the expensive module of the *first*
category of ZKP protocols (paper Figure 1, Table 1).

The paper's baselines Libsnark and Bellperson prove with NTT + MSM; we
implement both for real so the baseline category is a working algorithm,
not a stub.  The NTT is an iterative radix-2 Cooley–Tukey butterfly over a
field with high 2-adicity (Goldilocks: p − 1 = 2^32·(2^32 − 1)).
"""

from __future__ import annotations

from typing import List, Optional, Sequence

from ..errors import FieldError
from ..field.prime_field import PrimeField
from ..field.primes import GOLDILOCKS

#: 7 generates the multiplicative group of the Goldilocks field.
GOLDILOCKS_GENERATOR = 7

GOLDILOCKS_FIELD = PrimeField(GOLDILOCKS, name="Goldilocks", check=False)


def two_adicity(p: int) -> int:
    """Largest k with 2^k | p − 1."""
    n = p - 1
    k = 0
    while n % 2 == 0:
        n //= 2
        k += 1
    return k


def root_of_unity(field: PrimeField, order: int, generator: int) -> int:
    """A primitive ``order``-th root of unity (order must be a power of 2)."""
    if order & (order - 1) or order < 1:
        raise FieldError(f"order must be a power of two, got {order}")
    if (field.modulus - 1) % order:
        raise FieldError(
            f"{field.name} has no {order}-th roots (2-adicity "
            f"{two_adicity(field.modulus)})"
        )
    return field.exp(generator, (field.modulus - 1) // order)


def _bit_reverse_permute(values: List[int]) -> None:
    n = len(values)
    j = 0
    for i in range(1, n):
        bit = n >> 1
        while j & bit:
            j ^= bit
            bit >>= 1
        j |= bit
        if i < j:
            values[i], values[j] = values[j], values[i]


class NTT:
    """Forward/inverse NTT over a 2-adic field.

    >>> ntt = NTT(8)
    >>> data = list(range(8))
    >>> ntt.inverse(ntt.forward(data)) == data
    True
    """

    def __init__(
        self,
        size: int,
        field: Optional[PrimeField] = None,
        generator: Optional[int] = None,
    ):
        if size < 2 or size & (size - 1):
            raise FieldError(f"NTT size must be a power of two >= 2, got {size}")
        self.field = field or GOLDILOCKS_FIELD
        gen = generator or GOLDILOCKS_GENERATOR
        self.size = size
        self.omega = root_of_unity(self.field, size, gen)
        self.omega_inv = self.field.inv(self.omega)
        self.size_inv = self.field.inv(size)
        self.butterfly_count = (size // 2) * (size.bit_length() - 1)

    def _transform(self, values: Sequence[int], omega: int) -> List[int]:
        p = self.field.modulus
        n = self.size
        if len(values) != n:
            raise FieldError(f"expected {n} values, got {len(values)}")
        out = [v % p for v in values]
        _bit_reverse_permute(out)
        length = 2
        while length <= n:
            w_len = pow(omega, n // length, p)
            half = length // 2
            for start in range(0, n, length):
                w = 1
                for k in range(start, start + half):
                    u = out[k]
                    t = (out[k + half] * w) % p
                    out[k] = (u + t) % p
                    out[k + half] = (u - t) % p
                    w = (w * w_len) % p
            length <<= 1
        return out

    def forward(self, values: Sequence[int]) -> List[int]:
        """Evaluate the polynomial (coefficients) on the 2^k roots."""
        return self._transform(values, self.omega)

    def inverse(self, values: Sequence[int]) -> List[int]:
        """Interpolate evaluations back to coefficients."""
        p = self.field.modulus
        out = self._transform(values, self.omega_inv)
        return [(v * self.size_inv) % p for v in out]


def polymul_ntt(a: Sequence[int], b: Sequence[int], field: Optional[PrimeField] = None) -> List[int]:
    """Polynomial multiplication via NTT (cross-checked against schoolbook
    in the test suite)."""
    result_len = len(a) + len(b) - 1
    size = 2
    while size < result_len:
        size <<= 1
    ntt = NTT(size, field)
    fa = ntt.forward(list(a) + [0] * (size - len(a)))
    fb = ntt.forward(list(b) + [0] * (size - len(b)))
    p = ntt.field.modulus
    prod = [(x * y) % p for x, y in zip(fa, fb)]
    return ntt.inverse(prod)[:result_len]


def ntt_work_units(size: int) -> int:
    """Butterfly count of one size-``size`` NTT: (n/2)·log2 n."""
    return (size // 2) * (size.bit_length() - 1)
