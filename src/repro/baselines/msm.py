"""Multi-scalar multiplication: naive and Pippenger bucket methods.

MSM computes ``Σ k_i · P_i`` and dominates the prover of the first ZKP
category (Table 1).  The naive method does an independent double-and-add
per term; Pippenger's bucket method slices scalars into windows,
accumulates per-bucket sums, and pays ~``windows · (terms + 2^c)`` group
additions — the algorithm every GPU MSM paper (cuZK, GZKP) accelerates.
"""

from __future__ import annotations

from typing import List, Optional, Sequence, Tuple

from ..errors import FieldError
from .curve import EllipticCurve

Point = Optional[Tuple[int, int]]


def msm_naive(
    curve: EllipticCurve, scalars: Sequence[int], points: Sequence[Point]
) -> Point:
    """Reference ``Σ k_i·P_i`` by independent scalar multiplications."""
    if len(scalars) != len(points):
        raise FieldError("scalar/point count mismatch")
    acc: Point = None
    for k, pt in zip(scalars, points):
        acc = curve.add(acc, curve.scalar_mul(k, pt))
    return acc


def msm_pippenger(
    curve: EllipticCurve,
    scalars: Sequence[int],
    points: Sequence[Point],
    window_bits: Optional[int] = None,
) -> Point:
    """Pippenger's bucket method (cross-checked against the naive MSM)."""
    if len(scalars) != len(points):
        raise FieldError("scalar/point count mismatch")
    if not scalars:
        return None
    n = len(scalars)
    scalar_bits = curve.params.order.bit_length()
    if window_bits is None:
        # The classic n-dependent window choice.
        window_bits = max(1, n.bit_length() - 1)
        window_bits = min(window_bits, 16)
    num_windows = -(-scalar_bits // window_bits)
    mask = (1 << window_bits) - 1

    window_sums: List[Point] = []
    for w in range(num_windows):
        shift = w * window_bits
        buckets: List[Point] = [None] * ((1 << window_bits) - 1)
        for k, pt in zip(scalars, points):
            digit = (k >> shift) & mask
            if digit:
                buckets[digit - 1] = curve.add(buckets[digit - 1], pt)
        # Suffix-sum trick: Σ digit·bucket[digit] with 2·2^c additions.
        running: Point = None
        total: Point = None
        for b in reversed(buckets):
            running = curve.add(running, b)
            total = curve.add(total, running)
        window_sums.append(total)

    acc: Point = None
    for total in reversed(window_sums):
        for _ in range(window_bits):
            acc = curve.double(acc)
        acc = curve.add(acc, total)
    return acc


def msm_work_units(num_terms: int, scalar_bits: int = 256, window_bits: int = 16) -> int:
    """Group-addition count of a Pippenger MSM (the GPU cost-model input)."""
    num_windows = -(-scalar_bits // window_bits)
    return num_windows * (num_terms + 2 * (1 << window_bits))
