"""Command-line interface: regenerate the paper's evaluation artifacts.

Usage::

    python -m repro list                  # available experiments
    python -m repro table3 [--device X]   # one table
    python -m repro fig9                  # utilization traces
    python -m repro all                   # everything
    python -m repro breakdown             # §6.3 speedup decomposition
    python -m repro prove --workers 4     # real proofs on the parallel runtime
    python -m repro prove --backend sharded:pool:2,pool:2
    python -m repro prove --backend pipelined:4   # stage-pipelined threads
    python -m repro serve --requests 60   # streaming service on a synthetic trace

Resilience drills (S25)::

    python -m repro prove --backend resilient:sharded:pool:2,pool:2 \\
        --fault-plan crash:0.1,corrupt:0.02,down=0@1x1,seed=7
    python -m repro prove --journal out.jsonl            # crash-safe WAL
    python -m repro prove --journal out.jsonl --resume   # skip proven tasks
    python -m repro serve --fault-plan batch:0.2,seed=3  # chaos in the service

Cluster (S28)::

    python -m repro node --listen 127.0.0.1:9100 --backend pool:4
    python -m repro prove --backend remote:127.0.0.1:9100
    python -m repro prove --backend cluster:remote:127.0.0.1:9100,remote:127.0.0.1:9101
    python -m repro autoscale --rates 2,8,8,1 --per-proof-ms 250 --max-nodes 4
    python -m repro autoscale --rates 2,8 --spawn serial   # actuate real nodes

Fleet serving (S30)::

    python -m repro serve --fleet serial --min-nodes 1 --max-nodes 3 \\
        --per-proof-ms 50 --node-parallelism 1   # shed-or-scale loop

Unified experiment runner (S29)::

    python -m repro experiment list                       # the catalog
    python -m repro experiment run --suite ci --quick     # CI smoke suite
    python -m repro experiment run bench_hotpath          # one experiment
    python -m repro experiment reproduce-all --quick      # everything + EXPERIMENTS.md
    python -m repro experiment compare                    # vs previous run
    python -m repro experiment history bench_hotpath speedup
"""

from __future__ import annotations

import argparse
import random
import sys

from .bench import (
    compute_breakdown,
    compute_fig9,
    compute_table3,
    compute_table4,
    compute_table5,
    compute_table6,
    compute_table7,
    compute_table8,
    compute_table9,
    compute_table10,
    compute_table11,
    format_rows,
)

TABLES = {
    "table3": ("Table 3 — Merkle tree throughput (trees/ms)", compute_table3, True),
    "table4": ("Table 4 — sum-check throughput (proofs/ms)", compute_table4, True),
    "table5": ("Table 5 — encoder throughput (codes/ms)", compute_table5, True),
    "table6": ("Table 6 — module latency (ms)", compute_table6, True),
    "table7": ("Table 7 — amortized per-proof time (ms)", compute_table7, True),
    "table8": ("Table 8 — throughput/latency across GPUs", compute_table8, False),
    "table9": ("Table 9 — comm/comp overlap (ms)", compute_table9, False),
    "table10": ("Table 10 — device memory per proof (GB)", compute_table10, True),
    "table11": ("Table 11 — verifiable ML (VGG-16)", compute_table11, True),
}


def _print_fig9() -> None:
    chars = " ▁▂▃▄▅▆▇█"

    def spark(trace, width=60):
        step = max(1, len(trace) // width)
        return "".join(
            chars[min(8, int(trace[i][1] * 8 + 0.5))]
            for i in range(0, len(trace), step)
        )

    print("Figure 9 — GPU core utilization (3090Ti)")
    for module, traces in compute_fig9().items():
        print(f"  {module:9s} ours     |{spark(traces['ours'])}| "
              f"mean={traces['ours_mean']:.2f}")
        print(f"  {module:9s} baseline |{spark(traces['baseline'])}| "
              f"mean={traces['baseline_mean']:.2f}")


def _print_breakdown() -> None:
    bd = compute_breakdown()
    print("Speedup decomposition @ S = 2^20 (§6.3)")
    print(f"  new-protocol speedup: {bd['protocol_speedup']:.2f}x "
          f"(paper {bd['paper_protocol_speedup']}x)")
    print(f"  pipeline speedup:     {bd['pipeline_speedup']:.2f}x "
          f"(paper {bd['paper_pipeline_speedup']}x)")
    print(f"  total vs Bellperson:  {bd['total_speedup_vs_bellperson']:.1f}x")


def _fold_lanes(selector, lanes, workers: int):
    """Fold a ``--lanes`` request into a backend selector string.

    ``--lanes`` alone proves lane groups in process (pooled when
    ``--workers`` asks for more); combined with a ``pool``/``pipelined``
    backend it hands that substrate lane-group-sized dispatch units.
    Other heads have their own composition grammar (e.g.
    ``resilient:lanes:8``) — spelling it explicitly beats guessing.
    """
    if lanes is None:
        return selector
    from .execution import AUTO_LANE_WIDTH, lane_selector

    if lanes != "auto":
        try:
            lanes = int(lanes)
        except ValueError:
            raise SystemExit(
                f"--lanes wants an integer width or 'auto', got {lanes!r}"
            ) from None
    if selector is None:
        return lane_selector(lanes, workers)
    if selector == "serial":
        return lane_selector(lanes, 1)
    head = selector.split(":", 1)[0].lower()
    if head in ("pool", "pipelined"):
        width = AUTO_LANE_WIDTH if lanes == "auto" else lanes
        return f"lanes:{width}:{selector}"
    raise SystemExit(
        f"--lanes composes with 'serial', 'pool', or 'pipelined' "
        f"backends; for {selector!r} spell the lane selector explicitly "
        f"(e.g. 'resilient:lanes:8')"
    )


def _run_prove(args) -> int:
    """Generate a real proof batch on an execution backend and report."""
    from .core import ProofTask, SnarkProver, make_pcs, random_circuit
    from .execution import resolve_backend
    from .field import DEFAULT_FIELD
    from .resilience import (
        FaultInjector,
        FaultPlan,
        apply_fault_plan,
        journaled_prove,
        split_results,
    )
    from .runtime import JsonlTraceSink, ProverSpec

    cc = random_circuit(DEFAULT_FIELD, args.gates, seed=1)
    pcs = make_pcs(DEFAULT_FIELD, cc.r1cs, num_col_checks=8)
    prover = SnarkProver(cc.r1cs, pcs, public_indices=cc.public_indices)
    spec = ProverSpec.from_prover(prover)
    # One circuit, many *distinct* witnesses (the paper's batch shape).
    # Sharing cc.witness across tasks would alias every task's
    # content-addressed journal key: on --resume, a quarantined poison
    # task would then be "found" in the journal under another task's
    # identical key and silently skipped instead of re-attempted.
    tasks = []
    for i in range(args.tasks):
        rng = random.Random(f"prove-cli/task/{i}")
        variant = random_circuit(
            DEFAULT_FIELD,
            args.gates,
            seed=1,
            input_values=DEFAULT_FIELD.rand_vector(8, rng),
        )
        assert variant.r1cs.digest() == cc.r1cs.digest()
        tasks.append(ProofTask(i, variant.witness, variant.public_values))
    trace = JsonlTraceSink(args.trace) if args.trace else None
    selector = _fold_lanes(args.backend, args.lanes, args.workers)
    if selector is None:
        selector = "serial" if args.workers == 1 else f"pool:{args.workers}"
    backend = resolve_backend(selector)
    injector = None
    if args.fault_plan:
        plan = FaultPlan.parse(args.fault_plan)
        injector = FaultInjector(plan)
        # The drill assumes the substrate's retry machinery is on;
        # without a floor a plain serial oracle dies on the first crash.
        apply_fault_plan(backend, injector, min_retries=2)
        if hasattr(backend, "verify_on_return") and plan.corrupt > 0:
            backend.verify_on_return = True
    print(
        f"Proving {args.tasks} tasks at S = {args.gates} gates on "
        f"backend {backend.name} (parallelism {backend.parallelism})…"
    )
    if args.fault_plan:
        print(f"fault plan: {args.fault_plan}")
    report = None
    try:
        if args.journal:
            results, stats, report = journaled_prove(
                backend,
                spec,
                tasks,
                args.journal,
                resume=args.resume,
                checkpoint_every=args.checkpoint_every,
                trace=trace,
            )
        else:
            results, stats = backend.prove_tasks(spec, tasks, trace=trace)
    finally:
        if trace is not None:
            trace.close()
    print(stats.report())
    rstats = getattr(backend, "last_resilience_stats", None)
    if rstats is not None:
        print(rstats.report())
    if report is not None:
        print(report.summary())
    proofs, quarantined = split_results(results)
    verifier = spec.build_verifier()
    ok = all(
        verifier.verify(proof, tasks[index].public_values)
        for index, proof in proofs
    )
    print(f"all {len(proofs)} returned proofs verify: {ok}")
    for q in quarantined:
        print(f"quarantined: {q}")
    if args.trace:
        print(f"trace events written to {args.trace}")
    return 0 if ok and proofs else 1


def _run_serve(args) -> int:
    """Replay a synthetic arrival trace through the streaming service."""
    from .core import ProofTask, SnarkProver, make_pcs, random_circuit
    from .field import DEFAULT_FIELD
    from .runtime import JsonlTraceSink, ProverSpec
    from .service import (
        BatchPolicy,
        ProofService,
        RuntimeProofBackend,
        bursty_trace,
        poisson_trace,
        replay,
        spec_key,
        task_witness_key,
    )

    # Two circuit scales so the batcher's circuit-key grouping is live.
    specs, keys, circuits = [], [], []
    for i, gates in enumerate(dict.fromkeys([args.gates, args.gates * 2])):
        cc = random_circuit(DEFAULT_FIELD, gates, seed=10 + i)
        pcs = make_pcs(DEFAULT_FIELD, cc.r1cs, num_col_checks=6)
        prover = SnarkProver(cc.r1cs, pcs, public_indices=cc.public_indices)
        spec = ProverSpec.from_prover(prover)
        specs.append(spec)
        keys.append(spec_key(spec))
        circuits.append(cc)

    trace_fn = poisson_trace if args.pattern == "poisson" else bursty_trace
    events = trace_fn(
        args.requests,
        args.rate,
        seed=args.seed,
        duplicate_fraction=args.duplicates,
        deadline_seconds=args.deadline if args.deadline > 0 else None,
    )

    def make_request(i):
        which = i % len(circuits)
        cc = circuits[which]
        task = ProofTask(i, cc.witness, cc.public_values)
        # Tag the dedup key with the arrival index: each fresh arrival is
        # distinct work; only trace-marked duplicates share a key.
        witness_key = task_witness_key(task) + i.to_bytes(4, "little")
        return task, keys[which], witness_key

    sink = JsonlTraceSink(args.trace) if args.trace else None
    fleet = None
    if args.fleet:
        if args.backend or args.lanes:
            print(
                "error: --fleet is mutually exclusive with --backend and "
                "--lanes (--fleet builds the cluster backend itself; give "
                "its nodes a lanes selector via --fleet lanes:8 instead)",
                file=sys.stderr,
            )
            if sink is not None:
                sink.close()
            return 1
        from .service import launch_fleet

        fleet = launch_fleet(
            args.fleet,
            initial_nodes=max(1, args.min_nodes),
            trace=sink,
        )
        backend = RuntimeProofBackend.from_specs(
            specs, workers=args.workers, backend=fleet.backend
        )
    else:
        backend = RuntimeProofBackend.from_specs(
            specs,
            workers=args.workers,
            backend=_fold_lanes(args.backend, args.lanes, args.workers),
        )
    injector = None
    if args.fault_plan:
        from .resilience import FaultInjector, FaultPlan, apply_fault_plan

        plan = FaultPlan.parse(args.fault_plan)
        injector = FaultInjector(plan)
        apply_fault_plan(backend.backend, injector, min_retries=2)
        if hasattr(backend.backend, "verify_on_return") and plan.corrupt > 0:
            backend.backend.verify_on_return = True
    policy = BatchPolicy(
        max_batch_size=args.batch_size, max_wait_seconds=args.window
    )
    print(
        f"Serving {args.requests} {args.pattern} arrivals at ~{args.rate}/s "
        f"(batch<= {args.batch_size}, window {args.window * 1e3:.0f} ms, "
        f"queue<= {args.max_queue}, backend {backend.backend.name})…"
    )
    if args.fault_plan:
        print(f"fault plan: {args.fault_plan}")
    if fleet is not None:
        print(
            f"fleet: {fleet.pool.size} '{args.fleet}' node(s), scaling "
            f"{args.min_nodes}..{args.max_nodes}, supervisor tick "
            f"{args.supervisor_interval * 1e3:.0f} ms"
        )
    service = ProofService(
        backend,
        policy=policy,
        max_queue=args.max_queue,
        trace=sink,
        fault_injector=injector,
    )
    supervisor = None
    if fleet is not None:
        from .cluster import LoadModel

        supervisor = fleet.supervise(
            service,
            LoadModel(
                per_proof_seconds=args.per_proof_ms / 1e3,
                node_parallelism=args.node_parallelism,
            ),
            min_nodes=args.min_nodes,
            max_nodes=args.max_nodes,
            interval_seconds=args.supervisor_interval,
            shrink_patience=args.shrink_patience,
        )
    fleet_nodes = None
    try:
        tickets, rejected = replay(service, events, make_request)
        service.drain(timeout=600)
        if fleet is not None:
            fleet_nodes = fleet.pool.size
    finally:
        service.close()
        if fleet is not None:
            fleet.close()
        if sink is not None:
            sink.close()
    checked = 0
    failed = 0
    ok = True
    verifiers = {}
    for event_index, ticket in enumerate(tickets):
        if ticket is None:
            continue
        try:
            proof = ticket.result(timeout=60)
        except Exception:
            # Under an injected fault plan some requests legitimately
            # fail (batch faults, quarantines); count, don't abort.
            failed += 1
            continue
        if checked >= args.verify_sample:
            continue  # still drain every ticket above
        event = events[event_index]
        target = (
            event.duplicate_of if event.duplicate_of is not None
            else event_index
        )
        which = target % len(circuits)
        if which not in verifiers:
            verifiers[which] = backend.verifier_for(keys[which])
        ok = ok and verifiers[which].verify(
            proof, circuits[which].public_values
        )
        checked += 1
    print(service.stats.report())
    rstats = getattr(backend.backend, "last_resilience_stats", None)
    if rstats is not None:
        print(rstats.report())
    if fleet is not None:
        cluster = fleet.cluster
        print(
            f"fleet           : finished with {fleet_nodes} node(s) "
            f"(supervisor ticks {supervisor.ticks}, "
            f"errors {supervisor.errors}); hedges "
            f"issued {cluster.hedges_issued}, won {cluster.hedges_won}, "
            f"denied {cluster.hedges_denied}"
        )
    print(f"rejected at admission: {rejected}")
    if failed:
        print(f"failed tickets: {failed}")
    print(f"verified sample of {checked}: {'ok' if ok else 'FAILED'}")
    if args.trace:
        print(f"trace events written to {args.trace}")
    if failed and not args.fault_plan:
        return 1
    return 0 if ok else 1


def _run_node(args) -> int:
    """Serve one proving node over TCP until interrupted."""
    from .cluster import NodeServer

    host, sep, port = args.listen.rpartition(":")
    if not sep or not port.isdigit():
        print(f"error: --listen wants HOST:PORT, got {args.listen!r}",
              file=sys.stderr)
        return 1
    selector = args.backend
    if selector is None:
        selector = "serial" if args.workers == 1 else f"pool:{args.workers}"
    server = NodeServer(
        host or "127.0.0.1",
        int(port),
        backend=selector,
        chunk_size=args.chunk_size,
        die_after=args.die_after,
    )
    # The READY line is the spawn contract: NodePool (and the CI smoke
    # job) block on it to learn the ephemeral port.
    print(f"READY {server.host} {server.port}", flush=True)
    print(
        f"node serving backend {server.backend.name} "
        f"(parallelism {getattr(server.backend, 'parallelism', 1)}, "
        f"chunk {server.chunk_size})",
        file=sys.stderr,
    )
    try:
        server.serve_forever()
    except KeyboardInterrupt:
        pass
    finally:
        server.close()
    return 0


def _run_autoscale(args) -> int:
    """Replay arrival-rate readings through the load-model autoscaler."""
    from .cluster import Autoscaler, LoadModel, NodePool
    from .runtime import JsonlTraceSink

    try:
        rates = [float(r) for r in args.rates.split(",") if r.strip()]
    except ValueError:
        print(f"error: --rates wants comma-separated numbers, "
              f"got {args.rates!r}", file=sys.stderr)
        return 1
    if not rates:
        print("error: --rates is empty", file=sys.stderr)
        return 1
    model = LoadModel(
        per_proof_seconds=args.per_proof_ms / 1e3,
        node_parallelism=args.node_parallelism,
    )
    trace = JsonlTraceSink(args.trace) if args.trace else None
    pool = NodePool(backend=args.spawn) if args.spawn else None
    mode = f"spawning '{args.spawn}' nodes" if pool else "dry run"
    print(
        f"autoscaling for {model.per_proof_seconds * 1e3:.0f} ms/proof, "
        f"{model.node_parallelism} proofs/node, "
        f"{args.min_nodes}..{args.max_nodes} nodes ({mode})"
    )
    scaler = Autoscaler(
        model,
        pool,
        min_nodes=args.min_nodes,
        max_nodes=args.max_nodes,
        cooldown_seconds=0.0,
        shrink_patience=args.shrink_patience,
        trace=trace,
    )
    try:
        if pool is not None:
            pool.scale_to(args.min_nodes)
        for rate in rates:
            decision = scaler.observe(rate)
            print(
                f"  rate {rate:6.1f}/s  util {decision['utilization']:.2f}  "
                f"target {decision['target']}  "
                f"{decision['action']} ({decision['reason']})  "
                f"nodes {scaler.current_nodes}"
            )
        if pool is not None:
            print(f"final fleet: {pool.cluster_selector()}")
    finally:
        if pool is not None:
            pool.close()
        if trace is not None:
            trace.close()
    if args.trace:
        print(f"trace events written to {args.trace}")
    return 0


def main(argv=None) -> int:
    # `experiment` delegates to the S29 runner CLI before the paper-table
    # argparse below: the subcommand has its own flag grammar (suites,
    # guard/param overrides) that must not collide with the global flags.
    raw = list(sys.argv[1:] if argv is None else argv)
    if raw and raw[0] == "experiment":
        from .experiments.cli import main as experiment_main

        return experiment_main(raw[1:])

    parser = argparse.ArgumentParser(
        prog="python -m repro",
        description="Regenerate the BatchZK paper's evaluation artifacts.",
    )
    parser.add_argument(
        "experiment",
        choices=sorted(TABLES)
        + ["fig9", "breakdown", "all", "list", "apidoc", "prove", "serve",
           "node", "autoscale"],
        help="which artifact to regenerate",
    )
    parser.add_argument(
        "--device",
        default=None,
        help="GPU to simulate where applicable (default: GH200)",
    )
    parser.add_argument(
        "--workers",
        type=int,
        default=1,
        help="worker processes for `prove` / `serve` (default 1 = serial)",
    )
    parser.add_argument(
        "--backend",
        default=None,
        metavar="SELECTOR",
        help="execution backend for `prove` / `serve`, e.g. 'serial', "
        "'pool:4', 'pipelined:4', 'sharded:pool:2,pool:2' (default: "
        "derived from --workers)",
    )
    parser.add_argument(
        "--lanes",
        default=None,
        metavar="N|auto",
        help="prove same-circuit tasks in fused lane groups of this "
        "width (S31); composes with --workers and with 'serial'/'pool'/"
        "'pipelined' --backend selectors",
    )
    parser.add_argument(
        "--tasks",
        type=int,
        default=8,
        help="batch size for `prove` (default 8)",
    )
    parser.add_argument(
        "--gates",
        type=int,
        default=96,
        help="circuit scale (multiplication gates) for `prove` (default 96)",
    )
    parser.add_argument(
        "--trace",
        default=None,
        metavar="FILE",
        help="JSONL trace-event sink for `prove` / `serve`",
    )
    resilience_group = parser.add_argument_group("resilience options")
    resilience_group.add_argument(
        "--fault-plan",
        default=None,
        metavar="PLAN",
        help="seeded chaos plan for `prove` / `serve`, e.g. "
        "'crash:0.1,corrupt:0.02,seed=7' (kinds: crash, slow, corrupt, "
        "outage, pool_death, batch; plus down=C@FxN and poison=A+B)",
    )
    resilience_group.add_argument(
        "--journal",
        default=None,
        metavar="FILE",
        help="crash-safe JSONL proof journal for `prove` (write-ahead "
        "log; fsync per completed proof)",
    )
    resilience_group.add_argument(
        "--resume",
        action="store_true",
        help="with --journal: skip tasks already recorded in the journal",
    )
    resilience_group.add_argument(
        "--checkpoint-every",
        type=int,
        default=1,
        metavar="N",
        help="with --journal: prove (and durably record) N tasks per "
        "checkpoint chunk (default 1)",
    )
    serve_group = parser.add_argument_group("serve options")
    serve_group.add_argument(
        "--requests", type=int, default=60,
        help="arrivals to replay for `serve` (default 60)",
    )
    serve_group.add_argument(
        "--rate", type=float, default=300.0,
        help="mean arrival rate, requests/second (default 300)",
    )
    serve_group.add_argument(
        "--pattern", choices=["poisson", "bursty"], default="poisson",
        help="arrival process shape (default poisson)",
    )
    serve_group.add_argument(
        "--batch-size", type=int, default=8,
        help="max requests per dispatched batch (default 8)",
    )
    serve_group.add_argument(
        "--window", type=float, default=0.02,
        help="max batching wait in seconds (default 0.02)",
    )
    serve_group.add_argument(
        "--max-queue", type=int, default=128,
        help="admission-control queue bound (default 128)",
    )
    serve_group.add_argument(
        "--duplicates", type=float, default=0.15,
        help="fraction of arrivals repeating earlier work (default 0.15)",
    )
    serve_group.add_argument(
        "--deadline", type=float, default=0.0,
        help="relative deadline (s) for interactive arrivals; 0 = none",
    )
    serve_group.add_argument(
        "--seed", type=int, default=0, help="trace RNG seed (default 0)"
    )
    serve_group.add_argument(
        "--verify-sample", type=int, default=8,
        help="how many returned proofs to spot-verify (default 8)",
    )
    serve_group.add_argument(
        "--fleet", default=None, metavar="SELECTOR",
        help="serve over a supervised local node fleet: spawn --min-nodes "
        "`python -m repro node` subprocesses wrapping this inner backend "
        "(e.g. 'serial', 'pool:2'), autoscale --min-nodes..--max-nodes "
        "from the live arrival rate, and shed only while scaling lags",
    )
    serve_group.add_argument(
        "--supervisor-interval", type=float, default=0.25,
        help="fleet supervisor tick period in seconds (default 0.25)",
    )
    cluster_group = parser.add_argument_group("cluster options")
    cluster_group.add_argument(
        "--listen", default="127.0.0.1:0", metavar="HOST:PORT",
        help="listen address for `node` (port 0 = ephemeral; the node "
        "prints 'READY host port' once bound)",
    )
    cluster_group.add_argument(
        "--chunk-size", type=int, default=None, metavar="N",
        help="tasks per streamed RESULT frame for `node` (default: the "
        "wrapped backend's parallelism)",
    )
    cluster_group.add_argument(
        "--die-after", type=int, default=None, metavar="N",
        help="chaos drill for `node`: hard-exit after proving N tasks",
    )
    cluster_group.add_argument(
        "--rates", default="1,4,8,8,2,1", metavar="R1,R2,...",
        help="arrival-rate readings (proofs/s) for `autoscale`",
    )
    cluster_group.add_argument(
        "--per-proof-ms", type=float, default=250.0,
        help="per-proof busy cost for `autoscale` (default 250 ms)",
    )
    cluster_group.add_argument(
        "--node-parallelism", type=int, default=1,
        help="concurrent proofs per node for `autoscale` (default 1)",
    )
    cluster_group.add_argument(
        "--min-nodes", type=int, default=1,
        help="fleet floor for `autoscale` (default 1)",
    )
    cluster_group.add_argument(
        "--max-nodes", type=int, default=4,
        help="fleet ceiling for `autoscale` (default 4)",
    )
    cluster_group.add_argument(
        "--shrink-patience", type=int, default=2,
        help="consecutive low readings before `autoscale` shrinks "
        "(default 2)",
    )
    cluster_group.add_argument(
        "--spawn", default=None, metavar="SELECTOR",
        help="for `autoscale`: actuate real local node subprocesses "
        "wrapping this backend (default: dry run, no processes)",
    )
    args = parser.parse_args(argv)

    if args.experiment in ("node", "autoscale"):
        from .errors import ClusterError, ExecutionError

        try:
            return _run_node(args) if args.experiment == "node" else \
                _run_autoscale(args)
        except (ClusterError, ExecutionError, OSError) as exc:
            print(f"error: {exc}", file=sys.stderr)
            return 1

    if args.experiment in ("prove", "serve"):
        from .errors import (
            ClusterError,
            ExecutionError,
            ProofError,
            ResilienceError,
            ServiceError,
        )

        try:
            return _run_prove(args) if args.experiment == "prove" else \
                _run_serve(args)
        except (
            ClusterError, ExecutionError, ProofError, ResilienceError,
            ServiceError, OSError,
        ) as exc:
            print(f"error: {exc}", file=sys.stderr)
            return 1

    if args.experiment == "apidoc":
        from .bench.apidoc import write_api_markdown

        print(f"wrote {write_api_markdown()}")
        return 0

    if args.experiment == "list":
        for key, (title, _, _) in sorted(TABLES.items()):
            print(f"{key:8s} {title}")
        print(f"{'fig9':8s} Figure 9 — GPU core utilization traces")
        print(f"{'breakdown':8s} §6.3 protocol-vs-pipeline decomposition")
        return 0

    targets = sorted(TABLES) if args.experiment == "all" else [args.experiment]
    for target in targets:
        if target == "fig9":
            _print_fig9()
            continue
        if target == "breakdown":
            _print_breakdown()
            continue
        title, fn, takes_device = TABLES[target]
        kwargs = {}
        if args.device and takes_device:
            kwargs["device"] = args.device
        print(format_rows(title, fn(**kwargs)))
        print()
    if args.experiment == "all":
        _print_fig9()
        print()
        _print_breakdown()
    return 0


if __name__ == "__main__":
    sys.exit(main())
