"""Command-line interface: regenerate the paper's evaluation artifacts.

Usage::

    python -m repro list                  # available experiments
    python -m repro table3 [--device X]   # one table
    python -m repro fig9                  # utilization traces
    python -m repro all                   # everything
    python -m repro breakdown             # §6.3 speedup decomposition
"""

from __future__ import annotations

import argparse
import sys

from .bench import (
    compute_breakdown,
    compute_fig9,
    compute_table3,
    compute_table4,
    compute_table5,
    compute_table6,
    compute_table7,
    compute_table8,
    compute_table9,
    compute_table10,
    compute_table11,
    format_rows,
)

TABLES = {
    "table3": ("Table 3 — Merkle tree throughput (trees/ms)", compute_table3, True),
    "table4": ("Table 4 — sum-check throughput (proofs/ms)", compute_table4, True),
    "table5": ("Table 5 — encoder throughput (codes/ms)", compute_table5, True),
    "table6": ("Table 6 — module latency (ms)", compute_table6, True),
    "table7": ("Table 7 — amortized per-proof time (ms)", compute_table7, True),
    "table8": ("Table 8 — throughput/latency across GPUs", compute_table8, False),
    "table9": ("Table 9 — comm/comp overlap (ms)", compute_table9, False),
    "table10": ("Table 10 — device memory per proof (GB)", compute_table10, True),
    "table11": ("Table 11 — verifiable ML (VGG-16)", compute_table11, True),
}


def _print_fig9() -> None:
    chars = " ▁▂▃▄▅▆▇█"

    def spark(trace, width=60):
        step = max(1, len(trace) // width)
        return "".join(
            chars[min(8, int(trace[i][1] * 8 + 0.5))]
            for i in range(0, len(trace), step)
        )

    print("Figure 9 — GPU core utilization (3090Ti)")
    for module, traces in compute_fig9().items():
        print(f"  {module:9s} ours     |{spark(traces['ours'])}| "
              f"mean={traces['ours_mean']:.2f}")
        print(f"  {module:9s} baseline |{spark(traces['baseline'])}| "
              f"mean={traces['baseline_mean']:.2f}")


def _print_breakdown() -> None:
    bd = compute_breakdown()
    print("Speedup decomposition @ S = 2^20 (§6.3)")
    print(f"  new-protocol speedup: {bd['protocol_speedup']:.2f}x "
          f"(paper {bd['paper_protocol_speedup']}x)")
    print(f"  pipeline speedup:     {bd['pipeline_speedup']:.2f}x "
          f"(paper {bd['paper_pipeline_speedup']}x)")
    print(f"  total vs Bellperson:  {bd['total_speedup_vs_bellperson']:.1f}x")


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro",
        description="Regenerate the BatchZK paper's evaluation artifacts.",
    )
    parser.add_argument(
        "experiment",
        choices=sorted(TABLES) + ["fig9", "breakdown", "all", "list", "apidoc"],
        help="which artifact to regenerate",
    )
    parser.add_argument(
        "--device",
        default=None,
        help="GPU to simulate where applicable (default: GH200)",
    )
    args = parser.parse_args(argv)

    if args.experiment == "apidoc":
        from .bench.apidoc import write_api_markdown

        print(f"wrote {write_api_markdown()}")
        return 0

    if args.experiment == "list":
        for key, (title, _, _) in sorted(TABLES.items()):
            print(f"{key:8s} {title}")
        print(f"{'fig9':8s} Figure 9 — GPU core utilization traces")
        print(f"{'breakdown':8s} §6.3 protocol-vs-pipeline decomposition")
        return 0

    targets = sorted(TABLES) if args.experiment == "all" else [args.experiment]
    for target in targets:
        if target == "fig9":
            _print_fig9()
            continue
        if target == "breakdown":
            _print_breakdown()
            continue
        title, fn, takes_device = TABLES[target]
        kwargs = {}
        if args.device and takes_device:
            kwargs["device"] = args.device
        print(format_rows(title, fn(**kwargs)))
        print()
    if args.experiment == "all":
        _print_fig9()
        print()
        _print_breakdown()
    return 0


if __name__ == "__main__":
    sys.exit(main())
